"""Replay a realistic viewing session through the TFR system.

Generates a 30-second oculomotor trace (fixations, saccades, pursuit,
blinks), replays it frame by frame through POLO's event-gated pipeline
and through a conventional always-track baseline, and prints the
per-frame latency timeline statistics: mean, tail, deadline misses, and
the realized decision mix.

Run:  python examples/session_replay.py [--seconds 30] [--scene E]
"""

from __future__ import annotations

import argparse

from repro.experiments.profiles import (
    baseline_execution,
    paper_reference_errors,
    polo_execution,
    profile_from_execution,
)
from repro.eye import OculomotorModel
from repro.render import RES_1080P, scene_by_name
from repro.system import Schedule, simulate_session, table_to_text


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=30.0)
    parser.add_argument("--scene", default="E")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    scene = scene_by_name(args.scene)
    track = OculomotorModel(seed=args.seed).generate(int(args.seconds * 100))
    errors = paper_reference_errors(0.2)
    profiles = {
        "POLO": profile_from_execution(polo_execution(0.2), errors["POLO"]),
        "ResNet-34": profile_from_execution(
            baseline_execution("ResNet-34"), errors["ResNet-34"]
        ),
    }

    print(
        f"{args.seconds:.0f}s session, scene {scene.name} @1080P, "
        f"{len(track)} frames at {track.fps:.0f} fps\n"
    )
    headers = [
        "Method/schedule",
        "Mean(ms)",
        "P99(ms)",
        "Sustainable FPS",
        "sacc%",
        "reuse%",
        "pred%",
    ]
    rows = []
    for name, profile in profiles.items():
        for schedule in Schedule:
            report = simulate_session(
                profile, track, scene, RES_1080P, schedule=schedule
            )
            mix = report.event_mix
            rows.append(
                [
                    f"{name} ({schedule.value})",
                    f"{report.mean_latency_s * 1e3:.1f}",
                    f"{report.p99_latency_s * 1e3:.1f}",
                    f"{1.0 / report.mean_latency_s:.0f}",
                    f"{mix.p_saccade:.0%}",
                    f"{mix.p_reuse:.0%}",
                    f"{mix.p_predict:.0%}",
                ]
            )
    print(table_to_text(headers, rows))
    print(
        "\nPOLO skips the gaze ViT on saccade/reuse frames and hides the "
        "rest behind the R1 rendering pass; the baseline pays full "
        "tracking latency on every frame."
    )


if __name__ == "__main__":
    main()
