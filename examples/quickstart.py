"""Quickstart: train a compact POLONet and run it frame by frame.

Synthesizes a small OpenEDS-like dataset, trains every POLONet component
(saccade RNN, gaze ViT with the performance-aware loss, INT8 + 20% token
pruning), and streams a validation sequence through the Algorithm-1
runtime, printing the decision each frame took and the resulting gaze
accuracy.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import angular_errors
from repro.core import Decision, build_polonet
from repro.eye import synthesize_dataset


def main() -> None:
    print("Synthesizing training data (4 participants)...")
    train = synthesize_dataset(n_participants=4, frames_per_participant=200, seed=0)
    val = synthesize_dataset(n_participants=1, frames_per_participant=200, seed=999)

    print("Training POLONet (compact configuration)...")
    bundle = build_polonet(train, vit_epochs=8, saccade_epochs=6, seed=0)
    print(
        f"  gaze ViT loss:     {bundle.vit_log.losses[0]:.3f} -> {bundle.vit_log.losses[-1]:.3f}"
    )
    print(
        f"  saccade RNN loss:  {bundle.saccade_log.losses[0]:.3f} -> {bundle.saccade_log.losses[-1]:.3f}"
    )

    print("\nStreaming a validation sequence through Algorithm 1...")
    polonet = bundle.polonet
    sequence = val.sequences[0]
    predictions, truths = [], []
    for i in range(len(sequence)):
        frame = sequence.images[i].astype(np.float64)
        result = polonet.process_frame(frame)
        if result.has_gaze and sequence.openness[i] > 0.5:
            predictions.append(result.gaze_deg)
            truths.append(sequence.gaze_deg[i])
        if i < 12:
            gaze_txt = (
                f"gaze=({result.gaze_deg[0]:+.1f},{result.gaze_deg[1]:+.1f})deg"
                if result.has_gaze
                else "gaze=--- (halted: saccadic suppression)"
            )
            print(f"  frame {i:3d}: {result.decision.value:8s} {gaze_txt}")

    stats = polonet.stats.probabilities()
    print(
        f"\nDecision mix over {polonet.stats.total} frames: "
        f"saccade {stats['p_saccade']:.0%}, reuse {stats['p_reuse']:.0%}, "
        f"predict {stats['p_predict']:.0%}"
    )
    errors = angular_errors(np.array(predictions), np.array(truths))
    print(
        f"Gaze error on tracked frames: mean {errors.mean():.2f} deg, "
        f"P95 {np.percentile(errors, 95):.2f} deg"
    )
    print(
        "\nOnly "
        f"{stats['p_predict']:.0%} of frames paid for the full gaze ViT — "
        "that is the 'process only where you look' saving."
    )


if __name__ == "__main__":
    main()
