"""Foveated rendering you can look at.

Renders a small ray-traced scene twice — full resolution and foveated
around a gaze point whose region sizes come from Eq. 1 with POLO's P95
tracking error — and writes both as PPM images next to this script,
reporting the ray savings.

Run:  python examples/foveated_viewer.py [--width 320] [--height 200]
"""

from __future__ import annotations

import argparse
import os

import numpy as np

from repro.render import (
    FoveationConfig,
    MiniScene,
    PathTracer,
    Resolution,
    eccentricity_radius_px,
    theta_f,
)


def write_ppm(path: str, image: np.ndarray) -> None:
    """Write an (H, W, 3) float image as a binary PPM."""
    data = (np.clip(image, 0.0, 1.0) * 255).astype(np.uint8)
    with open(path, "wb") as handle:
        handle.write(f"P6 {data.shape[1]} {data.shape[0]} 255\n".encode())
        handle.write(data.tobytes())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=320)
    parser.add_argument("--height", type=int, default=200)
    parser.add_argument("--gaze-x", type=float, default=0.42, help="gaze x in [0,1]")
    parser.add_argument("--gaze-y", type=float, default=0.55, help="gaze y in [0,1]")
    parser.add_argument("--error-deg", type=float, default=2.92, help="P95 tracking error")
    args = parser.parse_args()

    out_dir = os.path.dirname(os.path.abspath(__file__))
    tracer = PathTracer(MiniScene.demo())
    resolution = Resolution("custom", args.width, args.height)
    foveation = FoveationConfig()

    angle_f = theta_f(foveation.theta_foveal_deg, args.error_deg)
    angle_i = angle_f + foveation.inter_extra_deg
    r_f = eccentricity_radius_px(angle_f, resolution, foveation.display_hfov_deg)
    r_i = eccentricity_radius_px(angle_i, resolution, foveation.display_hfov_deg)
    gaze_px = (args.gaze_x * args.width, args.gaze_y * args.height)
    print(
        f"Gaze at {gaze_px[0]:.0f},{gaze_px[1]:.0f}px; tracking error "
        f"{args.error_deg:.2f} deg -> foveal radius {r_f:.0f}px, "
        f"inter-foveal radius {r_i:.0f}px"
    )

    print("Rendering full resolution...")
    full = tracer.render(args.width, args.height)
    full_path = os.path.join(out_dir, "scene_full.ppm")
    write_ppm(full_path, full)

    print("Rendering foveated...")
    foveated, ray_fraction = tracer.render_foveated(
        args.width, args.height, gaze_px, r_f, r_i
    )
    fov_path = os.path.join(out_dir, "scene_foveated.ppm")
    write_ppm(fov_path, foveated)

    # Perceptually-weighted difference: error matters less off-fovea.
    yy, xx = np.mgrid[0 : args.height, 0 : args.width]
    dist = np.sqrt((xx - gaze_px[0]) ** 2 + (yy - gaze_px[1]) ** 2)
    foveal_mask = dist <= r_f
    diff = np.abs(full - foveated).mean(axis=2)
    print(f"\nWrote {full_path} and {fov_path}")
    print(f"Ray budget:            {ray_fraction:.1%} of full resolution")
    print(f"Foveal-region error:   {diff[foveal_mask].mean():.4f} (identical rays)")
    print(f"Peripheral error:      {diff[~foveal_mask].mean():.4f} (downsampled)")


if __name__ == "__main__":
    main()
