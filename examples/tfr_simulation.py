"""Full TFR system simulation: where does each millisecond go?

Builds the complete hardware stack — camera sensor, MIPI link, the POLO
accelerator (and each baseline's dedicated accelerator), and the
Jetson-class rendering GPU — and walks one frame through the sequential
and parallel schedules for every method, printing the Fig. 11/12-style
latency decomposition plus the maximum sustainable frame rates (Eq. 8).

Run:  python examples/tfr_simulation.py [--scene E] [--resolution 1080P]
"""

from __future__ import annotations

import argparse

from repro.experiments.profiles import (
    SYSTEM_BASELINES,
    baseline_execution,
    paper_reference_errors,
    polo_execution,
    profile_from_execution,
)
from repro.eye.events import EventMix
from repro.render import resolution_by_name, scene_by_name
from repro.system import Schedule, TfrSystem, table_to_text, vive_pro_eye_profile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scene", default="E", help="scene A-H")
    parser.add_argument("--resolution", default="1080P", help="720P/1080P/1440P")
    args = parser.parse_args()

    scene = scene_by_name(args.scene)
    resolution = resolution_by_name(args.resolution)
    system = TfrSystem()
    errors = paper_reference_errors(0.2)

    profiles = {"POLO": profile_from_execution(polo_execution(0.2), errors["POLO"])}
    for name in SYSTEM_BASELINES:
        profiles[name] = profile_from_execution(baseline_execution(name), errors[name])
    profiles["Vive Pro Eye"] = vive_pro_eye_profile()

    print(f"Scene {scene.name} ({scene.description}) at {resolution.name}\n")

    headers = ["Method", "Ts", "Tc", "Td", "Tr", "Total(seq)", "Total(par)", "FPS"]
    rows = []
    mix = EventMix(0.08, 0.72, 0.20)  # a typical measured decision mix
    for name, profile in profiles.items():
        seq = system.frame_latency(profile, scene, resolution, "predict", Schedule.SEQUENTIAL)
        par = system.frame_latency(profile, scene, resolution, "predict", Schedule.PARALLEL)
        fps = system.fps_max(profile, scene, resolution, mix, Schedule.PARALLEL)
        rows.append(
            [
                name,
                f"{seq.sensing_s * 1e3:.1f}",
                f"{seq.communication_s * 1e3:.2f}",
                f"{seq.gaze_s * 1e3:.1f}",
                f"{seq.rendering_s * 1e3:.1f}",
                f"{seq.total_s * 1e3:.1f}",
                f"{par.total_s * 1e3:.1f}",
                f"{fps:.0f}",
            ]
        )
    full_ms = system.full_resolution_latency(scene, resolution) * 1e3
    rows.append(["Full resolution", "-", "-", "-", f"{full_ms:.1f}", f"{full_ms:.1f}", f"{full_ms:.1f}", f"{1e3 / full_ms:.0f}"])
    print(table_to_text(headers, rows))

    polo = profiles["POLO"]
    print("\nPOLO per-path frame latency (event gating, ms):")
    for path in ("saccade", "reuse", "predict"):
        frame = system.frame_latency(polo, scene, resolution, path)
        print(f"  {path:8s}: {frame.total_s * 1e3:6.1f}")
    avg = system.average_latency(polo, scene, resolution, mix)
    print(f"  averaged over the event mix {mix}: {avg * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
