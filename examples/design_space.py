"""Accelerator + algorithm design-space exploration.

Sweeps the two co-design knobs the paper settles by experiment — the
systolic-array geometry (at its area cost) and the token-pruning ratio
(at its accuracy cost) — and prints the latency/area/energy frontier,
showing why the published 16x16-INT8 @ 20%-pruning point is where the
end-to-end latency bottoms out.

Run:  python examples/design_space.py
"""

from __future__ import annotations

from repro.experiments.profiles import pruned_vit_workload
from repro.experiments.pruning_sweep import PAPER_ERROR_BY_RATIO
from repro.core import GazeViTConfig
from repro.hw import Accelerator, AcceleratorConfig
from repro.render import RES_1080P, SCENES, RenderPipeline
from repro.system import TfrSystem, TrackerSystemProfile, table_to_text


def sweep_arrays() -> None:
    print("Array geometry sweep (POLOViT @ 20% pruning, INT8):\n")
    ops = pruned_vit_workload(GazeViTConfig.paper(), 0.2)
    headers = ["Array", "Latency(ms)", "Energy(mJ)", "Area(mm^2)", "Utilization"]
    rows = []
    for dim in (8, 12, 16, 24, 32):
        acc = Accelerator(AcceleratorConfig(rows=dim, cols=dim))
        report = acc.run(ops)
        rows.append(
            [
                f"{dim}x{dim}",
                f"{report.latency_s * 1e3:.1f}",
                f"{report.energy.total_j * 1e3:.2f}",
                f"{acc.area_mm2:.2f}",
                f"{report.utilization:.2f}",
            ]
        )
    print(table_to_text(headers, rows))
    print(
        "\nBeyond 16x16 the array outruns POLOViT's small matrices "
        "(utilization collapses) while area keeps growing — the paper's "
        "geometry sits at the knee.\n"
    )


def sweep_pruning() -> None:
    print("Pruning-ratio sweep (1080P, scene-averaged end-to-end):\n")
    system = TfrSystem()
    headers = ["Ratio", "Gaze Td(ms)", "P95 err(deg)", "TFR latency(ms)"]
    rows = []
    for ratio, error in PAPER_ERROR_BY_RATIO.items():
        ops = pruned_vit_workload(GazeViTConfig.paper(), ratio)
        acc = Accelerator(AcceleratorConfig())
        td = acc.run(ops).latency_s
        profile = TrackerSystemProfile("POLO", td, error)
        total = sum(
            system.frame_latency(profile, scene, RES_1080P).total_s for scene in SCENES
        ) / len(SCENES)
        rows.append(
            [f"{ratio:.0%}", f"{td * 1e3:.1f}", f"{error:.2f}", f"{total * 1e3:.1f}"]
        )
    print(table_to_text(headers, rows))
    print(
        "\nGaze latency falls with pruning while tracking error (and so "
        "rendering cost) rises; the 20% point balances the two."
    )


def main() -> None:
    sweep_arrays()
    sweep_pruning()


if __name__ == "__main__":
    main()
