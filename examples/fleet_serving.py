"""Serve a fleet of gaze-tracked HMD sessions from a shared worker pool.

Walks through the serving runtime end to end:

1. sample N independent oculomotor traces and their Algorithm-1 path
   decisions — saccade/reuse frames are served on-device, only the
   predict-path skew reaches the pool;
2. run the discrete-event simulation with cross-session dynamic batching
   and admission control, then again with per-session dispatch
   (``max_batch=1``) on the *same* fleet;
3. sweep the admission policies to show the latency/goodput trade;
4. optionally drive real batched POLOViT inference through the loop.

Run:  python examples/fleet_serving.py [--sessions 32] [--with-model]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.serve import (
    AdmissionPolicy,
    BatchServiceModel,
    ServeConfig,
    build_fleet,
    format_fleet_report,
    serve_fleet,
)
from repro.system import table_to_text


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=32)
    parser.add_argument("--seconds", type=float, default=2.0)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--with-model", action="store_true",
                        help="drive a real (compact) POLOViT through the loop")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # A predict-heavy regime: with a 0.05 degree reuse threshold almost
    # every fixation frame needs fresh inference, so the pool is the
    # bottleneck and batching has something to amortize.
    config = ServeConfig(
        n_sessions=args.sessions,
        duration_s=args.seconds,
        n_workers=args.workers,
        reuse_displacement_deg=0.05,
        queue_budget_deadlines=0.8,
        seed=args.seed,
    )
    fleet = build_fleet(config)
    predict_load = sum(
        sum(1 for d in s.decisions if d == "predict") for s in fleet
    ) / config.duration_s
    service = BatchServiceModel()
    print(
        f"{args.sessions} sessions x {config.fps:.0f} fps for "
        f"{args.seconds:g}s -> {predict_load:.0f} predict frames/s offered; "
        f"one worker serves {service.throughput_fps(1):.0f}/s solo, "
        f"{service.throughput_fps(config.max_batch):.0f}/s at batch "
        f"{config.max_batch}\n"
    )

    print("=== cross-session batching ===")
    batched = serve_fleet(config, fleet=fleet)
    print(format_fleet_report(batched, max_session_rows=4))

    print("\n=== sequential baseline (max_batch=1) ===")
    sequential = serve_fleet(config.sequential_baseline(), fleet=fleet)
    print(format_fleet_report(sequential, max_session_rows=4))
    gain = batched.predict_goodput_fps / sequential.predict_goodput_fps
    print(f"\nBatching gain: {gain:.2f}x fresh predictions/s at "
          f"{batched.deadline_miss_rate:.2%} vs "
          f"{sequential.deadline_miss_rate:.2%} deadline misses")

    print("\n=== admission policy sweep ===")
    rows = []
    for policy in AdmissionPolicy:
        report = serve_fleet(
            ServeConfig(
                n_sessions=config.n_sessions,
                duration_s=config.duration_s,
                n_workers=config.n_workers,
                reuse_displacement_deg=config.reuse_displacement_deg,
                queue_budget_deadlines=config.queue_budget_deadlines,
                admission=policy,
                seed=config.seed,
            ),
            fleet=fleet,
        )
        rows.append([
            policy.value,
            f"{report.predict_goodput_fps:.0f}",
            f"{report.latency_percentile_ms(99):.2f}",
            f"{report.deadline_miss_rate:.2%}",
            f"{report.shed_rate:.2%}",
            f"{report.degrade_rate:.2%}",
        ])
    print(table_to_text(
        ["Policy", "Fresh/s", "p99(ms)", "Miss", "Shed", "Degraded"], rows
    ))

    if args.with_model:
        from repro.core import GazeViTConfig, PoloViT

        print("\n=== real batched POLOViT in the loop (tiny fleet) ===")
        vit = PoloViT(GazeViTConfig.compact(), seed=0)

        def frame_image(session_id: int, frame_index: int) -> np.ndarray:
            rng = np.random.default_rng(session_id * 100003 + frame_index)
            return rng.uniform(size=(72, 72))

        def inference(batch):
            images = np.stack(
                [frame_image(r.session_id, r.frame_index) for r in batch]
            )
            return vit.predict(images, prune=False)

        tiny = ServeConfig(n_sessions=4, duration_s=0.25, seed=args.seed)
        report = serve_fleet(tiny, inference=inference)
        assert report.predictions is not None
        print(f"{len(report.predictions)} frames received fresh gaze "
              f"predictions from the model; first three:")
        for key in sorted(report.predictions)[:3]:
            gaze = report.predictions[key]
            print(f"  session {key[0]} frame {key[1]:3d} -> "
                  f"({gaze[0]:+.3f}, {gaze[1]:+.3f})")


if __name__ == "__main__":
    main()
