"""The performance-aware loss in action: tail suppression.

Trains two identical POLOViT models on the same data — one with plain
MSE, one with the Eq. 5 smooth-max objective — and compares their error
distributions on held-out participants, then shows what each error tail
costs in foveated-rendering latency (the reason the paper optimizes the
tail at all).

Run:  python examples/train_polovit.py [--participants 6] [--epochs 10]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import angular_errors
from repro.core import GazeViTConfig, PoloViT, build_crop_dataset, train_polovit
from repro.eye import synthesize_dataset
from repro.render import RES_1080P, RenderPipeline, scene_by_name
from repro.system import table_to_text


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--participants", type=int, default=6)
    parser.add_argument("--frames", type=int, default=150)
    parser.add_argument("--epochs", type=int, default=10)
    args = parser.parse_args()

    print(f"Synthesizing {args.participants} training participants...")
    train = synthesize_dataset(args.participants, args.frames, seed=0)
    val = synthesize_dataset(2, args.frames, seed=5000)
    train_crops, train_gaze = build_crop_dataset(train)
    val_crops, val_gaze = build_crop_dataset(val)
    print(f"  {len(train_crops)} training crops, {len(val_crops)} validation crops")

    results = {}
    for loss in ("mse", "performance"):
        print(f"\nTraining with {loss} loss ({args.epochs} epochs)...")
        vit = PoloViT(GazeViTConfig.compact(), seed=0)
        log = train_polovit(
            vit, train_crops, train_gaze, epochs=args.epochs, loss=loss, seed=0
        )
        errors = angular_errors(vit.predict(val_crops, prune=False), val_gaze)
        results[loss] = errors
        print(f"  final training loss {log.final_loss:.4f}")

    headers = ["Loss", "Mean(deg)", "P90(deg)", "P95(deg)", "Max(deg)"]
    rows = []
    for loss, errors in results.items():
        rows.append(
            [
                loss,
                f"{errors.mean():.2f}",
                f"{np.percentile(errors, 90):.2f}",
                f"{np.percentile(errors, 95):.2f}",
                f"{errors.max():.2f}",
            ]
        )
    print("\n" + table_to_text(headers, rows))

    # What the tail costs: P95 error sets the foveal radius (Eq. 1).
    pipeline = RenderPipeline()
    scene = scene_by_name("E")
    print("\nFoveated-rendering cost of each tail (scene E, 1080P):")
    for loss, errors in results.items():
        p95 = float(np.percentile(errors, 95))
        latency = pipeline.foveated_latency(scene, RES_1080P, p95).total_s
        print(f"  {loss:12s}: P95 {p95:5.2f} deg -> render {latency * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
