"""Shared fixtures.

Heavy artifacts (synthetic datasets, a trained POLONet bundle) are
session-scoped: many tests share one small training run instead of each
paying for their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_polonet
from repro.core.training import PolonetBundle
from repro.eye import EyeDataset, synthesize_dataset


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_train_dataset() -> EyeDataset:
    """Two participants, 160 frames each — enough to exercise every
    pipeline stage including saccades and (usually) a blink."""
    return synthesize_dataset(2, 160, seed=101)


@pytest.fixture(scope="session")
def tiny_val_dataset() -> EyeDataset:
    dataset = synthesize_dataset(1, 140, seed=909)
    dataset.sequences[0].participant = 1000
    return dataset


@pytest.fixture(scope="session")
def tiny_bundle(tiny_train_dataset) -> PolonetBundle:
    """A minimally-trained POLONet (shapes and mechanisms, not accuracy)."""
    return build_polonet(
        tiny_train_dataset, vit_epochs=3, saccade_epochs=5, seed=7
    )


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` w.r.t. ``x``.

    ``f`` must read ``x`` by reference (the array is mutated in place).
    """
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = f()
        flat[i] = original - eps
        minus = f()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad
