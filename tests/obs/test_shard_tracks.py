"""Shard-scoped trace tracks: no pid collisions across shard runtimes."""

from __future__ import annotations

import pytest

from repro.obs import (
    PID_WORKERS,
    SHARD_PID_STRIDE,
    Obs,
    ObsConfig,
    ScopedTracer,
    shard_pid,
)


class TestShardPid:
    def test_blocks_are_disjoint(self):
        pids = {
            shard_pid(shard, pid)
            for shard in range(4)
            for pid in (0, PID_WORKERS, SHARD_PID_STRIDE - 1)
        }
        assert len(pids) == 12

    def test_block_layout(self):
        assert shard_pid(0, 0) == SHARD_PID_STRIDE
        assert shard_pid(2, 7) == 3 * SHARD_PID_STRIDE + 7

    def test_rejects_out_of_block_pid(self):
        with pytest.raises(ValueError, match="outside the per-shard block"):
            shard_pid(0, SHARD_PID_STRIDE)

    def test_rejects_negative_shard(self):
        with pytest.raises(ValueError, match="non-negative"):
            shard_pid(-1, 0)


class TestScopedTracer:
    def test_two_shards_record_on_distinct_tracks(self):
        obs = Obs(ObsConfig())
        for shard in (0, 1):
            scoped = obs.scoped(shard)
            scoped.tracer.declare_track(PID_WORKERS, "workers")
            scoped.tracer.record_span(
                "dispatch", 0.1, 0.01, cat="serve", pid=PID_WORKERS
            )
        pids = sorted({span.pid for span in obs.tracer.spans()})
        assert pids == [
            shard_pid(0, PID_WORKERS), shard_pid(1, PID_WORKERS)
        ]

    def test_process_names_gain_shard_prefix(self):
        obs = Obs(ObsConfig())
        obs.scoped(3).tracer.declare_track(PID_WORKERS, "workers")
        names = {
            track.process_name for track in obs.tracer.tracks.values()
        }
        assert any(name.startswith("shard3.") for name in names)

    def test_metrics_registry_is_shared(self):
        # Instruments dedupe by name, so N shards incrementing the same
        # counter produce the fleet-wide aggregate for free.
        obs = Obs(ObsConfig())
        obs.scoped(0).metrics.counter("serve_frames_total").inc(2)
        obs.scoped(1).metrics.counter("serve_frames_total").inc(3)
        assert obs.metrics.counter("serve_frames_total").value == 5

    def test_disabled_obs_scopes_to_null(self):
        obs = Obs(ObsConfig(enabled=False))
        scoped = obs.scoped(1)
        assert not scoped.enabled
        scoped.tracer.record_span("x", 0.0, 0.1, cat="serve")  # no-op


class TestFleetTraces:
    def test_fleet_run_emits_namespaced_shard_tracks(self):
        from repro.faults.injectors import ShardKill
        from repro.serve import ServeConfig
        from repro.serve.fleet import FleetConfig, run_fleet

        obs = Obs(ObsConfig())
        config = FleetConfig(
            serve=ServeConfig(
                n_sessions=8, duration_s=0.3,
                reuse_displacement_deg=0.05, seed=0,
            ),
            n_shards=2,
            kills=(ShardKill(shard_id=0, at_s=0.15),),
        )
        run_fleet(config, obs=obs)
        pids = {span.pid for span in obs.tracer.spans()}
        blocks = {pid // SHARD_PID_STRIDE for pid in pids if pid >= SHARD_PID_STRIDE}
        assert {1, 2} <= blocks  # both shards recorded in their own block
        names = [span.name for span in obs.tracer.spans()]
        assert "fleet.failover" in names
        assert "shard.kill" in names
