"""``python -m repro trace`` and the observability-is-read-only invariant."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import Obs, ObsConfig
from repro.obs.cli import main as trace_main
from repro.obs.lint import lint_prometheus, main as lint_main, validate_trace
from repro.serve.config import ServeConfig
from repro.serve.runtime import serve_fleet


class TestReadOnlyInvariant:
    def test_traced_run_is_bit_identical_to_untraced(self):
        config = ServeConfig(n_sessions=3, duration_s=1.0, seed=11)
        plain = serve_fleet(config)
        traced = serve_fleet(config, obs=Obs(ObsConfig()))
        assert plain.summary() == traced.summary()
        for a, b in zip(plain.sessions, traced.sessions):
            assert a.latencies_s == b.latencies_s
            assert a.counts == b.counts

    def test_two_traced_runs_produce_identical_artifacts(self, tmp_path):
        def run(out: Path) -> None:
            code = trace_main([
                "--frames", "60", "--sessions", "2", "--workers", "2",
                "--seed", "3", "--out", str(out), "--no-hw",
            ])
            assert code == 0

        run(tmp_path / "a")
        run(tmp_path / "b")
        for artifact in ("trace.json", "trace.jsonl", "metrics.prom"):
            assert (tmp_path / "a" / artifact).read_bytes() == (
                tmp_path / "b" / artifact
            ).read_bytes(), artifact


class TestTraceCli:
    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace-cli")
        code = trace_main([
            "--frames", "60", "--sessions", "2", "--workers", "2",
            "--out", str(out),
        ])
        assert code == 0
        return out

    def test_writes_all_three_artifacts(self, out_dir):
        for artifact in ("trace.json", "trace.jsonl", "metrics.prom"):
            assert (out_dir / artifact).stat().st_size > 0

    def test_artifacts_pass_the_linter(self, out_dir):
        assert validate_trace(out_dir / "trace.json") == []
        assert lint_prometheus(out_dir / "metrics.prom") == []
        assert lint_main([
            str(out_dir / "trace.json"), str(out_dir / "metrics.prom")
        ]) == 0

    def test_trace_covers_serve_accel_and_tfr_tracks(self, out_dir):
        payload = json.loads((out_dir / "trace.json").read_text())
        cats = {
            e["cat"].split(",")[0]
            for e in payload["traceEvents"]
            if e["ph"] == "X"
        }
        assert {"serve", "accel", "tfr"} <= cats

    def test_metrics_cover_frames_and_latency(self, out_dir):
        text = (out_dir / "metrics.prom").read_text()
        assert "serve_frames_total" in text
        assert "serve_frame_latency_seconds_bucket" in text
        assert "serve_predict_goodput_fps" in text

    def test_chaos_flag_traces_fault_scenario(self, tmp_path):
        code = trace_main([
            "--chaos", "--frames", "60", "--sessions", "2", "--workers", "2",
            "--out", str(tmp_path), "--no-hw",
        ])
        assert code == 0
        text = (tmp_path / "metrics.prom").read_text()
        assert "faults_input_dropped_total" in text
        assert validate_trace(tmp_path / "trace.json") == []


class TestLintRejections:
    def test_bad_trace_is_reported(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [
            {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": -1, "dur": 2},
            {"name": "y", "ph": "q", "pid": 0, "tid": 0},
        ]}))
        errors = validate_trace(bad)
        assert any("ts" in e for e in errors)
        assert any("phase" in e for e in errors)
        assert lint_main([str(bad)]) == 1

    def test_bad_prometheus_is_reported(self, tmp_path):
        bad = tmp_path / "bad.prom"
        bad.write_text("this is not a metric line\n")
        assert lint_prometheus(bad) != []
