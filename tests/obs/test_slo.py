"""Online SLO engine: config parsing, burn math, alerting, verdicts."""

from __future__ import annotations

import json

import pytest

from repro.obs import Obs, ObsConfig, PID_SLO
from repro.obs.slo import (
    BURN_CAP,
    MetricRef,
    SloConfig,
    SloConfigError,
    SloEngine,
    SloObjective,
    default_slo_config,
    evaluate_summary,
    format_summary_verdicts,
    load_slo_config,
    parse_slo_config,
    parse_summary_slo,
    resolve_slo_config,
    summary_verdict_metrics,
)

LATENCY = {"metric": "serve_frame_latency_seconds"}


def ratio_objective(**overrides) -> dict:
    base = {
        "name": "frame_deadline",
        "kind": "ratio",
        "total": dict(LATENCY),
        "bad": dict(LATENCY, above_s=0.01),
        "target": 0.95,
        "window_s": 0.4,
        "fast_window_s": 0.1,
    }
    base.update(overrides)
    return base


def make_config(**objective_overrides) -> SloConfig:
    return parse_slo_config({
        "eval_interval_s": 0.05,
        "objectives": [ratio_objective(**objective_overrides)],
    })


def make_engine(config: SloConfig) -> SloEngine:
    return SloEngine(config, Obs(ObsConfig()))


class TestConfigParsing:
    def test_round_trip_of_a_full_config(self):
        config = parse_slo_config({
            "eval_interval_s": 0.02,
            "objectives": [ratio_objective(min_events=5, on_page="widen")],
            "summary_objectives": [
                {"name": "miss", "metric": "miss_rate", "op": "<=",
                 "target": 0.05},
            ],
        })
        (objective,) = config.objectives
        assert objective.error_budget == pytest.approx(0.05)
        assert objective.bad.above_s == pytest.approx(0.01)
        assert objective.on_page == "widen"
        assert config.summary_objectives[0].op == "<="
        assert config.eval_interval_s == pytest.approx(0.02)

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(SloConfigError, match="unknown config keys"):
            parse_slo_config({"objectives": [], "alerting": {}})

    def test_empty_config_rejected(self):
        with pytest.raises(SloConfigError, match="no objectives"):
            parse_slo_config({"objectives": []})

    def test_unknown_metric_rejected(self):
        with pytest.raises(SloConfigError, match="unknown metric"):
            make_config(total={"metric": "typo_latency_seconds"})

    def test_fast_window_must_be_shorter(self):
        with pytest.raises(SloConfigError, match="fast_window_s"):
            make_config(fast_window_s=0.4)

    def test_ratio_target_must_be_a_fraction(self):
        with pytest.raises(SloConfigError, match="ratio target"):
            make_config(target=1.0)

    def test_ratio_needs_a_bad_ref(self):
        objective = ratio_objective()
        del objective["bad"]
        with pytest.raises(SloConfigError, match="'bad' ref"):
            parse_slo_config({"objectives": [objective]})

    def test_rate_min_takes_no_bad_ref(self):
        with pytest.raises(SloConfigError, match="no 'bad' ref"):
            make_config(kind="rate_min", target=100.0)

    def test_warn_burn_must_not_exceed_page_burn(self):
        with pytest.raises(SloConfigError, match="warn_burn"):
            make_config(warn_burn=5.0, page_burn=4.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SloConfigError, match="duplicate"):
            parse_slo_config({
                "objectives": [ratio_objective(), ratio_objective()],
            })

    def test_uppercase_name_rejected(self):
        with pytest.raises(SloConfigError, match="lowercase"):
            make_config(name="FrameDeadline")

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(SloConfigError, match="unreadable"):
            load_slo_config(tmp_path / "nope.slo.json")

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.slo.json"
        path.write_text("{not json")
        with pytest.raises(SloConfigError, match="invalid JSON"):
            load_slo_config(path)

    def test_resolve_default_uses_the_run_deadline(self):
        config = resolve_slo_config("default", deadline_s=0.007)
        (objective,) = config.objectives
        assert objective.bad.above_s == pytest.approx(0.007)
        assert objective.on_page == "widen"


class TestBurnRates:
    def feed(self, engine, t, latencies):
        hist = engine.obs.metrics.histogram(
            "serve_frame_latency_seconds", "Frame latency"
        )
        for value in latencies:
            hist.observe(value)
        engine.maybe_evaluate(t)

    def test_clean_stream_burns_zero(self):
        engine = make_engine(make_config())
        self.feed(engine, 0.05, [0.002] * 50)
        row = engine.history[-1]
        assert row["burn_fast"] == 0.0
        assert row["burn_slow"] == 0.0
        assert row["state"] == "OK"

    def test_ratio_burn_is_bad_fraction_over_budget(self):
        engine = make_engine(make_config())
        # 10% bad against a 5% budget: burn 2.0 on both windows.
        self.feed(engine, 0.05, [0.002] * 90 + [0.02] * 10)
        row = engine.history[-1]
        assert row["burn_fast"] == pytest.approx(2.0)
        assert row["burn_slow"] == pytest.approx(2.0)

    def test_min_events_holds_state_and_history(self):
        engine = make_engine(make_config(min_events=100))
        self.feed(engine, 0.05, [0.02] * 99)  # 100% bad, but too few
        assert engine.history == []
        assert engine._states[0].state == "OK"

    def test_rate_min_burn_is_target_over_observed(self):
        config = parse_slo_config({"objectives": [{
            "name": "rate_floor", "kind": "rate_min",
            "total": dict(LATENCY), "target": 1000.0,
            "window_s": 0.4, "fast_window_s": 0.1,
        }]})
        engine = make_engine(config)
        # 100 events in 0.2 s = 500/s against a 1000/s floor: burn 2.
        self.feed(engine, 0.1, [0.001] * 50)
        self.feed(engine, 0.2, [0.001] * 50)
        assert engine.history[-1]["burn_slow"] == pytest.approx(2.0)

    def test_rate_min_outage_burn_is_capped(self):
        config = parse_slo_config({"objectives": [{
            "name": "rate_floor", "kind": "rate_min",
            "total": dict(LATENCY), "target": 1000.0,
            "window_s": 0.4, "fast_window_s": 0.1,
        }]})
        engine = make_engine(config)
        self.feed(engine, 0.2, [])  # no events at all
        assert engine.history[-1]["burn_fast"] == BURN_CAP


class TestStateMachine:
    @pytest.mark.parametrize(
        "state,page,warn,expected",
        [
            ("OK", False, False, "OK"),
            ("OK", False, True, "WARN"),
            ("OK", True, True, "PAGE"),
            ("WARN", True, True, "PAGE"),
            ("WARN", False, False, "OK"),
            ("PAGE", True, True, "PAGE"),
            ("PAGE", False, True, "PAGE"),
            ("PAGE", False, False, "RESOLVED"),
            ("RESOLVED", False, False, "OK"),
            ("RESOLVED", False, True, "WARN"),
            ("RESOLVED", True, True, "PAGE"),
        ],
    )
    def test_transitions(self, state, page, warn, expected):
        assert SloEngine._next_state(state, page, warn) == expected

    def run_burst_scenario(self):
        """A bad burst that pages, then a long clean recovery."""
        engine = make_engine(make_config(min_events=10))
        hist = engine.obs.metrics.histogram(
            "serve_frame_latency_seconds", "Frame latency"
        )
        for step in range(1, 21):  # 1.0 s in 0.05 s steps
            bad = 5 if step <= 4 else 0  # 25% bad during the burst
            for _ in range(bad):
                hist.observe(0.02)
            for _ in range(20 - bad):
                hist.observe(0.002)
            engine.maybe_evaluate(step * 0.05)
        return engine

    def test_page_fires_and_resolves_to_ok(self):
        engine = self.run_burst_scenario()
        states = [row["state"] for row in engine.history]
        assert "PAGE" in states
        assert "RESOLVED" in states
        assert states[-1] == "OK"
        # Once resolved the machine never re-pages on this trace.
        assert states.index("RESOLVED") > states.index("PAGE")

    def test_page_emits_instant_on_slo_track_and_counts(self):
        engine = self.run_burst_scenario()
        spans = [
            s for s in engine.obs.tracer.spans()
            if s.pid == PID_SLO and "PAGE" in s.name
        ]
        assert any("->PAGE" in s.name for s in spans)
        pages = engine.obs.metrics.get("slo_pages_total", slo="frame_deadline")
        assert pages is not None and pages.value == 1

    def test_on_page_hook_fires_with_objective_and_time(self):
        engine = make_engine(make_config(min_events=10, on_page="widen"))
        fired = []
        engine.on_page = lambda objective, now_s: fired.append(
            (objective.name, now_s)
        )
        hist = engine.obs.metrics.histogram(
            "serve_frame_latency_seconds", "Frame latency"
        )
        for _ in range(50):
            hist.observe(0.02)  # 100% bad
        engine.maybe_evaluate(0.05)
        assert fired == [("frame_deadline", 0.05)]

    def test_engine_requires_enabled_obs(self):
        from repro.obs.config import NULL_OBS

        with pytest.raises(ValueError, match="enabled Obs"):
            SloEngine(make_config(), NULL_OBS)


class TestVerdicts:
    def test_finalize_is_idempotent_and_verdicts_flat_metrics(self):
        engine = make_engine(make_config())
        hist = engine.obs.metrics.histogram(
            "serve_frame_latency_seconds", "Frame latency"
        )
        for _ in range(90):
            hist.observe(0.002)
        for _ in range(10):
            hist.observe(0.02)
        first = engine.finalize(1.0)
        assert engine.finalize(5.0) is first
        (verdict,) = first
        assert verdict.attained == pytest.approx(0.9)
        assert not verdict.ok
        flat = engine.verdict_metrics()
        assert flat["slo_pass_frame_deadline"] == 0.0
        assert flat["slo_failed_total"] == 1.0

    def test_verdict_gauges_exported_to_prometheus(self):
        engine = make_engine(make_config())
        hist = engine.obs.metrics.histogram(
            "serve_frame_latency_seconds", "Frame latency"
        )
        for _ in range(40):
            hist.observe(0.002)
        engine.finalize(1.0)
        text = engine.obs.metrics.to_prometheus()
        assert 'slo_attainment{slo="frame_deadline"} 1' in text
        assert 'slo_ok{slo="frame_deadline"} 1' in text

    def test_verdicts_raise_before_finalize(self):
        engine = make_engine(make_config())
        with pytest.raises(RuntimeError, match="finalize"):
            engine.verdicts

    def test_history_and_verdict_artifacts_are_canonical_json(self):
        engine = make_engine(make_config())
        hist = engine.obs.metrics.histogram(
            "serve_frame_latency_seconds", "Frame latency"
        )
        for _ in range(40):
            hist.observe(0.002)
        engine.maybe_evaluate(0.3)
        engine.finalize(0.3)
        for line in engine.history_jsonl().splitlines():
            row = json.loads(line)
            assert set(row) == {
                "t", "slo", "burn_fast", "burn_slow", "state", "total", "bad"
            }
        (verdict,) = json.loads(engine.verdicts_json())
        assert verdict["name"] == "frame_deadline"

    def test_identical_runs_produce_identical_artifacts(self):
        def run():
            engine = make_engine(make_config(min_events=10))
            hist = engine.obs.metrics.histogram(
                "serve_frame_latency_seconds", "Frame latency"
            )
            for step in range(1, 11):
                bad = 3 if step in (4, 5) else 0
                for _ in range(bad):
                    hist.observe(0.02)
                for _ in range(15 - bad):
                    hist.observe(0.002)
                engine.maybe_evaluate(step * 0.05)
            engine.finalize(0.5)
            return engine.history_jsonl() + engine.verdicts_json()

        assert run() == run()

    def test_default_config_passes_a_clean_run(self):
        engine = make_engine(default_slo_config(deadline_s=0.01))
        hist = engine.obs.metrics.histogram(
            "serve_frame_latency_seconds", "Frame latency"
        )
        for _ in range(200):
            hist.observe(0.003)
        (verdict,) = engine.finalize(1.0)
        assert verdict.ok and verdict.pages == 0


class TestSummaryObjectives:
    OBJECTIVES = parse_summary_slo({"objectives": [
        {"name": "miss", "metric": "miss_rate", "op": "<=", "target": 0.05},
        {"name": "fps", "metric": "throughput_fps", "op": ">=",
         "target": 500.0},
    ]})

    def test_pass_and_fail_against_flat_metrics(self):
        rows = evaluate_summary(
            self.OBJECTIVES, {"miss_rate": 0.01, "throughput_fps": 300.0}
        )
        assert [row["ok"] for row in rows] == [True, False]
        flat = summary_verdict_metrics(rows)
        assert flat["slo_pass_miss"] == 1.0
        assert flat["slo_pass_fps"] == 0.0
        assert flat["slo_failed_total"] == 1.0

    def test_missing_metric_fails_never_passes(self):
        rows = evaluate_summary(self.OBJECTIVES, {"miss_rate": 0.01})
        fps = next(row for row in rows if row["name"] == "fps")
        assert fps["value"] is None and not fps["ok"]
        table = format_summary_verdicts(rows)
        assert "FAIL" in table and "-" in table

    def test_campaign_block_validation(self):
        with pytest.raises(SloConfigError, match="unknown keys"):
            parse_summary_slo({"objectives": [], "window_s": 1})
        with pytest.raises(SloConfigError, match="non-empty list"):
            parse_summary_slo({"objectives": []})
        with pytest.raises(SloConfigError, match="must be a dict"):
            parse_summary_slo([])


class TestExampleConfig:
    def test_shipped_example_parses_and_lints(self):
        from pathlib import Path

        from repro.obs.lint import lint_slo

        example = (
            Path(__file__).resolve().parents[2]
            / "examples" / "slo" / "serve.slo.json"
        )
        config = load_slo_config(example)
        assert any(o.on_page == "widen" for o in config.objectives)
        assert config.summary_objectives
        assert lint_slo(example) == []
