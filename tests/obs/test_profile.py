"""@profiled decorator and the global-tracer install point."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_TRACER,
    Tracer,
    get_global_tracer,
    profiled,
    set_global_tracer,
)


@pytest.fixture(autouse=True)
def _restore_global_tracer():
    yield
    set_global_tracer(None)


class TestGlobalTracer:
    def test_default_is_null(self):
        assert get_global_tracer() is NULL_TRACER

    def test_install_and_restore(self):
        tracer = Tracer()
        set_global_tracer(tracer)
        assert get_global_tracer() is tracer
        set_global_tracer(None)
        assert get_global_tracer() is NULL_TRACER


class TestProfiled:
    def test_bare_decorator_preserves_function(self):
        @profiled
        def add(a, b):
            """Adds."""
            return a + b

        assert add(2, 3) == 5
        assert add.__doc__ == "Adds."
        assert add.__profiled_name__.endswith("add")

    def test_parameterized_name_and_category(self):
        @profiled(name="vit.predict", cat="nn")
        def forward():
            return 42

        set_global_tracer(Tracer())
        assert forward() == 42
        (span,) = get_global_tracer().spans()
        assert span.name == "vit.predict"
        assert span.cat == "nn"
        assert span.clock == "wall"

    def test_no_spans_recorded_without_tracer(self):
        calls = []

        @profiled
        def work():
            calls.append(1)

        work()
        assert calls == [1]
        assert get_global_tracer().spans() == []

    def test_exceptions_propagate_and_span_still_recorded(self):
        @profiled(name="boom")
        def explode():
            raise RuntimeError("boom")

        tracer = Tracer()
        set_global_tracer(tracer)
        with pytest.raises(RuntimeError, match="boom"):
            explode()
        assert [s.name for s in tracer.spans()] == ["boom"]


class TestLibraryHotPaths:
    def test_vit_predict_and_mapper_are_profiled(self):
        from repro.core.gaze_vit import PoloViT
        from repro.hw.mapper import WorkloadMapper

        assert PoloViT.predict.__profiled_name__ == "vit.predict"
        assert WorkloadMapper.map.__profiled_name__ == "mapper.map"

    def test_polonet_emits_stage_spans(self, tiny_bundle, tiny_val_dataset):
        import numpy as np

        tracer = Tracer()
        set_global_tracer(tracer)
        net = tiny_bundle.polonet
        net.reset()
        frame = tiny_val_dataset.sequences[0].images[0].astype(np.float64)
        net.process_frame(frame)
        names = {s.name for s in tracer.spans()}
        assert {"polonet.binarize", "polonet.saccade", "polonet.reuse_check"} <= names
