"""Chrome trace_event export — the satellite round-trip test.

Runs a traced chaos scenario, serializes the Chrome trace, loads it back
with ``json.loads``, and checks the structural contract trace viewers
rely on: child stage spans nest inside their frame span (ts/dur
containment on the same track), pid/tid map back to worker and session
ids, and watchdog ladder transitions appear as instant events.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.faults.config import default_chaos_scenario
from repro.faults.runtime import run_chaos
from repro.obs import (
    Obs,
    ObsConfig,
    PID_BATCHER,
    PID_SESSION_BASE,
    PID_WORKERS,
    Tracer,
    chrome_trace,
    session_pid,
    slowest_spans_table,
    spans_jsonl,
    write_chrome_trace,
)

N_SESSIONS = 3
N_WORKERS = 2


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    base = default_chaos_scenario(seed=0)
    chaos = replace(
        base,
        serve=replace(
            base.serve,
            n_sessions=N_SESSIONS,
            n_workers=N_WORKERS,
            duration_s=120 / base.serve.fps,
        ),
    )
    obs = Obs(ObsConfig())
    report = run_chaos(chaos, obs=obs)
    path = tmp_path_factory.mktemp("trace") / "trace.json"
    write_chrome_trace(obs.tracer, path)
    payload = json.loads(path.read_text())
    return obs, report, payload


def spans_of(payload, name=None, ph="X"):
    return [
        e
        for e in payload["traceEvents"]
        if e["ph"] == ph and (name is None or e["name"] == name)
    ]


class TestRoundTrip:
    def test_loads_back_and_has_wrapper_fields(self, traced_run):
        _, _, payload = traced_run
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["dropped_spans"] == 0
        assert len(payload["traceEvents"]) > 100

    def test_serialization_is_deterministic(self, traced_run, tmp_path):
        obs, _, payload = traced_run
        again = write_chrome_trace(obs.tracer, tmp_path / "again.json")
        assert json.loads(again.read_text()) == payload


class TestNesting:
    def test_stage_spans_nest_inside_their_frame_span(self, traced_run):
        _, _, payload = traced_run
        frames = {}
        for e in spans_of(payload, "frame"):
            frames.setdefault(e["pid"], []).append(e)
        checked = 0
        for child_name in ("queue.wait", "service"):
            for child in spans_of(payload, child_name):
                parents = [
                    f
                    for f in frames.get(child["pid"], [])
                    if f["ts"] - 1e-3 <= child["ts"]
                    and child["ts"] + child["dur"] <= f["ts"] + f["dur"] + 1e-3
                ]
                assert parents, (
                    f"{child_name} span at ts={child['ts']} on pid "
                    f"{child['pid']} has no enclosing frame span"
                )
                checked += 1
        assert checked > 0  # the scenario must actually exercise dispatch

    def test_batch_assemble_precedes_batch_service(self, traced_run):
        _, _, payload = traced_run
        assembles = spans_of(payload, "batch.assemble")
        services = spans_of(payload, "batch.service")
        assert len(assembles) == len(services) > 0
        for a, s in zip(
            sorted(assembles, key=lambda e: e["ts"] + e["dur"]),
            sorted(services, key=lambda e: e["ts"]),
        ):
            assert a["ts"] + a["dur"] <= s["ts"] + 1e-3


class TestTrackMapping:
    def test_batch_service_tids_are_worker_ids(self, traced_run):
        _, _, payload = traced_run
        for e in spans_of(payload, "batch.service"):
            assert e["pid"] == PID_WORKERS
            assert 0 <= e["tid"] < N_WORKERS

    def test_frame_pids_are_session_pids(self, traced_run):
        _, _, payload = traced_run
        for e in spans_of(payload, "frame"):
            sid = e["pid"] - PID_SESSION_BASE
            assert 0 <= sid < N_SESSIONS
            assert e["args"]["path"] in (
                "saccade", "reuse", "predict", "degraded", "full_res",
            )

    def test_metadata_names_every_runtime_track(self, traced_run):
        _, _, payload = traced_run
        meta = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        process = {
            e["pid"]: e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert process[PID_WORKERS] == "serve.workers"
        assert process[PID_BATCHER] == "serve.batcher"
        for wid in range(N_WORKERS):
            assert meta[(PID_WORKERS, wid)] == f"worker-{wid}"
        for sid in range(N_SESSIONS):
            assert process[session_pid(sid)] == f"session-{sid}"


class TestInstants:
    def test_watchdog_transitions_are_instant_events(self, traced_run):
        obs, report, payload = traced_run
        instants = spans_of(payload, ph="i")
        watchdog = [e for e in instants if e["name"].startswith("watchdog.")]
        expected = len(report.faults.degradation_transitions)
        assert expected > 0  # scenario must exercise the ladder
        assert len(watchdog) == expected
        for e in watchdog:
            assert e["s"] == "t"
            assert "dur" not in e
            assert e["args"]["from"] != e["args"]["to"]

    def test_transition_counter_matches_trace(self, traced_run):
        obs, report, payload = traced_run
        total = sum(
            c.value
            for c in obs.metrics.instruments()
            if c.name == "watchdog_transitions_total"
        )
        assert total == len(report.faults.degradation_transitions)


class TestOtherExports:
    def test_jsonl_round_trips_every_span(self, traced_run):
        obs, _, _ = traced_run
        lines = spans_jsonl(obs.tracer).splitlines()
        assert len(lines) == len(obs.tracer.spans())
        record = json.loads(lines[0])
        assert {"name", "cat", "clock", "ph", "ts_s", "dur_s", "pid", "tid"} <= set(
            record
        )

    def test_slowest_table_lists_k_rows(self):
        tracer = Tracer()
        for i in range(5):
            tracer.record_span(f"s{i}", 0.0, float(i + 1))
        table = slowest_spans_table(tracer, k=3)
        assert "s4" in table and "s2" in table and "s1" not in table
