"""Metrics registry: instruments, exact percentiles, Prometheus export."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.obs.lint import PROM_HELP_RE, PROM_SAMPLE_RE, PROM_TYPE_RE


class TestInstruments:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("frames_total", path="predict")
        c.inc()
        c.inc(3)
        assert c.value == 4
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge_sets(self):
        reg = MetricsRegistry()
        g = reg.gauge("utilization")
        g.set(0.75)
        g.set(0.5)
        assert g.value == 0.5

    def test_histogram_buckets_are_cumulative_in_export(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds", buckets=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.005, 0.005, 0.05, 1.0):
            h.observe(v)
        text = reg.to_prometheus()
        assert 'latency_seconds_bucket{le="0.001"} 1' in text
        assert 'latency_seconds_bucket{le="0.01"} 3' in text
        assert 'latency_seconds_bucket{le="0.1"} 4' in text
        assert 'latency_seconds_bucket{le="+Inf"} 5' in text
        assert "latency_seconds_count 5" in text

    def test_histogram_exact_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds", buckets=(1.0,))
        for v in range(101):
            h.observe(float(v))
        # Exact (sample-based), not bucket-estimated: with one bucket a
        # bucket-quantile estimate would be wildly off.
        assert h.percentile(50) == pytest.approx(50.0)
        assert h.percentile(95) == pytest.approx(95.0)
        s = h.summary((50, 95, 99))
        assert s["p99"] == pytest.approx(99.0)

    def test_empty_histogram_summary_is_zeros(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds")
        assert h.summary() == {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_empty_histogram_percentile_is_zero(self):
        # The SLO engine reads percentiles before the first frame lands;
        # an empty histogram must read as 0.0, never raise.
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds")
        assert h.count == 0
        assert h.percentile(50) == 0.0
        assert h.percentile(99) == 0.0

    def test_single_sample_is_every_percentile(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds")
        h.observe(0.007)
        for p in (1, 50, 95, 99.9):
            assert h.percentile(p) == pytest.approx(0.007)
        assert h.summary()["mean"] == pytest.approx(0.007)

    def test_unsorted_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="sorted"):
            reg.histogram("h", buckets=(0.1, 0.01))


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("frames_total", path="reuse")
        b = reg.counter("frames_total", path="reuse")
        assert a is b
        assert reg.counter("frames_total", path="predict") is not a
        assert len(reg) == 2

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("bad-name")
        with pytest.raises(ValueError, match="invalid label name"):
            reg.counter("ok_name", **{"bad-label": "v"})

    def test_get_finds_registered_instrument(self):
        reg = MetricsRegistry()
        c = reg.counter("frames_total", path="saccade")
        assert reg.get("frames_total", path="saccade") is c
        assert reg.get("frames_total", path="other") is None

    def test_get_requires_the_exact_label_set(self):
        # An SLO metric ref with a label subset/superset must read as
        # missing (0 events), not silently match a different series.
        reg = MetricsRegistry()
        reg.counter("frames_total", path="predict", worker="0")
        assert reg.get("frames_total", path="predict") is None
        assert reg.get("frames_total") is None
        assert reg.get(
            "frames_total", path="predict", worker="0", extra="x"
        ) is None
        assert reg.get("never_registered_total") is None


class TestPrometheusExport:
    def test_every_line_matches_the_grammar(self):
        reg = MetricsRegistry()
        reg.counter("frames_total", help="Frames by path.", path="predict").inc(7)
        reg.gauge("utilization", help="Pool busy fraction.").set(0.625)
        h = reg.histogram("latency_seconds", help="Frame latency.")
        h.observe(0.004)
        for line in reg.to_prometheus().splitlines():
            assert (
                PROM_SAMPLE_RE.match(line)
                or PROM_HELP_RE.match(line)
                or PROM_TYPE_RE.match(line)
            ), line

    def test_headers_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("frames_total", help="Frames.", path="a").inc()
        reg.counter("frames_total", help="Frames.", path="b").inc()
        text = reg.to_prometheus()
        assert text.count("# TYPE frames_total counter") == 1
        assert 'frames_total{path="a"} 1' in text
        assert 'frames_total{path="b"} 1' in text

    def test_deterministic_ordering(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b_total").inc()
            reg.counter("a_total").inc(2)
            reg.gauge("m", k="2").set(1)
            reg.gauge("m", k="1").set(2)
            return reg.to_prometheus()

        assert build() == build()
        lines = build().splitlines()
        assert lines.index("a_total 2") < lines.index("b_total 1")

    def test_slo_gauges_round_trip_the_exposition_grammar(self):
        # The gauge families the SLO engine publishes, exactly as it
        # labels them — every exported line must re-parse.
        reg = MetricsRegistry()
        for window, value in (("fast", 19.7368), ("slow", 5.6497)):
            reg.gauge(
                "slo_burn_rate", help="Error-budget burn rate per window.",
                slo="frame_deadline", window=window,
            ).set(value)
        reg.gauge("slo_state", help="Alert state.", slo="frame_deadline").set(2)
        reg.gauge(
            "slo_attainment", help="Achieved SLI.", slo="frame_deadline"
        ).set(0.996234)
        reg.counter(
            "slo_pages_total", help="PAGE alerts.", slo="frame_deadline"
        ).inc()
        text = reg.to_prometheus()
        for line in text.splitlines():
            assert (
                PROM_SAMPLE_RE.match(line)
                or PROM_HELP_RE.match(line)
                or PROM_TYPE_RE.match(line)
            ), line
        assert (
            'slo_burn_rate{slo="frame_deadline",window="fast"} 19.7368' in text
        )
        assert 'slo_pages_total{slo="frame_deadline"} 1' in text

    def test_snapshot_table_lists_all_instruments(self):
        reg = MetricsRegistry()
        reg.counter("frames_total", path="predict").inc(3)
        h = reg.histogram("latency_seconds")
        h.observe(0.002)
        table = reg.snapshot_table()
        assert "Metric" in table and "p95" in table
        assert 'frames_total{path="predict"}' in table
        assert "latency_seconds" in table
