"""Tracer core: span recording, ring buffer, null tracer, clocks."""

from __future__ import annotations

import pytest

from repro.obs import (
    NULL_TRACER,
    PID_SESSION_BASE,
    SIM_CLOCK,
    WALL_CLOCK,
    NullTracer,
    Tracer,
    session_pid,
)


class TestSpanRecording:
    def test_record_span_stores_sim_record(self):
        tracer = Tracer()
        tracer.record_span("frame", 1.0, 0.5, cat="serve", pid=7, args={"k": 1})
        (span,) = tracer.spans()
        assert span.name == "frame"
        assert span.ts_s == 1.0
        assert span.dur_s == 0.5
        assert span.end_s == pytest.approx(1.5)
        assert span.pid == 7
        assert span.clock == SIM_CLOCK
        assert span.ph == "X"
        assert span.args == {"k": 1}

    def test_negative_duration_rejected(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="negative duration"):
            tracer.record_span("bad", 0.0, -1e-6)

    def test_instant_has_zero_duration_and_i_phase(self):
        tracer = Tracer()
        tracer.instant("watchdog.NOMINAL->WIDENED", 2.0, pid=3)
        (span,) = tracer.spans()
        assert span.ph == "i"
        assert span.dur_s == 0.0

    def test_wall_span_context_manager(self):
        tracer = Tracer()
        with tracer.span("compute"):
            sum(range(1000))
        (span,) = tracer.spans()
        assert span.clock == WALL_CLOCK
        assert span.dur_s >= 0.0

    def test_contains_is_same_track_temporal_nesting(self):
        tracer = Tracer()
        tracer.record_span("parent", 0.0, 1.0, pid=1)
        tracer.record_span("child", 0.25, 0.5, pid=1)
        tracer.record_span("other_track", 0.25, 0.5, pid=2)
        parent, child, other = tracer.spans()
        assert parent.contains(child)
        assert not child.contains(parent)
        assert not parent.contains(other)


class TestRingBuffer:
    def test_capacity_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record_span(f"s{i}", float(i), 0.1)
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)


class TestSlowest:
    def test_ranking_is_deterministic(self):
        tracer = Tracer()
        tracer.record_span("a", 0.0, 0.3)
        tracer.record_span("b", 1.0, 0.5)
        tracer.record_span("c", 2.0, 0.3)
        tracer.instant("i", 3.0)  # instants never rank
        names = [s.name for s in tracer.slowest(3)]
        assert names == ["b", "a", "c"]  # ties broken by start time

    def test_clock_filter(self):
        tracer = Tracer()
        tracer.record_span("sim_span", 0.0, 1.0)
        with tracer.span("wall_span"):
            pass
        assert [s.name for s in tracer.slowest(5, clock="sim")] == ["sim_span"]
        assert [s.name for s in tracer.slowest(5, clock="wall")] == ["wall_span"]


class TestTracks:
    def test_declare_track_names_process_and_threads(self):
        tracer = Tracer()
        tracer.declare_track(1, "workers", tid=0, thread_name="worker-0")
        tracer.declare_track(1, "workers", tid=1, thread_name="worker-1")
        info = tracer.tracks[1]
        assert info.process_name == "workers"
        assert info.thread_names == {0: "worker-0", 1: "worker-1"}

    def test_session_pid_offsets(self):
        assert session_pid(0) == PID_SESSION_BASE
        assert session_pid(3) == PID_SESSION_BASE + 3


class TestNullTracer:
    def test_everything_is_a_noop(self):
        tracer = NullTracer()
        assert not tracer.enabled
        tracer.record_span("x", 0.0, 1.0)
        tracer.instant("y", 0.0)
        tracer.declare_track(1, "p")
        with tracer.span("z"):
            pass
        assert tracer.spans() == []
        assert tracer.slowest() == []
        assert tracer.tracks == {}
        assert len(tracer) == 0

    def test_shared_singleton(self):
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled
