"""Learned baselines: training, inference, and workload structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ErrorSummary,
    IncResNetGazeTracker,
    NVGazeTracker,
    ResNetGazeTracker,
    angular_errors,
)
from repro.hw.ops import MatMulOp, total_macs


@pytest.fixture(scope="module")
def train_frames(tiny_train_dataset):
    images = tiny_train_dataset.images().astype(np.float64)
    gaze = tiny_train_dataset.gaze()
    keep = tiny_train_dataset.sequences[0].openness  # not aligned; use all
    return images, gaze


class TestAngularErrors:
    def test_l2_norm_of_difference(self):
        pred = np.array([[3.0, 4.0]])
        target = np.array([[0.0, 0.0]])
        np.testing.assert_allclose(angular_errors(pred, target), [5.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            angular_errors(np.zeros((2, 2)), np.zeros((3, 2)))


class TestErrorSummary:
    def test_statistics(self):
        errors = np.arange(101.0)
        s = ErrorSummary.from_errors(errors)
        assert s.mean == pytest.approx(50.0)
        assert s.p95 == pytest.approx(95.0)
        assert s.minimum == 0.0 and s.maximum == 100.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ErrorSummary.from_errors(np.array([]))


@pytest.mark.parametrize(
    "tracker_cls", [NVGazeTracker, ResNetGazeTracker, IncResNetGazeTracker]
)
class TestLearnedTrackers:
    def test_training_reduces_loss(self, tracker_cls, train_frames):
        images, gaze = train_frames
        tracker = tracker_cls(input_size=16, seed=0)
        log = tracker.fit(images[:80], gaze[:80], epochs=4)
        assert log.losses[-1] < log.losses[0]

    def test_predict_shape(self, tracker_cls, train_frames):
        images, gaze = train_frames
        tracker = tracker_cls(input_size=16, seed=0)
        tracker.fit(images[:40], gaze[:40], epochs=1)
        pred = tracker.predict(images[:7])
        assert pred.shape == (7, 2)
        assert np.isfinite(pred).all()

    def test_learns_better_than_constant_predictor(self, tracker_cls, train_frames):
        images, gaze = train_frames
        tracker = tracker_cls(input_size=24, seed=0)
        tracker.fit(images, gaze, epochs=8)
        pred = tracker.predict(images)
        model_err = angular_errors(pred, gaze).mean()
        constant_err = angular_errors(
            np.tile(gaze.mean(axis=0), (len(gaze), 1)), gaze
        ).mean()
        assert model_err < constant_err


class TestWorkloadScales:
    def test_resnet34_scale(self):
        macs = total_macs(ResNetGazeTracker().workload())
        assert 2e9 < macs < 5e9  # published ResNet-34 magnitude

    def test_nvgaze_is_tiny(self):
        assert total_macs(NVGazeTracker().workload()) < 5e7

    def test_incresnet_comparable_to_resnet(self):
        inc = total_macs(IncResNetGazeTracker().workload())
        res = total_macs(ResNetGazeTracker().workload())
        assert 0.5 < inc / res < 2.0

    def test_workloads_contain_only_known_ops(self):
        for tracker in (NVGazeTracker(), ResNetGazeTracker(), IncResNetGazeTracker()):
            ops = tracker.workload()
            assert any(isinstance(op, MatMulOp) for op in ops)
            for op in ops:
                if isinstance(op, MatMulOp):
                    assert op.macs > 0
