"""EdGaze and DeepVOG: per-user calibration, reuse gating, failure modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DeepVOGTracker, EdGazeTracker
from repro.hw.ops import total_macs


@pytest.fixture(scope="module")
def calibration_data(tiny_val_dataset):
    seq = tiny_val_dataset.sequences[0]
    keep = seq.openness >= 0.5
    return seq.images[keep].astype(np.float64), seq.gaze_deg[keep]


class TestEdGaze:
    def test_within_user_accuracy(self, calibration_data):
        """Unsupervised eye-model init on a short window carries the
        window's mean-gaze bias plus the prior-gain mismatch; errors are
        degree-level but bounded, and shrink once the bias is removed."""
        images, gaze = calibration_data
        n = len(images) // 2
        tracker = EdGazeTracker()
        tracker.fit(images[:n], gaze[:n])
        pred = tracker.predict(images[n:])
        errors = np.linalg.norm(pred - gaze[n:], axis=1)
        assert np.median(errors) < 15.0
        debiased = pred - (pred - gaze[n:]).mean(axis=0)
        debiased_errors = np.linalg.norm(debiased - gaze[n:], axis=1)
        assert np.median(debiased_errors) < 0.7 * np.median(errors)

    def test_predict_before_fit_raises(self, calibration_data):
        with pytest.raises(RuntimeError):
            EdGazeTracker().predict(calibration_data[0][:2])

    def test_sequence_reuse_gating(self, calibration_data):
        images, gaze = calibration_data
        tracker = EdGazeTracker(event_threshold=0.5)  # absurdly permissive
        tracker.fit(images, gaze)
        # Repeat one frame: everything after the first must be reused.
        repeated = np.repeat(images[:1], 5, axis=0)
        pred, reused = tracker.predict_sequence(repeated)
        assert not reused[0] and reused[1:].all()
        np.testing.assert_allclose(pred[0], pred[-1])

    def test_sequence_no_reuse_with_strict_threshold(self, calibration_data):
        images, gaze = calibration_data
        tracker = EdGazeTracker(event_threshold=0.0)
        tracker.fit(images, gaze)
        _, reused = tracker.predict_sequence(images[:6])
        assert not reused.any()

    def test_fit_requires_valid_segmentations(self):
        blank = np.full((5, 60, 80), 0.9)
        with pytest.raises(ValueError):
            EdGazeTracker().fit(blank, np.zeros((5, 2)))


class TestDeepVOG:
    def test_within_user_accuracy_moderate(self, calibration_data):
        """Unsupervised prior-based fitting stays degree-level (the §3.1
        'systematic errors exceeding 2 degrees' claim), not random."""
        images, gaze = calibration_data
        n = len(images) // 2
        tracker = DeepVOGTracker()
        tracker.fit(images[:n], gaze[:n])
        errors = np.linalg.norm(tracker.predict(images[n:]) - gaze[n:], axis=1)
        assert 0.5 < np.median(errors) < 15.0

    def test_deepvog_worse_than_edgaze_on_same_user(self, calibration_data):
        images, gaze = calibration_data
        n = len(images) // 2
        ed, dv = EdGazeTracker(), DeepVOGTracker()
        ed.fit(images[:n], gaze[:n])
        dv.fit(images[:n], gaze[:n])
        ed_err = np.linalg.norm(ed.predict(images[n:]) - gaze[n:], axis=1).mean()
        dv_err = np.linalg.norm(dv.predict(images[n:]) - gaze[n:], axis=1).mean()
        # A single user/draw is noisy; the prior-constrained model should
        # not be dramatically better than the supervised affine fit.
        assert dv_err >= ed_err - 2.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DeepVOGTracker().predict(np.zeros((1, 10, 10)))


class TestWorkloads:
    def test_deepvog_heaviest_model_based(self):
        assert total_macs(DeepVOGTracker().workload()) > total_macs(
            EdGazeTracker().workload()
        )

    def test_workloads_are_billions_of_macs(self):
        assert total_macs(DeepVOGTracker().workload()) > 3e9
        assert total_macs(EdGazeTracker().workload()) > 1e9
