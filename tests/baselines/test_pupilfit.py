"""Pupil segmentation and geometric fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AffineGazeMap,
    PriorGeometricMap,
    segment_batch,
    segment_pupil,
)


def synthetic_frame(cx=80, cy=60, radius=8, shape=(120, 160)):
    frame = np.full(shape, 0.7)
    yy, xx = np.mgrid[0 : shape[0], 0 : shape[1]]
    frame[(xx - cx) ** 2 + (yy - cy) ** 2 <= radius**2] = 0.05
    return frame


class TestSegmentation:
    def test_finds_dark_disc_center(self):
        obs = segment_pupil(synthetic_frame(cx=100, cy=40))
        assert obs.valid
        assert obs.x == pytest.approx(100, abs=1.0)
        assert obs.y == pytest.approx(40, abs=1.0)
        assert obs.area > 100

    def test_blank_frame_invalid(self):
        obs = segment_pupil(np.full((60, 80), 0.8))
        assert not obs.valid
        assert obs.x == 40 and obs.y == 30  # falls back to the center

    def test_min_pixels_threshold(self):
        frame = np.full((60, 80), 0.8)
        frame[10, 10] = 0.0  # single dark pixel: below min_pixels
        assert not segment_pupil(frame).valid

    def test_batch(self):
        frames = np.stack([synthetic_frame(cx=40), synthetic_frame(cx=120)])
        centers, valid = segment_batch(frames)
        assert valid.all()
        assert centers[0, 0] < centers[1, 0]


class TestAffineGazeMap:
    def test_exact_recovery_of_affine_relation(self):
        rng = np.random.default_rng(0)
        centers = rng.uniform(20, 140, size=(50, 2))
        weights = np.array([[0.5, 0.1], [-0.2, 0.6], [3.0, -1.0]])
        gaze = np.column_stack([centers, np.ones(50)]) @ weights
        fit = AffineGazeMap.fit(centers, gaze)
        np.testing.assert_allclose(fit(centers), gaze, atol=1e-9)

    def test_requires_three_points(self):
        with pytest.raises(ValueError):
            AffineGazeMap.fit(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_single_query_shape(self):
        fit = AffineGazeMap.fit(
            np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]),
            np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]),
        )
        assert fit(np.array([0.5, 0.5])).shape == (1, 2)


class TestPriorGeometricMap:
    def test_correct_gain_gives_exact_recovery(self):
        rng = np.random.default_rng(1)
        gaze = rng.uniform(-10, 10, size=(40, 2))
        center = np.array([80.0, 60.0])
        gain = np.array([1.4, 1.1])
        pupils = center + gaze * gain
        calibrated = PriorGeometricMap.calibrate(pupils, gaze, (1.4, 1.1))
        np.testing.assert_allclose(calibrated(pupils), gaze, atol=1e-9)

    def test_unsupervised_calibration_ignores_labels(self):
        rng = np.random.default_rng(3)
        gaze = rng.uniform(-10, 10, size=(30, 2))
        pupils = np.array([80.0, 60.0]) + gaze * np.array([1.4, 1.1])
        fit = PriorGeometricMap.calibrate_unsupervised(pupils, (1.4, 1.1))
        # Center = mean pupil position; bias equals the mean gaze of the
        # observation window scaled back through the gain.
        np.testing.assert_allclose(fit.center, pupils.mean(axis=0))
        residual = fit(pupils) - gaze
        np.testing.assert_allclose(residual, -gaze.mean(axis=0) + 0 * residual, atol=1e-9)

    def test_unsupervised_needs_three_points(self):
        with pytest.raises(ValueError):
            PriorGeometricMap.calibrate_unsupervised(np.zeros((2, 2)), (1.0, 1.0))

    def test_gain_mismatch_gives_systematic_error(self):
        """The DeepVOG failure mode: wrong prior gain scales eccentric gaze."""
        rng = np.random.default_rng(2)
        gaze = rng.uniform(-10, 10, size=(40, 2))
        true_gain = np.array([1.8, 1.4])  # user deviates from population
        pupils = np.array([80.0, 60.0]) + gaze * true_gain
        calibrated = PriorGeometricMap.calibrate(pupils, gaze, (1.4, 1.1))
        errors = np.linalg.norm(calibrated(pupils) - gaze, axis=1)
        # Error grows with eccentricity — systematic, not noise.
        ecc = np.linalg.norm(gaze, axis=1)
        assert np.corrcoef(ecc, errors)[0, 1] > 0.8
        assert errors.max() > 2.0
