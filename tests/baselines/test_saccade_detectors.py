"""Classical saccade detectors (I-VT, I-DT) against the oculomotor model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DispersionThresholdDetector, VelocityThresholdDetector
from repro.core.saccade import saccade_metrics
from repro.eye import MovementType, OculomotorModel


@pytest.fixture(scope="module")
def track():
    return OculomotorModel(seed=21).generate(2000)


class TestIVT:
    def test_detects_most_saccades(self, track):
        detector = VelocityThresholdDetector(threshold_deg_s=70.0)
        predicted = detector.detect(track.gaze_deg, track.fps)
        actual = track.labels == MovementType.SACCADE
        metrics = saccade_metrics(predicted, actual)
        assert metrics["accuracy"] > 0.9
        assert metrics["macro_f1"] > 0.75

    def test_threshold_monotonicity(self, track):
        low = VelocityThresholdDetector(threshold_deg_s=30.0).detect(track.gaze_deg, track.fps)
        high = VelocityThresholdDetector(threshold_deg_s=200.0).detect(track.gaze_deg, track.fps)
        assert low.sum() >= high.sum()

    def test_velocity_computation(self):
        gaze = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        speeds = VelocityThresholdDetector().velocities(gaze, fps=100.0)
        np.testing.assert_allclose(speeds, [100.0, 100.0, 100.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            VelocityThresholdDetector(threshold_deg_s=0)
        with pytest.raises(ValueError):
            VelocityThresholdDetector().detect(np.zeros((5, 3)), 100.0)


class TestIDT:
    def test_detects_saccades_better_than_chance(self, track):
        detector = DispersionThresholdDetector(dispersion_deg=1.5, window=6)
        predicted = detector.detect(track.gaze_deg)
        actual = track.labels == MovementType.SACCADE
        metrics = saccade_metrics(predicted, actual)
        assert metrics["accuracy"] > 0.8
        assert metrics["macro_f1"] > 0.5

    def test_pure_fixation_classified_fixation(self):
        rng = np.random.default_rng(0)
        gaze = rng.normal(0, 0.05, size=(100, 2))
        detector = DispersionThresholdDetector(dispersion_deg=1.0, window=8)
        assert not detector.detect(gaze).any()

    def test_large_jump_flagged(self):
        # A saccade sampled mid-flight: several transition frames whose
        # windows exceed the dispersion threshold.
        gaze = np.zeros((40, 2))
        gaze[18:22, 0] = [3.0, 7.5, 12.0, 14.0]
        gaze[22:] = 15.0
        detector = DispersionThresholdDetector(dispersion_deg=1.0, window=8)
        flags = detector.detect(gaze)
        assert flags[18:22].any()

    def test_validation(self):
        with pytest.raises(ValueError):
            DispersionThresholdDetector(dispersion_deg=0)
        with pytest.raises(ValueError):
            DispersionThresholdDetector(window=1)
