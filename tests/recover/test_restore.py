"""Crash-kill-restore: bit-identical reports, corrupt fallback, divergence."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.faults import ProcessKill, SimulatedCrash, default_chaos_scenario
from repro.faults.runtime import ChaosRuntime
from repro.recover import (
    JOURNAL_NAME,
    CheckpointStore,
    JournalWriter,
    RecoveryError,
    fleet_report_bytes,
    read_journal,
    restore_runtime,
    resume,
    run_with_checkpoints,
)
from repro.serve import FleetRuntime, ServeConfig, ServeRuntime


def serve_config() -> ServeConfig:
    return ServeConfig(n_sessions=6, duration_s=0.5, n_workers=2, seed=1)


def chaos_config():
    base = default_chaos_scenario(seed=3)
    return replace(
        base, serve=replace(base.serve, n_sessions=4, duration_s=0.5, n_workers=2)
    )


def crash_at(runtime, directory, kill_at: int, every: int = 60) -> None:
    with pytest.raises(SimulatedCrash):
        run_with_checkpoints(
            runtime, directory, every=every, kill=ProcessKill(at_event=kill_at)
        )


class TestBitIdenticalRecovery:
    @pytest.mark.parametrize("kill_at", [5, 150, 314])  # early / mid / late (315 total)
    def test_serve_recovery_is_bit_identical(self, tmp_path, kill_at):
        baseline = fleet_report_bytes(ServeRuntime(serve_config()).run())
        crash_at(ServeRuntime(serve_config()), tmp_path, kill_at)
        assert fleet_report_bytes(resume(tmp_path)) == baseline

    @pytest.mark.parametrize("kill_at", [8, 130, 260])
    def test_chaos_recovery_is_bit_identical(self, tmp_path, kill_at):
        baseline = fleet_report_bytes(ChaosRuntime(chaos_config()).run())
        crash_at(ChaosRuntime(chaos_config()), tmp_path, kill_at)
        assert fleet_report_bytes(resume(tmp_path)) == baseline

    def test_double_crash_recovery(self, tmp_path):
        """Crash, resume, crash again, resume again — still bit-identical."""
        baseline = fleet_report_bytes(ServeRuntime(serve_config()).run())
        crash_at(ServeRuntime(serve_config()), tmp_path, 100)
        restored = restore_runtime(tmp_path)
        with pytest.raises(SimulatedCrash):
            run_with_checkpoints(
                restored.runtime, tmp_path, every=60,
                kill=ProcessKill(at_event=250), _resume=True,
            )
        assert fleet_report_bytes(resume(tmp_path)) == baseline

    def test_fleet_runtime_restore_classmethod(self, tmp_path):
        baseline = fleet_report_bytes(ServeRuntime(serve_config()).run())
        crash_at(ServeRuntime(serve_config()), tmp_path, 90)
        runtime = FleetRuntime.restore(tmp_path)
        while runtime.step():
            pass
        assert fleet_report_bytes(runtime.finish()) == baseline


class TestRestoreDetails:
    def test_journal_tail_replayed(self, tmp_path):
        crash_at(ServeRuntime(serve_config()), tmp_path, kill_at=100, every=60)
        restored = restore_runtime(tmp_path)
        assert restored.checkpoint.event_index == 60
        assert restored.replayed_events == 40
        assert restored.runtime.events_processed == 100
        assert restored.skipped_checkpoints == []

    def test_restore_rebuilds_from_directory_alone(self, tmp_path):
        """The manifest embeds the config — no arguments beyond the dir."""
        config = replace(serve_config(), n_sessions=5, seed=9)
        crash_at(ServeRuntime(config), tmp_path, 50)
        restored = restore_runtime(tmp_path)
        assert restored.runtime.config == config

    def test_kill_requires_positive_event(self):
        with pytest.raises(ValueError):
            ProcessKill(at_event=0)

    def test_journal_has_write_ahead_record_of_every_event(self, tmp_path):
        runtime = ServeRuntime(serve_config())
        crash_at(runtime, tmp_path, kill_at=70)
        records = read_journal(tmp_path / JOURNAL_NAME)
        # The kill fires after applying event 70; the WAL must already
        # hold all 70 records (each written before its event applied).
        assert [r["i"] for r in records] == list(range(1, 71))


class TestCorruptionFallback:
    def test_falls_back_past_bit_flipped_checkpoint(self, tmp_path):
        baseline = fleet_report_bytes(ServeRuntime(serve_config()).run())
        crash_at(ServeRuntime(serve_config()), tmp_path, kill_at=150, every=60)
        store = CheckpointStore(tmp_path)
        newest = store.indices()[-1]
        payload = store.payload_path(newest)
        data = bytearray(payload.read_bytes())
        data[7] ^= 0x01
        payload.write_bytes(bytes(data))

        restored = restore_runtime(tmp_path)
        assert [i for i, _ in restored.skipped_checkpoints] == [newest]
        runtime = restored.runtime
        while runtime.step():
            pass
        assert fleet_report_bytes(runtime.finish()) == baseline

    def test_half_written_journal_line_tolerated(self, tmp_path):
        baseline = fleet_report_bytes(ServeRuntime(serve_config()).run())
        crash_at(ServeRuntime(serve_config()), tmp_path, kill_at=100, every=60)
        journal = tmp_path / JOURNAL_NAME
        text = journal.read_text()
        journal.write_text(text[: len(text) - 15])  # tear the last record
        assert fleet_report_bytes(resume(tmp_path)) == baseline

    def test_no_valid_checkpoint_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="no valid checkpoint"):
            restore_runtime(tmp_path)

    def test_all_checkpoints_corrupt_raises_with_reasons(self, tmp_path):
        crash_at(ServeRuntime(serve_config()), tmp_path, kill_at=100, every=60)
        store = CheckpointStore(tmp_path)
        for index in store.indices():
            store.payload_path(index).write_bytes(b"garbage")
        with pytest.raises(RecoveryError, match="no valid checkpoint"):
            restore_runtime(tmp_path)

    def test_journal_divergence_detected(self, tmp_path):
        """A resealed-but-wrong journal record must fail the replay."""
        crash_at(ServeRuntime(serve_config()), tmp_path, kill_at=100, every=60)
        journal = tmp_path / JOURNAL_NAME
        lines = journal.read_text().splitlines()
        record = json.loads(lines[80])  # inside the replayed tail (> 60)
        record.pop("crc")
        record["t"] += 1.0  # plausible but wrong timestamp
        writer = JournalWriter(tmp_path / "reseal.jsonl")
        writer.append(record)
        writer.close()
        lines[80] = (tmp_path / "reseal.jsonl").read_text().strip()
        journal.write_text("\n".join(lines) + "\n")
        (tmp_path / "reseal.jsonl").unlink()
        with pytest.raises(RecoveryError, match="diverged"):
            restore_runtime(tmp_path)


class TestOverhead:
    def test_checkpointing_does_not_change_simulated_goodput(self, tmp_path):
        """Durability must be invisible to the simulation: 0% overhead on
        every simulated metric, not just approximately."""
        plain = ServeRuntime(serve_config()).run()
        checkpointed = run_with_checkpoints(
            ServeRuntime(serve_config()), tmp_path, every=50
        )
        assert fleet_report_bytes(checkpointed) == fleet_report_bytes(plain)
        assert checkpointed.predict_goodput_fps == plain.predict_goodput_fps
