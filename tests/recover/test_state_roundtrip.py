"""state_dict/load_state: every stateful component round-trips exactly."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.faults import default_chaos_scenario
from repro.faults.breaker import CircuitBreaker
from repro.faults.runtime import ChaosRuntime
from repro.recover import canonical_bytes, fleet_report_bytes
from repro.serve import (
    BatchServiceModel,
    DynamicBatcher,
    ServeConfig,
    ServeRuntime,
    WorkerPool,
)
from repro.serve.request import FrameRequest
from repro.serve.telemetry import FaultReport, SessionStats
from repro.system.watchdog import TrackingWatchdog


def serve_config() -> ServeConfig:
    return ServeConfig(n_sessions=6, duration_s=0.5, n_workers=2, seed=1)


def chaos_config():
    base = default_chaos_scenario(seed=3)
    return replace(
        base, serve=replace(base.serve, n_sessions=4, duration_s=0.5, n_workers=2)
    )


def request(frame: int = 0) -> FrameRequest:
    return FrameRequest(
        session_id=1,
        frame_index=frame,
        arrival_s=0.01 * frame,
        deadline_s=0.01 * frame + 0.0125,
        path="predict",
        seq=frame,
    )


class TestComponents:
    def test_frame_request_roundtrip(self):
        original = request(4)
        assert FrameRequest.from_dict(original.to_dict()) == original

    def test_batcher_roundtrip(self):
        batcher = DynamicBatcher(8, 0.002)
        for frame in range(5):
            batcher.enqueue(request(frame))
        batcher.take()
        batcher.enqueue(request(9))
        state = batcher.state_dict()
        other = DynamicBatcher(8, 0.002)
        other.load_state(state)
        assert other.state_dict() == state
        assert len(other) == len(batcher)

    def test_pool_roundtrip(self):
        pool = WorkerPool(2, BatchServiceModel())
        pool.dispatch(pool.workers[0], 3, 0.0)
        state = pool.state_dict()
        other = WorkerPool(2, BatchServiceModel())
        other.load_state(state)
        assert other.state_dict() == state

    def test_pool_rejects_wrong_worker_count(self):
        pool = WorkerPool(2, BatchServiceModel())
        state = pool.state_dict()
        with pytest.raises(ValueError, match="2 workers"):
            WorkerPool(3, BatchServiceModel()).load_state(state)

    def test_session_stats_roundtrip(self):
        stats = SessionStats(3)
        stats.record("predict", 0.001, 0.0125)
        stats.record("reuse", 0.02, 0.0125)
        stats.shed = 2
        state = stats.state_dict()
        other = SessionStats(3)
        other.load_state(state)
        assert other.state_dict() == state

    def test_session_stats_rejects_wrong_session(self):
        state = SessionStats(3).state_dict()
        with pytest.raises(ValueError, match="session"):
            SessionStats(4).load_state(state)

    def test_fault_report_roundtrip(self):
        report = FaultReport()
        report.frames_dropped_input = 5
        report.breaker_transitions.append((0.25, 1, "closed", "open"))
        state = report.state_dict()
        other = FaultReport()
        other.load_state(state)
        assert other.state_dict() == state

    def test_breaker_roundtrip(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=0.1)
        breaker.record_failure(0.05)
        breaker.record_failure(0.06)  # trips open
        state = breaker.state_dict()
        other = CircuitBreaker(failure_threshold=2, cooldown_s=0.1)
        other.load_state(state)
        assert other.state_dict() == state
        assert other.state(0.07) is breaker.state(0.07)

    def test_watchdog_roundtrip(self):
        profile = default_chaos_scenario().profile
        watchdog = TrackingWatchdog(profile)
        for step in range(6):
            watchdog.observe(0.01 * step, error_deg=3.0, confidence=0.4)
        state = watchdog.state_dict()
        other = TrackingWatchdog(profile)
        other.load_state(state)
        assert other.state_dict() == state
        assert other.level is watchdog.level


class TestRuntimeSnapshot:
    @pytest.mark.parametrize("snapshot_at", [1, 50, 200])
    def test_serve_snapshot_resumes_bit_identical(self, snapshot_at):
        baseline = fleet_report_bytes(ServeRuntime(serve_config()).run())

        donor = ServeRuntime(serve_config())
        donor.start()
        for _ in range(snapshot_at):
            assert donor.step()
        state = donor.state_dict()

        heir = ServeRuntime(serve_config())
        heir.load_state(state)
        while heir.step():
            pass
        assert fleet_report_bytes(heir.finish()) == baseline

    @pytest.mark.parametrize("snapshot_at", [1, 120])
    def test_chaos_snapshot_resumes_bit_identical(self, snapshot_at):
        baseline = fleet_report_bytes(ChaosRuntime(chaos_config()).run())

        donor = ChaosRuntime(chaos_config())
        donor.start()
        for _ in range(snapshot_at):
            assert donor.step()
        state = donor.state_dict()

        heir = ChaosRuntime(chaos_config())
        heir.load_state(state)
        while heir.step():
            pass
        assert fleet_report_bytes(heir.finish()) == baseline

    def test_snapshot_is_json_canonicalizable(self):
        runtime = ChaosRuntime(chaos_config())
        runtime.start()
        for _ in range(40):
            runtime.step()
        canonical_bytes(runtime.state_dict())  # must not raise (no NaN etc.)

    def test_snapshot_is_stable_across_roundtrip(self):
        donor = ServeRuntime(serve_config())
        donor.start()
        for _ in range(80):
            donor.step()
        state = donor.state_dict()
        heir = ServeRuntime(serve_config())
        heir.load_state(state)
        assert canonical_bytes(heir.state_dict()) == canonical_bytes(state)
