"""Checkpoint store: atomic write, validation chain, corrupt fallback."""

from __future__ import annotations

import json

import pytest

from repro.recover import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointError,
    CheckpointStore,
    canonical_bytes,
    canonical_json,
    crc32,
)

STATE = {"heap": [[0.1, 2, 3, None]], "events_processed": 7}
CONFIG = {"n_sessions": 4}
SERVICE = {"fixed_s": 0.001}


def write_one(store: CheckpointStore, index: int = 7, state=None) -> int:
    return store.write(
        state if state is not None else STATE,
        event_index=index,
        kind="serve",
        config=CONFIG,
        service=SERVICE,
        checkpoint_every=100,
    )


class TestRoundTrip:
    def test_write_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        size = write_one(store)
        checkpoint = store.load(7)
        assert checkpoint.state == STATE
        assert checkpoint.kind == "serve"
        assert checkpoint.config == CONFIG
        assert checkpoint.service == SERVICE
        assert checkpoint.checkpoint_every == 100
        assert size == len(canonical_bytes(STATE))

    def test_no_temp_files_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        write_one(store)
        assert not list(tmp_path.glob("*.tmp"))

    def test_indices_sorted(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for index in (300, 0, 100):
            write_one(store, index)
        assert store.indices() == [0, 100, 300]

    def test_float_exactness(self, tmp_path):
        state = {"t": 0.1 + 0.2, "xs": [1e-17, 3.141592653589793]}
        store = CheckpointStore(tmp_path)
        write_one(store, 1, state=state)
        loaded = store.load(1).state
        assert loaded["t"] == state["t"]  # same binary64, not approximately
        assert loaded["xs"] == state["xs"]


class TestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint manifest"):
            CheckpointStore(tmp_path).load(3)

    def test_truncated_payload(self, tmp_path):
        store = CheckpointStore(tmp_path)
        write_one(store)
        payload = store.payload_path(7)
        payload.write_bytes(payload.read_bytes()[:-4])
        with pytest.raises(CheckpointError, match="truncated"):
            store.load(7)

    def test_bit_flipped_payload(self, tmp_path):
        store = CheckpointStore(tmp_path)
        write_one(store)
        payload = store.payload_path(7)
        data = bytearray(payload.read_bytes())
        data[3] ^= 0x40
        payload.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="CRC32"):
            store.load(7)

    def test_tampered_manifest_json(self, tmp_path):
        store = CheckpointStore(tmp_path)
        write_one(store)
        manifest = store.manifest_path(7)
        manifest.write_bytes(manifest.read_bytes()[:-10])
        with pytest.raises(CheckpointError, match="tampered or corrupt"):
            store.load(7)

    def test_unknown_manifest_key(self, tmp_path):
        store = CheckpointStore(tmp_path)
        write_one(store)
        manifest = store.manifest_path(7)
        doc = json.loads(manifest.read_bytes())
        doc["extra"] = 1
        manifest.write_text(canonical_json(doc))
        with pytest.raises(CheckpointError, match="unknown=\\['extra'\\]"):
            store.load(7)

    def test_missing_manifest_key(self, tmp_path):
        store = CheckpointStore(tmp_path)
        write_one(store)
        manifest = store.manifest_path(7)
        doc = json.loads(manifest.read_bytes())
        del doc["payload_crc32"]
        manifest.write_text(canonical_json(doc))
        with pytest.raises(CheckpointError, match="missing=\\['payload_crc32'\\]"):
            store.load(7)

    def test_newer_format_version(self, tmp_path):
        store = CheckpointStore(tmp_path)
        write_one(store)
        manifest = store.manifest_path(7)
        doc = json.loads(manifest.read_bytes())
        doc["format_version"] = CHECKPOINT_FORMAT_VERSION + 1
        manifest.write_text(canonical_json(doc))
        with pytest.raises(CheckpointError, match="upgrade repro"):
            store.load(7)

    def test_event_index_mismatch(self, tmp_path):
        store = CheckpointStore(tmp_path)
        write_one(store)
        # Renaming both files moves the checkpoint to index 9 but the
        # manifest still claims 7.
        store.manifest_path(7).rename(store.manifest_path(9))
        store.payload_path(7).rename(store.payload_path(9))
        with pytest.raises(CheckpointError, match="claims event index 7"):
            store.load(9)

    def test_missing_payload(self, tmp_path):
        store = CheckpointStore(tmp_path)
        write_one(store)
        store.payload_path(7).unlink()
        with pytest.raises(CheckpointError, match="missing"):
            store.load(7)

    def test_crc_matches_manifest_pin(self, tmp_path):
        store = CheckpointStore(tmp_path)
        write_one(store)
        doc = json.loads(store.manifest_path(7).read_bytes())
        assert doc["payload_crc32"] == crc32(store.payload_path(7).read_bytes())


class TestLatestValid:
    def test_prefers_newest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for index in (0, 100, 200):
            write_one(store, index, state={"at": index})
        checkpoint, skipped = store.latest_valid()
        assert checkpoint.event_index == 200
        assert skipped == []

    def test_falls_back_past_corruption(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for index in (0, 100, 200):
            write_one(store, index, state={"at": index})
        payload = store.payload_path(200)
        data = bytearray(payload.read_bytes())
        data[0] ^= 0xFF
        payload.write_bytes(bytes(data))
        checkpoint, skipped = store.latest_valid()
        assert checkpoint.event_index == 100
        assert [index for index, _ in skipped] == [200]
        assert "CRC32" in skipped[0][1]

    def test_empty_directory(self, tmp_path):
        checkpoint, skipped = CheckpointStore(tmp_path).latest_valid()
        assert checkpoint is None and skipped == []
