"""CLI: serve/chaos --checkpoint-dir/--kill-at-event and `repro recover`."""

from __future__ import annotations

import pytest

from repro.__main__ import main
from repro.recover.cli import EXIT_SIMULATED_CRASH

SERVE = ["serve", "--sessions", "6", "--duration", "0.3", "--workers", "2"]
CHAOS = ["chaos", "--sessions", "4", "--duration", "0.3", "--workers", "2"]


def ckpt_flags(tmp_path, kill=None, every=50):
    flags = ["--checkpoint-dir", str(tmp_path), "--checkpoint-every", str(every)]
    if kill is not None:
        flags += ["--kill-at-event", str(kill)]
    return flags


class TestKillAndRecover:
    def test_serve_kill_then_recover_verify(self, tmp_path, capsys):
        code = main(SERVE + ckpt_flags(tmp_path, kill=80))
        assert code == EXIT_SIMULATED_CRASH
        captured = capsys.readouterr()
        assert "simulated crash" in captured.err
        assert "python -m repro recover" in captured.err

        assert main(["recover", "--dir", str(tmp_path), "--verify"]) == 0
        captured = capsys.readouterr()
        assert "bit-identical" in captured.err
        assert "Fleet: 6 sessions" in captured.out

    def test_chaos_kill_then_recover_verify(self, tmp_path, capsys):
        code = main(CHAOS + ckpt_flags(tmp_path, kill=60))
        assert code == EXIT_SIMULATED_CRASH
        capsys.readouterr()
        assert main(["recover", "--dir", str(tmp_path), "--verify"]) == 0
        captured = capsys.readouterr()
        assert "restored chaos run" in captured.err
        assert "bit-identical" in captured.err

    def test_recovered_stdout_matches_uninterrupted_run(self, tmp_path, capsys):
        assert main(SERVE) == 0
        uninterrupted = capsys.readouterr().out
        assert main(SERVE + ckpt_flags(tmp_path, kill=80)) == EXIT_SIMULATED_CRASH
        capsys.readouterr()
        assert main(["recover", "--dir", str(tmp_path)]) == 0
        assert capsys.readouterr().out == uninterrupted


class TestCheckpointedRunWithoutKill:
    def test_serve_checkpointed_run_completes(self, tmp_path, capsys):
        assert main(SERVE + ckpt_flags(tmp_path)) == 0
        assert "Fleet: 6 sessions" in capsys.readouterr().out
        assert (tmp_path / "journal.jsonl").exists()
        assert list(tmp_path.glob("ckpt-*.manifest.json"))


class TestUsageErrors:
    def test_kill_without_checkpoint_dir_rejected(self):
        with pytest.raises(SystemExit):
            main(SERVE + ["--kill-at-event", "10"])

    def test_kill_at_zero_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(SERVE + ckpt_flags(tmp_path, kill=0))

    def test_recover_empty_directory_fails(self, tmp_path, capsys):
        assert main(["recover", "--dir", str(tmp_path)]) == 1
        assert "recovery failed" in capsys.readouterr().err

    def test_recover_requires_dir(self):
        with pytest.raises(SystemExit):
            main(["recover"])
