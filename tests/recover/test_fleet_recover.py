"""Whole-fleet durability: checkpoint, kill, restore, byte-verify."""

from __future__ import annotations

import pytest

from repro.faults import ProcessKill, SimulatedCrash
from repro.faults.injectors import ShardKill
from repro.recover import (
    CheckpointStore,
    RecoveryError,
    fleet_report_bytes,
    restore_runtime,
    resume,
    run_with_checkpoints,
)
from repro.recover.manager import build_runtime
from repro.serve import ServeConfig
from repro.serve.fleet import FleetConfig, FleetRuntime, run_fleet


def chaos_fleet() -> FleetConfig:
    return FleetConfig(
        serve=ServeConfig(
            n_sessions=16, duration_s=0.5, n_workers=1,
            reuse_displacement_deg=0.05, seed=0,
        ),
        n_shards=3,
        kills=(ShardKill(shard_id=1, at_s=0.2),),
        migration_rate_hz=5.0,
    )


class TestFleetCrashRecovery:
    def test_kill_restore_resume_is_byte_identical(self, tmp_path):
        config = chaos_fleet()
        reference = run_fleet(config)
        with pytest.raises(SimulatedCrash):
            run_with_checkpoints(
                FleetRuntime(config), tmp_path, every=200,
                kill=ProcessKill(at_event=700),
            )
        report = resume(tmp_path)
        assert fleet_report_bytes(report) == fleet_report_bytes(reference)

    def test_kill_across_the_shard_kill_event(self, tmp_path):
        # Crash *after* the failover fired: the snapshot must carry the
        # reshaped topology (dead shard, re-homed sessions) faithfully.
        config = chaos_fleet()
        runtime = FleetRuntime(config)
        runtime.start()
        events_to_kill = 0
        while True:
            head = runtime.peek_event()
            assert head is not None, "kill event never surfaced"
            events_to_kill += 1
            time_s, kind, _ = head
            runtime.step()
            if kind == 1:  # the shard-kill control event
                break
        kill_at = events_to_kill + 50
        with pytest.raises(SimulatedCrash):
            run_with_checkpoints(
                FleetRuntime(config), tmp_path, every=100,
                kill=ProcessKill(at_event=kill_at),
            )
        report = resume(tmp_path)
        assert fleet_report_bytes(report) == fleet_report_bytes(
            run_fleet(config)
        )

    def test_checkpoint_kind_is_fleet(self, tmp_path):
        with pytest.raises(SimulatedCrash):
            run_with_checkpoints(
                FleetRuntime(chaos_fleet()), tmp_path, every=100,
                kill=ProcessKill(at_event=300),
            )
        checkpoint, skipped = CheckpointStore(tmp_path).latest_valid()
        assert skipped == []
        assert checkpoint.kind == "fleet"
        restored = restore_runtime(tmp_path)
        assert isinstance(restored.runtime, FleetRuntime)
        assert restored.runtime.events_processed >= 300

    def test_fleet_rejects_inference_override(self, tmp_path):
        with pytest.raises(SimulatedCrash):
            run_with_checkpoints(
                FleetRuntime(chaos_fleet()), tmp_path, every=100,
                kill=ProcessKill(at_event=200),
            )
        checkpoint, _ = CheckpointStore(tmp_path).latest_valid()
        with pytest.raises(RecoveryError, match="inference hook"):
            build_runtime(checkpoint, None, lambda batch: None, None)


class TestRecoverProbe:
    def test_fleet_target_probe_verifies(self):
        from repro.recover.cli import run_from_config

        probe = run_from_config(
            {
                "target": "fleet",
                "serve": {"n_sessions": 8, "duration_s": 0.3},
                "n_shards": 2,
                "kills": [{"shard_id": 0, "at_s": 0.15}],
                "kill_at_event": 200,
                "checkpoint_every": 80,
            }
        )
        assert probe.killed
        assert probe.verified
        assert probe.report.shards is not None

    def test_unknown_target_rejected(self):
        from repro.recover.cli import resolve_run_config

        with pytest.raises(ValueError, match="'serve', 'chaos', or 'fleet'"):
            resolve_run_config({"target": "warehouse"})
