"""Durability of the lossy fleet transport: crash mid-partition, resume.

The transport's protocol state (pending envelopes, dedupe registry,
detector estimates, displaced sessions) rides in the fleet checkpoint,
and every net control event replays from the write-ahead journal — so a
crash in the middle of a partition window, with envelopes in flight and
a shard falsely suspected, must still resume to a byte-identical report.
"""

from __future__ import annotations

import pytest

from repro.faults import ProcessKill, SimulatedCrash
from repro.faults.injectors import ShardKill
from repro.recover import (
    CheckpointStore,
    fleet_report_bytes,
    restore_runtime,
    resume,
    run_with_checkpoints,
)
from repro.serve import ServeConfig
from repro.serve.fleet import (
    FleetConfig,
    FleetRuntime,
    LinkProfile,
    NetConfig,
    PartitionWindow,
    run_fleet,
)


def lossy_fleet() -> FleetConfig:
    return FleetConfig(
        serve=ServeConfig(
            n_sessions=16, duration_s=0.5, n_workers=1,
            reuse_displacement_deg=0.05, seed=0,
        ),
        n_shards=3,
        kills=(ShardKill(shard_id=2, at_s=0.3),),
        net=NetConfig(
            enabled=True, seed=4,
            link=LinkProfile(
                drop_rate=0.15, dup_rate=0.15, delay_s=5e-4, jitter_s=1e-3
            ),
            partitions=(
                PartitionWindow(start_s=0.15, stop_s=0.3, shard_ids=(1,)),
            ),
            ack_timeout_s=4e-3, max_retransmits=8,
        ),
    )


class TestNetCrashRecovery:
    def test_kill_restore_resume_is_byte_identical(self, tmp_path):
        config = lossy_fleet()
        reference = run_fleet(config)
        with pytest.raises(SimulatedCrash):
            run_with_checkpoints(
                FleetRuntime(config), tmp_path, every=300,
                kill=ProcessKill(at_event=1000),
            )
        report = resume(tmp_path)
        assert fleet_report_bytes(report) == fleet_report_bytes(reference)

    def test_crash_inside_the_partition_window(self, tmp_path):
        # Drive the live runtime until sim time is inside the partition
        # (suspicion pending or active, envelopes black-holed), then
        # crash a fresh run at that event count and resume it.
        config = lossy_fleet()
        probe = FleetRuntime(config)
        probe.start()
        events = 0
        while True:
            head = probe.peek_event()
            assert head is not None, "run ended before the partition"
            if head[0] >= 0.2:
                break
            probe.step()
            events += 1
        with pytest.raises(SimulatedCrash):
            run_with_checkpoints(
                FleetRuntime(config), tmp_path, every=150,
                kill=ProcessKill(at_event=events + 25),
            )
        report = resume(tmp_path)
        assert fleet_report_bytes(report) == fleet_report_bytes(
            run_fleet(config)
        )

    def test_restored_runtime_carries_transport_state(self, tmp_path):
        config = lossy_fleet()
        with pytest.raises(SimulatedCrash):
            run_with_checkpoints(
                FleetRuntime(config), tmp_path, every=200,
                kill=ProcessKill(at_event=800),
            )
        checkpoint, skipped = CheckpointStore(tmp_path).latest_valid()
        assert skipped == []
        assert checkpoint.kind == "fleet"
        restored = restore_runtime(tmp_path)
        runtime = restored.runtime
        assert isinstance(runtime, FleetRuntime)
        assert runtime.transport is not None
        # The dedupe registry made it across the crash (frames were
        # applied before the checkpoint) and the shared session-stats
        # ledger is re-aliased onto every shard.
        assert runtime.transport.applied
        for shard in runtime.shards.values():
            assert shard.stats is runtime._net_stats

    def test_net_config_roundtrips_through_manifest(self):
        from repro.recover.configio import (
            fleet_config_from_dict,
            fleet_config_to_dict,
        )

        config = lossy_fleet()
        state = fleet_config_to_dict(config)
        assert state["net"]["partitions"] == [
            {"start_s": 0.15, "stop_s": 0.3, "shard_ids": [1]}
        ]
        clone = fleet_config_from_dict(state)
        assert clone.net == config.net
        # Pre-transport manifests have no "net" key and must still load;
        # plain fleets must keep emitting byte-identical manifests.
        plain = FleetConfig(serve=ServeConfig(n_sessions=4, duration_s=0.1))
        plain_state = fleet_config_to_dict(plain)
        assert "net" not in plain_state
        assert fleet_config_from_dict(plain_state).net == NetConfig()
