"""Round-trip coverage for the checkpoint/campaign config codecs.

These codecs carry two loads: checkpoint manifests must reconstruct the
exact run configuration, and the experiment-campaign layer uses their
output as the run-identity hash input — so round-trip fidelity, unknown
key rejection, hash stability under dict reordering, and the documented
backward-compat path all get pinned here.
"""

from __future__ import annotations

import json

import pytest

from repro.faults.config import SoftErrorConfig, default_chaos_scenario
from repro.recover.codec import canonical_json, config_hash
from repro.recover.configio import (
    chaos_config_from_dict,
    chaos_config_to_dict,
    sdc_campaign_from_dict,
    sdc_campaign_to_dict,
    serve_config_from_dict,
    serve_config_to_dict,
    service_model_from_dict,
    service_model_to_dict,
)
from repro.reliability.campaign import SdcCampaignConfig
from repro.serve.config import AdmissionPolicy, BatchServiceModel, ServeConfig


def _reordered(state: dict) -> dict:
    """Same mapping, reversed insertion order (recursively)."""
    out = {}
    for key in reversed(list(state)):
        value = state[key]
        out[key] = _reordered(value) if isinstance(value, dict) else value
    return out


class TestServeConfigRoundTrip:
    def test_round_trip_is_identity(self):
        config = ServeConfig(n_sessions=4, duration_s=0.3, seed=7,
                             admission=AdmissionPolicy.SHED)
        assert serve_config_from_dict(serve_config_to_dict(config)) == config

    def test_admission_enum_goes_by_value(self):
        state = serve_config_to_dict(ServeConfig(admission=AdmissionPolicy.SHED))
        assert state["admission"] == "shed"
        assert json.loads(canonical_json(state))["admission"] == "shed"

    def test_unknown_key_rejected(self):
        state = serve_config_to_dict(ServeConfig())
        state["warp_factor"] = 9
        with pytest.raises(TypeError):
            serve_config_from_dict(state)

    def test_hash_stable_under_dict_reordering(self):
        state = serve_config_to_dict(ServeConfig(n_sessions=4))
        assert config_hash(_reordered(state)) == config_hash(state)

    def test_hash_distinguishes_configs(self):
        a = serve_config_to_dict(ServeConfig(seed=0))
        b = serve_config_to_dict(ServeConfig(seed=1))
        assert config_hash(a) != config_hash(b)


class TestServiceModelRoundTrip:
    def test_round_trip_is_identity(self):
        service = BatchServiceModel()
        assert service_model_from_dict(service_model_to_dict(service)) == service

    def test_unknown_key_rejected(self):
        state = service_model_to_dict(BatchServiceModel())
        state["bogus"] = 1
        with pytest.raises(TypeError):
            service_model_from_dict(state)


class TestChaosConfigRoundTrip:
    def test_round_trip_is_identity(self):
        config = default_chaos_scenario(seed=3)
        restored = chaos_config_from_dict(chaos_config_to_dict(config))
        assert restored == config

    def test_occlusion_level_restored_as_tuple(self):
        config = default_chaos_scenario(seed=0)
        state = json.loads(canonical_json(chaos_config_to_dict(config)))
        restored = chaos_config_from_dict(state)
        assert isinstance(restored.input_faults.occlusion_level, tuple)

    def test_missing_soft_errors_is_backward_compatible(self):
        """Checkpoints written before the soft-error work have no
        ``soft_errors`` key; they must restore to the inactive config."""
        state = chaos_config_to_dict(default_chaos_scenario(seed=0))
        del state["soft_errors"]
        restored = chaos_config_from_dict(state)
        assert restored.soft_errors == SoftErrorConfig.inactive()

    def test_hash_stable_under_dict_reordering(self):
        state = chaos_config_to_dict(default_chaos_scenario(seed=5))
        assert config_hash(_reordered(state)) == config_hash(state)


class TestSdcCampaignRoundTrip:
    def test_round_trip_is_identity(self):
        config = SdcCampaignConfig(fit_rates=(100.0, 2000.0),
                                   protections=("unprotected", "abft"),
                                   n_frames=50, seed=4)
        assert sdc_campaign_from_dict(sdc_campaign_to_dict(config)) == config

    def test_tuples_serialize_as_lists(self):
        state = sdc_campaign_to_dict(SdcCampaignConfig())
        assert isinstance(state["fit_rates"], list)
        assert isinstance(state["protections"], list)
        json.loads(canonical_json(state))  # JSON-safe end to end

    def test_unknown_key_rejected(self):
        state = sdc_campaign_to_dict(SdcCampaignConfig())
        state["extra"] = True
        with pytest.raises(TypeError):
            sdc_campaign_from_dict(state)

    def test_hash_stable_under_dict_reordering(self):
        state = sdc_campaign_to_dict(SdcCampaignConfig(seed=2))
        assert config_hash(_reordered(state)) == config_hash(state)


class TestJsonSurvival:
    """The hash must be identical before and after a JSON round trip —
    that is what makes a ledger config comparable to a live one."""

    def test_serve_hash_survives_json(self):
        state = serve_config_to_dict(ServeConfig(n_sessions=3, duration_s=0.25))
        assert config_hash(json.loads(canonical_json(state))) == config_hash(state)

    def test_chaos_hash_survives_json(self):
        state = chaos_config_to_dict(default_chaos_scenario(seed=1))
        assert config_hash(json.loads(canonical_json(state))) == config_hash(state)
