"""Write-ahead journal: CRC-sealed records, torn tails, strict interiors."""

from __future__ import annotations

import json

import pytest

from repro.recover import (
    JOURNAL_NAME,
    JournalError,
    JournalWriter,
    canonical_bytes,
    canonical_json,
    crc32,
    read_journal,
)


def write_records(path, records):
    writer = JournalWriter(path)
    for record in records:
        writer.append(record)
    writer.close()


RECORDS = [
    {"i": 1, "t": 0.0, "k": 2, "seq": 0},
    {"i": 2, "t": 0.011, "k": 2, "seq": 1},
    {"i": 3, "t": 0.0125, "k": 1, "seq": 2},
]


class TestRoundTrip:
    def test_append_read_roundtrip(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        write_records(path, RECORDS)
        assert read_journal(path) == RECORDS

    def test_after_index_filters(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        write_records(path, RECORDS)
        assert read_journal(path, after_index=2) == RECORDS[2:]

    def test_missing_file_is_empty(self, tmp_path):
        assert read_journal(tmp_path / JOURNAL_NAME) == []

    def test_resume_appends(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        write_records(path, RECORDS[:2])
        writer = JournalWriter(path, resume=True)
        writer.append(RECORDS[2])
        writer.close()
        assert read_journal(path) == RECORDS

    def test_records_are_crc_sealed(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        write_records(path, RECORDS[:1])
        line = json.loads(path.read_text().splitlines()[0])
        stored = line.pop("crc")
        assert stored == crc32(canonical_bytes(line))


class TestCorruption:
    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        write_records(path, RECORDS)
        text = path.read_text()
        # A kill mid-append leaves a half-written last line.
        path.write_text(text[: len(text) - 12])
        assert read_journal(path) == RECORDS[:2]

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        write_records(path, RECORDS)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-8]  # damage a non-final line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="line 2"):
            read_journal(path)

    def test_resealed_tamper_with_bad_crc_raises(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        write_records(path, RECORDS)
        lines = path.read_text().splitlines()
        record = json.loads(lines[1])
        record["t"] = 99.0  # content change without recomputing the CRC
        lines[1] = canonical_json(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="CRC mismatch"):
            read_journal(path)

    def test_non_increasing_indices_raise(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        write_records(path, [RECORDS[0], RECORDS[2], RECORDS[1]])
        with pytest.raises(JournalError, match="not\\s+after"):
            read_journal(path)

    def test_record_without_index_raises(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        writer = JournalWriter(path)
        writer.append({"t": 0.0, "k": 2, "seq": 0})
        writer.append({"i": 1, "t": 0.0, "k": 2, "seq": 0})
        writer.close()
        with pytest.raises(JournalError, match="missing event index"):
            read_journal(path)
