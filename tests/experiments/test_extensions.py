"""Extension experiments: latency QoE and FPS tables (analytic parts)."""

from __future__ import annotations

import pytest

from repro.experiments.extensions import format_latency_qoe, run_latency_qoe
from repro.experiments.fps_eval import format_fps, run_fps
from repro.experiments.profiles import paper_reference_errors
from repro.eye.events import EventMix
from repro.system import Schedule


@pytest.fixture(scope="module")
def errors():
    return paper_reference_errors(0.2)


class TestLatencyQoe:
    def test_polo_best_everywhere(self, errors):
        result = run_latency_qoe(errors)
        for res in ("720P", "1080P", "1440P"):
            assert result.best_method(res) == "POLO_N"

    def test_qoe_ordering_follows_latency(self, errors):
        result = run_latency_qoe(errors)
        for res in ("720P", "1080P"):
            pairs = [
                (result.latency_ms[(m, res)], result.qoe[(m, res)])
                for m in ("POLO_N", "ResNet-34", "DeepVOG")
            ]
            ordered = sorted(pairs)
            qoes = [q for _, q in ordered]
            assert all(a >= b for a, b in zip(qoes, qoes[1:]))

    def test_format(self, errors):
        assert "QoE" in format_latency_qoe(run_latency_qoe(errors))


class TestFps:
    def test_event_mix_raises_polo_fps(self, errors):
        mix = EventMix(0.1, 0.7, 0.2)
        gated = run_fps(errors, event_mix=mix)
        ungated = run_fps(errors, event_mix=None)
        for res in ("720P", "1080P", "1440P"):
            assert gated.get("POLO", res, Schedule.SEQUENTIAL) >= ungated.get(
                "POLO", res, Schedule.SEQUENTIAL
            )

    def test_baselines_unaffected_by_mix(self, errors):
        mix = EventMix(0.1, 0.7, 0.2)
        gated = run_fps(errors, event_mix=mix)
        ungated = run_fps(errors, event_mix=None)
        assert gated.get("DeepVOG", "1080P", Schedule.SEQUENTIAL) == pytest.approx(
            ungated.get("DeepVOG", "1080P", Schedule.SEQUENTIAL)
        )

    def test_resolution_lowers_fps(self, errors):
        result = run_fps(errors)
        assert result.get("POLO", "720P", Schedule.SEQUENTIAL) > result.get(
            "POLO", "1440P", Schedule.SEQUENTIAL
        )

    def test_format(self, errors):
        assert "FPS" in format_fps(run_fps(errors))
