"""Experiments that need no training: Figs. 1, 11e, 12, 13; Table 5; §7
synthesis.  Driven by the paper's reference errors so that the system
model is tested independently of stochastic training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    PAPER_TABLE1,
    SYSTEM_BASELINES,
    baseline_execution,
    format_accelerator_pa,
    format_fig1,
    format_fig11e,
    format_fig12,
    format_fig13a,
    format_fig13b,
    format_fig13c,
    format_table5,
    paper_reference_errors,
    polo_execution,
    pruned_vit_workload,
    run_accelerator_pa,
    run_fig1,
    run_fig11e,
    run_fig12,
    run_fig13a,
    run_fig13b,
    run_fig13c,
    run_table5,
)
from repro.core import GazeViTConfig
from repro.hw.ops import total_macs
from repro.render import RESOLUTIONS, SCENES


@pytest.fixture(scope="module")
def errors():
    return paper_reference_errors(0.2)


class TestFig1:
    def test_averages_match_paper_band(self):
        result = run_fig1()
        targets = {"720P": 80.0, "1080P": 155.0, "1440P": 282.0}
        for res, target in targets.items():
            assert result.averages_ms[res] == pytest.approx(target, rel=0.2)

    def test_every_cell_present_and_format(self):
        result = run_fig1()
        assert len(result.latencies_ms) == len(SCENES) * len(RESOLUTIONS)
        text = format_fig1(result)
        assert "Average" in text and "1440P" in text


class TestProfiles:
    def test_paper_reference_errors_complete(self, errors):
        assert set(errors) == set(SYSTEM_BASELINES) | {"POLO"}
        assert errors["POLO"] == PAPER_TABLE1["POLOViT(0.2)"][2]

    def test_unknown_ratio_rejected(self):
        with pytest.raises(KeyError):
            paper_reference_errors(0.15)

    def test_pruned_workload_ratio(self):
        config = GazeViTConfig.paper()
        full = total_macs(pruned_vit_workload(config, 0.0))
        pruned = total_macs(pruned_vit_workload(config, 0.2))
        assert 0.7 < pruned / full < 0.9

    def test_pruned_workload_monotone(self):
        config = GazeViTConfig.paper()
        macs = [total_macs(pruned_vit_workload(config, r)) for r in (0.0, 0.1, 0.2, 0.3, 0.4)]
        assert all(a > b for a, b in zip(macs, macs[1:]))

    def test_polo_execution_paths(self):
        execution = polo_execution(0.2)
        assert execution.td_saccade_s < execution.td_reuse_s < execution.td_predict_s
        assert execution.td_predict_s < 0.02  # POLO_N band

    def test_baseline_executions_ordering(self):
        lat = {n: baseline_execution(n).td_predict_s for n in SYSTEM_BASELINES}
        assert lat["DeepVOG"] == max(lat.values())
        assert lat["DeepVOG"] > 0.05


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self, errors):
        return run_fig12(errors)

    def test_polo_n_fastest_method_everywhere(self, result):
        for res in RESOLUTIONS:
            for scene in SCENES:
                polo = result.method_latency[("POLO_N", scene.name, res.name)]
                for name in SYSTEM_BASELINES:
                    assert polo < result.method_latency[(name, scene.name, res.name)]

    def test_polo_paths_ordering(self, result):
        for scene in SCENES:
            s = result.method_latency[("POLO_S", scene.name, "1080P")]
            r = result.method_latency[("POLO_R", scene.name, "1080P")]
            n = result.method_latency[("POLO_N", scene.name, "1080P")]
            assert s < r < n

    def test_speedups_in_paper_band(self, result):
        """Paper: 2.46/2.06/1.85x POLO_N speedups; we accept 1.5-4x."""
        summary = result.speedup_summary()
        for res in RESOLUTIONS:
            assert 1.5 < summary[res.name]["polo_n_speedup"] < 4.0

    def test_polo_beats_full_resolution(self, result):
        summary = result.speedup_summary()
        for res in RESOLUTIONS:
            assert summary[res.name]["vs_full"] > 2.0

    def test_polo_n_latencies_meet_foveation_budget(self, result):
        """§7.1: POLO_N averages 26/44/69 ms — all within the 50-70 ms
        per-frame requirement band (at worst near it at 1440P)."""
        summary = result.speedup_summary()
        assert summary["720P"]["polo_n_ms"] < 50
        assert summary["1080P"]["polo_n_ms"] < 60
        assert summary["1440P"]["polo_n_ms"] < 85

    def test_jnd_operating_point_preserves_polo_advantage(self, errors):
        """§7.1: under the tolerance-derived theta_f the trend holds —
        POLO still wins end-to-end against every baseline."""
        result = run_fig12(errors)
        for scene in SCENES:
            polo = result.jnd_latency[("POLO_N", scene.name, "1080P")]
            for name in SYSTEM_BASELINES:
                assert polo < result.jnd_latency[(name, scene.name, "1080P")]

    def test_mean_error_series(self, errors):
        means = {name: PAPER_TABLE1[name][0] for name in SYSTEM_BASELINES}
        means["POLO"] = PAPER_TABLE1["POLOViT(0.2)"][0]
        result = run_fig12(errors, errors_mean=means)
        for scene in SCENES:
            mean_lat = result.mean_error_latency[("ResNet-34", scene.name, "1080P")]
            p95_lat = result.method_latency[("ResNet-34", scene.name, "1080P")]
            assert mean_lat < p95_lat

    def test_format(self, result):
        text = format_fig12(result)
        assert "POLO_N" in text and "Speedup summary" in text


class TestFig13:
    def test_energy_polo_lowest_and_ratio_band(self):
        result = run_fig13a()
        polo = result.total_mj("POLO")
        for name in SYSTEM_BASELINES:
            assert result.total_mj(name) > polo
        assert 2.0 < result.polo_reduction() < 10.0  # paper: 4.1x

    def test_energy_buffer_dominant(self):
        """§7.1: memory access dominates, then MACs, then SFU."""
        result = run_fig13a()
        fr = result.breakdowns["POLO"].fractions()
        assert fr["buffer"] > fr["mac"] > fr["sfu"]

    def test_accelerator_ablation_ratios(self, errors):
        result = run_fig13b(errors)
        for name in result.with_accel_ms:
            assert 1.2 < result.ratio(name) < 3.0  # paper: 1.68-2.33x
        text = format_fig13b(result)
        assert "GPU only" in text

    def test_schedule_ablation(self, errors):
        result = run_fig13c(errors)
        assert 0.0 < result.average_reduction() < 0.4
        for name in result.sequential_ms:
            assert result.parallel_ms[name] <= result.sequential_ms[name]
        assert "Reduction" in format_fig13c(result)

    def test_energy_format(self):
        assert "POLO" in format_fig13a(run_fig13a())


class TestTable5:
    def test_minimum_at_twenty_percent(self):
        result = run_table5()
        assert result.best_ratio() == pytest.approx(0.2)

    def test_tradeoff_shape(self):
        result = run_table5()
        # gaze latency falls monotonically with pruning...
        gaze = list(result.gaze_ms.values())
        assert all(a > b for a, b in zip(gaze, gaze[1:]))
        # ...while rendering latency rises.
        render = list(result.render_ms.values())
        assert all(a <= b + 1e-9 for a, b in zip(render, render[1:]))

    def test_vive_much_slower(self):
        result = run_table5()
        assert result.vive_ms > 1.5 * result.latency_ms[0.2]
        assert result.vive_ms == pytest.approx(86.7, rel=0.15)

    def test_format(self):
        assert "Vive" in format_table5(run_table5())


class TestFig11e:
    def test_curve_shapes(self):
        result = run_fig11e()
        for delta, (grid, probs, jnds) in result.curves.items():
            assert (np.diff(probs) < 0).all()
            assert probs.max() <= 0.30 + 1e-9
        assert "theta_f" in format_fig11e(result)

    def test_threshold_anchor(self):
        result = run_fig11e()
        assert result.thresholds_5pct[10.0] == pytest.approx(15.0, abs=2.5)


class TestAcceleratorPa:
    def test_synthesis_summary(self):
        result = run_accelerator_pa()
        assert result.total_mm2 == pytest.approx(0.75, rel=0.1)
        assert result.buffers_fraction == pytest.approx(0.72, abs=0.05)
        assert result.average_power_w < 0.15
        assert "0.75" in format_accelerator_pa(result)
