"""Formatting functions for trained experiments, driven by synthetic
result objects (no training needed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ErrorSummary
from repro.experiments.ablations import (
    AcceleratorAblationResult,
    ScheduleAblationResult,
    format_fig13b,
    format_fig13c,
)
from repro.experiments.extensions import (
    SaccadeSensitivityResult,
    format_saccade_sensitivity,
)
from repro.experiments.gaze_error import GazeErrorResult, format_fig8a, format_table1
from repro.experiments.reuse_eval import ReuseSweepResult, format_table4
from repro.experiments.saccade_eval import SaccadeSweepResult, format_table2, format_table3
from repro.eye.events import EventMix


def make_summary(mean, p95):
    errors = np.concatenate([np.full(95, mean), np.full(5, p95)])
    return ErrorSummary.from_errors(errors)


class TestGazeErrorFormatting:
    def test_table1_contains_all_methods(self):
        result = GazeErrorResult()
        result.summaries["A"] = make_summary(1.0, 3.0)
        result.summaries["B"] = make_summary(2.0, 9.0)
        text = format_table1(result)
        assert "A" in text and "B" in text and "P95" in text
        assert result.ordered_names() == ["A", "B"]

    def test_fig8a_statistics_columns(self):
        result = GazeErrorResult()
        result.summaries["A"] = make_summary(1.0, 3.0)
        text = format_fig8a(result)
        for column in ("Min", "P5", "Mean", "P95", "Max"):
            assert column in text


class TestSweepFormatting:
    def test_table2(self):
        result = SaccadeSweepResult(parameter="hidden_dim")
        result.metrics[16] = {"accuracy": 0.9, "macro_f1": 0.8}
        result.metrics[32] = {"accuracy": 0.95, "macro_f1": 0.85}
        text = format_table2(result)
        assert "90.0" in text and "0.850" in text

    def test_table3(self):
        result = SaccadeSweepResult(parameter="gamma1")
        result.metrics[40.0] = {"accuracy": 0.9, "macro_f1": 0.77}
        assert "0.770" in format_table3(result)

    def test_table4(self):
        result = ReuseSweepResult()
        result.stats[10.0] = {
            "mean": 1.4,
            "p95": 3.3,
            "n_reused": 100,
            "reuse_fraction": 0.6,
        }
        text = format_table4(result)
        assert "3.30" in text and "0.60" in text
        assert result.reuse_fraction(10.0) == 0.6


class TestAblationFormatting:
    def test_fig13b(self):
        result = AcceleratorAblationResult()
        result.with_accel_ms["X"] = 50.0
        result.gpu_only_ms["X"] = 100.0
        text = format_fig13b(result)
        assert "2.00x" in text
        assert result.ratio("X") == 2.0

    def test_fig13c(self):
        result = ScheduleAblationResult()
        result.sequential_ms["X"] = 100.0
        result.parallel_ms["X"] = 90.0
        text = format_fig13c(result)
        assert "10.0%" in text
        assert result.average_reduction() == pytest.approx(0.1)


class TestExtensionFormatting:
    def test_saccade_sensitivity(self):
        result = SaccadeSensitivityResult()
        result.points[0.5] = {
            "fpr": 0.02,
            "fnr": 0.3,
            "artifact_rate": 0.4,
            "qoe": 0.7,
            "avg_latency_ms": 33.0,
            "event_mix": EventMix(0.1, 0.7, 0.2),
        }
        text = format_saccade_sensitivity(result)
        assert "0.020" in text and "33.0" in text
