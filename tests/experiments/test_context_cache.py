"""On-disk experiment-context cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import (
    CACHE_ENV_VAR,
    ContextScale,
    clear_context_cache,
    get_context,
)


@pytest.fixture
def cache_env(tmp_path, monkeypatch):
    monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
    clear_context_cache()
    yield tmp_path
    clear_context_cache()


SCALE = ContextScale("cachetest", 1, 1, 60, 1, 1, 1)


class TestDiskCache:
    def test_roundtrip_preserves_behaviour(self, cache_env):
        built = get_context(SCALE, seed=321)
        clear_context_cache()
        reloaded = get_context(SCALE, seed=321)
        frames = built.val.sequences[0].images[:3].astype(np.float64)
        a = built.bundle.vit.predict(frames, prune=False)
        b = reloaded.bundle.vit.predict(frames, prune=False)
        np.testing.assert_allclose(a, b, atol=5e-3)
        assert len(reloaded.train) == len(built.train)
        assert set(reloaded.baselines) == set(built.baselines)

    def test_cache_directory_created(self, cache_env):
        get_context(SCALE, seed=321)
        cached = cache_env / "context-cachetest-321"
        assert (cached / "DONE").exists()
        assert (cached / "polonet" / "polonet.json").exists()

    def test_incomplete_cache_ignored(self, cache_env):
        get_context(SCALE, seed=321)
        clear_context_cache()
        (cache_env / "context-cachetest-321" / "DONE").unlink()
        rebuilt = get_context(SCALE, seed=321)  # silently rebuilds
        assert rebuilt is not None

    def test_disabled_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        clear_context_cache()
        get_context(SCALE, seed=322)
        assert not list(tmp_path.iterdir())
        clear_context_cache()
