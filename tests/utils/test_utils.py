"""Utility helpers: rng management, validation, image ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import (
    RngMixin,
    check_in_range,
    check_positive,
    check_probability,
    check_shape,
    default_rng,
    spawn_rngs,
)
from repro.utils.image import (
    block_reduce_mean,
    center_crop,
    crop_centered,
    normalize_unit,
    resize_bilinear,
)


class TestRng:
    def test_default_rng_passthrough(self):
        gen = np.random.default_rng(0)
        assert default_rng(gen) is gen

    def test_default_rng_seeded_reproducible(self):
        a = default_rng(5).random(3)
        b = default_rng(5).random(3)
        np.testing.assert_allclose(a, b)

    def test_spawn_independent_streams(self):
        streams = spawn_rngs(7, 3)
        values = [s.random(4) for s in streams]
        assert not np.allclose(values[0], values[1])
        again = [s.random(4) for s in spawn_rngs(7, 3)]
        np.testing.assert_allclose(values[0], again[0])

    def test_spawn_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_mixin_reseed(self):
        class Thing(RngMixin):
            pass

        thing = Thing(seed=3)
        first = thing.rng.random()
        thing.reseed(3)
        assert thing.rng.random() == first


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_positive("x", 0.0)
        assert check_positive("x", 0.0, strict=False) == 0.0
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_in_range(self):
        assert check_in_range("x", 2.0, 1.0, 3.0) == 2.0
        with pytest.raises(ValueError):
            check_in_range("x", 4.0, 1.0, 3.0)

    def test_check_shape(self):
        arr = np.zeros((2, 3))
        assert check_shape("a", arr, (2, None)) is arr
        with pytest.raises(ValueError):
            check_shape("a", arr, (3, 3))
        with pytest.raises(ValueError):
            check_shape("a", arr, (2, 3, 1))


class TestImageOps:
    def test_resize_identity(self):
        img = np.random.default_rng(0).random((5, 7))
        np.testing.assert_allclose(resize_bilinear(img, 5, 7), img)

    def test_resize_preserves_constant(self):
        img = np.full((8, 8), 0.3)
        out = resize_bilinear(img, 5, 11)
        np.testing.assert_allclose(out, 0.3)

    def test_resize_batch(self):
        batch = np.random.default_rng(1).random((3, 6, 6))
        out = resize_bilinear(batch, 4, 4)
        assert out.shape == (3, 4, 4)

    def test_resize_monotone_gradient(self):
        img = np.tile(np.arange(10.0), (4, 1))
        out = resize_bilinear(img, 4, 5)
        assert (np.diff(out, axis=1) > 0).all()

    def test_block_reduce(self):
        img = np.arange(16.0).reshape(4, 4)
        np.testing.assert_allclose(block_reduce_mean(img, 2), [[2.5, 4.5], [10.5, 12.5]])
        with pytest.raises(ValueError):
            block_reduce_mean(img, 0)

    def test_center_crop(self):
        img = np.arange(36.0).reshape(6, 6)
        out = center_crop(img, 2, 2)
        np.testing.assert_allclose(out, [[14, 15], [20, 21]])

    def test_crop_centered_shifts_at_border(self):
        img = np.arange(100.0).reshape(10, 10)
        out = crop_centered(img, 0, 0, 4, 4)
        np.testing.assert_allclose(out, img[:4, :4])
        out = crop_centered(img, 9, 9, 4, 4)
        np.testing.assert_allclose(out, img[6:, 6:])

    def test_crop_centered_oversized_rejected(self):
        with pytest.raises(ValueError):
            crop_centered(np.zeros((4, 4)), 2, 2, 8, 8)

    def test_normalize_unit(self):
        out = normalize_unit(np.array([2.0, 4.0]))
        np.testing.assert_allclose(out, [0.0, 1.0])
        np.testing.assert_allclose(normalize_unit(np.full(3, 7.0)), 0.0)
