"""Module system and standard-layer behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Tanh,
    Tensor,
)


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = Linear(4, 8, seed=0)
        self.blocks = [Linear(8, 8, seed=1), Linear(8, 8, seed=2)]
        self.by_name = {"head": Linear(8, 2, seed=3)}

    def forward(self, x):
        x = self.first(x).relu()
        for block in self.blocks:
            x = block(x).relu()
        return self.by_name["head"](x)


class TestModule:
    def test_named_parameters_walks_lists_and_dicts(self):
        names = dict(TwoLayer().named_parameters())
        assert "first.weight" in names
        assert "blocks.0.weight" in names and "blocks.1.bias" in names
        assert "by_name.head.weight" in names

    def test_num_parameters(self):
        model = TwoLayer()
        expected = 4 * 8 + 8 + 2 * (8 * 8 + 8) + 8 * 2 + 2
        assert model.num_parameters() == expected

    def test_state_dict_roundtrip(self):
        a, b = TwoLayer(), TwoLayer()
        b.first.weight.data += 1.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(b.first.weight.data, a.first.weight.data)

    def test_load_state_dict_rejects_missing_keys(self):
        model = TwoLayer()
        state = model.state_dict()
        state.pop("first.weight")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self):
        model = TwoLayer()
        out = model(Tensor(np.ones((2, 4))))
        (out * out).sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLayers:
    def test_linear_shapes_and_bias(self):
        layer = Linear(3, 5, seed=0)
        out = layer(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 5)
        no_bias = Linear(3, 5, bias=False, seed=0)
        assert no_bias.bias is None

    def test_linear_batched_input(self):
        layer = Linear(3, 5, seed=0)
        assert layer(Tensor(np.ones((2, 7, 3)))).shape == (2, 7, 5)

    def test_conv2d_output_shape(self):
        layer = Conv2d(2, 4, 3, stride=2, padding=1, seed=0)
        assert layer(Tensor(np.ones((1, 2, 8, 8)))).shape == (1, 4, 4, 4)

    def test_layernorm_affine_params(self):
        layer = LayerNorm(6)
        out = layer(Tensor(np.random.default_rng(0).normal(size=(2, 6))))
        assert out.shape == (2, 6)
        assert layer.weight.requires_grad and layer.bias.requires_grad

    def test_dropout_rejects_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_pooling_wrappers(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        assert MaxPool2d(2)(x).shape == (1, 1, 2, 2)
        assert AvgPool2d(2)(x).shape == (1, 1, 2, 2)

    def test_flatten(self):
        assert Flatten()(Tensor(np.zeros((3, 2, 4)))).shape == (3, 8)

    def test_activation_modules(self):
        x = Tensor(np.array([[-1.0, 1.0]]))
        assert (ReLU()(x).data >= 0).all()
        assert np.abs(Tanh()(x).data).max() < 1.0
        assert GELU()(x).shape == (1, 2)

    def test_sequential_len_getitem(self):
        seq = Sequential(Linear(2, 2), ReLU())
        assert len(seq) == 2
        assert isinstance(seq[1], ReLU)

    def test_deterministic_init_by_seed(self):
        a, b = Linear(4, 4, seed=5), Linear(4, 4, seed=5)
        np.testing.assert_allclose(a.weight.data, b.weight.data)
        c = Linear(4, 4, seed=6)
        assert not np.allclose(a.weight.data, c.weight.data)
