"""ViT encoder: patch embedding, blocks, pruning traces, learnability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, Linear, Tensor, TokenFilter, ViTEncoder, no_grad
from repro.nn import functional as F
from repro.nn.transformer import (
    BatchTokenTrace,
    PatchEmbed,
    TokenTrace,
    TransformerBlock,
)


class TestPatchEmbed:
    def test_token_count_and_dim(self):
        embed = PatchEmbed(image_size=16, patch_size=4, dim=24, seed=0)
        out = embed(Tensor(np.random.default_rng(0).normal(size=(2, 16, 16))))
        assert out.shape == (2, 16, 24)

    def test_rejects_indivisible_patch(self):
        with pytest.raises(ValueError):
            PatchEmbed(image_size=15, patch_size=4, dim=8)

    def test_rejects_wrong_input_size(self):
        embed = PatchEmbed(image_size=16, patch_size=4, dim=8, seed=0)
        with pytest.raises(ValueError):
            embed(Tensor(np.zeros((1, 8, 8))))

    def test_patches_preserve_locality(self):
        """Each token depends only on its own patch."""
        embed = PatchEmbed(image_size=8, patch_size=4, dim=4, seed=0)
        base = np.zeros((1, 8, 8))
        modified = base.copy()
        modified[0, :4, :4] = 1.0  # top-left patch only
        delta = embed(Tensor(modified)).data - embed(Tensor(base)).data
        assert np.abs(delta[0, 0]).sum() > 0
        np.testing.assert_allclose(delta[0, 1:], 0.0, atol=1e-12)


class TestTokenTrace:
    def test_pruning_ratio(self):
        trace = TokenTrace(tokens_per_block=[10, 10, 5, 5], initial_tokens=10)
        assert trace.pruning_ratio == pytest.approx(0.25)
        assert trace.final_tokens == 5

    def test_empty_trace(self):
        assert TokenTrace().pruning_ratio == 0.0


class TestBatchTokenTrace:
    def test_per_sample_ratios_and_views(self):
        counts = np.array([[10, 10, 5, 5], [10, 10, 10, 10]])
        trace = BatchTokenTrace(tokens_per_block=counts, initial_tokens=10)
        assert trace.batch_size == 2
        np.testing.assert_allclose(trace.pruning_ratios, [0.25, 0.0])
        assert trace.pruning_ratio == pytest.approx(0.125)
        sample = trace.sample(0)
        assert isinstance(sample, TokenTrace)
        assert sample.tokens_per_block == [10, 10, 5, 5]
        assert sample.pruning_ratio == pytest.approx(0.25)
        assert len(trace.per_sample()) == 2

    def test_mean_tokens_per_block(self):
        counts = np.array([[10, 4], [10, 8]])
        trace = BatchTokenTrace(tokens_per_block=counts, initial_tokens=10)
        assert trace.mean_tokens_per_block() == [10, 6]


class TestViTEncoder:
    def make(self, depth=4):
        return ViTEncoder(
            image_size=16, patch_size=4, dim=16, depth=depth, num_heads=4, seed=3
        )

    def test_forward_shape_and_trace(self):
        vit = self.make()
        emb, trace = vit(Tensor(np.random.default_rng(0).normal(size=(2, 16, 16))))
        assert emb.shape == (2, 16)
        assert isinstance(trace, BatchTokenTrace)
        np.testing.assert_array_equal(
            trace.tokens_per_block, [[17, 17, 17, 17]] * 2
        )

    def test_single_sample_returns_classic_trace(self):
        vit = self.make()
        _, trace = vit(Tensor(np.random.default_rng(0).normal(size=(1, 16, 16))))
        assert isinstance(trace, TokenTrace)
        assert trace.tokens_per_block == [17, 17, 17, 17]

    def test_batched_pruning_matches_per_sample(self):
        """Each sample in a pruned batch gets its solo-run result (and trace)."""
        vit = self.make()
        images = np.random.default_rng(5).normal(size=(4, 16, 16))
        token_filter = TokenFilter(ratio=0.4)
        with no_grad():
            batch_emb, batch_trace = vit(Tensor(images), token_filter=token_filter)
            solo = []
            for i in range(len(images)):
                emb_i, trace_i = vit(Tensor(images[i : i + 1]), token_filter=token_filter)
                solo.append(emb_i.data[0])
                assert batch_trace.sample(i).tokens_per_block == trace_i.tokens_per_block
        np.testing.assert_allclose(batch_emb.data, np.stack(solo), atol=1e-9)

    def test_batched_threshold_pruning_is_per_sample(self):
        """A threshold filter prunes samples by their own statistics, so
        per-sample token counts in one batch may legitimately differ."""
        vit = self.make()
        images = np.random.default_rng(9).normal(size=(6, 16, 16)) * np.linspace(
            0.2, 3.0, 6
        ).reshape(-1, 1, 1)
        with no_grad():
            _, trace = vit(Tensor(images), token_filter=TokenFilter(threshold=0.35))
        assert isinstance(trace, BatchTokenTrace)
        assert (trace.tokens_per_block[:, 0] == 17).all()
        assert (trace.tokens_per_block >= 2).all()

    def test_pruning_reduces_tokens_monotonically(self):
        vit = self.make()
        with no_grad():
            _, trace = vit(
                Tensor(np.random.default_rng(1).normal(size=(1, 16, 16))),
                token_filter=TokenFilter(ratio=0.4),
            )
        counts = trace.tokens_per_block
        assert counts[0] == 17
        assert all(a >= b for a, b in zip(counts, counts[1:]))
        assert trace.pruning_ratio > 0.0

    def test_no_pruning_on_last_block_boundary(self):
        """The filter never fires after the final block (nothing downstream)."""
        vit = self.make(depth=2)
        with no_grad():
            _, trace = vit(
                Tensor(np.random.default_rng(2).normal(size=(1, 16, 16))),
                token_filter=TokenFilter(ratio=0.5),
            )
        assert trace.tokens_per_block == [17, 17]

    def test_trainable_on_toy_regression(self):
        """The encoder + head can fit 'mean brightness of image' quickly."""
        rng = np.random.default_rng(0)
        vit = ViTEncoder(image_size=8, patch_size=4, dim=8, depth=2, num_heads=2, seed=0)
        head = Linear(8, 1, seed=1)
        images = rng.uniform(size=(32, 8, 8))
        targets = images.mean(axis=(1, 2), keepdims=False)[:, None]
        params = vit.parameters() + head.parameters()
        optimizer = Adam(params, lr=5e-3)
        losses = []
        for _ in range(30):
            optimizer.zero_grad()
            emb, _ = vit(Tensor(images))
            loss = F.mse_loss(head(emb), targets)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < 0.5 * losses[0]

    def test_cls_token_receives_gradient(self):
        vit = self.make()
        emb, _ = vit(Tensor(np.random.default_rng(1).normal(size=(2, 16, 16))))
        (emb * emb).sum().backward()
        assert vit.cls_token.grad is not None
        assert np.abs(vit.cls_token.grad).sum() > 0

    def test_block_residual_structure(self):
        """A block with zeroed projections is the identity map."""
        block = TransformerBlock(dim=8, num_heads=2, seed=0)
        block.attn.proj.weight.data[:] = 0.0
        block.attn.proj.bias.data[:] = 0.0
        block.mlp[2].weight.data[:] = 0.0
        block.mlp[2].bias.data[:] = 0.0
        x = np.random.default_rng(0).normal(size=(1, 3, 8))
        np.testing.assert_allclose(block(Tensor(x)).data, x, atol=1e-12)
