"""Optimizer convergence and mechanics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Adam, CosineSchedule, SGD, Tensor


def quadratic_loss(param: Tensor) -> Tensor:
    target = Tensor(np.array([3.0, -2.0, 0.5]))
    diff = param - target
    return (diff * diff).sum()


def optimize(optimizer_cls, steps=200, **kwargs) -> np.ndarray:
    param = Tensor(np.zeros(3), requires_grad=True)
    optimizer = optimizer_cls([param], **kwargs)
    for _ in range(steps):
        optimizer.zero_grad()
        quadratic_loss(param).backward()
        optimizer.step()
    return param.data


class TestSGD:
    def test_converges_on_quadratic(self):
        final = optimize(SGD, lr=0.1)
        np.testing.assert_allclose(final, [3.0, -2.0, 0.5], atol=1e-3)

    def test_momentum_faster_than_plain(self):
        def loss_after(momentum, steps=25):
            param = Tensor(np.zeros(3), requires_grad=True)
            optimizer = SGD([param], lr=0.02, momentum=momentum)
            for _ in range(steps):
                optimizer.zero_grad()
                quadratic_loss(param).backward()
                optimizer.step()
            return quadratic_loss(param).item()

        assert loss_after(0.9) < loss_after(0.0)

    def test_weight_decay_shrinks_solution(self):
        plain = optimize(SGD, lr=0.1, weight_decay=0.0)
        decayed = optimize(SGD, lr=0.1, weight_decay=1.0)
        assert np.linalg.norm(decayed) < np.linalg.norm(plain)

    def test_skips_parameters_without_grad(self):
        a = Tensor(np.zeros(2), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        optimizer = SGD([a, b], lr=0.1)
        (a * a).sum().backward()
        optimizer.step()
        np.testing.assert_allclose(b.data, np.ones(2))


class TestAdam:
    def test_converges_on_quadratic(self):
        final = optimize(Adam, lr=0.1, steps=300)
        np.testing.assert_allclose(final, [3.0, -2.0, 0.5], atol=1e-2)

    def test_bias_correction_first_step_magnitude(self):
        """First Adam step has magnitude ~lr regardless of gradient scale."""
        for scale in (1e-3, 1e3):
            param = Tensor(np.array([scale]), requires_grad=True)
            optimizer = Adam([param], lr=0.01)
            (param * param).sum().backward()
            optimizer.step()
            assert abs(scale - param.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_rejects_bad_lr_and_empty_params(self):
        with pytest.raises(ValueError):
            Adam([Tensor(np.zeros(1), requires_grad=True)], lr=0.0)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestGradClip:
    def test_clips_large_gradients(self):
        param = Tensor(np.zeros(4), requires_grad=True)
        optimizer = SGD([param], lr=1.0)
        param.grad = np.full(4, 100.0)
        norm = optimizer.clip_grad_norm(1.0)
        assert norm == pytest.approx(200.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_small_gradients_untouched(self):
        param = Tensor(np.zeros(2), requires_grad=True)
        optimizer = SGD([param], lr=1.0)
        param.grad = np.array([0.1, 0.1])
        optimizer.clip_grad_norm(10.0)
        np.testing.assert_allclose(param.grad, [0.1, 0.1])


class TestCosineSchedule:
    def test_decays_to_min_lr(self):
        optimizer = SGD([Tensor(np.zeros(1), requires_grad=True)], lr=1.0)
        schedule = CosineSchedule(optimizer, total_steps=10, min_lr=0.1)
        values = [schedule.step() for _ in range(10)]
        assert values[0] > values[-1]
        assert values[-1] == pytest.approx(0.1)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_clamps_after_total_steps(self):
        optimizer = SGD([Tensor(np.zeros(1), requires_grad=True)], lr=1.0)
        schedule = CosineSchedule(optimizer, total_steps=5)
        for _ in range(8):
            lr = schedule.step()
        assert lr == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_total_steps(self):
        optimizer = SGD([Tensor(np.zeros(1), requires_grad=True)], lr=1.0)
        with pytest.raises(ValueError):
            CosineSchedule(optimizer, total_steps=0)
