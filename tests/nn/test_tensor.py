"""Autograd engine tests: every primitive op is checked against a
numerical gradient, plus graph-mechanics behaviour (no_grad, accumulation,
error paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, no_grad, stack, where
from tests.conftest import numerical_gradient


def check_grad(build, *shapes, seed=0, tol=1e-5):
    """Gradcheck helper: ``build(*tensors)`` returns a scalar Tensor."""
    rng = np.random.default_rng(seed)
    tensors = [Tensor(rng.normal(size=s) + 0.5, requires_grad=True) for s in shapes]
    loss = build(*tensors)
    loss.backward()
    for t in tensors:
        assert t.grad is not None, "missing gradient"
        num = numerical_gradient(lambda: build(*tensors).item(), t.data)
        np.testing.assert_allclose(t.grad, num, atol=tol, rtol=tol)


class TestArithmetic:
    def test_add_grad(self):
        check_grad(lambda a, b: ((a + b) * (a + b)).sum(), (3, 4), (3, 4))

    def test_add_broadcast_grad(self):
        check_grad(lambda a, b: ((a + b) ** 2).sum(), (3, 4), (4,))

    def test_mul_grad(self):
        check_grad(lambda a, b: (a * b).sum(), (2, 3), (2, 3))

    def test_mul_broadcast_scalar_shape(self):
        check_grad(lambda a, b: (a * b).sum(), (2, 3), (1, 1))

    def test_sub_and_neg(self):
        check_grad(lambda a, b: ((a - b) * (-a)).sum(), (3,), (3,))

    def test_div_grad(self):
        check_grad(lambda a, b: (a / (b * b + 1.0)).sum(), (2, 2), (2, 2))

    def test_pow_grad(self):
        check_grad(lambda a: (a**3).sum(), (4,))

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_radd_rmul_with_floats(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = (2.0 + t) * 3.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, 3.0 * np.ones(3))


class TestMatmul:
    def test_matmul_grad(self):
        check_grad(lambda a, b: (a @ b).sum(), (3, 4), (4, 5))

    def test_batched_matmul_grad(self):
        check_grad(lambda a, b: (a @ b).sum(), (2, 3, 4), (2, 4, 5))

    def test_broadcast_batched_matmul_grad(self):
        check_grad(lambda a, b: (a @ b).sum(), (2, 3, 4), (4, 5))

    def test_matmul_values(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(12.0).reshape(3, 4)
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)


class TestShape:
    def test_reshape_grad(self):
        check_grad(lambda a: (a.reshape(6) ** 2).sum(), (2, 3))

    def test_reshape_minus_one(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.reshape(2, -1).shape == (2, 12)

    def test_transpose_grad(self):
        check_grad(lambda a: (a.transpose(1, 0) @ a).sum(), (3, 4))

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)

    def test_swapaxes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.swapaxes(0, 2).shape == (4, 3, 2)

    def test_getitem_grad(self):
        check_grad(lambda a: (a[1:, :2] ** 2).sum(), (3, 4))

    def test_getitem_fancy_index_grad(self):
        idx = np.array([0, 2, 2])

        def build(a):
            return (a[:, idx] ** 2).sum()

        check_grad(build, (2, 4))

    def test_concatenate_grad(self):
        check_grad(
            lambda a, b: (concatenate([a, b], axis=1) ** 2).sum(), (2, 3), (2, 2)
        )

    def test_stack_grad(self):
        check_grad(lambda a, b: (stack([a, b], axis=0) ** 2).sum(), (2, 3), (2, 3))

    def test_where_grad(self):
        cond = np.array([[True, False], [False, True]])
        check_grad(lambda a, b: (where(cond, a, b) ** 2).sum(), (2, 2), (2, 2))


class TestReductions:
    def test_sum_axis_grad(self):
        check_grad(lambda a: (a.sum(axis=0) ** 2).sum(), (3, 4))

    def test_sum_keepdims_grad(self):
        check_grad(lambda a: (a / a.sum(axis=1, keepdims=True)).sum(), (3, 4), seed=3)

    def test_mean_grad(self):
        check_grad(lambda a: (a.mean(axis=1) ** 2).sum(), (3, 4))

    def test_mean_matches_sum(self):
        t = Tensor(np.arange(12.0).reshape(3, 4))
        np.testing.assert_allclose(t.mean(axis=1).data, t.data.mean(axis=1))

    def test_max_grad_unique(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.permutation(12).astype(float).reshape(3, 4), requires_grad=True)
        x.max(axis=1).sum().backward()
        # Gradient is 1 exactly at each row argmax.
        expected = np.zeros((3, 4))
        expected[np.arange(3), x.data.argmax(axis=1)] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_max_ties_split_gradient(self):
        x = Tensor(np.ones((1, 4)), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad.sum(), 1.0)


class TestPointwise:
    def test_exp_log_sqrt_tanh_grads(self):
        check_grad(lambda a: (a.exp() + (a * a + 1.0).log() + (a * a + 1.0).sqrt() + a.tanh()).sum(), (3, 3))

    def test_relu_grad(self):
        x = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 1.0])

    def test_sigmoid_grad(self):
        check_grad(lambda a: a.sigmoid().sum(), (4,))

    def test_abs_grad(self):
        x = Tensor(np.array([-2.0, 3.0]), requires_grad=True)
        x.abs().sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0])


class TestGraphMechanics:
    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_no_grad_restores_on_exception(self):
        from repro.nn.tensor import is_grad_enabled

        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.ones(2), requires_grad=True)
        ((x * 2.0).sum() + (x * 3.0).sum()).backward()
        np.testing.assert_allclose(x.grad, [5.0, 5.0])

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_backward_grad_shape_mismatch(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 1.0
        with pytest.raises(ValueError):
            y.backward(np.ones(4))

    def test_zero_grad(self):
        x = Tensor(np.ones(1), requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_stops_gradient(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x.detach() * x).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(2))

    def test_repr_mentions_shape(self):
        assert "shape=(2, 3)" in repr(Tensor(np.zeros((2, 3))))

    def test_item_and_numpy(self):
        t = Tensor(np.array(3.5))
        assert t.item() == 3.5
        assert t.numpy() is t.data
