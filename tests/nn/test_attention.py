"""Attention mechanics and the token filter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import MultiHeadSelfAttention, Tensor, TokenFilter
from repro.nn.attention import AttentionStats


def make_stats(scores: np.ndarray) -> AttentionStats:
    return AttentionStats(column_sum=scores[None], column_max=scores[None])


class TestMultiHeadSelfAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(dim=16, num_heads=4, seed=0)
        out = attn(Tensor(np.random.default_rng(0).normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(dim=10, num_heads=3)

    def test_stats_recorded(self):
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, seed=0)
        attn(Tensor(np.random.default_rng(1).normal(size=(3, 6, 8))))
        stats = attn.last_stats
        assert stats.column_sum.shape == (3, 6)
        assert stats.column_max.shape == (3, 6)
        # Each of the 2 heads x 6 queries rows sums to 1, so columns sum to 12.
        np.testing.assert_allclose(stats.column_sum.sum(axis=1), 12.0, atol=1e-8)
        assert (stats.column_max <= 1.0).all() and (stats.column_max >= 0.0).all()

    def test_gradient_flows_through_attention(self):
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, seed=0)
        x = Tensor(np.random.default_rng(2).normal(size=(1, 4, 8)), requires_grad=True)
        (attn(x) ** 2).sum().backward()
        assert x.grad is not None and np.abs(x.grad).sum() > 0

    def test_masked_tokens_receive_zero_attention(self):
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, seed=0)
        x = np.random.default_rng(3).normal(size=(2, 5, 8))
        mask = np.ones((2, 5), dtype=bool)
        mask[0, 3] = mask[1, 1] = mask[1, 4] = False
        attn(Tensor(x), key_mask=mask)
        stats = attn.last_stats
        assert stats.column_sum[0, 3] == 0.0 and stats.column_max[0, 3] == 0.0
        assert stats.column_sum[1, 1] == 0.0 and stats.column_sum[1, 4] == 0.0

    def test_masked_batch_matches_compacted_single(self):
        """Masking a sample's dead tokens == running its live tokens alone."""
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, seed=0)
        x = np.random.default_rng(4).normal(size=(1, 6, 8))
        live = np.array([0, 2, 3, 5])
        mask = np.zeros((1, 6), dtype=bool)
        mask[0, live] = True
        masked_out = attn(Tensor(x), key_mask=mask).data[0, live]
        compact_out = attn(Tensor(x[:, live])).data[0]
        np.testing.assert_allclose(masked_out, compact_out, atol=1e-12)

    def test_all_true_mask_is_exact_no_op(self):
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, seed=0)
        x = np.random.default_rng(5).normal(size=(2, 4, 8))
        plain = attn(Tensor(x)).data
        masked = attn(Tensor(x), key_mask=np.ones((2, 4), dtype=bool)).data
        np.testing.assert_array_equal(plain, masked)

    def test_mask_validation(self):
        attn = MultiHeadSelfAttention(dim=8, num_heads=2, seed=0)
        x = Tensor(np.zeros((2, 4, 8)))
        with pytest.raises(ValueError):
            attn(x, key_mask=np.ones((2, 5), dtype=bool))
        with pytest.raises(ValueError):
            attn(x, key_mask=np.zeros((2, 4), dtype=bool))


class TestTokenFilter:
    def test_requires_exactly_one_policy(self):
        with pytest.raises(ValueError):
            TokenFilter()
        with pytest.raises(ValueError):
            TokenFilter(threshold=0.1, ratio=0.2)

    def test_rejects_invalid_ratio_or_criterion(self):
        with pytest.raises(ValueError):
            TokenFilter(ratio=1.0)
        with pytest.raises(ValueError):
            TokenFilter(threshold=0.1, criterion="median")

    def test_threshold_keeps_high_scores(self):
        scores = np.array([0.9, 0.05, 0.5, 0.02, 0.8])
        keep = TokenFilter(threshold=0.4).keep_indices(make_stats(scores))
        np.testing.assert_array_equal(keep, [0, 2, 4])

    def test_cls_token_always_kept(self):
        scores = np.array([0.0, 0.9, 0.9, 0.9])
        keep = TokenFilter(threshold=0.5).keep_indices(make_stats(scores))
        assert 0 in keep

    def test_ratio_drops_expected_count(self):
        scores = np.linspace(1.0, 0.1, 11)  # token 0 is CLS
        keep = TokenFilter(ratio=0.5).keep_indices(make_stats(scores))
        # 5 of the 10 non-CLS tokens dropped.
        assert keep.size == 6
        assert 0 in keep

    def test_ratio_drops_lowest_importance(self):
        scores = np.array([0.5, 0.9, 0.1, 0.8, 0.2])
        keep = TokenFilter(ratio=0.5).keep_indices(make_stats(scores))
        np.testing.assert_array_equal(keep, [0, 1, 3])

    def test_degenerate_threshold_keeps_best_token(self):
        scores = np.array([0.01, 0.2, 0.9, 0.3])
        keep = TokenFilter(threshold=5.0).keep_indices(make_stats(scores))
        np.testing.assert_array_equal(keep, [0, 2])

    def test_keep_indices_is_per_sample(self):
        stats = AttentionStats(
            column_sum=np.ones((2, 4)), column_max=np.ones((2, 4))
        )
        with pytest.raises(ValueError):
            TokenFilter(ratio=0.2).keep_indices(stats)

    def test_keep_mask_batches_independently(self):
        scores = np.array([[0.9, 0.05, 0.5, 0.02, 0.8], [0.9, 0.7, 0.5, 0.6, 0.01]])
        stats = AttentionStats(column_sum=scores, column_max=scores)
        mask = TokenFilter(threshold=0.4).keep_mask(stats)
        np.testing.assert_array_equal(
            mask, [[True, False, True, False, True], [True, True, True, True, False]]
        )

    def test_keep_mask_matches_keep_indices(self):
        scores = np.array([0.5, 0.9, 0.1, 0.8, 0.2])
        stats = AttentionStats(column_sum=scores[None], column_max=scores[None])
        for filt in (TokenFilter(ratio=0.5), TokenFilter(threshold=0.4)):
            mask = filt.keep_mask(stats)
            np.testing.assert_array_equal(np.flatnonzero(mask[0]), filt.keep_indices(stats))

    def test_keep_mask_never_revives_dead_tokens(self):
        scores = np.array([[0.5, 0.9, 0.9, 0.9, 0.9]])
        stats = AttentionStats(column_sum=scores, column_max=scores)
        active = np.array([[True, True, False, True, False]])
        mask = TokenFilter(threshold=0.1).keep_mask(stats, active)
        np.testing.assert_array_equal(mask, [[True, True, False, True, False]])

    def test_keep_mask_degenerate_keeps_best_live_token(self):
        scores = np.array([[0.01, 0.2, 0.9, 0.3]])
        stats = AttentionStats(column_sum=scores, column_max=scores)
        active = np.array([[True, True, False, True]])
        mask = TokenFilter(threshold=5.0).keep_mask(stats, active)
        # Token 2 has the best score but is dead; token 3 is the best live one.
        np.testing.assert_array_equal(mask, [[True, False, False, True]])

    def test_sum_criterion(self):
        stats = AttentionStats(
            column_sum=np.array([[5.0, 1.0, 4.0]]),
            column_max=np.array([[0.1, 0.9, 0.1]]),
        )
        keep = TokenFilter(ratio=0.5, criterion="sum").keep_indices(stats)
        np.testing.assert_array_equal(keep, [0, 2])
