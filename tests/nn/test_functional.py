"""Gradient and value checks for the composite/fused functional ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from tests.conftest import numerical_gradient


def gradcheck(build, *shapes, seed=0, tol=1e-5):
    rng = np.random.default_rng(seed)
    tensors = [Tensor(rng.normal(size=s), requires_grad=True) for s in shapes]
    build(*tensors).backward()
    for t in tensors:
        num = numerical_gradient(lambda: build(*tensors).item(), t.data)
        np.testing.assert_allclose(t.grad, num, atol=tol, rtol=tol)


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 7)))
        out = F.softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_softmax_shift_invariance(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 1000.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_softmax_grad(self):
        gradcheck(lambda a: (F.softmax(a, axis=-1) ** 2).sum(), (3, 5))

    def test_log_softmax_grad(self):
        gradcheck(lambda a: (F.log_softmax(a, axis=-1) * F.log_softmax(a, axis=-1)).sum(), (3, 4))

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.random.default_rng(2).normal(size=(2, 6))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data, np.log(F.softmax(Tensor(x)).data), atol=1e-10
        )

    def test_logsumexp_matches_numpy(self):
        x = np.random.default_rng(3).normal(size=(4, 6)) * 10
        expected = np.log(np.exp(x).sum(axis=-1))
        np.testing.assert_allclose(F.logsumexp(Tensor(x), axis=-1).data, expected, atol=1e-10)

    def test_logsumexp_stable_for_large_inputs(self):
        x = Tensor(np.array([1000.0, 1000.0]))
        out = F.logsumexp(x, axis=0)
        assert np.isfinite(out.data)
        np.testing.assert_allclose(out.data, 1000.0 + np.log(2.0))

    def test_logsumexp_grad(self):
        gradcheck(lambda a: F.logsumexp(a, axis=0).sum(), (5,))

    def test_logsumexp_keepdims(self):
        x = Tensor(np.zeros((2, 3)))
        assert F.logsumexp(x, axis=1, keepdims=True).shape == (2, 1)


class TestActivations:
    def test_gelu_grad(self):
        gradcheck(lambda a: F.gelu(a).sum(), (6,))

    def test_gelu_known_values(self):
        out = F.gelu(Tensor(np.array([0.0]))).data
        np.testing.assert_allclose(out, [0.0], atol=1e-12)
        assert F.gelu(Tensor(np.array([3.0]))).data[0] == pytest.approx(3.0, abs=0.02)

    def test_dropout_eval_is_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_scales_surviving_units(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=True)
        values = np.unique(out.data)
        assert set(np.round(values, 6)) <= {0.0, 2.0}
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(2)), 1.0, np.random.default_rng(0), training=True)


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        x = Tensor(np.random.default_rng(0).normal(3.0, 5.0, size=(4, 8)))
        w = Tensor(np.ones(8))
        b = Tensor(np.zeros(8))
        out = F.layer_norm(x, w, b).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_layer_norm_grads(self):
        gradcheck(
            lambda x, w, b: (F.layer_norm(x, w, b) ** 2).sum(),
            (3, 6),
            (6,),
            (6,),
            tol=1e-4,
        )


class TestConvPool:
    def _naive_conv(self, x, w, b, stride, padding):
        n, c, h, wd = x.shape
        o, _, kh, kw = w.shape
        xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        oh = (xp.shape[2] - kh) // stride + 1
        ow = (xp.shape[3] - kw) // stride + 1
        out = np.zeros((n, o, oh, ow))
        for ni in range(n):
            for oi in range(o):
                for yi in range(oh):
                    for xi in range(ow):
                        patch = xp[ni, :, yi * stride : yi * stride + kh, xi * stride : xi * stride + kw]
                        out[ni, oi, yi, xi] = (patch * w[oi]).sum() + b[oi]
        return out

    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_conv2d_matches_naive(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 3, 6, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        np.testing.assert_allclose(out.data, self._naive_conv(x, w, b, stride, padding), atol=1e-10)

    def test_conv2d_grad(self):
        gradcheck(
            lambda x, w, b: (F.conv2d(x, w, b, stride=2, padding=1) ** 2).sum(),
            (1, 2, 5, 5),
            (3, 2, 3, 3),
            (3,),
            tol=1e-4,
        )

    def test_conv2d_channel_mismatch(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 2, 4, 4))), Tensor(np.zeros((3, 5, 3, 3))))

    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_routes_to_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        np.testing.assert_allclose(x.grad[0, 0], expected)

    def test_avg_pool_values_and_grad(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        out = F.avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))


class TestLosses:
    def test_mse_loss_value(self):
        pred = Tensor(np.array([[1.0, 2.0]]))
        loss = F.mse_loss(pred, np.array([[0.0, 0.0]]))
        assert loss.item() == pytest.approx(2.5)

    def test_mse_loss_grad(self):
        gradcheck(lambda a: F.mse_loss(a, np.zeros((3, 2))), (3, 2))

    def test_bce_with_logits_matches_reference(self):
        logits = np.array([-2.0, 0.0, 3.0])
        targets = np.array([0.0, 1.0, 1.0])
        loss = F.binary_cross_entropy_with_logits(Tensor(logits), targets)
        p = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert loss.item() == pytest.approx(expected, abs=1e-10)

    def test_bce_pos_weight_raises_positive_loss(self):
        logits = Tensor(np.array([-1.0]))
        base = F.binary_cross_entropy_with_logits(logits, np.array([1.0]))
        weighted = F.binary_cross_entropy_with_logits(logits, np.array([1.0]), pos_weight=4.0)
        assert weighted.item() == pytest.approx(4 * base.item())

    def test_bce_grad(self):
        gradcheck(
            lambda a: F.binary_cross_entropy_with_logits(a, np.array([1.0, 0.0, 1.0]), pos_weight=2.0),
            (3,),
        )
