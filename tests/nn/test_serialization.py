"""Weight save/load round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, Sequential, Tensor, load_weights, save_weights


def test_roundtrip(tmp_path):
    model = Sequential(Linear(4, 8, seed=0), Linear(8, 2, seed=1))
    path = tmp_path / "weights.npz"
    save_weights(model, path)

    other = Sequential(Linear(4, 8, seed=9), Linear(8, 2, seed=10))
    load_weights(other, path)
    x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
    np.testing.assert_allclose(model(x).data, other(x).data)


def test_load_rejects_architecture_mismatch(tmp_path):
    model = Sequential(Linear(4, 8, seed=0))
    path = tmp_path / "weights.npz"
    save_weights(model, path)
    wrong = Sequential(Linear(4, 8, seed=0), Linear(8, 2, seed=1))
    with pytest.raises(KeyError):
        load_weights(wrong, path)
