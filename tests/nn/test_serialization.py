"""Weight save/load round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Linear,
    PersistenceError,
    Sequential,
    Tensor,
    load_weights,
    save_weights,
)


def test_roundtrip(tmp_path):
    model = Sequential(Linear(4, 8, seed=0), Linear(8, 2, seed=1))
    path = tmp_path / "weights.npz"
    save_weights(model, path)

    other = Sequential(Linear(4, 8, seed=9), Linear(8, 2, seed=10))
    load_weights(other, path)
    x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
    np.testing.assert_allclose(model(x).data, other(x).data)


def test_load_rejects_architecture_mismatch(tmp_path):
    model = Sequential(Linear(4, 8, seed=0))
    path = tmp_path / "weights.npz"
    save_weights(model, path)
    wrong = Sequential(Linear(4, 8, seed=0), Linear(8, 2, seed=1))
    with pytest.raises(PersistenceError, match="missing"):
        load_weights(wrong, path)


def test_strict_false_loads_intersection(tmp_path):
    model = Sequential(Linear(4, 8, seed=0))
    path = tmp_path / "weights.npz"
    save_weights(model, path)
    wider = Sequential(Linear(4, 8, seed=7), Linear(8, 2, seed=8))
    before = wider.state_dict()["layers.1.weight"].copy()
    load_weights(wider, path, strict=False)
    state = wider.state_dict()
    np.testing.assert_allclose(
        state["layers.0.weight"], model.state_dict()["layers.0.weight"]
    )
    np.testing.assert_allclose(state["layers.1.weight"], before)


def test_load_rejects_shape_mismatch(tmp_path):
    model = Sequential(Linear(4, 8, seed=0))
    state = model.state_dict()
    state["layers.0.weight"] = state["layers.0.weight"][:, :3]
    path = tmp_path / "weights.npz"
    np.savez(path, **state)
    with pytest.raises(PersistenceError, match="layers.0.weight"):
        load_weights(Sequential(Linear(4, 8, seed=1)), path)


def test_load_rejects_dtype_mismatch(tmp_path):
    model = Sequential(Linear(4, 8, seed=0))
    state = model.state_dict()
    state["layers.0.bias"] = state["layers.0.bias"].astype(np.float32)
    path = tmp_path / "weights.npz"
    np.savez(path, **state)
    with pytest.raises(PersistenceError, match="layers.0.bias"):
        load_weights(Sequential(Linear(4, 8, seed=1)), path)


def test_load_rejects_non_finite_values(tmp_path):
    model = Sequential(Linear(4, 8, seed=0))
    state = model.state_dict()
    state["layers.0.weight"][0, 0] = np.nan
    path = tmp_path / "weights.npz"
    np.savez(path, **state)
    with pytest.raises(PersistenceError, match="layers.0.weight"):
        load_weights(Sequential(Linear(4, 8, seed=1)), path)


def test_load_rejects_truncated_archive(tmp_path):
    model = Sequential(Linear(4, 8, seed=0))
    path = tmp_path / "weights.npz"
    save_weights(model, path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(PersistenceError, match="corrupt or truncated"):
        load_weights(Sequential(Linear(4, 8, seed=1)), path)
