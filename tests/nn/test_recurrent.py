"""Leaky recurrent cell (paper Eq. 2)."""

from __future__ import annotations

import numpy as np

from repro.nn import LeakyRecurrentCell, Tensor


class TestLeakyRecurrentCell:
    def test_matches_equation_two(self):
        cell = LeakyRecurrentCell(3, 4, seed=0)
        x = np.random.default_rng(0).normal(size=(2, 3))
        h = np.random.default_rng(1).normal(size=(2, 4))
        out = cell(Tensor(x), Tensor(h)).data
        w, wb = cell.w.weight.data, cell.w.bias.data
        u = cell.u.weight.data
        alpha, beta = cell.alpha.data, cell.beta.data
        expected = beta * h + alpha * np.tanh(x @ w.T + wb + h @ u.T)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_zero_initial_state(self):
        cell = LeakyRecurrentCell(3, 4, seed=0)
        x = Tensor(np.ones((2, 3)))
        implicit = cell(x).data
        explicit = cell(x, cell.initial_state(2)).data
        np.testing.assert_allclose(implicit, explicit)

    def test_alpha_beta_trainable(self):
        cell = LeakyRecurrentCell(2, 2, seed=0)
        names = dict(cell.named_parameters())
        assert "alpha" in names and "beta" in names
        x = Tensor(np.ones((1, 2)))
        h = cell(x)
        h = cell(x, h)
        (h * h).sum().backward()
        assert cell.alpha.grad is not None
        assert cell.beta.grad is not None

    def test_beta_controls_history_retention(self):
        cell = LeakyRecurrentCell(2, 2, seed=0)
        cell.alpha.data = np.array(0.0)
        cell.beta.data = np.array(0.5)
        h0 = Tensor(np.ones((1, 2)))
        h1 = cell(Tensor(np.zeros((1, 2))), h0)
        np.testing.assert_allclose(h1.data, 0.5 * np.ones((1, 2)))

    def test_state_bounded_over_long_sequences(self):
        """With |beta| < 1 and bounded tanh, the state cannot blow up."""
        cell = LeakyRecurrentCell(2, 3, seed=0)
        cell.beta.data = np.array(0.9)
        cell.alpha.data = np.array(1.0)
        h = None
        rng = np.random.default_rng(0)
        for _ in range(200):
            h = cell(Tensor(rng.normal(size=(1, 2))), h)
        bound = 1.0 / (1.0 - 0.9) + 1e-6
        assert np.abs(h.data).max() <= bound
