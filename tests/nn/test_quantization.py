"""INT8 fake-quantization behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import ActivationQuantizer, Linear, QuantSpec, Tensor, quantize_weights
from repro.nn.quantization import quantization_error


class TestQuantSpec:
    def test_qmax(self):
        assert QuantSpec(bits=8).qmax == 127
        assert QuantSpec(bits=4).qmax == 7

    def test_quantize_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000)
        spec = QuantSpec(bits=8)
        q = spec.quantize(x)
        scale = spec.scale_for(x)
        assert np.abs(q - x).max() <= scale / 2 + 1e-12

    def test_quantize_idempotent(self):
        x = np.random.default_rng(1).normal(size=100)
        spec = QuantSpec()
        scale = spec.scale_for(x)
        once = spec.quantize(x, scale)
        twice = spec.quantize(once, scale)
        np.testing.assert_allclose(once, twice)

    def test_zero_array_scale(self):
        assert QuantSpec().scale_for(np.zeros(4)) == 1.0

    def test_quantize_to_int_dtype_and_range(self):
        x = np.linspace(-1, 1, 11)
        codes, scale = QuantSpec(bits=8).quantize_to_int(x)
        assert codes.dtype == np.int8
        assert codes.max() == 127 and codes.min() == -127
        np.testing.assert_allclose(codes * scale, x, atol=scale)

    def test_more_bits_less_error(self):
        x = np.random.default_rng(2).normal(size=500)
        assert quantization_error(x, QuantSpec(bits=8)) < quantization_error(
            x, QuantSpec(bits=4)
        )


class TestQuantizeWeights:
    def test_weights_changed_and_scales_returned(self):
        layer = Linear(16, 16, seed=0)
        before = layer.weight.data.copy()
        scales = quantize_weights(layer)
        assert "weight" in scales
        assert not np.allclose(layer.weight.data, before)
        # Per-channel quantization error is bounded by half the *tensor*
        # step (each row's step is at most the tensor-wide one).
        assert np.abs(layer.weight.data - before).max() <= scales["weight"] / 2 + 1e-12

    def test_quantized_weights_on_grid_per_tensor(self):
        layer = Linear(8, 8, seed=1)
        scales = quantize_weights(layer, per_channel=False)
        codes = layer.weight.data / scales["weight"]
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-9)

    def test_per_channel_beats_per_tensor_on_skewed_rows(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(8, 16))
        weights[0] *= 100.0  # one hot row would blow up a shared scale
        spec = QuantSpec(bits=8)
        per_tensor_err = np.abs(spec.quantize(weights) - weights)[1:].max()
        per_channel_err = np.abs(spec.quantize_per_channel(weights) - weights)[1:].max()
        assert per_channel_err < 0.1 * per_tensor_err

    def test_per_channel_rows_on_their_grids(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(4, 6))
        spec = QuantSpec(bits=8)
        out = spec.quantize_per_channel(weights, axis=0)
        for row_in, row_out in zip(weights, out):
            scale = np.abs(row_in).max() / spec.qmax
            codes = row_out / scale
            np.testing.assert_allclose(codes, np.round(codes), atol=1e-6)

    def test_per_channel_vector_falls_back(self):
        spec = QuantSpec(bits=8)
        vec = np.array([0.5, -1.0, 0.25])
        np.testing.assert_allclose(
            spec.quantize_per_channel(vec), spec.quantize(vec)
        )


class TestEdgeValues:
    """Quantizing extreme inputs must be loud or lossless, never silent."""

    def test_nan_raises_with_location(self):
        x = np.array([0.0, np.nan, 1.0])
        with pytest.raises(ValueError, match=r"non-finite.*index \(1,\)"):
            QuantSpec().quantize(x)

    def test_inf_raises(self):
        for bad in (np.inf, -np.inf):
            with pytest.raises(ValueError, match="non-finite"):
                QuantSpec().quantize(np.array([bad]))

    def test_nan_raises_everywhere(self):
        spec = QuantSpec()
        bad = np.array([[np.nan, 1.0]])
        with pytest.raises(ValueError):
            spec.scale_for(bad)
        with pytest.raises(ValueError):
            spec.quantize_to_int(bad)
        with pytest.raises(ValueError):
            spec.quantize_per_channel(bad)
        with pytest.raises(ValueError):
            ActivationQuantizer().observe(bad)

    def test_non_positive_or_nonfinite_scale_rejected(self):
        spec = QuantSpec()
        for scale in (0.0, -1.0, np.nan, np.inf):
            with pytest.raises(ValueError, match="scale"):
                spec.quantize(np.array([1.0]), scale)

    def test_max_magnitude_float_round_trips(self):
        peak = np.finfo(np.float64).max
        x = np.array([peak, -peak, 0.0])
        spec = QuantSpec()
        codes, scale = spec.quantize_to_int(x)
        assert np.isfinite(scale)
        assert codes.tolist() == [127, -127, 0]
        requant, rescale = spec.quantize_to_int(spec.dequantize(codes, scale), scale)
        assert rescale == scale
        assert np.array_equal(requant, codes)

    def test_subnormal_peak_scale_stays_finite(self):
        tiny = np.array([5e-324, -5e-324])  # smallest subnormals
        scale = QuantSpec().scale_for(tiny)
        assert np.isfinite(scale) and scale > 0.0
        out = QuantSpec().quantize(tiny, scale)
        assert np.isfinite(out).all()

    def test_subnormal_rows_per_channel_finite(self):
        w = np.array([[5e-324, 0.0], [1.0, -2.0]])
        out = QuantSpec().quantize_per_channel(w)
        assert np.isfinite(out).all()

    def test_dequantize_codes_round_trip_exactly(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=64)
        spec = QuantSpec()
        codes, scale = spec.quantize_to_int(x)
        again, _ = spec.quantize_to_int(spec.dequantize(codes, scale), scale)
        assert np.array_equal(again, codes)


class TestActivationQuantizer:
    def test_requires_calibration_for_scale(self):
        q = ActivationQuantizer()
        with pytest.raises(RuntimeError):
            _ = q.scale

    def test_observe_then_quantize(self):
        q = ActivationQuantizer()
        q.observe(np.array([2.0, -4.0]))
        assert q.calibrated
        out = q(np.array([1.0]))
        assert abs(out[0] - 1.0) <= q.scale / 2

    def test_first_call_self_calibrates(self):
        q = ActivationQuantizer()
        out = q(np.array([3.0, -1.0]))
        assert q.calibrated
        assert out.shape == (2,)

    def test_tensor_passthrough(self):
        q = ActivationQuantizer()
        out = q(Tensor(np.array([0.5, -0.5])))
        assert isinstance(out, Tensor)

    def test_peak_only_grows(self):
        q = ActivationQuantizer()
        q.observe(np.array([10.0]))
        scale_before = q.scale
        q.observe(np.array([1.0]))
        assert q.scale == scale_before
