"""Property-based tests (hypothesis) on core numeric invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import QuantSpec, Tensor
from repro.nn import functional as F

finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


def arrays(shape):
    return hnp.arrays(np.float64, shape, elements=finite_floats)


@settings(max_examples=40, deadline=None)
@given(arrays((3, 6)))
def test_softmax_is_distribution(x):
    out = F.softmax(Tensor(x), axis=-1).data
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(arrays((8,)))
def test_logsumexp_bounds_max(x):
    out = F.logsumexp(Tensor(x), axis=0).data
    assert out >= x.max() - 1e-9
    assert out <= x.max() + np.log(x.size) + 1e-9


@settings(max_examples=40, deadline=None)
@given(arrays((40,)))
def test_quantization_error_bounded_by_half_step(x):
    spec = QuantSpec(bits=8)
    scale = spec.scale_for(x)
    q = spec.quantize(x)
    assert np.abs(q - x).max() <= scale / 2 + 1e-12


@settings(max_examples=40, deadline=None)
@given(arrays((4, 9)))
def test_layer_norm_output_statistics(x):
    # Only meaningful when rows have spread; constant rows stay ~zero.
    w = Tensor(np.ones(9))
    b = Tensor(np.zeros(9))
    out = F.layer_norm(Tensor(x), w, b).data
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)
    for row_in, row_out in zip(x, out):
        # eps in the denominator matters for near-constant rows; only
        # rows with real spread normalize to unit variance.
        if row_in.std() > 0.1:
            assert abs(row_out.std() - 1.0) < 1e-2


@settings(max_examples=30, deadline=None)
@given(arrays((3, 5)), arrays((3, 5)))
def test_addition_gradient_is_ones(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta + tb).sum().backward()
    np.testing.assert_allclose(ta.grad, np.ones_like(a))
    np.testing.assert_allclose(tb.grad, np.ones_like(b))


@settings(max_examples=30, deadline=None)
@given(arrays((2, 4)))
def test_relu_output_nonnegative_and_sparse_grad(x):
    t = Tensor(x, requires_grad=True)
    out = t.relu()
    assert (out.data >= 0).all()
    out.sum().backward()
    np.testing.assert_allclose(t.grad, (x > 0).astype(float))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
def test_matmul_grad_shapes_match_inputs(m, k, n):
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(m, k)), requires_grad=True)
    b = Tensor(rng.normal(size=(k, n)), requires_grad=True)
    (a @ b).sum().backward()
    assert a.grad.shape == (m, k)
    assert b.grad.shape == (k, n)
