"""The ``fleet`` campaign runner: resolve, execute, metric surface."""

from __future__ import annotations

import pytest

from repro.exp.errors import CampaignConfigError
from repro.exp.runners import RUNNERS, execute_spec, resolve_spec

PARAMS = {
    "serve": {"n_sessions": 12, "duration_s": 0.3},
    "n_shards": 3,
    "kills": [{"shard_id": 1, "at_s": 0.15}],
}


class TestResolve:
    def test_registered(self):
        assert "fleet" in RUNNERS

    def test_run_id_ignores_spelling(self):
        sparse = resolve_spec("fleet", PARAMS)
        explicit = resolve_spec("fleet", {**PARAMS, "vnodes": 64, "ring_seed": 0})
        assert sparse.run_id == explicit.run_id
        assert sparse.config["kind"] == "fleet"

    def test_bad_params_become_campaign_errors(self):
        with pytest.raises(CampaignConfigError, match="fleet params"):
            resolve_spec("fleet", {"bogus_knob": 1})


class TestExecute:
    def test_outcome_has_fleet_metrics_and_artifacts(self):
        outcome = execute_spec("fleet", PARAMS)
        for key in (
            "predict_goodput_fps", "p95_ms", "failover_lost_frames",
            "rehomed_sessions", "shards_serving", "migrations_completed",
        ):
            assert key in outcome.metrics
        assert outcome.metrics["shards_serving"] == 2.0
        report_txt = outcome.artifacts["report.txt"]
        assert "Fleet topology: 3 shards started" in report_txt
        assert "Failover: shard 1 killed at 0.150s" in report_txt
        assert "fleet_shards_serving" in outcome.artifacts["metrics.prom"]

    def test_execution_is_deterministic(self):
        a = execute_spec("fleet", PARAMS)
        b = execute_spec("fleet", PARAMS)
        assert a.metrics == b.metrics
        assert a.artifacts == b.artifacts
