"""Campaign expansion: deterministic order, dotted paths, validation."""

from __future__ import annotations

import pytest

from repro.exp.config import expand_campaign
from repro.exp.errors import CampaignConfigError


def test_grid_expands_rightmost_fastest_in_sorted_key_order():
    name, runs = expand_campaign({
        "name": "g",
        "runs": [{"runner": "r", "grid": {"b": [10, 20], "a": [1, 2]}}],
    })
    assert name == "g"
    assert [p for _, p in runs] == [
        {"a": 1, "b": 10}, {"a": 1, "b": 20},
        {"a": 2, "b": 10}, {"a": 2, "b": 20},
    ]


def test_seeds_is_shorthand_for_a_seed_axis():
    _, runs = expand_campaign({
        "name": "s",
        "runs": [{"runner": "r", "params": {"x": 1}, "seeds": [0, 1]}],
    })
    assert [p for _, p in runs] == [{"x": 1, "seed": 0}, {"x": 1, "seed": 1}]


def test_seeds_and_grid_seed_are_mutually_exclusive():
    with pytest.raises(CampaignConfigError, match="mutually exclusive"):
        expand_campaign({
            "name": "s",
            "runs": [{"runner": "r", "seeds": [0], "grid": {"seed": [1]}}],
        })


def test_dotted_grid_keys_reach_nested_params():
    _, runs = expand_campaign({
        "name": "d",
        "runs": [{
            "runner": "r",
            "params": {"serve": {"n_workers": 2}},
            "grid": {"serve.n_sessions": [4, 8]},
        }],
    })
    assert [p for _, p in runs] == [
        {"serve": {"n_workers": 2, "n_sessions": 4}},
        {"serve": {"n_workers": 2, "n_sessions": 8}},
    ]


def test_dotted_key_into_non_dict_is_rejected():
    with pytest.raises(CampaignConfigError, match="non-dict"):
        expand_campaign({
            "name": "d",
            "runs": [{"runner": "r", "params": {"x": 1}, "grid": {"x.y": [0]}}],
        })


def test_list_entries_append_after_the_grid():
    _, runs = expand_campaign({
        "name": "l",
        "runs": [{
            "runner": "r",
            "grid": {"a": [1]},
            "list": [{"a": 9}, {"b": 2}],
        }],
    })
    assert [p for _, p in runs] == [{"a": 1}, {"a": 9}, {"b": 2}]


def test_list_only_block_enumerates_only_the_list():
    _, runs = expand_campaign({
        "name": "l",
        "runs": [{"runner": "r", "params": {"base": 1},
                  "list": [{"a": 1}, {"a": 2}]}],
    })
    assert [p for _, p in runs] == [{"base": 1, "a": 1}, {"base": 1, "a": 2}]


def test_expansion_does_not_alias_params_between_runs():
    _, runs = expand_campaign({
        "name": "a",
        "runs": [{"runner": "r", "params": {"nest": {"x": 0}},
                  "grid": {"nest.x": [1, 2]}}],
    })
    runs[0][1]["nest"]["x"] = 99
    assert runs[1][1]["nest"]["x"] == 2


def test_blocks_concatenate_in_order():
    _, runs = expand_campaign({
        "name": "b",
        "runs": [
            {"runner": "one", "params": {"k": 1}},
            {"runner": "two", "params": {"k": 2}},
        ],
    })
    assert [(r, p["k"]) for r, p in runs] == [("one", 1), ("two", 2)]


@pytest.mark.parametrize("config, match", [
    ({"runs": [{"runner": "r"}]}, "name"),
    ({"name": "bad name!", "runs": [{"runner": "r"}]}, "name"),
    ({"name": "x", "runs": []}, "non-empty"),
    ({"name": "x", "runs": [{"runner": "r"}], "extra": 1}, "unknown campaign keys"),
    ({"name": "x", "runs": [{"params": {}}]}, "runner"),
    ({"name": "x", "runs": [{"runner": "r", "grid": {"a": []}}]}, "non-empty"),
    ({"name": "x", "runs": [{"runner": "r", "typo": 1}]}, "unknown keys"),
])
def test_malformed_campaigns_are_rejected(config, match):
    with pytest.raises(CampaignConfigError, match=match):
        expand_campaign(config)
