"""Campaign-level SLO blocks: per-run verdicts land in the runs ledger."""

from __future__ import annotations

import pytest

from repro.exp.errors import CampaignConfigError
from repro.exp.runner import run_campaign
from repro.exp.track import load_records


def slo_campaign(target: float) -> dict:
    return {
        "name": "echo-slo",
        "slo": {"objectives": [
            {"name": "value_floor", "metric": "value", "op": ">=",
             "target": target},
        ]},
        "runs": [
            {"runner": "echo", "grid": {"value": [1.0, 3.0]}},
        ],
    }


class TestCampaignSlo:
    def test_verdict_metrics_recorded_per_run(self, fake_runner, tmp_path):
        run_campaign(slo_campaign(target=2.0), tmp_path)
        records = load_records(tmp_path)
        by_value = {r["metrics"]["value"]: r["metrics"] for r in records}
        assert by_value[1.0]["slo_pass_value_floor"] == 0.0
        assert by_value[1.0]["slo_failed_total"] == 1.0
        assert by_value[3.0]["slo_pass_value_floor"] == 1.0
        assert by_value[3.0]["slo_failed_total"] == 0.0

    def test_identical_rerun_is_cached_but_edited_slo_is_refused(
        self, fake_runner, tmp_path
    ):
        from repro.exp.errors import LedgerError

        run_campaign(slo_campaign(target=2.0), tmp_path)
        result = run_campaign(slo_campaign(target=2.0), tmp_path)
        assert result.skipped == result.total
        # The slo block is part of the campaign identity: editing it
        # against an existing ledger is refused rather than leaving
        # cached records with verdicts from a different threshold.
        with pytest.raises(LedgerError, match="refusing to mix"):
            run_campaign(slo_campaign(target=0.5), tmp_path)

    def test_failed_slo_does_not_fail_the_run(self, fake_runner, tmp_path):
        result = run_campaign(slo_campaign(target=100.0), tmp_path)
        assert result.failed == 0
        records = load_records(tmp_path)
        assert all(
            r["metrics"]["slo_failed_total"] == 1.0 for r in records
        )

    def test_malformed_slo_block_is_a_config_error(self, fake_runner,
                                                   tmp_path):
        campaign = slo_campaign(target=1.0)
        campaign["slo"] = {"objectives": [
            {"name": "x", "metric": "value", "op": "==", "target": 1.0},
        ]}
        with pytest.raises(CampaignConfigError, match="campaign slo"):
            run_campaign(campaign, tmp_path)

    def test_unknown_slo_key_is_a_config_error(self, fake_runner, tmp_path):
        campaign = slo_campaign(target=1.0)
        campaign["slo"]["window_s"] = 1.0
        with pytest.raises(CampaignConfigError, match="unknown keys"):
            run_campaign(campaign, tmp_path)
