"""Tracking backend: sealed ledger, torn-tail repair, artifact store."""

from __future__ import annotations

import pytest

from repro.exp.errors import LedgerError
from repro.exp.track import (
    ArtifactStore,
    LEDGER_NAME,
    export_jsonl,
    export_prometheus,
    load_manifest,
    load_records,
    open_ledger,
)


def _record(ledger, run_id="aaa", status="ok", metrics=None):
    return ledger.record_run(
        run_id=run_id, runner="echo", config={"kind": "echo"},
        status=status, metrics=metrics or {"value": 1.0}, artifacts={},
    )


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put("hello\n")
        assert store.get(digest) == "hello\n"
        assert digest in store

    def test_put_is_idempotent_and_content_addressed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.put("same") == store.put("same")
        assert store.put("same") != store.put("different")

    def test_corrupt_blob_fails_hash_check(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put("payload")
        (tmp_path / digest[:2] / digest).write_text("tampered")
        with pytest.raises(LedgerError, match="content hash"):
            store.get(digest)


class TestLedger:
    def test_records_survive_reopen(self, tmp_path):
        with open_ledger(tmp_path, "c", {"name": "c"}) as ledger:
            _record(ledger, "run1")
            _record(ledger, "run2")
        records = load_records(tmp_path)
        assert [r["run_id"] for r in records] == ["run1", "run2"]
        assert [r["i"] for r in records] == [1, 2]

    def test_completed_ids_exclude_failures(self, tmp_path):
        with open_ledger(tmp_path, "c", {"name": "c"}) as ledger:
            _record(ledger, "good", status="ok")
            _record(ledger, "bad", status="failed")
            assert ledger.completed_ids == {"good"}

    def test_reopen_continues_the_index(self, tmp_path):
        with open_ledger(tmp_path, "c", {"name": "c"}) as ledger:
            _record(ledger, "run1")
        with open_ledger(tmp_path, "c", {"name": "c"}) as ledger:
            record = _record(ledger, "run2")
        assert record["i"] == 2

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        with open_ledger(tmp_path, "c", {"name": "c"}) as ledger:
            _record(ledger, "run1")
            _record(ledger, "run2")
        path = tmp_path / LEDGER_NAME
        intact = path.read_text().splitlines(keepends=True)
        path.write_text(intact[0] + intact[1][: len(intact[1]) // 2])
        with open_ledger(tmp_path, "c", {"name": "c"}) as ledger:
            assert [r["run_id"] for r in ledger.records] == ["run1"]
            record = _record(ledger, "run2")
        assert record["i"] == 2
        # The repaired + re-appended ledger byte-equals the intact one.
        assert path.read_text() == "".join(intact)

    def test_interior_damage_is_fatal(self, tmp_path):
        with open_ledger(tmp_path, "c", {"name": "c"}) as ledger:
            _record(ledger, "run1")
            _record(ledger, "run2")
        path = tmp_path / LEDGER_NAME
        lines = path.read_text().splitlines(keepends=True)
        path.write_text(lines[0][:10] + "X" + lines[0][11:] + lines[1])
        with pytest.raises(LedgerError):
            load_records(tmp_path)

    def test_mixing_campaigns_in_one_directory_is_refused(self, tmp_path):
        with open_ledger(tmp_path, "one", {"name": "one"}):
            pass
        with pytest.raises(LedgerError, match="refusing to mix"):
            open_ledger(tmp_path, "two", {"name": "two"})

    def test_edited_manifest_is_detected(self, tmp_path):
        with open_ledger(tmp_path, "c", {"name": "c"}):
            pass
        manifest_path = tmp_path / "campaign.json"
        manifest_path.write_text(
            manifest_path.read_text().replace('"name":"c"', '"name":"d"')
        )
        with pytest.raises(LedgerError, match="hash"):
            load_manifest(tmp_path)


class TestExports:
    def test_jsonl_export_is_one_line_per_run(self, tmp_path):
        with open_ledger(tmp_path, "c", {"name": "c"}) as ledger:
            _record(ledger, "run1", metrics={"value": 2.0})
        lines = export_jsonl(tmp_path).splitlines()
        assert len(lines) == 1
        assert '"run_id":"run1"' in lines[0]
        assert '"value":2.0' in lines[0]

    def test_prometheus_export_labels_each_metric(self, tmp_path):
        with open_ledger(tmp_path, "c", {"name": "c"}) as ledger:
            _record(ledger, "run1", metrics={"value": 2.0, "note": "text"})
        text = export_prometheus(tmp_path)
        assert 'campaign="c"' in text
        assert 'metric="value"' in text
        assert "note" not in text  # non-numeric metrics are skipped
