"""``python -m repro exp`` CLI: exit codes, determinism, artifact access."""

from __future__ import annotations

import json

import pytest

from repro.exp import cli
from repro.recover.cli import EXIT_SIMULATED_CRASH


@pytest.fixture()
def campaign_file(tmp_path, echo_campaign):
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(echo_campaign), encoding="utf-8")
    return path


def _run(*argv) -> int:
    return cli.main([str(a) for a in argv])


class TestRun:
    def test_run_then_cached_rerun(self, fake_runner, campaign_file,
                                   tmp_path, capsys):
        directory = tmp_path / "camp"
        assert _run("run", campaign_file, "--dir", directory) == 0
        first = capsys.readouterr().out
        assert "4 runs (0 cached, 4 executed, 0 failed)" in first
        assert _run("run", campaign_file, "--dir", directory) == 0
        assert "(4 cached, 0 executed" in capsys.readouterr().out

    def test_kill_exits_with_the_simulated_crash_code(
            self, fake_runner, campaign_file, tmp_path, capsys):
        directory = tmp_path / "camp"
        code = _run("run", campaign_file, "--dir", directory,
                    "--kill-after-runs", 2)
        assert code == EXIT_SIMULATED_CRASH
        assert "resume with" in capsys.readouterr().err
        assert _run("run", campaign_file, "--dir", directory) == 0
        assert "(2 cached, 2 executed" in capsys.readouterr().out

    def test_failures_exit_nonzero_but_record(self, fake_runner, tmp_path,
                                              capsys):
        config = tmp_path / "c.json"
        config.write_text(json.dumps({
            "name": "flaky",
            "runs": [{"runner": "echo",
                      "list": [{"value": 1.0}, {"fail": True}]}],
        }))
        assert _run("run", config, "--dir", tmp_path / "camp") == 1
        captured = capsys.readouterr()
        assert "1 failed" in captured.out
        assert "failed:" in captured.err

    def test_malformed_campaign_is_a_clean_error(self, tmp_path, capsys):
        config = tmp_path / "bad.json"
        config.write_text("{\"name\": \"x\"}")
        assert _run("run", config, "--dir", tmp_path / "camp") == 1
        assert "error:" in capsys.readouterr().err


class TestInspection:
    @pytest.fixture()
    def populated(self, fake_runner, campaign_file, tmp_path):
        directory = tmp_path / "camp"
        assert _run("run", campaign_file, "--dir", directory) == 0
        return directory

    def test_expand_is_a_dry_run(self, fake_runner, campaign_file, tmp_path,
                                 capsys):
        assert _run("expand", campaign_file) == 0
        out = capsys.readouterr().out
        assert "4 unique runs" in out
        assert not (tmp_path / "camp").exists()

    def test_list_show_compare_round_trip(self, populated, capsys):
        assert _run("list", "--dir", populated) == 0
        listing = capsys.readouterr().out
        run_ids = [line.split()[1] for line in listing.splitlines()[2:]]
        assert len(run_ids) == 4

        assert _run("show", run_ids[0], "--dir", populated) == 0
        assert "value_ms" in capsys.readouterr().out

        assert _run("compare", *run_ids, "--dir", populated,
                    "--baseline", run_ids[0]) == 0
        table = capsys.readouterr().out
        assert "(base)" in table and "value_ms" in table

    def test_cat_prints_a_stored_artifact(self, populated, capsys):
        assert _run("list", "--dir", populated) == 0
        run_id = capsys.readouterr().out.splitlines()[2].split()[1]
        assert _run("cat", run_id, "report.txt", "--dir", populated) == 0
        assert capsys.readouterr().out.startswith("echo value=")

    def test_export_formats(self, populated, capsys):
        assert _run("export", "--dir", populated, "--format", "jsonl") == 0
        jsonl = capsys.readouterr().out
        assert len(jsonl.splitlines()) == 4
        assert _run("export", "--dir", populated, "--format", "prom") == 0
        assert "exp_run_metric" in capsys.readouterr().out

    def test_show_on_missing_run_is_a_clean_error(self, populated, capsys):
        assert _run("show", "zzzzzz", "--dir", populated) == 1
        assert "no run" in capsys.readouterr().err

    def test_export_on_missing_directory_is_a_clean_error(self, tmp_path,
                                                          capsys):
        assert _run("export", "--dir", tmp_path / "nope",
                    "--format", "prom") == 1
        assert "error:" in capsys.readouterr().err
