"""Fixtures for the experiment-campaign suite.

``fake_runner`` registers a millisecond-fast deterministic runner so
ledger/runner mechanics can be exercised without paying for real
serving runs; the end-to-end tests use the real runners at tiny scale.
"""

from __future__ import annotations

import pytest

from repro.exp.runners import RUNNERS, RunOutcome


def _resolve_echo(params: dict) -> dict:
    params = dict(params)
    value = float(params.pop("value", 0.0))
    fail = bool(params.pop("fail", False))
    if params:
        raise ValueError(f"unknown echo params: {sorted(params)}")
    return {"kind": "echo", "value": value, "fail": fail}


def _execute_echo(params: dict) -> RunOutcome:
    resolved = _resolve_echo(params)
    if resolved["fail"]:
        raise RuntimeError("echo runner asked to fail")
    value = resolved["value"]
    return RunOutcome(
        metrics={"value": value, "value_ms": value * 2.0},
        artifacts={"report.txt": f"echo value={value}\n"},
    )


@pytest.fixture()
def fake_runner(monkeypatch):
    """Register the 'echo' runner for the duration of one test."""
    monkeypatch.setitem(RUNNERS, "echo", (_resolve_echo, _execute_echo))
    return "echo"


@pytest.fixture()
def echo_campaign():
    return {
        "name": "echo-sweep",
        "runs": [
            {"runner": "echo", "grid": {"value": [1.0, 2.0, 3.0, 4.0]}},
        ],
    }
