"""Campaign execution: identity, resume, kill/resume, determinism."""

from __future__ import annotations

import pytest

from repro.exp.errors import CampaignConfigError, CampaignKilled
from repro.exp.runner import resolve_campaign, run_campaign
from repro.exp.runners import resolve_spec
from repro.exp.track import LEDGER_NAME, load_records


class TestIdentity:
    def test_run_id_is_spelling_independent(self, fake_runner):
        explicit = resolve_spec("echo", {"value": 1.0, "fail": False})
        defaulted = resolve_spec("echo", {"value": 1})
        assert explicit.run_id == defaulted.run_id

    def test_unknown_runner_is_rejected(self):
        with pytest.raises(CampaignConfigError, match="unknown runner"):
            resolve_spec("warp", {})

    def test_bad_params_are_rejected_at_resolve_time(self, fake_runner):
        with pytest.raises(CampaignConfigError, match="rejected"):
            resolve_spec("echo", {"bogus": 1})

    def test_equivalent_sweep_points_collapse_to_one_run(self, fake_runner):
        _, specs = resolve_campaign({
            "name": "dup",
            "runs": [
                {"runner": "echo", "params": {"value": 1.0}},
                {"runner": "echo", "params": {"value": 1.0, "fail": False}},
                {"runner": "echo", "params": {"value": 2.0}},
            ],
        })
        assert len(specs) == 2


class TestExecution:
    def test_fresh_campaign_executes_everything(self, fake_runner,
                                                echo_campaign, tmp_path):
        result = run_campaign(echo_campaign, tmp_path)
        assert (result.total, result.skipped, result.executed,
                result.failed) == (4, 0, 4, 0)
        assert result.summary_line() == (
            "campaign echo-sweep: 4 runs (0 cached, 4 executed, 0 failed)"
        )

    def test_identical_rerun_is_a_full_cache_hit(self, fake_runner,
                                                 echo_campaign, tmp_path):
        run_campaign(echo_campaign, tmp_path)
        before = (tmp_path / LEDGER_NAME).read_bytes()
        result = run_campaign(echo_campaign, tmp_path)
        assert (result.skipped, result.executed) == (4, 0)
        assert (tmp_path / LEDGER_NAME).read_bytes() == before

    def test_failed_runs_are_recorded_and_retried(self, fake_runner, tmp_path):
        campaign = {
            "name": "flaky",
            "runs": [{"runner": "echo",
                      "list": [{"value": 1.0}, {"value": 2.0, "fail": True}]}],
        }
        result = run_campaign(campaign, tmp_path)
        assert (result.executed, result.failed) == (1, 1)
        failed = [r for r in load_records(tmp_path) if r["status"] == "failed"]
        assert len(failed) == 1
        assert "error.txt" in failed[0]["artifacts"]
        # A rerun retries the failure (and re-records it) but not the success.
        again = run_campaign(campaign, tmp_path)
        assert (again.skipped, again.failed) == (1, 1)

    def test_ledger_is_byte_deterministic_across_directories(
            self, fake_runner, echo_campaign, tmp_path):
        run_campaign(echo_campaign, tmp_path / "a")
        run_campaign(echo_campaign, tmp_path / "b")
        assert ((tmp_path / "a" / LEDGER_NAME).read_bytes()
                == (tmp_path / "b" / LEDGER_NAME).read_bytes())


class TestKillAndResume:
    def test_kill_after_runs_raises_and_persists_the_prefix(
            self, fake_runner, echo_campaign, tmp_path):
        with pytest.raises(CampaignKilled):
            run_campaign(echo_campaign, tmp_path, kill_after_runs=2)
        assert len(load_records(tmp_path)) == 2

    def test_resume_skips_the_completed_prefix_exactly(
            self, fake_runner, echo_campaign, tmp_path):
        with pytest.raises(CampaignKilled):
            run_campaign(echo_campaign, tmp_path, kill_after_runs=3)
        result = run_campaign(echo_campaign, tmp_path)
        assert (result.skipped, result.executed) == (3, 1)

    def test_resumed_ledger_byte_equals_an_uninterrupted_one(
            self, fake_runner, echo_campaign, tmp_path):
        run_campaign(echo_campaign, tmp_path / "whole")
        with pytest.raises(CampaignKilled):
            run_campaign(echo_campaign, tmp_path / "killed", kill_after_runs=2)
        run_campaign(echo_campaign, tmp_path / "killed")
        assert ((tmp_path / "killed" / LEDGER_NAME).read_bytes()
                == (tmp_path / "whole" / LEDGER_NAME).read_bytes())


class TestRealRunners:
    """End-to-end at tiny scale: the acceptance sweep spans three runner
    families and the process pool preserves ledger bytes."""

    CAMPAIGN = {
        "name": "accept",
        "runs": [
            {"runner": "serve",
             "params": {"n_sessions": 2, "duration_s": 0.1}, "seeds": [0, 1]},
            {"runner": "chaos",
             "params": {"serve": {"n_sessions": 2, "duration_s": 0.1}}},
            {"runner": "sdc",
             "params": {"n_frames": 20, "fit_rates": [2000.0],
                        "protections": ["unprotected", "abft"]}},
        ],
    }

    def test_three_runner_sweep_round_trips(self, tmp_path):
        result = run_campaign(self.CAMPAIGN, tmp_path)
        assert (result.total, result.executed, result.failed) == (4, 4, 0)
        assert {r["runner"] for r in result.records} == {"serve", "chaos", "sdc"}
        again = run_campaign(self.CAMPAIGN, tmp_path)
        assert (again.skipped, again.executed) == (4, 0)

    def test_process_pool_matches_sequential_ledger_bytes(self, tmp_path):
        run_campaign(self.CAMPAIGN, tmp_path / "seq")
        run_campaign(self.CAMPAIGN, tmp_path / "par", workers=2)
        assert ((tmp_path / "seq" / LEDGER_NAME).read_bytes()
                == (tmp_path / "par" / LEDGER_NAME).read_bytes())
