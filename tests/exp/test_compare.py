"""Comparison surface: direction heuristic, tables, run selection."""

from __future__ import annotations

import pytest

from repro.exp.compare import (
    format_comparison,
    format_run_list,
    format_run_show,
    metric_direction,
)
from repro.exp.errors import LedgerError


def _record(i, run_id, metrics, runner="echo", status="ok", artifacts=None):
    return {"i": i, "run_id": run_id, "runner": runner, "status": status,
            "config": {}, "metrics": metrics, "artifacts": artifacts or {}}


RECORDS = [
    _record(1, "aaa111", {"p95_ms": 4.0, "predict_goodput_fps": 100.0}),
    _record(2, "bbb222", {"p95_ms": 2.0, "predict_goodput_fps": 120.0}),
    _record(3, "bcc333", {"p95_ms": 3.0, "coverage": 0.99}),
]


class TestDirectionRegistry:
    @pytest.mark.parametrize("name", [
        "p95_ms", "miss_rate", "escaped_total", "cycle_overhead",
        "faults_batch_failures", "replayed_events",
    ])
    def test_lower_is_better(self, name):
        assert metric_direction(name) == -1

    @pytest.mark.parametrize("name", [
        "predict_goodput_fps", "throughput_fps", "abft_coverage_min",
        "worker_utilization", "verified",
    ])
    def test_higher_is_better(self, name):
        assert metric_direction(name) == +1

    def test_unknown_names_get_no_marking(self):
        assert metric_direction("report_lines") == 0

    def test_unlisted_composites_are_unknown_not_guessed(self):
        # The old substring heuristic filed this under "miss"; the
        # registry refuses to guess about names nobody declared.
        assert metric_direction("missed_goodput") == 0

    @pytest.mark.parametrize("name,direction", [
        ("fleet64_p95_ms", -1),
        ("fleet8_goodput_fps", +1),
        ("abft_fit800_coverage", +1),
        ("guard_fit50_escaped_sdc", -1),
        ("unprotected_p95_error_deg", -1),
        ("slo_pass_frame_p95_latency", +1),
        ("slo_failed_total", -1),
        ("wall_s", 0),  # sanctioned nondeterminism: never gated
    ])
    def test_family_rules(self, name, direction):
        assert metric_direction(name) == direction


class TestSelection:
    def test_unique_prefix_resolves(self):
        text = format_run_show(RECORDS, "aa")
        assert "run aaa111" in text

    def test_ambiguous_prefix_is_an_error(self):
        with pytest.raises(LedgerError, match="ambiguous"):
            format_run_show(RECORDS, "b")

    def test_unknown_run_is_an_error(self):
        with pytest.raises(LedgerError, match="no run"):
            format_run_show(RECORDS, "zzz")


class TestTables:
    def test_list_shows_every_record_in_order(self):
        lines = format_run_list(RECORDS).splitlines()
        assert [line.split()[1] for line in lines[2:]] == [
            "aaa111", "bbb222", "bcc333",
        ]

    def test_compare_marks_the_best_per_metric(self):
        text = format_comparison(RECORDS, ["aaa111", "bbb222"])
        p95_row = next(l for l in text.splitlines() if l.startswith("p95_ms"))
        goodput_row = next(
            l for l in text.splitlines() if l.startswith("predict_goodput")
        )
        assert "2 *" in p95_row and "4 *" not in p95_row
        assert "120 *" in goodput_row

    def test_compare_fills_missing_metrics_with_dash(self):
        text = format_comparison(RECORDS, ["aaa111", "bcc333"])
        coverage_row = next(
            l for l in text.splitlines() if l.startswith("coverage")
        )
        assert "-" in coverage_row

    def test_baseline_adds_signed_deltas_and_joins_the_table(self):
        text = format_comparison(RECORDS, ["bbb222"], baseline="aaa111")
        assert "(base)" in text
        p95_row = next(l for l in text.splitlines() if l.startswith("p95_ms"))
        assert "(-2)" in p95_row

    def test_compare_is_deterministic(self):
        assert (format_comparison(RECORDS, ["aaa111", "bbb222"])
                == format_comparison(RECORDS, ["aaa111", "bbb222"]))
