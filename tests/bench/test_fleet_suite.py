"""The ``fleet`` bench suite: payload shape, ledger metrics, directions."""

from __future__ import annotations

import pytest

from repro.bench.suites import (
    SUITES,
    fleet_payload,
    flatten_fleet_payload,
    run_fleet_failover,
)
from repro.obs.directions import metric_direction


@pytest.fixture(scope="module")
def suite_result():
    report, wall_s = run_fleet_failover()
    return report, wall_s


class TestFleetSuite:
    def test_registered(self):
        assert "fleet" in SUITES

    def test_payload_shape(self, suite_result):
        report, wall_s = suite_result
        payload = fleet_payload(report, wall_s)
        assert payload["bench"] == "fleet_failover"
        assert payload["sessions"] == 96
        assert payload["shards_serving"] == 3.0
        assert payload["rehomed_sessions"] > 0
        assert payload["goodput_fps"] > 0

    def test_flatten_is_one_level_floats(self, suite_result):
        report, wall_s = suite_result
        metrics = flatten_fleet_payload(fleet_payload(report, wall_s))
        assert set(metrics) == {
            "wall_s", "goodput_fps", "p95_ms", "miss_rate", "degrade_rate",
            "worker_utilization", "failover_lost_frames", "rehomed_sessions",
            "shards_serving",
        }
        assert all(isinstance(v, float) for v in metrics.values())

    def test_workload_survives_the_kill(self, suite_result):
        report, _ = suite_result
        # The acceptance claim of the failover bench: the fleet keeps
        # serving after losing a shard, with bounded loss.
        assert report.shards.shards_killed == 1
        total = sum(s.total_frames for s in report.sessions)
        lost = sum(s.lost_shard for s in report.sessions)
        assert lost / total < 0.05
        assert report.predict_goodput_fps > 0


class TestDirections:
    def test_fleet_metric_directions(self):
        assert metric_direction("failover_lost_frames") == -1
        assert metric_direction("rehome_breaker_degraded") == -1
        assert metric_direction("goodput_fps") == +1
        assert metric_direction("p95_ms") == -1
        # Topology descriptors are environment, not quality: ungated.
        assert metric_direction("rehomed_sessions") == 0
        assert metric_direction("shards_serving") == 0
