"""Trend rendering: sparklines, deltas, deterministic HTML report."""

from __future__ import annotations

import json

from repro.bench.report import render_report
from repro.bench.trend import format_trend, sparkline


def history(*metric_dicts, bench="serve_scaling"):
    return [
        {"i": i + 1, "bench": bench, "metrics": metrics, "context": {}}
        for i, metrics in enumerate(metric_dicts)
    ]


class TestSparkline:
    def test_monotone_series_spans_the_ramp(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 4

    def test_constant_series_is_flat_midline(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_empty_series(self):
        assert sparkline([]) == ""


class TestFormatTrend:
    RECORDS = history(
        {"fleet64_goodput_fps": 1000.0, "fleet64_p95_ms": 7.0, "wall_s": 0.3},
        {"fleet64_goodput_fps": 1100.0, "fleet64_p95_ms": 6.5, "wall_s": 0.4},
    )

    def test_lists_metrics_with_direction_and_delta(self):
        text = format_trend(self.RECORDS)
        assert "fleet64_goodput_fps" in text
        assert "+100" in text  # signed delta of the last step
        # wall_s is listed (history is history) but carries no direction.
        lines = [l for l in text.splitlines() if "wall_s" in l]
        assert lines and "+" not in lines[0].split()[2]

    def test_bench_filter(self):
        records = self.RECORDS + history({"cycle_overhead": 0.18},
                                         bench="sdc_resilience")
        text = format_trend(records, benches=["sdc_resilience"])
        assert "cycle_overhead" in text
        assert "fleet64_goodput_fps" not in text

    def test_deterministic(self):
        assert format_trend(self.RECORDS) == format_trend(self.RECORDS)


class TestHtmlReport:
    RECORDS = history(
        {"fleet64_goodput_fps": 1000.0, "fleet64_p95_ms": 7.0},
        {"fleet64_goodput_fps": 1100.0, "fleet64_p95_ms": 6.5},
    )

    def test_renders_byte_identically(self):
        assert render_report(self.RECORDS) == render_report(self.RECORDS)

    def test_self_contained_html_with_svg_trajectories(self):
        html = render_report(self.RECORDS)
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "<polyline" in html
        assert "fleet64_goodput_fps" in html
        assert "http" not in html.split("</style>")[1]  # no external fetches

    def test_includes_slo_artifacts_when_present(self, tmp_path):
        (tmp_path / "slo_verdicts.json").write_text(json.dumps([{
            "name": "frame_deadline", "kind": "ratio", "target": 0.999,
            "attained": 0.996, "ok": False, "pages": 1, "warns": 1,
            "final_state": "OK",
        }]) + "\n")
        (tmp_path / "slo.jsonl").write_text(json.dumps({
            "t": 0.65, "slo": "frame_deadline", "burn_fast": 6.45,
            "burn_slow": 1.89, "state": "WARN", "total": 700.0, "bad": 4.0,
        }) + "\n")
        html = render_report(self.RECORDS, slo_dir=tmp_path)
        assert "frame_deadline" in html
        assert "FAIL" in html or "fail" in html
