"""The ``net`` bench suite: payload shape, ledger metrics, directions."""

from __future__ import annotations

import pytest

from repro.bench.suites import (
    PARTITION_LENGTHS,
    SUITES,
    flatten_net_payload,
    net_payload,
    run_net_transport,
)
from repro.obs.directions import metric_direction


@pytest.fixture(scope="module")
def suite_result():
    rows, wall_s = run_net_transport()
    return rows, wall_s


class TestNetSuite:
    def test_registered(self):
        assert "net" in SUITES

    def test_payload_shape(self, suite_result):
        rows, wall_s = suite_result
        payload = net_payload(rows, wall_s)
        assert payload["bench"] == "net_transport"
        assert [w["partition_s"] for w in payload["windows"]] == list(
            PARTITION_LENGTHS
        )
        for window in payload["windows"]:
            assert window["retransmit_overhead"] > 0
            assert window["goodput_fps"] > 0

    def test_flatten_is_one_level_floats(self, suite_result):
        rows, wall_s = suite_result
        metrics = flatten_net_payload(net_payload(rows, wall_s))
        assert "part150ms_retransmit_overhead" in metrics
        assert "part250ms_heal_s" in metrics
        assert len(metrics) == 1 + 8 * len(PARTITION_LENGTHS)
        assert all(isinstance(v, float) for v in metrics.values())

    def test_protocol_loses_nothing_across_partition_lengths(
        self, suite_result
    ):
        # The acceptance claim of the bench: retransmission + failover
        # absorb every partition length without losing a frame, and a
        # partition long enough to trip the detector heals with
        # bounce-back after it lifts.
        rows, _ = suite_result
        for length_s, report in rows:
            assert sum(
                s.lost_net + s.lost_shard for s in report.sessions
            ) == 0, f"partition {length_s}s lost frames"
        longest = rows[-1][1]
        assert longest.net.counters["false_suspects"] == 1
        assert longest.net.counters["heals"] == 1
        assert longest.net.counters["heal_bounce_sessions"] > 0

    def test_net_metric_directions(self):
        assert metric_direction("part150ms_retransmit_overhead") == -1
        assert metric_direction("part150ms_frames_lost") == -1
        assert metric_direction("part250ms_heal_s") == -1
        assert metric_direction("part250ms_bounced") == +1
        assert metric_direction("net_retransmits_total") == -1
        assert metric_direction("net_frames_deduped_total") == -1
        assert metric_direction("net_failover_detect_s") == -1
        assert metric_direction("net_heal_bounce_sessions") == +1
        # Environment descriptors stay ungated.
        assert metric_direction("part150ms_suspected") == 0
        assert metric_direction("net_messages_total") == 0
