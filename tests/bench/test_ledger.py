"""Bench history ledger: sealed appends, torn tails, corruption."""

from __future__ import annotations

import json

import pytest

from repro.bench.ledger import (
    BenchLedgerError,
    append_bench_record,
    latest_per_bench,
    read_bench_history,
)


def append(path, bench="serve_scaling", metrics=None, context=None):
    return append_bench_record(
        path, bench, metrics or {"fleet8_goodput_fps": 467.4}, context=context
    )


class TestAppendAndRead:
    def test_round_trip_preserves_metrics_and_context(self, tmp_path):
        ledger = tmp_path / "BENCH_HISTORY.jsonl"
        written = append(
            ledger,
            metrics={"fleet8_goodput_fps": 467.4, "wall_s": 0.28},
            context={"source": "pytest"},
        )
        (record,) = read_bench_history(ledger)
        assert record == written
        assert record["i"] == 1
        assert record["context"]["source"] == "pytest"

    def test_indices_are_strictly_increasing_across_reopen(self, tmp_path):
        ledger = tmp_path / "BENCH_HISTORY.jsonl"
        for _ in range(3):
            append(ledger)
        assert [r["i"] for r in read_bench_history(ledger)] == [1, 2, 3]

    def test_missing_ledger_reads_empty(self, tmp_path):
        assert read_bench_history(tmp_path / "nope.jsonl") == []

    def test_every_line_is_crc_sealed(self, tmp_path):
        ledger = tmp_path / "BENCH_HISTORY.jsonl"
        append(ledger)
        line = ledger.read_text().splitlines()[0]
        assert json.loads(line)["crc"] >= 0


class TestDurability:
    def test_torn_tail_is_discarded_on_next_append(self, tmp_path):
        ledger = tmp_path / "BENCH_HISTORY.jsonl"
        append(ledger)
        append(ledger)
        with ledger.open("a") as f:
            f.write('{"crc":123,"i":3,"bench":"torn')  # killed mid-append
        append(ledger)
        records = read_bench_history(ledger)
        assert [r["i"] for r in records] == [1, 2, 3]

    def test_interior_corruption_is_fatal_not_silent(self, tmp_path):
        ledger = tmp_path / "BENCH_HISTORY.jsonl"
        append(ledger)
        append(ledger)
        lines = ledger.read_text().splitlines(keepends=True)
        ledger.write_text(lines[0].replace("467.4", "999.9") + lines[1])
        with pytest.raises(BenchLedgerError):
            read_bench_history(ledger)

    def test_record_schema_is_validated(self, tmp_path):
        ledger = tmp_path / "BENCH_HISTORY.jsonl"
        from repro.recover.journal import JournalWriter

        writer = JournalWriter(ledger, resume=True)
        writer.append({"i": 1, "bench": 7, "metrics": {}})  # bad bench type
        writer.close()
        with pytest.raises(BenchLedgerError, match="bench"):
            read_bench_history(ledger)


class TestGrouping:
    def test_latest_per_bench_preserves_append_order(self, tmp_path):
        ledger = tmp_path / "BENCH_HISTORY.jsonl"
        append(ledger, bench="serve_scaling", metrics={"m": 1.0})
        append(ledger, bench="sdc_resilience", metrics={"m": 2.0})
        append(ledger, bench="serve_scaling", metrics={"m": 3.0})
        grouped = latest_per_bench(read_bench_history(ledger))
        assert [r["metrics"]["m"] for r in grouped["serve_scaling"]] == [1.0, 3.0]
        assert len(grouped["sdc_resilience"]) == 1
