"""Regression gate: direction-aware tolerances against the ledger."""

from __future__ import annotations

import pytest

from repro.bench.gate import (
    GATE_EXIT_REGRESSION,
    evaluate_gate,
    format_gate,
    parse_tolerances,
)


def history(*metric_dicts, bench="serve_scaling"):
    return [
        {"i": i + 1, "bench": bench, "metrics": metrics, "context": {}}
        for i, metrics in enumerate(metric_dicts)
    ]


class TestParseTolerances:
    def test_default_and_overrides(self):
        default, overrides = parse_tolerances(["0.1", "fleet64_p95_ms=0.2"])
        assert default == pytest.approx(0.1)
        assert overrides == {"fleet64_p95_ms": pytest.approx(0.2)}

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            parse_tolerances(["-0.1"])
        with pytest.raises(ValueError, match="non-negative"):
            parse_tolerances(["p95_ms=-1"])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="bad tolerance"):
            parse_tolerances(["=0.5"])


class TestEvaluateGate:
    def test_within_tolerance_passes(self):
        rows = evaluate_gate(
            history(
                {"fleet64_goodput_fps": 1000.0},
                {"fleet64_goodput_fps": 990.0},  # -1% against 5% tolerance
            ),
            tolerance=0.05,
        )
        (row,) = rows
        assert not row.regressed and not row.improved

    def test_worse_direction_beyond_tolerance_regresses(self):
        rows = evaluate_gate(
            history(
                {"fleet64_goodput_fps": 1000.0, "fleet64_p95_ms": 7.0},
                {"fleet64_goodput_fps": 700.0, "fleet64_p95_ms": 10.5},
            ),
            tolerance=0.05,
        )
        assert [row.regressed for row in rows] == [True, True]

    def test_big_move_in_the_good_direction_is_improvement(self):
        (row,) = evaluate_gate(
            history(
                {"fleet64_p95_ms": 10.0},
                {"fleet64_p95_ms": 7.0},
            ),
            tolerance=0.05,
        )
        assert row.improved and not row.regressed

    def test_direction_zero_metrics_never_gate(self):
        # wall_s is machine-dependent; the registry deliberately leaves
        # it directionless so it can never fail the gate.
        rows = evaluate_gate(
            history({"wall_s": 0.2}, {"wall_s": 200.0}),
        )
        assert rows == []

    def test_fewer_than_two_records_is_vacuous_pass(self):
        records = history({"fleet64_p95_ms": 7.0})
        assert evaluate_gate(records) == []
        text = format_gate([], records)
        assert "no baseline yet" in text

    def test_only_the_newest_pair_gates(self):
        # An old regression that has since recovered must not fail now.
        rows = evaluate_gate(
            history(
                {"fleet64_goodput_fps": 1000.0},
                {"fleet64_goodput_fps": 500.0},
                {"fleet64_goodput_fps": 1010.0},
            ),
            tolerance=0.05,
        )
        (row,) = rows
        assert row.baseline == pytest.approx(500.0)
        assert not row.regressed

    def test_per_metric_override_beats_default(self):
        records = history(
            {"fleet64_p95_ms": 10.0},
            {"fleet64_p95_ms": 10.8},  # +8%
        )
        assert evaluate_gate(records, tolerance=0.05)[0].regressed
        rows = evaluate_gate(
            records, tolerance=0.05, overrides={"fleet64_p95_ms": 0.1}
        )
        assert not rows[0].regressed

    def test_zero_baseline_uses_absolute_floor(self):
        # miss_rate 0 -> 0.001: tiny absolute change, but any band
        # relative to a zero baseline is the 1e-9 floor, so it gates.
        (row,) = evaluate_gate(
            history({"fleet64_miss_rate": 0.0}, {"fleet64_miss_rate": 0.001}),
        )
        assert row.regressed

    def test_format_gate_summarizes(self):
        records = history(
            {"fleet64_goodput_fps": 1000.0},
            {"fleet64_goodput_fps": 700.0},
        )
        text = format_gate(evaluate_gate(records), records)
        assert "REGRESSED" in text
        assert "1 metrics checked, 1 regressed" in text


class TestGateCli:
    def seed(self, tmp_path, *metric_dicts):
        from repro.bench.ledger import append_bench_record

        ledger = tmp_path / "history.jsonl"
        for metrics in metric_dicts:
            append_bench_record(ledger, "serve_scaling", metrics)
        return ledger

    def test_exit_zero_on_clean_history(self, tmp_path, capsys):
        from repro.bench.cli import main

        ledger = self.seed(
            tmp_path, {"fleet64_p95_ms": 7.0}, {"fleet64_p95_ms": 7.1}
        )
        assert main(["gate", "--ledger", str(ledger)]) == 0
        assert "0 regressed" in capsys.readouterr().out

    def test_exit_four_on_regression(self, tmp_path, capsys):
        from repro.bench.cli import main

        ledger = self.seed(
            tmp_path, {"fleet64_p95_ms": 7.0}, {"fleet64_p95_ms": 10.5}
        )
        assert main(["gate", "--ledger", str(ledger)]) == GATE_EXIT_REGRESSION
        assert "REGRESSED" in capsys.readouterr().out

    def test_empty_history_passes(self, tmp_path, capsys):
        from repro.bench.cli import main

        assert main(["gate", "--ledger", str(tmp_path / "none.jsonl")]) == 0
