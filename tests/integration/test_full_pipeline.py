"""Integration tests: the trained POLONet pipeline end to end, and the
trained-experiment harness at tiny scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import angular_errors
from repro.core import Decision
from repro.experiments import measure_event_mix
from repro.experiments.common import (
    ContextScale,
    ExperimentContext,
    clear_context_cache,
    get_context,
    polovit_validation_errors,
    tracker_validation_errors,
)
from repro.experiments.reuse_eval import run_table4
from repro.experiments.user_study_exp import run_fig15


@pytest.fixture(scope="module")
def context() -> ExperimentContext:
    clear_context_cache()
    return get_context(ContextScale.tiny(), seed=3)


class TestTrainedRuntime:
    def test_runtime_produces_all_decision_kinds(self, context):
        polonet = context.bundle.polonet
        polonet.reset()
        decisions = set()
        for seq in context.val.sequences:
            for i in range(min(len(seq), 120)):
                result = polonet.process_frame(seq.images[i].astype(np.float64))
                decisions.add(result.decision)
        assert Decision.PREDICT in decisions
        assert Decision.REUSE in decisions  # fixations dominate

    def test_runtime_gaze_tracks_ground_truth(self, context):
        """Even a tiny-scale model beats the constant-center predictor."""
        polonet = context.bundle.polonet
        polonet.reset()
        seq = context.val.sequences[0]
        preds, truths = [], []
        for i in range(min(len(seq), 120)):
            result = polonet.process_frame(seq.images[i].astype(np.float64))
            if result.has_gaze and seq.openness[i] > 0.5:
                preds.append(result.gaze_deg)
                truths.append(seq.gaze_deg[i])
        preds, truths = np.array(preds), np.array(truths)
        model_err = angular_errors(preds, truths).mean()
        center_err = angular_errors(np.zeros_like(truths), truths).mean()
        assert model_err < center_err * 1.2  # loose: 3 epochs of training

    def test_event_mix_measurement(self, context):
        mix = measure_event_mix(context, max_frames=100)
        # A 3-epoch detector is noisy; only the mechanics are under test.
        assert 0.0 <= mix.p_saccade <= 0.9
        assert mix.p_reuse > 0.05  # fixation-dominated behaviour
        total = mix.p_saccade + mix.p_reuse + mix.p_predict
        assert total == pytest.approx(1.0)


class TestEvaluationProtocol:
    def test_model_based_per_user_calibration(self, context):
        errors = tracker_validation_errors(context.baselines["EdGaze"], context)
        assert errors.size > 0
        assert np.isfinite(errors).all()
        assert np.median(errors) < 15.0  # calibrated per user

    def test_learned_tracker_generalization_errors(self, context):
        errors = tracker_validation_errors(context.baselines["NVGaze"], context)
        assert errors.size > 0
        assert errors.mean() < 30.0

    def test_polovit_pipeline_errors(self, context):
        errors = polovit_validation_errors(context.bundle.vit, context, prune=True)
        assert errors.size > 0
        assert np.isfinite(errors).all()


class TestTrainedExperiments:
    def test_table4_reuse_monotonicity(self, context):
        result = run_table4(context, gamma2_values=(5.0, 40.0))
        # A much looser threshold reuses at least as often.
        assert result.reuse_fraction(40.0) >= result.reuse_fraction(5.0)

    def test_user_study_with_measured_traces(self, context):
        experiment = run_fig15(context, n_participants=3, repeats=2, seed=0)
        assert 0.0 <= experiment.result.mean_selection <= 1.0
        assert experiment.candidate_trace.size > 0

    def test_context_cache_returns_same_object(self, context):
        again = get_context(ContextScale.tiny(), seed=3)
        assert again is context
