"""Physiological plausibility gate: flag -> recompute once -> reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import GazeVerdict, PlausibilityConfig, PlausibilityGuard


class TestConfig:
    def test_main_sequence_velocity_bound(self):
        cfg = PlausibilityConfig(margin=1.0)
        # 25 deg saccade: duration 21 + 2.2*25 = 76 ms, mean 328.9 deg/s,
        # min-jerk peak 1.875x the mean.
        assert cfg.max_velocity_deg_s == pytest.approx(25 / 0.076 * 1.875)

    def test_max_jump_scales_with_fps(self):
        slow = PlausibilityConfig(fps=50.0)
        fast = PlausibilityConfig(fps=100.0)
        assert slow.max_jump_deg == pytest.approx(2 * fast.max_jump_deg)

    def test_field_limit_has_margin(self):
        cfg = PlausibilityConfig(field_deg=22.0, margin=1.25)
        assert cfg.field_limit_deg == pytest.approx(13.75)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            PlausibilityConfig(fps=0.0)
        with pytest.raises(ValueError):
            PlausibilityConfig(margin=-1.0)


class TestPlausible:
    def test_first_sample_accepted(self):
        guard = PlausibilityGuard()
        assert guard.plausible(np.array([5.0, -3.0]))

    def test_nonfinite_rejected(self):
        guard = PlausibilityGuard()
        assert not guard.plausible(np.array([np.nan, 0.0]))
        assert not guard.plausible(np.array([np.inf, 0.0]))

    def test_out_of_field_rejected_even_without_history(self):
        guard = PlausibilityGuard()
        limit = guard.config.field_limit_deg
        assert not guard.plausible(np.array([limit + 1.0, 0.0]))

    def test_jump_bound_applied_against_last_accepted(self):
        guard = PlausibilityGuard()
        guard.check(np.array([0.0, 0.0]))
        step = guard.config.max_jump_deg
        assert guard.plausible(np.array([step * 0.9, 0.0]))
        assert not guard.plausible(np.array([step * 1.5, 0.0]))

    def test_bound_scales_with_frame_gap(self):
        guard = PlausibilityGuard()
        guard.check(np.array([0.0, 0.0]))
        jump = guard.config.max_jump_deg * 1.5
        assert not guard.plausible(np.array([jump, 0.0]), frames=1.0)
        assert guard.plausible(np.array([jump, 0.0]), frames=2.0)


class TestEscalation:
    def test_plausible_sample_passes_through(self):
        guard = PlausibilityGuard()
        gaze = np.array([1.0, 2.0])
        out, verdict = guard.check(gaze)
        assert verdict is GazeVerdict.PLAUSIBLE
        np.testing.assert_array_equal(out, gaze)
        assert guard.as_dict() == {
            "checks": 1, "flagged": 0, "recomputes": 0, "fallbacks": 0
        }

    def test_recompute_called_once_and_accepted(self):
        guard = PlausibilityGuard()
        guard.check(np.array([0.0, 0.0]))
        calls = []

        def recompute():
            calls.append(1)
            return np.array([0.5, 0.0])

        out, verdict = guard.check(np.array([50.0, 0.0]), recompute=recompute)
        assert verdict is GazeVerdict.RECOMPUTED
        assert len(calls) == 1
        np.testing.assert_array_equal(out, [0.5, 0.0])
        assert guard.flagged == 1 and guard.recomputes == 1 and guard.fallbacks == 0

    def test_persistent_corruption_falls_back_to_gaze_reuse(self):
        guard = PlausibilityGuard()
        guard.check(np.array([1.0, 1.0]))
        out, verdict = guard.check(
            np.array([50.0, 0.0]), recompute=lambda: np.array([60.0, 0.0])
        )
        assert verdict is GazeVerdict.FALLBACK
        np.testing.assert_array_equal(out, [1.0, 1.0])  # last accepted held
        assert guard.fallbacks == 1

    def test_corrupted_sample_never_becomes_reference(self):
        guard = PlausibilityGuard()
        guard.check(np.array([0.0, 0.0]))
        guard.check(np.array([50.0, 0.0]))  # fallback, not accepted
        # A sample near the corrupted value must still be implausible.
        assert not guard.plausible(np.array([49.0, 0.0]))
        assert guard.plausible(np.array([0.1, 0.0]))

    def test_no_history_fallback_clamps_into_field(self):
        guard = PlausibilityGuard()
        out, verdict = guard.check(np.array([1e6, np.nan]))
        assert verdict is GazeVerdict.FALLBACK
        limit = guard.config.field_limit_deg
        assert np.all(np.abs(out) <= limit)
        assert np.isfinite(out).all()

    def test_reset_drops_reference_keeps_counters(self):
        guard = PlausibilityGuard()
        guard.check(np.array([0.0, 0.0]))
        guard.check(np.array([50.0, 0.0]))
        flagged = guard.flagged
        guard.reset()
        out, verdict = guard.check(np.array([10.0, 0.0]))
        assert verdict is GazeVerdict.PLAUSIBLE
        assert guard.flagged == flagged


class TestSnapshot:
    def test_state_roundtrip_bit_identical(self):
        guard = PlausibilityGuard()
        guard.check(np.array([1.0, 2.0]))
        guard.check(np.array([50.0, 0.0]))
        state = guard.state_dict()

        restored = PlausibilityGuard()
        restored.load_state(state)
        assert restored.as_dict() == guard.as_dict()
        probe = np.array([1.1, 2.0])
        assert restored.plausible(probe) == guard.plausible(probe)
        out_a, v_a = guard.check(np.array([40.0, 0.0]))
        out_b, v_b = restored.check(np.array([40.0, 0.0]))
        assert v_a is v_b
        np.testing.assert_array_equal(out_a, out_b)
