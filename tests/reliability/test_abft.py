"""Huang–Abraham ABFT: exhaustive single-flip properties.

The property the campaign leans on: for EVERY single-bit flip position
in the accumulator tile, verification detects the error and the
delivered product is bit-identical to the clean one (located-and-
corrected, checksum-repaired, or recomputed); corrupted operands always
take the multi-error recompute path, never a silent accept.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Tensor, matmul_guard
from repro.reliability import (
    AbftGuard,
    AbftOutcome,
    AbftStats,
    abft_matmul,
    flip_accumulator_bit,
    flip_int_code_bits,
)

M, K, N = 3, 5, 4


def operands() -> tuple[np.ndarray, np.ndarray]:
    """Strictly positive int8 codes: every operand flip perturbs every
    dependent residual, so signatures are unambiguous."""
    rng = np.random.default_rng(7)
    a = rng.integers(1, 40, size=(M, K)).astype(np.int8)
    b = rng.integers(1, 40, size=(K, N)).astype(np.int8)
    return a, b


class TestCleanPath:
    def test_clean_product_bit_identical(self):
        a, b = operands()
        stats = AbftStats()
        out, outcome = abft_matmul(a, b, stats=stats)
        assert outcome is AbftOutcome.CLEAN
        assert out.dtype == np.int64
        assert np.array_equal(out, a.astype(np.int64) @ b.astype(np.int64))
        assert stats.as_dict() == {
            "products": 1, "skipped": 0, "clean": 1, "detected": 0,
            "corrected": 0, "checksum_repaired": 0, "recomputed": 0,
        }

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            abft_matmul(np.ones(3), np.ones((3, 2)))


class TestEverySingleAccumulatorFlip:
    """Exhaust all 32 bits of every word in the augmented (M+1)x(N+1)
    accumulator file — checksum registers and corner included."""

    def test_detects_and_delivers_clean_product(self):
        a, b = operands()
        clean = a.astype(np.int64) @ b.astype(np.int64)
        total_bits = (M + 1) * (N + 1) * 32
        outcomes = {o: 0 for o in AbftOutcome}
        for bit in range(total_bits):
            out, outcome = abft_matmul(
                a, b,
                corrupt=lambda c_full, bit=bit: flip_accumulator_bit(c_full, bit),
            )
            assert outcome is not AbftOutcome.CLEAN, f"silent at bit {bit}"
            assert np.array_equal(out, clean), f"wrong product at bit {bit}"
            outcomes[outcome] += 1
        # Data-element flips are located and corrected; checksum-register
        # flips are repaired without touching the data.
        assert outcomes[AbftOutcome.CORRECTED] == M * N * 32
        assert outcomes[AbftOutcome.CHECKSUM_REPAIRED] == (M + N + 1) * 32
        assert outcomes[AbftOutcome.RECOMPUTED] == 0

    def test_burst_within_one_word_still_corrected(self):
        a, b = operands()
        clean = a.astype(np.int64) @ b.astype(np.int64)
        out, outcome = abft_matmul(
            a, b, corrupt=lambda c: flip_accumulator_bit(c, 4, n_bits=4)
        )
        assert outcome is AbftOutcome.CORRECTED
        assert np.array_equal(out, clean)

    def test_multi_word_damage_recomputes(self):
        a, b = operands()
        clean = a.astype(np.int64) @ b.astype(np.int64)

        def two_elements(c_full: np.ndarray) -> None:
            flip_accumulator_bit(c_full, 0 * 32 + 3)
            flip_accumulator_bit(c_full, ((N + 1) + 1) * 32 + 3)

        out, outcome = abft_matmul(a, b, corrupt=two_elements)
        assert outcome is AbftOutcome.RECOMPUTED
        assert np.array_equal(out, clean)


class TestEveryOperandFlip:
    """Corrupted SRAM reads (weight or activation codes) poison a whole
    residual row/column — the multi-error signature.  With checksums
    stored at operand-write time, every flip position recomputes from the
    refetched clean operands; none is silently accepted."""

    def test_every_weight_bit_recomputes(self):
        a, b = operands()
        clean = a.astype(np.int64) @ b.astype(np.int64)
        a_check = a.astype(np.int64).sum(axis=0)
        b_check = b.astype(np.int64).sum(axis=1)
        for bit in range(K * N * 8):
            b_bad = b.copy()
            flip_int_code_bits(b_bad, bit)
            out, outcome = abft_matmul(
                a, b_bad,
                a_check=a_check, b_check=b_check,
                recompute=lambda: a.astype(np.int64) @ b.astype(np.int64),
            )
            assert outcome is AbftOutcome.RECOMPUTED, f"bit {bit}: {outcome}"
            assert np.array_equal(out, clean)

    def test_every_activation_bit_recomputes(self):
        a, b = operands()
        clean = a.astype(np.int64) @ b.astype(np.int64)
        a_check = a.astype(np.int64).sum(axis=0)
        b_check = b.astype(np.int64).sum(axis=1)
        for bit in range(M * K * 8):
            a_bad = a.copy()
            flip_int_code_bits(a_bad, bit)
            out, outcome = abft_matmul(
                a_bad, b,
                a_check=a_check, b_check=b_check,
                recompute=lambda: a.astype(np.int64) @ b.astype(np.int64),
            )
            assert outcome is AbftOutcome.RECOMPUTED, f"bit {bit}: {outcome}"
            assert np.array_equal(out, clean)

    def test_stats_merge(self):
        first, second = AbftStats(clean=2, products=2), AbftStats(
            detected=1, recomputed=1, products=1
        )
        first.merge(second)
        assert first.products == 3 and first.detected == 1


class TestAbftGuardHook:
    def test_clean_forward_bit_identical_and_same_object(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(6, 8)))
        w = Tensor(rng.normal(size=(8, 5)))
        unguarded = (x @ w).data
        guard = AbftGuard()
        with matmul_guard(guard):
            guarded = (x @ w).data
        assert np.array_equal(guarded, unguarded)
        assert guard.stats.clean == 1 and guard.stats.detected == 0

    def test_injected_element_corrected_in_place(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(6, 8)))
        w = Tensor(rng.normal(size=(8, 5)))
        clean = (x @ w).data

        def upset(out: np.ndarray) -> None:
            out[2, 3] += 1e4

        guard = AbftGuard(inject=upset)
        with matmul_guard(guard):
            fixed = (x @ w).data
        assert guard.stats.corrected == 1
        np.testing.assert_allclose(fixed, clean, rtol=0, atol=1e-9)

    def test_injected_row_recomputes_exactly(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(4, 8)))
        w = Tensor(rng.normal(size=(8, 4)))
        clean = (x @ w).data
        guard = AbftGuard(inject=lambda out: out.__iadd__(1e3))
        with matmul_guard(guard):
            fixed = (x @ w).data
        assert guard.stats.recomputed == 1
        # Recompute is np.matmul on the original operands: bit-identical.
        assert np.array_equal(fixed, clean)

    def test_batched_matmul_verified(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(2, 4, 8)))
        w = Tensor(rng.normal(size=(2, 8, 3)))
        guard = AbftGuard()
        with matmul_guard(guard):
            out = (x @ w).data
        assert np.array_equal(out, np.matmul(x.data, w.data))
        assert guard.stats.clean == 1

    def test_guard_uninstalls_on_exit(self):
        guard = AbftGuard()
        x = Tensor(np.ones((2, 2)))
        with matmul_guard(guard):
            _ = x @ x
        _ = x @ x
        assert guard.stats.products == 1
