"""Seeded soft-error model: rates, determinism, and exact bit flips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import (
    FaultSite,
    FlipMode,
    SoftErrorConfig,
    SoftErrorEvent,
    SoftErrorModel,
    flip_accumulator_bit,
    flip_float32_bit,
    flip_int_code_bits,
)
from repro.reliability.softerror import BITS_PER_MBIT, FIT_HOURS_S, apply_event


class TestConfig:
    def test_rate_derivation_explicit(self):
        cfg = SoftErrorConfig(fit_per_mbit=200.0, acceleration=1.0)
        bits = 128 * 1024 * 8 * 2 + 16 * 16 * 32
        assert cfg.total_bits == bits
        expected = 200.0 * (bits / BITS_PER_MBIT) / FIT_HOURS_S
        assert cfg.events_per_second == pytest.approx(expected)

    def test_unaccelerated_rate_is_negligible(self):
        cfg = SoftErrorConfig(fit_per_mbit=200.0, acceleration=1.0)
        # ~one upset every few hundred years: justifies the acceleration.
        assert 1.0 / cfg.events_per_second > 100 * 365 * 24 * 3600

    def test_inactive_schedules_nothing(self):
        cfg = SoftErrorConfig.inactive()
        assert not cfg.active
        assert SoftErrorModel(cfg).schedule(10.0) == ()

    def test_mode_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            SoftErrorConfig(p_single=0.5, p_burst=0.1, p_stuck=0.1)

    def test_rejects_negative_fit(self):
        with pytest.raises(ValueError):
            SoftErrorConfig(fit_per_mbit=-1.0)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            SoftErrorEvent(t_s=-1.0, site=FaultSite.WEIGHT,
                           mode=FlipMode.SINGLE_BIT, bit_offset=0)
        with pytest.raises(ValueError, match="stuck_value"):
            SoftErrorEvent(t_s=0.0, site=FaultSite.WEIGHT,
                           mode=FlipMode.STUCK_AT, bit_offset=0)


class TestSchedule:
    CFG = SoftErrorConfig(fit_per_mbit=400.0, acceleration=5e10, seed=3)

    def test_deterministic_for_seed(self):
        a = SoftErrorModel(self.CFG).schedule(3.0)
        b = SoftErrorModel(self.CFG).schedule(3.0)
        assert a == b
        assert len(a) > 0

    def test_seed_changes_schedule(self):
        a = SoftErrorModel(self.CFG).schedule(3.0)
        b = SoftErrorModel(self.CFG, seed=4).schedule(3.0)
        assert a != b

    def test_events_ordered_and_in_window(self):
        events = SoftErrorModel(self.CFG).schedule(2.0, start_s=5.0)
        times = [e.t_s for e in events]
        assert times == sorted(times)
        assert all(5.0 <= t < 7.0 for t in times)

    def test_offsets_within_site_capacity(self):
        for e in SoftErrorModel(self.CFG).schedule(5.0):
            assert 0 <= e.bit_offset < self.CFG.site_bits(e.site)

    def test_rate_scales_with_fit(self):
        lo = SoftErrorModel(
            SoftErrorConfig(fit_per_mbit=100.0, acceleration=5e10, seed=0)
        ).schedule(20.0)
        hi = SoftErrorModel(
            SoftErrorConfig(fit_per_mbit=800.0, acceleration=5e10, seed=0)
        ).schedule(20.0)
        assert len(hi) > 2 * len(lo)

    def test_sites_weighted_by_capacity(self):
        events = SoftErrorModel(
            SoftErrorConfig(fit_per_mbit=2000.0, acceleration=5e10, seed=1)
        ).schedule(30.0)
        n_acc = sum(e.site is FaultSite.ACCUMULATOR for e in events)
        # Accumulator file is ~0.4% of the bits; it must be rare.
        assert n_acc < len(events) * 0.05


class TestBitFlips:
    def test_int8_single_bit_exact(self):
        codes = np.zeros(4, dtype=np.int8)
        flip_int_code_bits(codes, bit_offset=8 + 3)  # byte 1, bit 3
        assert codes.tolist() == [0, 8, 0, 0]

    def test_int8_flip_is_involution(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(-128, 128, size=32, dtype=np.int8)
        ref = codes.copy()
        flip_int_code_bits(codes, bit_offset=100)
        assert not np.array_equal(codes, ref)
        flip_int_code_bits(codes, bit_offset=100)
        assert np.array_equal(codes, ref)

    def test_int8_burst_wraps(self):
        codes = np.zeros(2, dtype=np.int8)
        flip_int_code_bits(codes, bit_offset=15, n_bits=2)  # bit 15 then wrap to 0
        assert codes.view(np.uint8).tolist() == [1, 128]

    def test_int8_stuck_at(self):
        codes = np.array([-1, -1], dtype=np.int8)
        flip_int_code_bits(codes, bit_offset=0, stuck_value=0)
        assert codes.view(np.uint8).tolist() == [254, 255]
        flip_int_code_bits(codes, bit_offset=0, stuck_value=0)  # idempotent
        assert codes.view(np.uint8).tolist() == [254, 255]

    def test_int8_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            flip_int_code_bits(np.zeros(4, dtype=np.int16), 0)

    def test_accumulator_sign_bit_two_complement(self):
        acc = np.zeros(2, dtype=np.int64)
        flip_accumulator_bit(acc, bit_offset=31)  # sign bit of word 0
        assert acc[0] == -(1 << 31)
        assert acc[1] == 0

    def test_accumulator_addresses_low_32_bits(self):
        acc = np.array([5], dtype=np.int64)
        flip_accumulator_bit(acc, bit_offset=32)  # wraps back to bit 0
        assert acc[0] == 4

    def test_float32_exponent_flip_is_large(self):
        arr = np.array([1.0], dtype=np.float32)
        flip_float32_bit(arr, bit_offset=30)  # top exponent bit
        assert not np.isclose(arr[0], 1.0)

    def test_apply_event_routes_by_site(self):
        w = np.zeros(4, dtype=np.int8)
        event = SoftErrorEvent(t_s=0.0, site=FaultSite.WEIGHT,
                               mode=FlipMode.SINGLE_BIT, bit_offset=0)
        assert apply_event(event, weight_codes=w)
        assert w[0] == 1
        assert not apply_event(event)  # no array for the site
