"""SDC campaign: determinism, coverage claims, overhead accounting, CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.reliability import (
    SdcCampaignConfig,
    format_sdc_report,
    run_sdc_campaign,
)
from repro.reliability.campaign import _Int8Tracker
from repro.reliability.cli import main as sdc_main

SMALL = SdcCampaignConfig(fit_rates=(200.0, 800.0), n_frames=120, seed=0)


@pytest.fixture(scope="module")
def report():
    return run_sdc_campaign(SMALL)


class TestTrackerDatapath:
    def test_clean_forward_is_pure_quantization(self):
        tracker = _Int8Tracker()
        gaze = np.array([3.217, -7.91])
        out = tracker.forward(gaze, tracker.golden_store.copy())
        expected = np.round(gaze / tracker.a_scale) * tracker.a_scale
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_abft_forward_matches_unprotected_when_clean(self):
        from repro.reliability import AbftStats

        tracker = _Int8Tracker()
        stats = AbftStats()
        gaze = np.array([-2.0, 5.5])
        store = tracker.golden_store.copy()
        plain = tracker.forward(gaze, store)
        protected, detected, scrubbed = tracker.forward_abft(
            gaze, store, [], [], stats
        )
        assert not detected and not scrubbed
        assert np.array_equal(protected, plain)
        assert stats.clean == 2  # both GEMM stages verified clean


class TestCampaign:
    def test_deterministic(self, report):
        again = run_sdc_campaign(SMALL)
        assert [r.as_dict() for r in again.runs] == [
            r.as_dict() for r in report.runs
        ]
        assert format_sdc_report(again) == format_sdc_report(report)

    def test_same_schedule_replayed_across_protections(self, report):
        for fit in SMALL.fit_rates:
            injected = {
                r.protection: r.injected for r in report.runs
                if r.fit_per_mbit == fit
            }
            assert len(set(injected.values())) == 1

    def test_faults_actually_injected(self, report):
        assert all(r.injected > 0 for r in report.runs)
        high_fit = [r for r in report.runs if r.fit_per_mbit == 800.0]
        assert all(r.corrupted_frames > 0 for r in high_fit)

    def test_unprotected_escapes_sdc(self, report):
        for run in report.runs_for("unprotected"):
            if run.corrupted_frames:
                assert run.escaped_sdc > 0
                assert run.coverage < 0.5

    def test_abft_meets_coverage_acceptance(self, report):
        for run in report.runs_for("abft"):
            assert run.coverage >= 0.99
            assert run.escaped_sdc == 0
            assert run.detected > 0
            assert run.detected == run.corrected + run.recomputed
            # Delivered outputs are bit-identical to golden: no residual.
            assert run.p95_error_deg == 0.0

    def test_guard_partial_coverage_gap_is_visible(self, report):
        for run in report.runs_for("guard"):
            if not run.corrupted_frames:
                continue
            abft = next(
                r for r in report.runs_for("abft")
                if r.fit_per_mbit == run.fit_per_mbit
            )
            # The guard catches high-magnitude jumps only; its coverage
            # must sit strictly between unprotected and ABFT.
            assert run.coverage < abft.coverage

    def test_overhead_measured_not_zero(self, report):
        assert report.unprotected_cycles > 0
        assert report.protected_cycles > report.unprotected_cycles
        assert report.abft_cycles > 0
        assert 0.0 < report.cycle_overhead < 0.5
        assert (
            report.protected_cycles - report.unprotected_cycles
            <= report.abft_cycles
        )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="fit_rates"):
            SdcCampaignConfig(fit_rates=())
        with pytest.raises(ValueError, match="protection"):
            SdcCampaignConfig(protections=("unprotected", "magic"))
        with pytest.raises(ValueError):
            SdcCampaignConfig(n_frames=0)


class TestFormatting:
    def test_report_table_has_all_cells(self, report):
        text = format_sdc_report(report)
        assert "SDC resilience campaign" in text
        assert "ABFT predict-path overhead" in text
        assert len(text.splitlines()) == 5 + len(report.runs)


class TestCli:
    ARGS = ["--fit", "400", "--frames", "60", "--seed", "1"]

    def test_prints_report(self, capsys):
        assert sdc_main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "SDC resilience campaign" in out
        assert "unprotected" in out and "abft" in out and "guard" in out

    def test_output_identical_across_runs(self, capsys):
        sdc_main(self.ARGS)
        first = capsys.readouterr().out
        sdc_main(self.ARGS)
        second = capsys.readouterr().out
        assert first == second

    def test_protection_subset(self, capsys):
        sdc_main([*self.ARGS, "--protection", "abft"])
        rows = capsys.readouterr().out.splitlines()[5:]
        assert rows and all(row.lstrip().startswith("abft") for row in rows)

    def test_rejects_bad_fit(self, capsys):
        with pytest.raises(SystemExit):
            sdc_main(["--fit", "-5"])
