"""Frame-by-frame session simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eye import OculomotorModel
from repro.render import RES_1080P, RES_720P, scene_by_name
from repro.eye.events import EventMix
from repro.system import Schedule, TrackerSystemProfile, decide_paths
from repro.system.session import SessionConfig, SessionReport, simulate_session


@pytest.fixture(scope="module")
def track():
    return OculomotorModel(seed=17).generate(600)


@pytest.fixture
def polo_profile():
    return TrackerSystemProfile(
        "POLO", 0.012, 2.92, td_saccade_s=0.0002, td_reuse_s=0.0002
    )


@pytest.fixture
def baseline_profile():
    return TrackerSystemProfile("ResNet-34", 0.05, 13.15)


SCENE = scene_by_name("C")


class TestSimulateSession:
    def test_timeline_shape(self, track, polo_profile):
        report = simulate_session(polo_profile, track, SCENE, RES_1080P)
        assert report.frame_latency_s.shape == (600,)
        assert len(report.decisions) == 600
        assert (report.frame_latency_s > 0).all()

    def test_event_mix_reflects_behaviour(self, track, polo_profile):
        report = simulate_session(polo_profile, track, SCENE, RES_1080P)
        assert report.event_mix.p_saccade > 0.02  # saccades occurred
        assert report.event_mix.p_reuse > 0.3  # fixations dominate

    def test_baseline_always_predicts(self, track, baseline_profile):
        report = simulate_session(baseline_profile, track, SCENE, RES_1080P)
        assert set(report.decisions) == {"predict"}
        assert report.event_mix.p_predict == 1.0

    def test_polo_faster_than_baseline(self, track, polo_profile, baseline_profile):
        polo = simulate_session(polo_profile, track, SCENE, RES_1080P)
        base = simulate_session(baseline_profile, track, SCENE, RES_1080P)
        assert polo.mean_latency_s < 0.6 * base.mean_latency_s

    def test_parallel_schedule_reduces_latency(self, track, polo_profile):
        seq = simulate_session(polo_profile, track, SCENE, RES_1080P)
        par = simulate_session(
            polo_profile, track, SCENE, RES_1080P, schedule=Schedule.PARALLEL
        )
        assert par.mean_latency_s <= seq.mean_latency_s

    def test_post_saccadic_window_extends_cheap_frames(self, track, polo_profile):
        with_window = simulate_session(
            polo_profile, track, SCENE, RES_1080P, config=SessionConfig()
        )
        without = simulate_session(
            polo_profile,
            track,
            SCENE,
            RES_1080P,
            config=SessionConfig(post_saccade_low_res=False),
        )
        assert with_window.event_mix.p_saccade >= without.event_mix.p_saccade

    def test_deadline_miss_rate(self, track, polo_profile, baseline_profile):
        # At 100 fps (10 ms deadline), everything misses; the summary must
        # report it honestly.
        report = simulate_session(baseline_profile, track, SCENE, RES_720P)
        assert report.deadline_miss_rate == 1.0
        summary = report.summary()
        assert set(summary) >= {"mean_ms", "p99_ms", "miss_rate"}

    def test_empty_track_rejected(self, polo_profile):
        from repro.eye.motion import GazeTrack

        empty = GazeTrack(
            gaze_deg=np.zeros((0, 2)),
            labels=np.zeros(0, dtype=np.int64),
            openness=np.zeros(0),
            velocity_deg_s=np.zeros(0),
            fps=100.0,
        )
        with pytest.raises(ValueError):
            simulate_session(polo_profile, empty, SCENE, RES_1080P)


class TestSessionReport:
    def _mix(self):
        return EventMix.from_counts(n_saccade=0, n_reuse=1, n_predict=1)

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValueError, match="non-empty latency timeline"):
            SessionReport(
                frame_latency_s=np.zeros(0),
                decisions=[],
                event_mix=self._mix(),
                deadline_s=0.01,
                fps=100.0,
            )

    def test_mismatched_decisions_rejected(self):
        with pytest.raises(ValueError, match="decisions length"):
            SessionReport(
                frame_latency_s=np.array([0.001, 0.002]),
                decisions=["predict"],
                event_mix=self._mix(),
                deadline_s=0.01,
                fps=100.0,
            )

    def test_timeline_coerced_to_float64(self):
        report = SessionReport(
            frame_latency_s=[1, 2],
            decisions=["reuse", "predict"],
            event_mix=self._mix(),
            deadline_s=0.01,
            fps=100.0,
        )
        assert report.frame_latency_s.dtype == np.float64
        assert report.mean_latency_s == pytest.approx(1.5)


class TestDecidePaths:
    def test_matches_simulated_session(self, track, polo_profile):
        report = simulate_session(polo_profile, track, SCENE, RES_1080P)
        assert decide_paths(track) == report.decisions

    def test_no_event_gating_means_all_predict(self, track):
        decisions = decide_paths(track, supports_event_gating=False)
        assert set(decisions) == {"predict"}
