"""Frame-by-frame session simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eye import OculomotorModel
from repro.eye.events import EventMix, MovementType
from repro.eye.motion import GazeTrack, velocities_from_gaze
from repro.render import RES_1080P, RES_720P, scene_by_name
from repro.system import Schedule, TrackerSystemProfile, decide_paths
from repro.system.session import SessionConfig, SessionReport, simulate_session


def make_track(gaze, labels=None, openness=None, fps=100.0):
    gaze = np.asarray(gaze, dtype=float)
    n = gaze.shape[0]
    labels = (
        np.full(n, MovementType.FIXATION, dtype=np.int64)
        if labels is None
        else np.asarray(labels, dtype=np.int64)
    )
    openness = np.ones(n) if openness is None else np.asarray(openness, dtype=float)
    return GazeTrack(
        gaze_deg=gaze,
        labels=labels,
        openness=openness,
        velocity_deg_s=velocities_from_gaze(gaze, 1.0 / fps),
        fps=fps,
    )


@pytest.fixture(scope="module")
def track():
    return OculomotorModel(seed=17).generate(600)


@pytest.fixture
def polo_profile():
    return TrackerSystemProfile(
        "POLO", 0.012, 2.92, td_saccade_s=0.0002, td_reuse_s=0.0002
    )


@pytest.fixture
def baseline_profile():
    return TrackerSystemProfile("ResNet-34", 0.05, 13.15)


SCENE = scene_by_name("C")


class TestSimulateSession:
    def test_timeline_shape(self, track, polo_profile):
        report = simulate_session(polo_profile, track, SCENE, RES_1080P)
        assert report.frame_latency_s.shape == (600,)
        assert len(report.decisions) == 600
        assert (report.frame_latency_s > 0).all()

    def test_event_mix_reflects_behaviour(self, track, polo_profile):
        report = simulate_session(polo_profile, track, SCENE, RES_1080P)
        assert report.event_mix.p_saccade > 0.02  # saccades occurred
        assert report.event_mix.p_reuse > 0.3  # fixations dominate

    def test_baseline_always_predicts(self, track, baseline_profile):
        report = simulate_session(baseline_profile, track, SCENE, RES_1080P)
        assert set(report.decisions) == {"predict"}
        assert report.event_mix.p_predict == 1.0

    def test_polo_faster_than_baseline(self, track, polo_profile, baseline_profile):
        polo = simulate_session(polo_profile, track, SCENE, RES_1080P)
        base = simulate_session(baseline_profile, track, SCENE, RES_1080P)
        assert polo.mean_latency_s < 0.6 * base.mean_latency_s

    def test_parallel_schedule_reduces_latency(self, track, polo_profile):
        seq = simulate_session(polo_profile, track, SCENE, RES_1080P)
        par = simulate_session(
            polo_profile, track, SCENE, RES_1080P, schedule=Schedule.PARALLEL
        )
        assert par.mean_latency_s <= seq.mean_latency_s

    def test_post_saccadic_window_extends_cheap_frames(self, track, polo_profile):
        with_window = simulate_session(
            polo_profile, track, SCENE, RES_1080P, config=SessionConfig()
        )
        without = simulate_session(
            polo_profile,
            track,
            SCENE,
            RES_1080P,
            config=SessionConfig(post_saccade_low_res=False),
        )
        assert with_window.event_mix.p_saccade >= without.event_mix.p_saccade

    def test_deadline_miss_rate(self, track, polo_profile, baseline_profile):
        # At 100 fps (10 ms deadline), everything misses; the summary must
        # report it honestly.
        report = simulate_session(baseline_profile, track, SCENE, RES_720P)
        assert report.deadline_miss_rate == 1.0
        summary = report.summary()
        assert set(summary) >= {"mean_ms", "p99_ms", "miss_rate"}

    def test_empty_track_rejected(self, polo_profile):
        from repro.eye.motion import GazeTrack

        empty = GazeTrack(
            gaze_deg=np.zeros((0, 2)),
            labels=np.zeros(0, dtype=np.int64),
            openness=np.zeros(0),
            velocity_deg_s=np.zeros(0),
            fps=100.0,
        )
        with pytest.raises(ValueError):
            simulate_session(polo_profile, empty, SCENE, RES_1080P)


class TestSessionReport:
    def _mix(self):
        return EventMix.from_counts(n_saccade=0, n_reuse=1, n_predict=1)

    def test_empty_timeline_rejected(self):
        with pytest.raises(ValueError, match="non-empty latency timeline"):
            SessionReport(
                frame_latency_s=np.zeros(0),
                decisions=[],
                event_mix=self._mix(),
                deadline_s=0.01,
                fps=100.0,
            )

    def test_mismatched_decisions_rejected(self):
        with pytest.raises(ValueError, match="decisions length"):
            SessionReport(
                frame_latency_s=np.array([0.001, 0.002]),
                decisions=["predict"],
                event_mix=self._mix(),
                deadline_s=0.01,
                fps=100.0,
            )

    def test_timeline_coerced_to_float64(self):
        report = SessionReport(
            frame_latency_s=[1, 2],
            decisions=["reuse", "predict"],
            event_mix=self._mix(),
            deadline_s=0.01,
            fps=100.0,
        )
        assert report.frame_latency_s.dtype == np.float64
        assert report.mean_latency_s == pytest.approx(1.5)


class TestDecidePaths:
    def test_matches_simulated_session(self, track, polo_profile):
        report = simulate_session(polo_profile, track, SCENE, RES_1080P)
        assert decide_paths(track) == report.decisions

    def test_no_event_gating_means_all_predict(self, track):
        decisions = decide_paths(track, supports_event_gating=False)
        assert set(decisions) == {"predict"}


class TestDecidePathsEdgeCases:
    def test_first_frame_always_predicts(self):
        # No anchor exists yet, so even a perfectly still eye pays one
        # fresh prediction up front.
        track = make_track(np.zeros((4, 2)))
        decisions = decide_paths(track, SessionConfig(reuse_displacement_deg=1.0))
        assert decisions == ["predict", "reuse", "reuse", "reuse"]

    def test_displacement_exactly_at_threshold_predicts(self):
        # The reuse test is strict (<): landing exactly on the boundary
        # is out of budget and must refresh the prediction.
        config = SessionConfig(reuse_displacement_deg=1.0)
        at_boundary = make_track([[0.0, 0.0], [1.0, 0.0]])
        assert decide_paths(at_boundary, config) == ["predict", "predict"]
        inside = make_track([[0.0, 0.0], [1.0 - 1e-9, 0.0]])
        assert decide_paths(inside, config) == ["predict", "reuse"]

    def test_anchor_is_last_prediction_not_last_frame(self):
        # Drift of 0.6°/frame with a 1° budget: reuse holds only while
        # the *cumulative* displacement from the anchor stays inside.
        config = SessionConfig(reuse_displacement_deg=1.0)
        track = make_track([[0.0, 0.0], [0.6, 0.0], [1.2, 0.0]])
        assert decide_paths(track, config) == ["predict", "reuse", "predict"]

    def test_blink_occluded_frames_follow_anchor_logic(self):
        # A blink is not a saccade: near the anchor it reuses, far from
        # it (eye reopened elsewhere) it refreshes.
        config = SessionConfig(reuse_displacement_deg=1.0)
        labels = [MovementType.FIXATION, MovementType.BLINK, MovementType.BLINK]
        near = make_track(
            [[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]], labels=labels,
            openness=[1.0, 0.05, 0.05],
        )
        assert decide_paths(near, config) == ["predict", "reuse", "reuse"]
        far = make_track(
            [[0.0, 0.0], [0.1, 0.0], [5.0, 0.0]], labels=labels,
            openness=[1.0, 0.05, 0.05],
        )
        assert decide_paths(far, config) == ["predict", "reuse", "predict"]

    def test_saccade_onset_wins_over_reuse_at_zero_displacement(self):
        # Frame 2 is labelled saccade while still at the anchor: the
        # saccade path takes priority over an in-budget displacement.
        labels = [MovementType.FIXATION, MovementType.FIXATION, MovementType.SACCADE]
        track = make_track(np.zeros((3, 2)), labels=labels)
        decisions = decide_paths(track, SessionConfig(reuse_displacement_deg=1.0))
        assert decisions == ["predict", "reuse", "saccade"]

    def test_post_saccade_window_respects_flag(self):
        # One saccade frame, then stillness: with the 50 ms low-acuity
        # window on, the following frames ride the saccade path; with it
        # off they fall back to the displacement rule.
        labels = [MovementType.SACCADE] + [MovementType.FIXATION] * 6
        track = make_track(np.zeros((7, 2)), labels=labels)
        on = decide_paths(track, SessionConfig(post_saccade_low_res=True))
        assert on[:6] == ["saccade"] * 6  # saccade + 5-frame window at 100 fps
        assert on[6] == "predict"  # first ungated frame, no anchor yet
        off = decide_paths(track, SessionConfig(post_saccade_low_res=False))
        assert off == ["saccade", "predict"] + ["reuse"] * 5

    def test_empty_track_rejected(self):
        empty = GazeTrack(
            gaze_deg=np.zeros((0, 2)),
            labels=np.zeros(0, dtype=np.int64),
            openness=np.zeros(0),
            velocity_deg_s=np.zeros(0),
            fps=100.0,
        )
        with pytest.raises(ValueError, match="empty gaze track"):
            decide_paths(empty)


class TestSessionReportDegradedMix:
    def test_report_with_degraded_path_frames(self):
        # A chaos-style timeline: some frames served full-res (no gaze
        # stage) and some degraded to reuse; the aggregates must hold.
        latencies = np.array([1e-4, 1e-4, 5e-3, 1.2e-2, 1e-4])
        report = SessionReport(
            frame_latency_s=latencies,
            decisions=["reuse", "full_res", "predict", "predict", "reuse"],
            event_mix=EventMix.from_counts(0, 3, 2),
            deadline_s=0.01,
            fps=100.0,
        )
        assert report.deadline_miss_rate == pytest.approx(0.2)
        assert report.mean_latency_s == pytest.approx(latencies.mean())
        summary = report.summary()
        assert summary["miss_rate"] == pytest.approx(0.2)
        assert summary["p_predict"] == pytest.approx(0.4)
