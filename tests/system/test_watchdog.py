"""Tracking-quality watchdog: escalation, hysteresis, Eq. 1 coupling."""

from __future__ import annotations

import pytest

from repro.system import (
    DegradationLevel,
    TrackerSystemProfile,
    TrackingWatchdog,
    WatchdogConfig,
)

PROFILE = TrackerSystemProfile(
    "POLO", 0.0024, 2.92, td_saccade_s=1.2e-4, td_reuse_s=1.2e-4
)
# Small window so tests can flush it quickly; dwell of 0.1 s.
FAST = WatchdogConfig(window=8, min_samples=4, recovery_dwell_s=0.1)


def feed(watchdog, start_s, n, error_deg, confidence=1.0, dt=0.01):
    level = watchdog.level
    for i in range(n):
        level = watchdog.observe(
            start_s + i * dt, error_deg=error_deg, confidence=confidence
        )
    return level


class TestEscalation:
    def test_nominal_stream_stays_nominal(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        level = feed(watchdog, 0.0, 64, error_deg=PROFILE.delta_theta_deg * 0.5)
        assert level is DegradationLevel.NOMINAL
        assert watchdog.profile_now() is PROFILE
        assert watchdog.transitions == []

    def test_no_escalation_before_min_samples(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        level = feed(watchdog, 0.0, FAST.min_samples - 1, error_deg=100.0)
        assert level is DegradationLevel.NOMINAL
        assert watchdog.online_p95_deg() is None

    def test_inflated_error_widens(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        level = feed(watchdog, 0.0, 8, error_deg=PROFILE.delta_theta_deg * 2.0)
        assert level is DegradationLevel.WIDENED

    def test_severe_error_escalates_straight_to_full_res(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        level = feed(watchdog, 0.0, 8, error_deg=PROFILE.delta_theta_deg * 10.0)
        assert level is DegradationLevel.FULL_RES
        # The ladder was entered directly, not walked level by level.
        assert watchdog.transitions[-1][2] == "FULL_RES"

    def test_low_confidence_forces_reuse_even_without_errors(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        level = DegradationLevel.NOMINAL
        for i in range(16):
            level = watchdog.observe(i * 0.01, error_deg=None, confidence=0.1)
        assert level >= DegradationLevel.REUSE_ONLY
        assert watchdog.online_p95_deg() is None  # no error samples at all

    def test_rejects_negative_error(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        with pytest.raises(ValueError, match="error_deg"):
            watchdog.observe(0.0, error_deg=-1.0)


class TestEq1Coupling:
    def test_widened_delta_theta_tracks_online_p95_with_margin(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        feed(watchdog, 0.0, 8, error_deg=PROFILE.delta_theta_deg * 2.0)
        p95 = watchdog.online_p95_deg()
        assert p95 == pytest.approx(PROFILE.delta_theta_deg * 2.0)
        assert watchdog.widened_delta_theta_deg() == pytest.approx(
            FAST.widen_margin * p95
        )
        profile = watchdog.profile_now()
        assert profile.delta_theta_deg == pytest.approx(FAST.widen_margin * p95)
        assert profile.delta_theta_deg > PROFILE.delta_theta_deg

    def test_widened_delta_theta_never_below_nominal(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        feed(watchdog, 0.0, 8, error_deg=0.01)
        assert watchdog.widened_delta_theta_deg() == PROFILE.delta_theta_deg

    def test_max_widened_records_worst_operating_point(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        feed(watchdog, 0.0, 8, error_deg=PROFILE.delta_theta_deg * 3.0)
        worst = watchdog.max_widened_delta_theta_deg
        assert worst == pytest.approx(
            FAST.widen_margin * PROFILE.delta_theta_deg * 3.0
        )
        # Recovery does not erase the recorded worst case.
        feed(watchdog, 1.0, 100, error_deg=0.1)
        assert watchdog.level is DegradationLevel.NOMINAL
        assert watchdog.max_widened_delta_theta_deg == worst


class TestHystereticRecovery:
    def test_recovery_steps_down_one_level_per_dwell(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        feed(watchdog, 0.0, 8, error_deg=PROFILE.delta_theta_deg * 3.0)
        assert watchdog.level is DegradationLevel.REUSE_ONLY
        level = feed(watchdog, 0.08, 60, error_deg=0.1)
        assert level is DegradationLevel.NOMINAL
        down = [t for t in watchdog.transitions if t[2] != t[1]][-2:]
        assert [t[1:] for t in down] == [
            ("REUSE_ONLY", "WIDENED"),
            ("WIDENED", "NOMINAL"),
        ]
        # Consecutive step-downs are separated by at least one dwell.
        assert down[1][0] - down[0][0] >= FAST.recovery_dwell_s - 1e-9

    def test_relapse_resets_the_recovery_clock(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        feed(watchdog, 0.0, 8, error_deg=PROFILE.delta_theta_deg * 3.0)
        # Healthy long enough to start the recovery clock, not to finish it.
        feed(watchdog, 0.08, 8, error_deg=0.1)
        assert watchdog.level is DegradationLevel.REUSE_ONLY
        # Relapse: the error stream degrades again (clock must reset).
        feed(watchdog, 0.16, 8, error_deg=PROFILE.delta_theta_deg * 3.0)
        # A short healthy stretch after the relapse: had the clock kept
        # running from before the relapse, this would step down.
        level = feed(watchdog, 0.24, 8, error_deg=0.1)
        assert level is DegradationLevel.REUSE_ONLY

    def test_dwell_ledger_closes_to_total_span(self):
        watchdog = TrackingWatchdog(PROFILE, FAST, start_s=0.0)
        feed(watchdog, 0.0, 8, error_deg=PROFILE.delta_theta_deg * 2.0)
        watchdog.finalize(2.0)
        dwell = watchdog.dwell_s()
        assert sum(dwell.values()) == pytest.approx(2.0)
        assert dwell["WIDENED"] > 0
        # finalize is idempotent: a later call must not inflate the ledger.
        watchdog.finalize(5.0)
        assert sum(watchdog.dwell_s().values()) == pytest.approx(2.0)


class TestExternalEscalation:
    """``escalate`` — the SLO page hook's entry into the ladder."""

    def test_escalates_an_idle_watchdog_to_widened(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        level = watchdog.escalate(0.5)
        assert level is DegradationLevel.WIDENED
        assert watchdog.transitions[-1][1:] == ("NOMINAL", "WIDENED")

    def test_never_de_escalates(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        feed(watchdog, 0.0, 8, error_deg=PROFILE.delta_theta_deg * 10.0)
        assert watchdog.level is DegradationLevel.FULL_RES
        assert watchdog.escalate(0.2) is DegradationLevel.FULL_RES
        assert watchdog.transitions[-1][2] == "FULL_RES"  # no new transition

    def test_escalation_restarts_the_recovery_clock(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        watchdog.escalate(0.0)
        # A healthy stream after the escalation recovers with the usual
        # hysteresis — an external page degrades, it does not latch.
        level = feed(watchdog, 0.01, 60, error_deg=0.1)
        assert level is DegradationLevel.NOMINAL

    def test_escalation_records_the_widened_operating_point(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        watchdog.escalate(0.5)
        assert watchdog.max_widened_delta_theta_deg >= PROFILE.delta_theta_deg

    def test_state_dict_round_trips_after_escalation(self):
        watchdog = TrackingWatchdog(PROFILE, FAST)
        watchdog.escalate(0.5)
        clone = TrackingWatchdog(PROFILE, FAST)
        clone.load_state(watchdog.state_dict())
        assert clone.level is DegradationLevel.WIDENED
        assert clone.state_dict() == watchdog.state_dict()


class TestWatchdogConfig:
    def test_rejects_unordered_thresholds(self):
        with pytest.raises(ValueError, match="widen_factor"):
            WatchdogConfig(widen_factor=3.0, reuse_factor=2.0)

    def test_rejects_min_samples_above_window(self):
        with pytest.raises(ValueError, match="min_samples"):
            WatchdogConfig(window=8, min_samples=9)

    def test_rejects_bad_confidence_floor(self):
        with pytest.raises(ValueError, match="confidence_floor"):
            WatchdogConfig(confidence_floor=1.5)
