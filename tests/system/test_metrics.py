"""System metrics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.system import (
    fmt_ms,
    geometric_mean,
    is_close_factor,
    log_ratio,
    ms,
    percentile_key,
    percentile_summary,
    speedup,
    table_to_text,
)


class TestAggregation:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError, match="positive"):
            geometric_mean([2.0, -3.0])
        with pytest.raises(ValueError, match="no values"):
            geometric_mean([])
        with pytest.raises(ValueError, match="no values"):
            geometric_mean(iter(()))

    def test_geometric_mean_accepts_generators(self):
        assert geometric_mean(2.0**k for k in range(3)) == pytest.approx(2.0)

    def test_geometric_mean_single_value_identity(self):
        assert geometric_mean([7.25]) == pytest.approx(7.25)

    def test_speedup(self):
        assert speedup(0.1, 0.05) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_ms_and_fmt(self):
        assert ms(0.0123) == pytest.approx(12.3)
        assert fmt_ms(0.0123) == "12.3ms"

    def test_percentile_summary(self):
        s = percentile_summary(np.arange(101.0))
        assert s["mean"] == pytest.approx(50.0)
        assert s["p90"] == pytest.approx(90.0)
        assert s["p95"] == pytest.approx(95.0)
        with pytest.raises(ValueError):
            percentile_summary(np.array([]))

    def test_percentile_summary_custom_ps(self):
        s = percentile_summary(np.arange(101.0), (50, 99))
        assert set(s) == {"mean", "p50", "p99"}
        assert s["p50"] == pytest.approx(50.0)
        assert s["p99"] == pytest.approx(99.0)

    def test_percentile_summary_linear_interpolation(self):
        # Two samples: p50 must interpolate linearly between them.
        s = percentile_summary([0.0, 10.0], (50,))
        assert s["p50"] == pytest.approx(5.0)

    def test_percentile_key_formats_fractional(self):
        assert percentile_key(95) == "p95"
        assert percentile_key(99.9) == "p99.9"


class TestShapeChecks:
    def test_is_close_factor(self):
        assert is_close_factor(1.5, 1.0, factor=2.0)
        assert not is_close_factor(3.0, 1.0, factor=2.0)
        assert is_close_factor(0.6, 1.0, factor=2.0)
        with pytest.raises(ValueError):
            is_close_factor(0.0, 1.0)

    def test_log_ratio(self):
        assert log_ratio(2.0, 1.0) == pytest.approx(1.0)
        assert log_ratio(1.0, 2.0) == pytest.approx(-1.0)


class TestTable:
    def test_table_contains_headers_and_cells(self):
        text = table_to_text(["A", "B"], [["x", "1"], ["yyyyyyyyyyyyyy", "2"]])
        assert "A" in text and "yyyyyyyyyyyyyy" in text
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows

    def test_columns_align_under_min_width(self):
        text = table_to_text(["A", "B"], [["x", "1"]], min_width=4)
        header, rule, row = text.splitlines()
        # every line is the same width and columns start at the same offsets
        assert len(header) == len(rule) == len(row)
        assert header.index("B") == row.index("1")
        assert rule == "----  ----"

    def test_wide_cell_stretches_its_column(self):
        wide = "w" * 15
        text = table_to_text(["A", "B"], [[wide, "1"], ["x", "2"]], min_width=4)
        header, rule, row1, row2 = text.splitlines()
        assert header.index("B") == 15 + 2  # widest cell + 2-space gutter
        assert row1.index("1") == row2.index("2") == header.index("B")
        assert rule.split("  ")[0] == "-" * 15

    def test_non_string_cells_are_rendered(self):
        text = table_to_text(["N", "F"], [[3, 2.5]], min_width=3)
        assert "3" in text and "2.5" in text

    def test_empty_rows_render_header_and_rule_only(self):
        text = table_to_text(["A"], [], min_width=3)
        assert text.splitlines() == ["A  ", "---"]
