"""End-to-end TFR latency composition (Eqs. 6-8, Fig. 11 schedules)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eye.events import EventMix
from repro.render import RES_1080P, scene_by_name
from repro.system import (
    Schedule,
    TfrSystem,
    TrackerSystemProfile,
    vive_pro_eye_profile,
)


@pytest.fixture
def system():
    return TfrSystem()


@pytest.fixture
def polo_profile():
    return TrackerSystemProfile(
        "POLO",
        td_predict_s=0.012,
        delta_theta_deg=2.92,
        td_saccade_s=0.0002,
        td_reuse_s=0.0002,
    )


@pytest.fixture
def baseline_profile():
    return TrackerSystemProfile("ResNet-34", td_predict_s=0.045, delta_theta_deg=13.15)


SCENE = scene_by_name("E")


class TestProfiles:
    def test_event_gating_detection(self, polo_profile, baseline_profile):
        assert polo_profile.supports_event_gating
        assert not baseline_profile.supports_event_gating

    def test_td_for_path_fallback(self, baseline_profile):
        assert baseline_profile.td_for_path("saccade") == baseline_profile.td_predict_s
        with pytest.raises(ValueError):
            baseline_profile.td_for_path("warp")

    def test_with_delta_theta(self, polo_profile):
        other = polo_profile.with_delta_theta(1.0)
        assert other.delta_theta_deg == 1.0
        assert other.td_predict_s == polo_profile.td_predict_s

    def test_validation(self):
        with pytest.raises(ValueError):
            TrackerSystemProfile("x", td_predict_s=0.0, delta_theta_deg=1.0)
        with pytest.raises(ValueError):
            TrackerSystemProfile("x", td_predict_s=0.01, delta_theta_deg=-1.0)


class TestSequentialComposition:
    def test_frame_latency_is_sum_of_stages(self, system, polo_profile):
        frame = system.frame_latency(polo_profile, SCENE, RES_1080P, "predict")
        assert frame.total_s == pytest.approx(
            frame.sensing_s + frame.communication_s + frame.gaze_s + frame.rendering_s
        )
        assert frame.sensing_s == pytest.approx(1e-3)
        assert frame.communication_s < 1e-3

    def test_sensing_and_comm_are_small_fraction(self, system, polo_profile):
        """Fig. 4b: Ts + Tc are a small fraction of the total."""
        frame = system.frame_latency(polo_profile, SCENE, RES_1080P)
        assert (frame.sensing_s + frame.communication_s) / frame.total_s < 0.1

    def test_saccade_path_cheapest(self, system, polo_profile):
        saccade = system.frame_latency(polo_profile, SCENE, RES_1080P, "saccade")
        reuse = system.frame_latency(polo_profile, SCENE, RES_1080P, "reuse")
        predict = system.frame_latency(polo_profile, SCENE, RES_1080P, "predict")
        assert saccade.total_s < reuse.total_s < predict.total_s

    def test_full_resolution_comparator(self, system, polo_profile):
        full = system.full_resolution_latency(SCENE, RES_1080P)
        foveated = system.frame_latency(polo_profile, SCENE, RES_1080P).total_s
        assert full > 2 * foveated


class TestParallelSchedule:
    def test_parallel_never_slower(self, system, polo_profile, baseline_profile):
        for profile in (polo_profile, baseline_profile):
            for path in ("predict", "saccade"):
                seq = system.frame_latency(
                    profile, SCENE, RES_1080P, path, Schedule.SEQUENTIAL
                ).total_s
                par = system.frame_latency(
                    profile, SCENE, RES_1080P, path, Schedule.PARALLEL
                ).total_s
                assert par <= seq + 1e-12

    def test_parallel_hides_fast_gaze_behind_r1(self, system, polo_profile):
        """POLO's Td < Tr1, so the parallel total is R1 + R2 exactly."""
        frame = system.frame_latency(
            polo_profile, SCENE, RES_1080P, "predict", Schedule.PARALLEL
        )
        assert frame.total_s == pytest.approx(frame.r1_s + frame.r2_s)

    def test_parallel_bound_by_slow_gaze(self, system):
        slow = TrackerSystemProfile("slow", td_predict_s=0.2, delta_theta_deg=10.0)
        frame = system.frame_latency(slow, SCENE, RES_1080P, "predict", Schedule.PARALLEL)
        expected = system.ts + system.tc + 0.2 + frame.r2_s
        assert frame.total_s == pytest.approx(expected)


class TestAveragesAndFps:
    def test_event_mix_weighting(self, system, polo_profile):
        mix = EventMix(0.1, 0.7, 0.2)
        parts = {
            path: system.frame_latency(polo_profile, SCENE, RES_1080P, path).total_s
            for path in ("saccade", "reuse", "predict")
        }
        expected = 0.1 * parts["saccade"] + 0.7 * parts["reuse"] + 0.2 * parts["predict"]
        avg = system.average_latency(polo_profile, SCENE, RES_1080P, mix)
        assert avg == pytest.approx(expected)

    def test_baselines_ignore_event_mix(self, system, baseline_profile):
        mix = EventMix(0.1, 0.7, 0.2)
        avg = system.average_latency(baseline_profile, SCENE, RES_1080P, mix)
        predict = system.frame_latency(baseline_profile, SCENE, RES_1080P).total_s
        assert avg == pytest.approx(predict)

    def test_fps_is_reciprocal(self, system, polo_profile):
        mix = EventMix(0.1, 0.7, 0.2)
        avg = system.average_latency(polo_profile, SCENE, RES_1080P, mix)
        assert system.fps_max(polo_profile, SCENE, RES_1080P, mix) == pytest.approx(1 / avg)

    def test_event_mix_improves_average(self, system, polo_profile):
        """Reuse/saccade gating lowers the average below always-predicting."""
        mix = EventMix(0.1, 0.7, 0.2)
        gated = system.average_latency(polo_profile, SCENE, RES_1080P, mix)
        always = system.average_latency(polo_profile, SCENE, RES_1080P, None)
        assert gated < always


class TestCommercialProfile:
    def test_vive_profile_shape(self, system):
        vive = vive_pro_eye_profile()
        assert vive.td_predict_s == pytest.approx(0.050)
        assert not vive.supports_event_gating
        frame = system.frame_latency(vive, SCENE, RES_1080P)
        assert frame.total_s > 0.05
