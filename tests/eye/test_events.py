"""Event taxonomy utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eye import (
    EventMix,
    MovementType,
    post_saccade_mask,
    saccade_fraction,
    segments_from_labels,
)


class TestSegments:
    def test_basic_segmentation(self):
        labels = np.array([0, 0, 1, 1, 1, 0, 2])
        segments = segments_from_labels(labels)
        assert [(s.kind, s.start, s.stop) for s in segments] == [
            (MovementType.FIXATION, 0, 2),
            (MovementType.SACCADE, 2, 5),
            (MovementType.FIXATION, 5, 6),
            (MovementType.PURSUIT, 6, 7),
        ]
        assert segments[1].length == 3

    def test_empty_and_single(self):
        assert segments_from_labels(np.array([])) == []
        only = segments_from_labels(np.array([3]))
        assert only[0].kind == MovementType.BLINK and only[0].length == 1


class TestEventMix:
    def test_probabilities_sum_check(self):
        with pytest.raises(ValueError):
            EventMix(0.5, 0.5, 0.5)

    def test_from_counts(self):
        mix = EventMix.from_counts(10, 70, 20)
        assert mix.p_saccade == pytest.approx(0.1)
        assert mix.p_reuse == pytest.approx(0.7)
        assert mix.p_predict == pytest.approx(0.2)

    def test_from_counts_rejects_empty(self):
        with pytest.raises(ValueError):
            EventMix.from_counts(0, 0, 0)


class TestFractionsAndMasks:
    def test_saccade_fraction(self):
        labels = np.array([0, 1, 1, 0])
        assert saccade_fraction(labels) == pytest.approx(0.5)

    def test_saccade_fraction_rejects_empty(self):
        with pytest.raises(ValueError):
            saccade_fraction(np.array([]))

    def test_post_saccade_mask_window(self):
        labels = np.array([0, 1, 1, 0, 0, 0, 0])
        mask = post_saccade_mask(labels, window=2)
        np.testing.assert_array_equal(mask, [False, False, False, True, True, False, False])

    def test_post_saccade_mask_excludes_next_saccade(self):
        labels = np.array([1, 0, 1, 1, 0])
        mask = post_saccade_mask(labels, window=3)
        assert not mask[2] and not mask[3]
        assert mask[1] and mask[4]
