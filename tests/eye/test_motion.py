"""Oculomotor model: §2.1's behavioural statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eye import (
    MovementType,
    OculomotorConfig,
    OculomotorModel,
    segments_from_labels,
)


@pytest.fixture(scope="module")
def track():
    return OculomotorModel(seed=3).generate(3000)  # 30 s at 100 fps


class TestTrajectoryStatistics:
    def test_lengths_consistent(self, track):
        assert len(track) == 3000
        assert track.gaze_deg.shape == (3000, 2)
        assert track.labels.shape == (3000,)
        assert track.openness.shape == (3000,)

    def test_gaze_within_field(self, track):
        limit = OculomotorConfig().field_deg / 2 + 1.0  # tremor slack
        assert np.abs(track.gaze_deg).max() <= limit

    def test_saccade_rate_one_to_three_per_second(self, track):
        segments = segments_from_labels(track.labels)
        n_saccades = sum(1 for s in segments if s.kind == MovementType.SACCADE)
        duration_s = len(track) / track.fps
        rate = n_saccades / duration_s
        assert 0.7 <= rate <= 3.5

    def test_saccade_durations_in_published_range(self, track):
        segments = segments_from_labels(track.labels)
        for seg in segments:
            if seg.kind == MovementType.SACCADE:
                ms = seg.length / track.fps * 1000
                assert 15.0 <= ms <= 220.0

    def test_saccade_frames_have_high_velocity(self, track):
        saccadic = track.labels == MovementType.SACCADE
        fixating = track.labels == MovementType.FIXATION
        assert track.velocity_deg_s[saccadic].mean() > 5 * max(
            track.velocity_deg_s[fixating].mean(), 1e-6
        )

    def test_fixation_durations_plausible(self, track):
        segments = segments_from_labels(track.labels)
        fixations = [s for s in segments if s.kind == MovementType.FIXATION]
        # Blinks can split fixations, so only check the upper bound and
        # that typical fixations are not degenerate.
        lengths_ms = np.array([s.length / track.fps * 1000 for s in fixations])
        assert np.median(lengths_ms) >= 100.0
        assert lengths_ms.max() <= 700.0

    def test_post_saccade_mask_follows_saccades(self, track):
        mask = track.post_saccade
        saccadic = track.labels == MovementType.SACCADE
        # post-saccadic frames are never themselves saccadic
        assert not np.any(mask & saccadic)
        # each saccade end is followed by at least one flagged frame
        ends = np.flatnonzero(saccadic[:-1] & ~saccadic[1:])
        for end in ends:
            assert mask[end + 1] or track.labels[end + 1] != MovementType.FIXATION

    def test_blinks_close_the_eye(self):
        config = OculomotorConfig(blink_rate_hz=2.0)
        track = OculomotorModel(config, seed=11).generate(2000)
        assert (track.openness < 0.2).any()
        assert (track.labels[track.openness < 0.2] == MovementType.BLINK).all()

    def test_pursuit_segments_have_moderate_velocity(self):
        config = OculomotorConfig(pursuit_probability=0.6)
        track = OculomotorModel(config, seed=2).generate(2000)
        pursuit = track.labels == MovementType.PURSUIT
        assert pursuit.any()
        speeds = track.velocity_deg_s[pursuit]
        assert 1.0 < np.median(speeds) < 40.0


class TestDeterminismAndValidation:
    def test_seeded_reproducibility(self):
        a = OculomotorModel(seed=9).generate(500)
        b = OculomotorModel(seed=9).generate(500)
        np.testing.assert_allclose(a.gaze_deg, b.gaze_deg)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            OculomotorModel(seed=0).generate(0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            OculomotorConfig(fps=0)
        with pytest.raises(ValueError):
            OculomotorConfig(pursuit_probability=1.5)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=400), st.integers(min_value=0, max_value=50))
    def test_any_length_fully_labelled(self, n_frames, seed):
        track = OculomotorModel(seed=seed).generate(n_frames)
        assert len(track) == n_frames
        valid_labels = {int(m) for m in MovementType}
        assert set(np.unique(track.labels)).issubset(valid_labels)
        assert np.isfinite(track.gaze_deg).all()
