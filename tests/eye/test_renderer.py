"""Near-eye renderer: the intensity contract POLONet depends on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eye import EyeAppearance, EyeGeometry, NearEyeRenderer, RenderConfig


@pytest.fixture(scope="module")
def renderer():
    appearance = EyeAppearance.sample(np.random.default_rng(5), 160, 120)
    return NearEyeRenderer(appearance, RenderConfig(), seed=5)


class TestFrameBasics:
    def test_range_and_shape(self, renderer):
        frame = renderer.render(np.array([0.0, 0.0]))
        assert frame.shape == (120, 160)
        assert frame.min() >= 0.0 and frame.max() <= 1.0

    def test_pupil_is_darkest_region(self, renderer):
        frame = renderer.render(np.array([0.0, 0.0]))
        pose = renderer.geometry.pupil_pose(np.array([0.0, 0.0]))
        y, x = int(round(pose.y)), int(round(pose.x))
        pupil_patch = frame[y - 2 : y + 3, x - 2 : x + 3]
        assert np.median(pupil_patch) < 0.2
        assert np.median(frame) > 0.4

    def test_darkest_pixel_tracks_gaze(self, renderer):
        for gaze in ([8.0, 0.0], [-8.0, 4.0], [0.0, -6.0]):
            frame = renderer.render(np.array(gaze))
            pose = renderer.geometry.pupil_pose(np.array(gaze))
            # Median-filter-free check: take the centroid of very dark pixels.
            ys, xs = np.nonzero(frame < 0.12)
            assert len(xs) > 10
            assert abs(xs.mean() - pose.x) < 8.0
            assert abs(ys.mean() - pose.y) < 8.0

    def test_blink_removes_pupil(self, renderer):
        frame = renderer.render(np.array([0.0, 0.0]), openness=0.0)
        assert (frame < 0.12).sum() < 20  # only lashes / noise survive

    def test_partial_openness_shrinks_dark_area(self, renderer):
        open_frame = renderer.render(np.array([0.0, 5.0]), openness=1.0)
        half_frame = renderer.render(np.array([0.0, 5.0]), openness=0.35)
        assert (half_frame < 0.12).sum() < (open_frame < 0.12).sum()

    def test_motion_blur_reduces_contrast(self, renderer):
        sharp = renderer.render(np.array([0.0, 0.0]))
        blurred = renderer.render(np.array([0.0, 0.0]), motion_blur=6.0)
        assert blurred.std() < sharp.std()

    def test_glints_present(self, renderer):
        frame = renderer.render(np.array([0.0, 0.0]))
        assert (frame > 0.9).sum() >= 3  # bright corneal reflections


class TestConfigValidation:
    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError):
            RenderConfig(noise_std=0.9)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            RenderConfig(width=0)

    def test_custom_resolution(self):
        appearance = EyeAppearance.sample(np.random.default_rng(0), 80, 60)
        renderer = NearEyeRenderer(appearance, RenderConfig(width=80, height=60), seed=0)
        assert renderer.render(np.zeros(2)).shape == (60, 80)


class TestGeometryIntegration:
    def test_geometry_object_shared(self, renderer):
        assert isinstance(renderer.geometry, EyeGeometry)
        assert renderer.geometry.appearance is renderer.appearance
