"""Eye geometry: projection, inversion, foreshortening."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eye import EyeAppearance, EyeGeometry


@pytest.fixture
def appearance(rng):
    return EyeAppearance.sample(rng, width=160, height=120)


class TestAppearanceSampling:
    def test_parameters_in_plausible_ranges(self, rng):
        for _ in range(20):
            a = EyeAppearance.sample(rng, 160, 120)
            assert 0 < a.pupil_radius < a.iris_radius < a.eye_width
            assert 0.0 <= a.lid_droop <= 0.3
            assert 0.3 <= a.iris_shade <= 0.55
            assert a.sclera_shade > a.skin_shade > a.iris_shade

    def test_scales_with_resolution(self, rng):
        small = EyeAppearance.sample(np.random.default_rng(0), 160, 120)
        large = EyeAppearance.sample(np.random.default_rng(0), 640, 480)
        assert large.pupil_radius > 2 * small.pupil_radius


class TestProjection:
    def test_center_gaze_lands_at_center(self, appearance):
        geometry = EyeGeometry(appearance)
        pose = geometry.pupil_pose(np.array([0.0, 0.0]))
        assert pose.x == pytest.approx(appearance.center_x)
        assert pose.y == pytest.approx(appearance.center_y)

    def test_gaze_moves_pupil_proportionally(self, appearance):
        geometry = EyeGeometry(appearance)
        right = geometry.pupil_pose(np.array([10.0, 0.0]))
        far_right = geometry.pupil_pose(np.array([20.0, 0.0]))
        assert right.x > appearance.center_x
        assert far_right.x > right.x
        # Small-angle slope approximates gain per degree.
        near = geometry.pupil_pose(np.array([1.0, 0.0]))
        slope = near.x - appearance.center_x
        assert slope == pytest.approx(appearance.gain_x, rel=0.01)

    def test_inverse_recovers_gaze(self, appearance):
        geometry = EyeGeometry(appearance)
        for gaze in ([5.0, -8.0], [0.0, 0.0], [-15.0, 12.0]):
            pose = geometry.pupil_pose(np.array(gaze))
            recovered = geometry.gaze_from_pupil(pose.x, pose.y)
            np.testing.assert_allclose(recovered, gaze, atol=1e-9)

    def test_foreshortening_squashes_minor_axis(self, appearance):
        geometry = EyeGeometry(appearance)
        ahead = geometry.pupil_pose(np.array([0.0, -appearance.camera_tilt_deg]))
        oblique = geometry.pupil_pose(np.array([20.0, 15.0]))
        ratio_ahead = ahead.radius_minor / ahead.radius_major
        ratio_oblique = oblique.radius_minor / oblique.radius_major
        assert ratio_ahead == pytest.approx(1.0, abs=1e-6)
        assert ratio_oblique < ratio_ahead

    def test_dilation_scales_radius(self, appearance):
        geometry = EyeGeometry(appearance)
        small = geometry.pupil_pose(np.zeros(2), dilation=0.8)
        big = geometry.pupil_pose(np.zeros(2), dilation=1.4)
        assert big.radius_major == pytest.approx(small.radius_major * 1.4 / 0.8)

    def test_dilation_clamped(self, appearance):
        geometry = EyeGeometry(appearance)
        huge = geometry.pupil_pose(np.zeros(2), dilation=10.0)
        assert huge.radius_major == pytest.approx(appearance.pupil_radius * 1.8)
