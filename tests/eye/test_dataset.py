"""Dataset synthesis: schema, splits, reproducibility."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eye import (
    EyeDataset,
    EyeSequence,
    MovementType,
    make_openeds_like,
    synthesize_dataset,
    synthesize_sequence,
)


class TestSequenceSynthesis:
    def test_schema(self):
        seq = synthesize_sequence(0, 100, seed=0)
        assert seq.images.shape == (100, 120, 160)
        assert seq.images.dtype == np.float32
        assert seq.gaze_deg.shape == (100, 2)
        assert seq.labels.shape == (100,)
        assert 0.0 <= seq.images.min() and seq.images.max() <= 1.0

    def test_labels_match_motion(self):
        seq = synthesize_sequence(0, 400, seed=1)
        saccadic = seq.labels == MovementType.SACCADE
        assert saccadic.any()
        assert seq.velocity_deg_s[saccadic].mean() > seq.velocity_deg_s[~saccadic].mean()

    def test_seeded_determinism(self):
        a = synthesize_sequence(0, 50, seed=42)
        b = synthesize_sequence(0, 50, seed=42)
        np.testing.assert_allclose(a.images, b.images)

    def test_rejects_zero_frames(self):
        with pytest.raises(ValueError):
            synthesize_sequence(0, 0)

    def test_length_validation(self):
        seq = synthesize_sequence(0, 10, seed=0)
        with pytest.raises(ValueError):
            EyeSequence(
                participant=0,
                images=seq.images,
                gaze_deg=seq.gaze_deg[:5],
                labels=seq.labels,
                openness=seq.openness,
                velocity_deg_s=seq.velocity_deg_s,
                post_saccade=seq.post_saccade,
                fps=seq.fps,
            )


class TestDataset:
    def test_multi_participant_appearances_differ(self):
        dataset = synthesize_dataset(3, 20, seed=0)
        assert dataset.participants == [0, 1, 2]
        first = dataset.sequences[0].images.mean()
        second = dataset.sequences[1].images.mean()
        assert first != pytest.approx(second, abs=1e-4)

    def test_flattened_views(self):
        dataset = synthesize_dataset(2, 15, seed=0)
        assert len(dataset) == 30
        assert dataset.images().shape[0] == 30
        assert dataset.gaze().shape == (30, 2)
        assert dataset.labels().shape == (30,)

    def test_subsample(self):
        dataset = synthesize_dataset(2, 15, seed=0)
        images, gaze = dataset.subsample(8, seed=1)
        assert images.shape[0] == 8 and gaze.shape == (8, 2)
        with pytest.raises(ValueError):
            dataset.subsample(1000)

    def test_empty_dataset_len(self):
        assert len(EyeDataset()) == 0


class TestOpenedsLike:
    def test_split_structure(self):
        train, val = make_openeds_like(scale=0.005, seed=0)
        assert len(train.sequences) >= 2
        assert len(val.sequences) >= 1
        train_ids = set(train.participants)
        val_ids = set(val.participants)
        assert train_ids.isdisjoint(val_ids)
        assert all(pid >= 1000 for pid in val_ids)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            make_openeds_like(scale=0.0)
        with pytest.raises(ValueError):
            make_openeds_like(scale=1.5)
