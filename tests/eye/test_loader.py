"""External-dataset adapter."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.eye import MovementType
from repro.eye.loader import load_dataset, load_sequence


def write_participant(directory, n=20, h=24, w=32, fps=90.0, with_labels=True):
    directory.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(0)
    frames = (rng.random((n, h, w)) * 255).astype(np.uint8)
    np.save(directory / "frames.npy", frames)
    gaze = rng.uniform(-10, 10, size=(n, 2))
    with open(directory / "gaze.csv", "w") as handle:
        handle.write("theta_x,theta_y\n")
        for row in gaze:
            handle.write(f"{row[0]:.4f},{row[1]:.4f}\n")
    if with_labels:
        labels = np.zeros(n, dtype=int)
        labels[5:8] = int(MovementType.SACCADE)
        with open(directory / "labels.csv", "w") as handle:
            handle.writelines(f"{v}\n" for v in labels)
    with open(directory / "meta.json", "w") as handle:
        json.dump({"fps": fps}, handle)
    return frames, gaze


class TestLoadSequence:
    def test_roundtrip(self, tmp_path):
        frames, gaze = write_participant(tmp_path / "p0")
        seq = load_sequence(tmp_path / "p0", participant=0)
        assert seq.images.shape == frames.shape
        assert seq.images.max() <= 1.0
        np.testing.assert_allclose(seq.gaze_deg, gaze, atol=1e-3)
        assert seq.fps == 90.0
        assert (seq.labels[5:8] == MovementType.SACCADE).all()

    def test_labels_optional(self, tmp_path):
        write_participant(tmp_path / "p0", with_labels=False)
        seq = load_sequence(tmp_path / "p0", participant=0)
        assert (seq.labels == MovementType.FIXATION).all()

    def test_missing_frames(self, tmp_path):
        (tmp_path / "p0").mkdir()
        with pytest.raises(FileNotFoundError):
            load_sequence(tmp_path / "p0", participant=0)

    def test_length_mismatch_rejected(self, tmp_path):
        write_participant(tmp_path / "p0", n=20)
        with open(tmp_path / "p0" / "gaze.csv", "a") as handle:
            handle.write("0.0,0.0\n")
        with pytest.raises(ValueError):
            load_sequence(tmp_path / "p0", participant=0)

    def test_bad_float_range_rejected(self, tmp_path):
        write_participant(tmp_path / "p0")
        np.save(tmp_path / "p0" / "frames.npy", np.full((20, 24, 32), 3.0))
        with pytest.raises(ValueError):
            load_sequence(tmp_path / "p0", participant=0)

    def test_velocity_and_post_saccade_derived(self, tmp_path):
        write_participant(tmp_path / "p0")
        seq = load_sequence(tmp_path / "p0", participant=0)
        assert seq.velocity_deg_s.shape == (20,)
        assert seq.post_saccade.dtype == bool


class TestLoadDataset:
    def test_multiple_participants(self, tmp_path):
        write_participant(tmp_path / "alice")
        write_participant(tmp_path / "bob")
        dataset = load_dataset(tmp_path)
        assert len(dataset.sequences) == 2
        assert dataset.participants == [0, 1]

    def test_empty_root_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            load_dataset(tmp_path)

    def test_missing_root_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope")

    def test_loaded_data_runs_through_polonet(self, tmp_path, tiny_bundle):
        """The adapter's output is pipeline-compatible."""
        write_participant(tmp_path / "p0", n=6, h=120, w=160)
        dataset = load_dataset(tmp_path)
        polonet = tiny_bundle.polonet
        polonet.reset()
        results = polonet.process_sequence(
            dataset.sequences[0].images.astype(np.float64)
        )
        assert len(results) == 6
