"""Synthetic observer and the 2IFC user-study harness (Fig. 15)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception import (
    ObserverConfig,
    SyntheticObserver,
    VideoProfile,
    run_user_study,
)


@pytest.fixture
def traces(rng):
    good = np.abs(rng.normal(1.2, 0.6, size=200))  # POLOViT-like errors
    bad = np.abs(rng.normal(4.0, 4.0, size=200))  # long-tailed baseline
    return good, bad


class TestVideoProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            VideoProfile("x", motion_masking=0.99)
        with pytest.raises(ValueError):
            VideoProfile("x", brightness=1.5)


class TestObserver:
    def test_artifact_evidence_higher_for_worse_trace(self, traces):
        good, bad = traces
        observer = SyntheticObserver(seed=0)
        video = VideoProfile("static")
        assert observer.artifact_evidence(bad, video) > observer.artifact_evidence(
            good, video
        )

    def test_motion_masking_reduces_evidence(self, traces):
        good, _ = traces
        observer = SyntheticObserver(seed=0)
        static = observer.artifact_evidence(good, VideoProfile("s", motion_masking=0.0))
        moving = observer.artifact_evidence(good, VideoProfile("m", motion_masking=0.6))
        assert moving < static

    def test_prefers_lower_error_most_of_the_time(self, traces):
        good, bad = traces
        observer = SyntheticObserver(
            ObserverConfig(decision_noise=0.05, lapse_rate=0.0), seed=1
        )
        video = VideoProfile("static")
        picks = [observer.choose(good, bad, video) for _ in range(50)]
        assert np.mean([p == 0 for p in picks]) > 0.9

    def test_identical_traces_near_chance(self, traces):
        good, _ = traces
        observer = SyntheticObserver(seed=2)
        video = VideoProfile("static")
        picks = [observer.choose(good, good, video) for _ in range(200)]
        assert 0.35 < np.mean([p == 0 for p in picks]) < 0.65

    def test_empty_trace_rejected(self):
        observer = SyntheticObserver(seed=0)
        with pytest.raises(ValueError):
            observer.artifact_evidence(np.array([]), VideoProfile("x"))


class TestUserStudy:
    def test_candidate_with_lower_error_wins(self, traces):
        good, bad = traces
        result = run_user_study(good, bad, n_participants=5, repeats=3, seed=0)
        assert result.mean_selection > 0.7
        assert len(result.per_participant) == 5
        assert set(result.per_video) == {v.name for v in __import__(
            "repro.perception", fromlist=["DEFAULT_VIDEOS"]
        ).DEFAULT_VIDEOS}

    def test_symmetric_traces_near_chance(self, traces):
        good, _ = traces
        result = run_user_study(good, good.copy(), n_participants=8, repeats=4, seed=3)
        assert 0.3 < result.mean_selection < 0.7

    def test_reproducible_by_seed(self, traces):
        good, bad = traces
        a = run_user_study(good, bad, seed=7)
        b = run_user_study(good, bad, seed=7)
        np.testing.assert_allclose(a.per_participant, b.per_participant)

    def test_motion_video_weakest_preference(self, traces):
        """Mirrors Fig. 15: the high-motion video masks artifacts, so the
        preference is weakest there."""
        good, bad = traces
        result = run_user_study(good, bad, n_participants=10, repeats=6, seed=1)
        dynamic = result.per_video["video2-dynamic-outdoor"]
        static_mean = np.mean(
            [v for k, v in result.per_video.items() if k != "video2-dynamic-outdoor"]
        )
        assert dynamic <= static_mean + 0.05

    def test_validation(self, traces):
        good, bad = traces
        with pytest.raises(ValueError):
            run_user_study(good, bad, n_participants=0)
