"""Acuity falloff and the visible-difference model (Fig. 11e)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception import (
    VdpConfig,
    acuity_limited_shading_rate,
    discriminability,
    jnd_score,
    minimum_angle_of_resolution,
    relative_acuity,
    required_theta_f,
)


class TestAcuity:
    def test_foveal_acuity_is_one(self):
        assert relative_acuity(0.0) == pytest.approx(1.0)

    def test_half_resolution_at_e2(self):
        assert relative_acuity(2.3) == pytest.approx(0.5)

    def test_monotone_decline(self):
        ecc = np.array([0.0, 2.0, 5.0, 10.0, 20.0])
        acuity = relative_acuity(ecc)
        assert (np.diff(acuity) < 0).all()

    def test_mar_inverse_of_acuity(self):
        assert minimum_angle_of_resolution(2.3) == pytest.approx(2.0)

    def test_peripheral_shading_rate_supports_16x_drop(self):
        """Around 7 deg the eye needs ~1/16 of foveal shading — the
        paper's peripheral resolution drop."""
        rate = acuity_limited_shading_rate(7.0)
        assert 1 / 25 < rate < 1 / 9

    def test_rejects_negative_eccentricity(self):
        with pytest.raises(ValueError):
            relative_acuity(-1.0)


class TestDiscriminability:
    def test_decreases_with_theta_f(self):
        grid = np.array([3.0, 6.0, 10.0, 15.0])
        probs = discriminability(grid, 5.0)
        assert (np.diff(probs) < 0).all()

    def test_increases_with_error(self):
        assert discriminability(8.0, 10.0) > discriminability(8.0, 2.0)

    def test_bounded_by_peak(self):
        config = VdpConfig()
        probs = discriminability(np.array([0.5, 1.0, 2.0]), 30.0, config)
        assert (probs <= config.peak_probability + 1e-12).all()

    def test_jnd_proportional_to_probability(self):
        config = VdpConfig()
        p = discriminability(7.0, 5.0, config)
        assert jnd_score(7.0, 5.0, config) == pytest.approx(p * config.jnd_per_probability)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            discriminability(0.0, 5.0)
        with pytest.raises(ValueError):
            discriminability(5.0, -1.0)


class TestThresholdInversion:
    def test_fig11e_anchor_point(self):
        """At delta=10 deg the 5% threshold sits near theta_f = 15 deg."""
        threshold = required_theta_f(10.0, 0.05)
        assert threshold == pytest.approx(15.0, abs=2.5)

    def test_inversion_consistency(self):
        for delta in (2.0, 5.0, 10.0):
            theta = required_theta_f(delta, 0.05)
            if theta > 1.0:
                assert discriminability(theta, delta) == pytest.approx(0.05, abs=1e-6)

    def test_threshold_monotone_in_error(self):
        thresholds = [required_theta_f(d, 0.05) for d in (2.0, 5.0, 10.0, 15.0)]
        assert all(a <= b for a, b in zip(thresholds, thresholds[1:]))

    def test_target_validated(self):
        with pytest.raises(ValueError):
            required_theta_f(5.0, 0.5)  # above the peak probability
