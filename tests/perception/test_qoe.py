"""QoE extension models (paper §8 future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perception.qoe import (
    LatencyQoeConfig,
    SaccadeMisdetectionConfig,
    false_positive_artifact_rate,
    latency_qoe,
    misdetection_qoe,
)


class TestLatencyQoe:
    def test_comfortable_latency_near_one(self):
        assert latency_qoe(0.030) > 0.9

    def test_band_midpoint_near_half(self):
        assert latency_qoe(0.060) == pytest.approx(0.51, abs=0.1)

    def test_collapse_beyond_limit(self):
        assert latency_qoe(0.150) < 0.1

    def test_monotone_decreasing(self):
        latencies = np.array([0.02, 0.05, 0.07, 0.10, 0.20])
        scores = latency_qoe(latencies)
        assert (np.diff(scores) < 0).all()

    def test_positive_floor(self):
        assert latency_qoe(1.0) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            latency_qoe(0.0)
        with pytest.raises(ValueError):
            LatencyQoeConfig(comfortable_s=0.07, limit_s=0.05)


class TestMisdetection:
    def test_zero_fpr_zero_artifacts(self):
        assert false_positive_artifact_rate(0.0) == 0.0
        assert misdetection_qoe(0.0) == pytest.approx(1.0)

    def test_artifact_rate_scales_with_fpr(self):
        low = false_positive_artifact_rate(0.01)
        high = false_positive_artifact_rate(0.10)
        assert high == pytest.approx(10 * low, rel=1e-6)

    def test_qoe_decreasing_in_fpr(self):
        scores = [misdetection_qoe(f) for f in (0.0, 0.01, 0.05, 0.2)]
        assert all(a > b for a, b in zip(scores, scores[1:]))

    def test_frame_rate_scales_events(self):
        slow = false_positive_artifact_rate(
            0.05, SaccadeMisdetectionConfig(frame_rate_hz=50.0)
        )
        fast = false_positive_artifact_rate(
            0.05, SaccadeMisdetectionConfig(frame_rate_hz=100.0)
        )
        assert fast == pytest.approx(2 * slow, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            false_positive_artifact_rate(1.5)
        with pytest.raises(ValueError):
            misdetection_qoe(0.1, tolerance_events_per_s=0.0)
