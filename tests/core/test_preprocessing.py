"""IPU golden model: pooling, binarization, reuse test, pupil search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    PolonetConfig,
    average_pool,
    binarize,
    binary_map,
    crop_frame,
    find_pupil_center,
    frame_difference,
    preprocess_frame,
    should_reuse,
)
from repro.eye import EyeAppearance, NearEyeRenderer, RenderConfig


@pytest.fixture(scope="module")
def eye_frame():
    appearance = EyeAppearance.sample(np.random.default_rng(8), 160, 120)
    renderer = NearEyeRenderer(appearance, RenderConfig(), seed=8)
    frame = renderer.render(np.array([3.0, -2.0]))
    pose = renderer.geometry.pupil_pose(np.array([3.0, -2.0]))
    return frame, pose


class TestPoolBinarize:
    def test_average_pool_values(self):
        frame = np.arange(16.0).reshape(4, 4)
        pooled = average_pool(frame, 2)
        np.testing.assert_allclose(pooled, [[2.5, 4.5], [10.5, 12.5]])

    def test_pool_truncates_ragged_edges(self):
        pooled = average_pool(np.ones((5, 7)), 2)
        assert pooled.shape == (2, 3)

    def test_binarize_marks_dark_as_one(self):
        pooled = np.array([[0.05, 0.5], [0.1, 0.9]])
        out = binarize(pooled, 40 / 255)
        np.testing.assert_array_equal(out, [[1, 0], [1, 0]])
        assert out.dtype == np.uint8

    def test_binary_map_composition(self, eye_frame):
        frame, _ = eye_frame
        config = PolonetConfig()
        manual = binarize(average_pool(frame, config.pool_m), config.gamma1_unit)
        np.testing.assert_array_equal(binary_map(frame, config), manual)

    def test_binary_map_shape(self, eye_frame):
        frame, _ = eye_frame
        assert binary_map(frame, PolonetConfig()).shape == (30, 40)


class TestReuse:
    def test_frame_difference_counts_pixels(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = a.copy()
        b[0, :3] = 1
        assert frame_difference(a, b) == 3

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            frame_difference(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_should_reuse_logic(self):
        a = np.zeros((4, 4), dtype=np.uint8)
        b = a.copy()
        b[0, 0] = 1
        assert should_reuse(b, a, gamma2=2.0)
        assert not should_reuse(b, a, gamma2=1.0)
        assert not should_reuse(b, None, gamma2=100.0)


class TestPupilSearch:
    def test_finds_disc_center(self):
        binary = np.zeros((20, 30), dtype=np.uint8)
        yy, xx = np.mgrid[0:20, 0:30]
        binary[(xx - 21) ** 2 + (yy - 8) ** 2 <= 9] = 1
        det = find_pupil_center(binary, window=5)
        assert abs(det.col_pooled - 21) <= 1
        assert abs(det.row_pooled - 8) <= 1
        assert det.found

    def test_pool_coordinate_conversion(self):
        binary = np.zeros((10, 10), dtype=np.uint8)
        binary[4:7, 4:7] = 1
        det = find_pupil_center(binary, window=3, pool_m=4)
        assert det.row == det.row_pooled * 4 + 2
        assert det.col == det.col_pooled * 4 + 2

    def test_blank_map_falls_back_to_center(self):
        det = find_pupil_center(np.zeros((10, 20), dtype=np.uint8), window=5)
        assert not det.found
        assert det.row_pooled == 5 and det.col_pooled == 10

    def test_only_white_centres_compete(self):
        """A pixel surrounded by white but itself black cannot win."""
        binary = np.zeros((9, 9), dtype=np.uint8)
        binary[3:6, 3:6] = 1
        binary[4, 4] = 0  # donut hole
        det = find_pupil_center(binary, window=3)
        assert binary[det.row_pooled, det.col_pooled] == 1

    def test_even_window_rejected(self):
        with pytest.raises(ValueError):
            find_pupil_center(np.zeros((5, 5), dtype=np.uint8), window=4)

    def test_real_frame_detection_near_true_pupil(self, eye_frame):
        frame, pose = eye_frame
        config = PolonetConfig()
        binary, det, crop = preprocess_frame(frame, config)
        assert abs(det.col - pose.x) < 10
        assert abs(det.row - pose.y) < 10


class TestCrop:
    def test_crop_size_fixed(self, eye_frame):
        frame, _ = eye_frame
        config = PolonetConfig()
        _, det, crop = preprocess_frame(frame, config)
        assert crop.shape == (config.crop_height, config.crop_width)

    def test_crop_contains_pupil(self, eye_frame):
        frame, _ = eye_frame
        _, _, crop = preprocess_frame(frame, PolonetConfig())
        assert crop.min() < 0.15  # the dark pupil made it into the crop

    def test_crop_clamps_at_borders(self):
        frame = np.ones((120, 160))
        from repro.core.preprocessing import PupilDetection

        config = PolonetConfig()
        det = PupilDetection(0, 0, 0, 0, 1)
        crop = crop_frame(frame, det, config)
        assert crop.shape == (config.crop_height, config.crop_width)

    def test_oversized_crop_rejected(self):
        from repro.core.preprocessing import PupilDetection
        from repro.utils.image import crop_centered

        with pytest.raises(ValueError):
            crop_centered(np.ones((10, 10)), 5, 5, 20, 20)
