"""Performance-aware loss (Eqs. 3-5): smooth-max behaviour and gradients."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    PerformanceLossConfig,
    angular_error_tensor,
    hard_max_loss,
    make_performance_loss,
    mse_radians_loss,
    performance_aware_loss,
)
from repro.nn import Tensor


def make_batch(errors_deg):
    """Predictions offset from zero targets by the requested errors."""
    pred = np.zeros((len(errors_deg), 2))
    pred[:, 0] = errors_deg
    return Tensor(pred, requires_grad=True), np.zeros((len(errors_deg), 2))


class TestAngularError:
    def test_converts_to_radians(self):
        pred, target = make_batch([180.0 / math.pi])
        err = angular_error_tensor(pred, target)
        assert err.data[0] == pytest.approx(1.0, abs=1e-6)

    def test_vector_norm(self):
        pred = Tensor(np.array([[3.0, 4.0]]))
        err = angular_error_tensor(pred, np.zeros((1, 2)))
        assert err.data[0] == pytest.approx(math.radians(5.0), abs=1e-6)


class TestSmoothMax:
    def test_approximates_max_from_above(self):
        pred, target = make_batch([1.0, 5.0, 10.0])
        config = PerformanceLossConfig(smooth_n=100.0, lam=0.0)
        loss = performance_aware_loss(pred, target, config).item()
        true_max = math.radians(10.0)
        assert true_max <= loss <= true_max + math.log(3) / 100.0 + 1e-9

    def test_sharper_n_tightens_approximation(self):
        pred, target = make_batch([2.0, 9.0])
        loose = performance_aware_loss(
            pred, target, PerformanceLossConfig(smooth_n=10.0, lam=0.0)
        ).item()
        tight = performance_aware_loss(
            pred, target, PerformanceLossConfig(smooth_n=200.0, lam=0.0)
        ).item()
        true_max = math.radians(9.0)
        assert abs(tight - true_max) < abs(loose - true_max)

    def test_lambda_adds_mean_term(self):
        pred, target = make_batch([3.0, 6.0])
        config0 = PerformanceLossConfig(smooth_n=100.0, lam=0.0)
        config1 = PerformanceLossConfig(smooth_n=100.0, lam=1.0)
        base = performance_aware_loss(pred, target, config0).item()
        with_mean = performance_aware_loss(pred, target, config1).item()
        mse = mse_radians_loss(pred, target).item()
        assert with_mean == pytest.approx(base + mse, abs=1e-9)

    def test_gradient_concentrates_on_worst_sample(self):
        pred, target = make_batch([1.0, 8.0, 2.0])
        config = PerformanceLossConfig(smooth_n=100.0, lam=0.0)
        performance_aware_loss(pred, target, config).backward()
        grads = np.abs(pred.grad[:, 0])
        assert grads[1] > 10 * grads[0]
        assert grads[1] > 10 * grads[2]

    def test_all_samples_receive_gradient_with_lambda(self):
        pred, target = make_batch([1.0, 8.0, 2.0])
        config = PerformanceLossConfig(smooth_n=100.0, lam=1.0)
        performance_aware_loss(pred, target, config).backward()
        assert (np.abs(pred.grad[:, 0]) > 1e-6).all()


class TestComparators:
    def test_hard_max_is_exact(self):
        pred, target = make_batch([1.0, 7.0, 3.0])
        assert hard_max_loss(pred, target).item() == pytest.approx(
            math.radians(7.0), abs=1e-6
        )

    def test_hard_max_only_worst_gets_gradient(self):
        pred, target = make_batch([1.0, 7.0, 3.0])
        hard_max_loss(pred, target).backward()
        grads = np.abs(pred.grad[:, 0])
        assert grads[1] > 0
        np.testing.assert_allclose(grads[[0, 2]], 0.0, atol=1e-12)

    def test_mse_radians(self):
        pred, target = make_batch([2.0, 4.0])
        expected = np.mean([math.radians(2.0) ** 2, math.radians(4.0) ** 2])
        assert mse_radians_loss(pred, target).item() == pytest.approx(expected, rel=1e-4)

    def test_make_performance_loss_adapter(self):
        loss_fn = make_performance_loss()
        pred, target = make_batch([2.0])
        direct = performance_aware_loss(pred, target).item()
        assert loss_fn(pred, target).item() == pytest.approx(direct)


class TestConfigValidation:
    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            PerformanceLossConfig(smooth_n=0.0)

    def test_rejects_negative_lambda(self):
        with pytest.raises(ValueError):
            PerformanceLossConfig(lam=-0.1)
