"""Saccade detection network: runtime/training consistency and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SaccadeDetector, SaccadeNetConfig, saccade_metrics
from repro.hw.ops import total_macs
from repro.nn import Tensor


@pytest.fixture
def detector():
    return SaccadeDetector((12, 16), SaccadeNetConfig(hidden_dim=8), seed=0)


class TestForward:
    def test_sequence_logits_shape(self, detector):
        seqs = Tensor(np.random.default_rng(0).integers(0, 2, size=(3, 5, 12, 16)).astype(float))
        logits = detector(seqs)
        assert logits.shape == (3, 5)

    def test_step_matches_forward(self, detector):
        """The stateful runtime path must agree with the batched path."""
        rng = np.random.default_rng(1)
        frames = rng.integers(0, 2, size=(4, 12, 16)).astype(float)
        logits = detector(Tensor(frames[None])).data[0]
        h = None
        previous = None
        step_probs = []
        for frame in frames:
            prob, h = detector.step(frame, h, previous_map=previous)
            step_probs.append(prob)
            previous = frame
        expected = 1.0 / (1.0 + np.exp(-logits))
        np.testing.assert_allclose(step_probs, expected, atol=1e-10)

    def test_hidden_state_carries_information(self, detector):
        frame = np.ones((12, 16))
        prob1, h1 = detector.step(frame, None)
        prob2, h2 = detector.step(frame, h1)
        assert not np.allclose(h1, h2)  # state evolves

    def test_detect_threshold(self, detector):
        assert detector.detect(0.7, threshold=0.5)
        assert not detector.detect(0.3, threshold=0.5)

    def test_gradient_flows_through_time(self, detector):
        seqs = Tensor(np.random.default_rng(2).random((2, 6, 12, 16)))
        logits = detector(seqs)
        (logits * logits).sum().backward()
        assert detector.cell.alpha.grad is not None
        assert np.abs(detector.conv.weight.grad).sum() > 0


class TestWorkload:
    def test_paper_scale_is_tiny_vs_vit(self):
        from repro.core import GazeViTConfig
        from repro.core.gaze_vit import vit_workload

        detector = SaccadeDetector((100, 160))
        sac_macs = total_macs(detector.workload((100, 160)))
        vit_macs = total_macs(vit_workload(GazeViTConfig.paper()))
        assert sac_macs / vit_macs < 0.02  # "<2% of the gaze ViT" (§7.1)

    def test_workload_scales_with_map(self):
        detector = SaccadeDetector((100, 160))
        small = total_macs(detector.workload((50, 80)))
        large = total_macs(detector.workload((100, 160)))
        assert large > 2 * small


class TestMetrics:
    def test_perfect_prediction(self):
        labels = np.array([True, False, True])
        m = saccade_metrics(labels, labels)
        assert m["accuracy"] == 1.0 and m["macro_f1"] == 1.0

    def test_always_negative_predictor(self):
        actual = np.array([True] * 10 + [False] * 90)
        predicted = np.zeros(100, dtype=bool)
        m = saccade_metrics(predicted, actual)
        assert m["accuracy"] == pytest.approx(0.9)
        assert m["macro_f1"] < 0.5 + 0.01  # macro F1 punishes the miss

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            saccade_metrics(np.zeros(3, dtype=bool), np.zeros(4, dtype=bool))
