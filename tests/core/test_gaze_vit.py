"""POLOViT: prediction paths, pruning calibration, INT8, workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GazeViTConfig, PoloViT
from repro.core.gaze_vit import vit_workload
from repro.hw.ops import MatMulOp, total_macs


@pytest.fixture(scope="module")
def vit():
    return PoloViT(GazeViTConfig.compact(), seed=0)


@pytest.fixture(scope="module")
def crops(rng):
    return rng.uniform(size=(6, 72, 72))


class TestConfig:
    def test_paper_configuration(self):
        c = GazeViTConfig.paper()
        assert (c.depth, c.num_heads, c.dim, c.image_size) == (8, 6, 384, 224)
        assert c.num_patches == 196

    def test_validation(self):
        with pytest.raises(ValueError):
            GazeViTConfig(image_size=30, patch_size=16)
        with pytest.raises(ValueError):
            GazeViTConfig(dim=100, num_heads=7)


class TestPrediction:
    def test_predict_shapes(self, vit, crops):
        pred = vit.predict(crops, prune=False)
        assert pred.shape == (6, 2)
        assert np.isfinite(pred).all()

    def test_predict_single(self, vit, crops):
        gaze, trace = vit.predict_single(crops[0], prune=False)
        assert gaze.shape == (2,)
        assert trace.tokens_per_block[0] == vit.config.num_patches + 1

    def test_prepare_resizes_and_centers(self, vit, crops):
        prepared = vit.prepare(crops)
        size = vit.config.image_size
        assert prepared.shape == (6, size, size)
        assert np.abs(prepared).max() <= 0.5 + 1e-9


class TestPruning:
    def test_calibration_hits_target_ratio(self, crops):
        model = PoloViT(GazeViTConfig.compact(), seed=1)
        threshold = model.calibrate_pruning(crops, target_ratio=0.3, tolerance=0.05)
        assert threshold > 0
        ratios = []
        for crop in crops:
            model.predict_single(crop, prune=True)
            ratios.append(model.last_trace.pruning_ratio)
        assert np.mean(ratios) == pytest.approx(0.3, abs=0.08)

    def test_zero_ratio_disables_pruning(self, crops):
        model = PoloViT(GazeViTConfig.compact(), seed=1)
        model.calibrate_pruning(crops, target_ratio=0.0)
        assert model.token_filter() is None

    def test_invalid_ratio(self, vit, crops):
        with pytest.raises(ValueError):
            vit.calibrate_pruning(crops, target_ratio=1.0)

    def test_pruned_prediction_close_to_unpruned(self, crops):
        model = PoloViT(GazeViTConfig.compact(), seed=2)
        model.calibrate_pruning(crops, target_ratio=0.2)
        pruned = model.predict(crops, prune=True)
        full = model.predict(crops, prune=False)
        # Pruning perturbs but does not destroy the prediction.
        assert np.abs(pruned - full).max() < 5.0


class TestBatchedEquivalence:
    """Cross-session batching must not change any single frame's gaze."""

    def test_pruned_batch_matches_per_sample(self, crops):
        model = PoloViT(GazeViTConfig.compact(), seed=6)
        model.calibrate_pruning(crops, target_ratio=0.25, tolerance=0.05)
        batched = model.predict(crops, prune=True)
        solo = np.concatenate(
            [model.predict(crop[None], prune=True) for crop in crops]
        )
        np.testing.assert_allclose(batched, solo, atol=1e-6)

    def test_unpruned_batch_matches_per_sample(self, crops):
        model = PoloViT(GazeViTConfig.compact(), seed=6)
        batched = model.predict(crops, prune=False)
        solo = np.concatenate(
            [model.predict(crop[None], prune=False) for crop in crops]
        )
        np.testing.assert_allclose(batched, solo, atol=1e-6)

    def test_batch_trace_reports_per_sample_pruning(self, crops):
        model = PoloViT(GazeViTConfig.compact(), seed=6)
        model.calibrate_pruning(crops, target_ratio=0.25, tolerance=0.05)
        model.predict(crops, prune=True)
        trace = model.last_trace
        assert trace.batch_size == len(crops)
        solo_counts = []
        for crop in crops:
            _, t = model.predict_single(crop, prune=True)
            solo_counts.append(t.tokens_per_block)
        for i, counts in enumerate(solo_counts):
            assert trace.sample(i).tokens_per_block == counts

    def test_chunking_preserves_results(self, crops):
        model = PoloViT(GazeViTConfig.compact(), seed=6)
        model.set_prune_threshold(0.05)
        whole = model.predict(crops, prune=True)
        chunked = model.predict(crops, prune=True, chunk=2)
        np.testing.assert_allclose(whole, chunked, atol=1e-9)

    def test_batch_trace_costs_workload(self, crops):
        from repro.hw.ops import total_macs

        model = PoloViT(GazeViTConfig.compact(), seed=6)
        model.set_prune_threshold(0.05)
        model.predict(crops, prune=True)
        pruned = model.workload(model.last_trace)
        full = model.workload(None)
        assert total_macs(pruned) < total_macs(full)


class TestInt8:
    def test_enable_int8_quantizes_weights(self, crops):
        model = PoloViT(GazeViTConfig.compact(), seed=3)
        before = model.head.weight.data.copy()
        model.enable_int8(crops)
        assert model.int8
        assert not np.allclose(model.head.weight.data, before)

    def test_int8_prediction_close_to_float(self, crops):
        a = PoloViT(GazeViTConfig.compact(), seed=4)
        b = PoloViT(GazeViTConfig.compact(), seed=4)
        float_pred = a.predict(crops, prune=False)
        b.enable_int8(crops)
        int8_pred = b.predict(crops, prune=False)
        assert np.abs(int8_pred - float_pred).mean() < 1.0


class TestWorkload:
    def test_paper_scale_macs(self):
        macs = total_macs(vit_workload(GazeViTConfig.paper()))
        assert 2e9 < macs < 4e9  # ViT-small magnitude at 197 tokens

    def test_workload_token_scaling(self, vit, crops):
        from repro.nn import TokenFilter, no_grad

        vit_local = PoloViT(GazeViTConfig.compact(), seed=5)
        with no_grad():
            vit_local.forward(
                __import__("repro.nn", fromlist=["Tensor"]).Tensor(
                    vit_local.prepare(crops[:1])
                ),
                token_filter=TokenFilter(ratio=0.4),
            )
        pruned_ops = vit_local.workload(vit_local.last_trace)
        full_ops = vit_local.workload(None)
        assert total_macs(pruned_ops) < total_macs(full_ops)

    def test_workload_depth_mismatch_rejected(self):
        with pytest.raises(ValueError):
            vit_workload(GazeViTConfig.paper(), [197] * 3)

    def test_workload_structure(self):
        ops = vit_workload(GazeViTConfig.compact())
        matmuls = [op for op in ops if isinstance(op, MatMulOp)]
        # patch embed + 6 matmuls per block x depth + head
        assert len(matmuls) == 1 + 6 * GazeViTConfig.compact().depth + 1
