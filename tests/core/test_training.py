"""Training pipelines: dataset preparation, trainers, and the builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Decision,
    GazeViTConfig,
    PoloViT,
    PolonetConfig,
    SaccadeDetector,
    SaccadeNetConfig,
    binary_map,
    build_crop_dataset,
    build_saccade_sequences,
    train_polovit,
    train_saccade_detector,
)
from repro.core.training import evaluate_saccade_detector
from repro.eye import MovementType


class TestDatasetPreparation:
    def test_crop_dataset_shapes(self, tiny_train_dataset):
        config = PolonetConfig()
        crops, gaze = build_crop_dataset(tiny_train_dataset, config)
        assert crops.shape[1:] == (config.crop_height, config.crop_width)
        assert gaze.shape == (len(crops), 2)
        assert len(crops) <= len(tiny_train_dataset)

    def test_closed_eyes_filtered(self, tiny_train_dataset):
        all_crops, _ = build_crop_dataset(tiny_train_dataset, min_openness=0.0)
        open_crops, _ = build_crop_dataset(tiny_train_dataset, min_openness=0.8)
        assert len(open_crops) < len(all_crops)

    def test_impossible_filter_raises(self, tiny_train_dataset):
        with pytest.raises(ValueError):
            build_crop_dataset(tiny_train_dataset, min_openness=2.0)

    def test_saccade_sequences_shapes(self, tiny_train_dataset):
        seqs, labels = build_saccade_sequences(tiny_train_dataset, window=10)
        assert seqs.shape[1] == 10
        assert labels.shape == seqs.shape[:2]
        assert set(np.unique(labels)).issubset({0.0, 1.0})

    def test_saccade_labels_match_dataset(self, tiny_train_dataset):
        seqs, labels = build_saccade_sequences(tiny_train_dataset, window=10, stride=10)
        expected_fraction = np.mean(
            tiny_train_dataset.labels() == MovementType.SACCADE
        )
        assert labels.mean() == pytest.approx(expected_fraction, abs=0.1)

    def test_window_longer_than_sequence_raises(self, tiny_train_dataset):
        with pytest.raises(ValueError):
            build_saccade_sequences(tiny_train_dataset, window=10_000)


class TestTrainers:
    def test_polovit_mse_loss_decreases(self, tiny_train_dataset):
        crops, gaze = build_crop_dataset(tiny_train_dataset)
        vit = PoloViT(GazeViTConfig.compact(), seed=0)
        log = train_polovit(vit, crops[:64], gaze[:64], epochs=4, loss="mse", seed=0)
        assert log.losses[-1] < log.losses[0]

    def test_polovit_performance_phase_decreases(self, tiny_train_dataset):
        """The smooth-max phase (after the MSE warmup) must itself make
        progress; losses are not comparable across the phase switch."""
        crops, gaze = build_crop_dataset(tiny_train_dataset)
        vit = PoloViT(GazeViTConfig.compact(), seed=0)
        log = train_polovit(vit, crops[:64], gaze[:64], epochs=6, seed=0)
        warmup = int(round(0.4 * 6))
        perf_phase = log.losses[warmup:]
        assert perf_phase[-1] <= perf_phase[0] * 1.2

    def test_polovit_mse_loss_option(self, tiny_train_dataset):
        crops, gaze = build_crop_dataset(tiny_train_dataset)
        vit = PoloViT(GazeViTConfig.compact(), seed=1)
        log = train_polovit(vit, crops[:32], gaze[:32], epochs=2, loss="mse", seed=0)
        assert len(log.losses) == 2

    def test_unknown_loss_rejected(self, tiny_train_dataset):
        crops, gaze = build_crop_dataset(tiny_train_dataset)
        with pytest.raises(ValueError):
            train_polovit(PoloViT(seed=0), crops[:8], gaze[:8], loss="huber")

    def test_saccade_trainer_decreases_loss(self, tiny_train_dataset):
        config = PolonetConfig()
        sample = tiny_train_dataset.sequences[0].images[0].astype(float)
        detector = SaccadeDetector(binary_map(sample, config).shape, seed=0)
        seqs, labels = build_saccade_sequences(tiny_train_dataset, config)
        log = train_saccade_detector(detector, seqs, labels, epochs=4, seed=0)
        assert log.losses[-1] < log.losses[0]


class TestBundle:
    def test_bundle_components(self, tiny_bundle):
        assert tiny_bundle.vit.int8  # paper deployment: INT8
        assert tiny_bundle.vit.token_filter() is not None  # 20% pruning
        assert isinstance(tiny_bundle.detector, SaccadeDetector)
        assert tiny_bundle.vit_log.losses and tiny_bundle.saccade_log.losses

    def test_bundle_runtime_runs(self, tiny_bundle, tiny_val_dataset):
        polonet = tiny_bundle.polonet
        polonet.reset()
        seq = tiny_val_dataset.sequences[0]
        results = polonet.process_sequence(seq.images[:30].astype(np.float64))
        assert len(results) == 30
        decisions = {r.decision for r in results}
        assert decisions <= set(Decision)
        # Reuse can only ever follow a fresh prediction.
        if Decision.REUSE in decisions:
            assert Decision.PREDICT in decisions

    def test_saccade_evaluation_beats_chance(self, tiny_bundle, tiny_val_dataset):
        metrics = evaluate_saccade_detector(tiny_bundle.detector, tiny_val_dataset)
        # Five epochs at tiny scale: the detector is noisy (it over-fires
        # on squint-heavy sequences); require only that it carries signal.
        assert metrics["accuracy"] > 0.25
        assert metrics["macro_f1"] > 0.2
