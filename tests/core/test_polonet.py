"""POLONet runtime: Algorithm-1 path selection on crafted inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Decision, PoloNet, PolonetConfig, RuntimeStats


class StubDetector:
    """Saccade detector returning a scripted probability sequence."""

    def __init__(self, probabilities):
        self.probabilities = list(probabilities)
        self._i = 0

    def step(self, binary_map, h, previous_map=None):
        prob = self.probabilities[min(self._i, len(self.probabilities) - 1)]
        self._i += 1
        return prob, np.zeros((1, 4))


class StubViT:
    """Gaze ViT returning a constant vector and counting invocations."""

    def __init__(self, value=(1.0, -1.0)):
        self.value = np.asarray(value, dtype=float)
        self.calls = 0

    def predict_single(self, crop, prune=True):
        self.calls += 1
        return self.value.copy(), None


def eye_like_frame(cx=80, cy=60, radius=9, shape=(120, 160)):
    frame = np.full(shape, 0.7)
    yy, xx = np.mgrid[0 : shape[0], 0 : shape[1]]
    frame[(xx - cx) ** 2 + (yy - cy) ** 2 <= radius**2] = 0.05
    return frame


@pytest.fixture
def config():
    return PolonetConfig()


class TestPathSelection:
    def test_saccade_halts_processing(self, config):
        vit = StubViT()
        polonet = PoloNet(StubDetector([0.9]), vit, config)
        result = polonet.process_frame(eye_like_frame())
        assert result.decision is Decision.SACCADE
        assert result.gaze_deg is None
        assert vit.calls == 0

    def test_first_frame_predicts(self, config):
        vit = StubViT()
        polonet = PoloNet(StubDetector([0.0]), vit, config)
        result = polonet.process_frame(eye_like_frame())
        assert result.decision is Decision.PREDICT
        assert vit.calls == 1
        np.testing.assert_allclose(result.gaze_deg, [1.0, -1.0])

    def test_identical_frames_trigger_reuse(self, config):
        vit = StubViT()
        polonet = PoloNet(StubDetector([0.0, 0.0, 0.0]), vit, config)
        frame = eye_like_frame()
        polonet.process_frame(frame)
        second = polonet.process_frame(frame)
        third = polonet.process_frame(frame)
        assert second.decision is Decision.REUSE
        assert third.decision is Decision.REUSE
        assert vit.calls == 1
        np.testing.assert_allclose(second.gaze_deg, [1.0, -1.0])
        assert second.frame_difference == 0

    def test_large_change_forces_fresh_prediction(self, config):
        vit = StubViT()
        polonet = PoloNet(StubDetector([0.0, 0.0]), vit, config)
        polonet.process_frame(eye_like_frame(cx=50))
        result = polonet.process_frame(eye_like_frame(cx=110))
        assert result.decision is Decision.PREDICT
        assert vit.calls == 2
        assert result.frame_difference >= config.gamma2

    def test_pupil_detection_reported_on_predict(self, config):
        polonet = PoloNet(StubDetector([0.0]), StubViT(), config)
        result = polonet.process_frame(eye_like_frame(cx=100, cy=40))
        assert result.pupil is not None
        assert abs(result.pupil.col - 100) < 10
        assert abs(result.pupil.row - 40) < 10

    def test_no_reuse_without_buffered_gaze(self, config):
        """A saccade on frame 1 leaves no buffered gaze; identical frame 2
        must predict rather than reuse."""
        vit = StubViT()
        polonet = PoloNet(StubDetector([0.9, 0.0]), vit, config)
        frame = eye_like_frame()
        polonet.process_frame(frame)
        result = polonet.process_frame(frame)
        assert result.decision is Decision.PREDICT

    def test_reset_clears_state(self, config):
        vit = StubViT()
        polonet = PoloNet(StubDetector([0.0, 0.0]), vit, config)
        frame = eye_like_frame()
        polonet.process_frame(frame)
        polonet.reset()
        result = polonet.process_frame(frame)
        assert result.decision is Decision.PREDICT
        assert polonet.stats.total == 1


class TestRuntimeStats:
    def test_probabilities(self):
        stats = RuntimeStats(saccade=1, reuse=7, predict=2)
        probs = stats.probabilities()
        assert probs["p_saccade"] == pytest.approx(0.1)
        assert probs["p_reuse"] == pytest.approx(0.7)
        assert probs["p_predict"] == pytest.approx(0.2)

    def test_record(self):
        stats = RuntimeStats()
        stats.record(Decision.SACCADE)
        stats.record(Decision.REUSE)
        stats.record(Decision.PREDICT)
        assert (stats.saccade, stats.reuse, stats.predict) == (1, 1, 1)

    def test_sequence_processing_accumulates(self, config):
        polonet = PoloNet(StubDetector([0.0]), StubViT(), config)
        frames = np.stack([eye_like_frame()] * 4)
        results = polonet.process_sequence(frames)
        assert len(results) == 4
        assert polonet.stats.total == 4
        assert polonet.stats.reuse == 3
