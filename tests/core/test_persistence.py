"""POLONet save/load round-trips."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import Decision
from repro.core.persistence import load_polonet, save_polonet
from repro.nn import PersistenceError


@pytest.fixture(scope="module")
def frames(tiny_val_dataset):
    return tiny_val_dataset.sequences[0].images[:12].astype(np.float64)


class TestRoundTrip:
    def test_identical_runtime_behaviour(self, tiny_bundle, frames, tmp_path):
        original = tiny_bundle.polonet
        save_polonet(original, tmp_path / "model")
        restored = load_polonet(tmp_path / "model")

        original.reset()
        restored.reset()
        for frame in frames:
            a = original.process_frame(frame)
            b = restored.process_frame(frame)
            assert a.decision == b.decision
            if a.has_gaze:
                np.testing.assert_allclose(a.gaze_deg, b.gaze_deg, atol=1e-9)

    def test_calibration_state_preserved(self, tiny_bundle, tmp_path):
        save_polonet(tiny_bundle.polonet, tmp_path / "model")
        restored = load_polonet(tmp_path / "model")
        assert restored.gaze_vit.int8 == tiny_bundle.vit.int8
        assert restored.gaze_vit._prune_threshold == pytest.approx(
            tiny_bundle.vit._prune_threshold
        )
        assert restored.config == tiny_bundle.polonet.config

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_polonet(tmp_path / "nothing")

    def test_bad_version_rejected(self, tiny_bundle, tmp_path):
        save_polonet(tiny_bundle.polonet, tmp_path / "model")
        manifest_path = tmp_path / "model" / "polonet.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="newer"):
            load_polonet(tmp_path / "model")


class TestValidation:
    def test_corrupt_manifest_json(self, tiny_bundle, tmp_path):
        save_polonet(tiny_bundle.polonet, tmp_path / "model")
        manifest_path = tmp_path / "model" / "polonet.json"
        manifest_path.write_text(manifest_path.read_text()[:40])
        with pytest.raises(PersistenceError, match="corrupt"):
            load_polonet(tmp_path / "model")

    def test_unknown_manifest_key_rejected(self, tiny_bundle, tmp_path):
        save_polonet(tiny_bundle.polonet, tmp_path / "model")
        manifest_path = tmp_path / "model" / "polonet.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["surprise"] = True
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="surprise"):
            load_polonet(tmp_path / "model")

    def test_missing_manifest_key_rejected(self, tiny_bundle, tmp_path):
        save_polonet(tiny_bundle.polonet, tmp_path / "model")
        manifest_path = tmp_path / "model" / "polonet.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["saccade_threshold"]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="saccade_threshold"):
            load_polonet(tmp_path / "model")

    def test_missing_weight_file_rejected(self, tiny_bundle, tmp_path):
        save_polonet(tiny_bundle.polonet, tmp_path / "model")
        (tmp_path / "model" / "gaze_vit.npz").unlink()
        with pytest.raises(PersistenceError, match="gaze_vit.npz"):
            load_polonet(tmp_path / "model")

    def test_truncated_weight_archive_rejected(self, tiny_bundle, tmp_path):
        save_polonet(tiny_bundle.polonet, tmp_path / "model")
        weights = tmp_path / "model" / "gaze_vit.npz"
        weights.write_bytes(weights.read_bytes()[:100])
        with pytest.raises(PersistenceError, match="corrupt or truncated"):
            load_polonet(tmp_path / "model")
