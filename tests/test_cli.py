"""CLI report generator (`python -m repro`)."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out and "1440P" in out

    @pytest.mark.parametrize(
        "name", ["fig11e", "fig12", "fig13a", "table5", "sec7", "qoe", "fps"]
    )
    def test_analytic_experiments(self, name, capsys):
        assert main([name]) == 0
        assert capsys.readouterr().out.strip()

    def test_all_analytic(self, capsys):
        assert main(["all-analytic"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out and "Vive" in out and "FPS" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])


class TestServeCli:
    def test_serve_subcommand(self, capsys):
        assert main(["serve", "--sessions", "6", "--duration", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Fleet: 6 sessions" in out
        assert "Throughput" in out
        assert "Session" in out  # per-session table

    def test_serve_compare_sequential(self, capsys):
        assert main([
            "serve", "--sessions", "4", "--duration", "0.2",
            "--compare-sequential",
        ]) == 0
        out = capsys.readouterr().out
        assert "sequential baseline" in out
        assert "Cross-session batching" in out

    def test_serve_rejects_bad_admission(self):
        with pytest.raises(SystemExit):
            main(["serve", "--admission", "panic"])


class TestChaosCli:
    def test_chaos_subcommand(self, capsys):
        assert main(["chaos", "--sessions", "4", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Fleet: 4 sessions" in out
        assert "Faults injected" in out
        assert "Recovery" in out

    def test_chaos_fault_free_runs_clean(self, capsys):
        assert main([
            "chaos", "--sessions", "4", "--duration", "0.5", "--fault-free",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 frames dropped at sensor" in out
        assert "0 batch failures" in out

    def test_chaos_compare_fault_free(self, capsys):
        assert main([
            "chaos", "--sessions", "4", "--duration", "0.5",
            "--no-worker-faults", "--compare-fault-free",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault-free baseline" in out
        assert "Deadline misses under faults" in out

    def test_chaos_output_is_deterministic(self, capsys):
        args = ["chaos", "--sessions", "4", "--duration", "0.5", "--seed", "2"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_chaos_rejects_bad_rate(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--drop-rate", "1.5"])
