"""CLI report generator (`python -m repro`)."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestCli:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out and "1440P" in out

    @pytest.mark.parametrize(
        "name", ["fig11e", "fig12", "fig13a", "table5", "sec7", "qoe", "fps"]
    )
    def test_analytic_experiments(self, name, capsys):
        assert main([name]) == 0
        assert capsys.readouterr().out.strip()

    def test_all_analytic(self, capsys):
        assert main(["all-analytic"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out and "Vive" in out and "FPS" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])


class TestServeCli:
    def test_serve_subcommand(self, capsys):
        assert main(["serve", "--sessions", "6", "--duration", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Fleet: 6 sessions" in out
        assert "Throughput" in out
        assert "Session" in out  # per-session table

    def test_serve_compare_sequential(self, capsys):
        assert main([
            "serve", "--sessions", "4", "--duration", "0.2",
            "--compare-sequential",
        ]) == 0
        out = capsys.readouterr().out
        assert "sequential baseline" in out
        assert "Cross-session batching" in out

    def test_serve_rejects_bad_admission(self):
        with pytest.raises(SystemExit):
            main(["serve", "--admission", "panic"])


class TestChaosCli:
    def test_chaos_subcommand(self, capsys):
        assert main(["chaos", "--sessions", "4", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Fleet: 4 sessions" in out
        assert "Faults injected" in out
        assert "Recovery" in out

    def test_chaos_fault_free_runs_clean(self, capsys):
        assert main([
            "chaos", "--sessions", "4", "--duration", "0.5", "--fault-free",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 frames dropped at sensor" in out
        assert "0 batch failures" in out

    def test_chaos_compare_fault_free(self, capsys):
        assert main([
            "chaos", "--sessions", "4", "--duration", "0.5",
            "--no-worker-faults", "--compare-fault-free",
        ]) == 0
        out = capsys.readouterr().out
        assert "fault-free baseline" in out
        assert "Deadline misses under faults" in out

    def test_chaos_output_is_deterministic(self, capsys):
        args = ["chaos", "--sessions", "4", "--duration", "0.5", "--seed", "2"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_chaos_rejects_bad_rate(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--drop-rate", "1.5"])


class TestSloCli:
    EXAMPLE = "examples/slo/serve.slo.json"

    def test_serve_with_default_slo_prints_verdicts(self, capsys):
        assert main([
            "serve", "--sessions", "4", "--duration", "0.3",
            "--slo", "default",
        ]) == 0
        out = capsys.readouterr().out
        assert "SLO verdicts" in out
        assert "frame_p95_latency" in out
        assert "PASS" in out

    def test_serve_slo_excludes_checkpointing(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "serve", "--sessions", "4", "--duration", "0.3",
                "--slo", "default", "--checkpoint-dir", str(tmp_path),
            ])

    def test_serve_rejects_malformed_slo_config(self, tmp_path):
        bad = tmp_path / "bad.slo.json"
        bad.write_text('{"objectives": []}')
        with pytest.raises(SystemExit):
            main(["serve", "--slo", str(bad)])

    def test_chaos_with_slo_emits_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "obs"
        assert main([
            "chaos", "--sessions", "4", "--duration", "0.5", "--seed", "2",
            "--slo", "default", "--obs", "--obs-out", str(out_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "SLO verdicts" in out
        assert (out_dir / "slo.jsonl").exists()
        assert (out_dir / "slo_verdicts.json").exists()

    def test_chaos_slo_output_is_deterministic(self, capsys):
        args = [
            "chaos", "--sessions", "4", "--duration", "0.5", "--seed", "2",
            "--slo", "default",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_sdc_summary_slo_pass_and_fail_exit_codes(self, tmp_path,
                                                      capsys):
        passing = tmp_path / "pass.slo.json"
        passing.write_text(json.dumps({"summary_objectives": [
            {"name": "abft_coverage", "metric": "abft_coverage_min",
             "op": ">=", "target": 0.99},
        ]}))
        args = ["sdc", "--fit", "200", "--frames", "150"]
        assert main(args + ["--slo", str(passing)]) == 0
        assert "PASS" in capsys.readouterr().out

        failing = tmp_path / "fail.slo.json"
        failing.write_text(json.dumps({"summary_objectives": [
            {"name": "free_protection", "metric": "cycle_overhead",
             "op": "<=", "target": 0.0001},
        ]}))
        assert main(args + ["--slo", str(failing)]) == 3
        assert "FAIL" in capsys.readouterr().out

    def test_sdc_rejects_online_objectives(self, tmp_path):
        online = tmp_path / "online.slo.json"
        online.write_text(json.dumps({"objectives": [{
            "name": "x", "kind": "rate_min",
            "total": {"metric": "serve_frame_latency_seconds"},
            "target": 1.0, "window_s": 0.4, "fast_window_s": 0.1,
        }]}))
        with pytest.raises(SystemExit):
            main(["sdc", "--slo", str(online)])

    def test_sdc_rejects_default_slo(self):
        with pytest.raises(SystemExit):
            main(["sdc", "--slo", "default"])
