"""Chaos runtime: conservation, recovery, determinism, acceptance."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.faults import (
    ChaosConfig,
    ChaosRuntime,
    InputFaultConfig,
    RecoveryConfig,
    WorkerCrash,
    WorkerFaultSchedule,
    WorkerStall,
    default_chaos_scenario,
    run_chaos,
)
from repro.serve import ServeConfig


def small_config(**overrides) -> ChaosConfig:
    serve = ServeConfig(
        n_sessions=6,
        duration_s=0.8,
        n_workers=2,
        reuse_displacement_deg=0.3,
        seed=3,
    )
    defaults = dict(serve=serve, fault_seed=3)
    defaults.update(overrides)
    return ChaosConfig(**defaults)


def assert_conservation(config: ChaosConfig, report) -> None:
    """Every generated frame must land in exactly one terminal bucket."""
    expected = config.serve.n_sessions * config.serve.frames_per_session
    assert report.total_frames == expected
    for stats in report.sessions:
        assert (
            stats.completed + stats.shed + stats.pending + stats.lost_input
            == config.serve.frames_per_session
        )


class TestConservation:
    def test_fault_free_chaos_accounts_every_frame(self):
        config = small_config()
        report = run_chaos(config)
        assert_conservation(config, report)
        assert report.lost_input_frames == 0
        assert report.faults.batch_failures == 0

    def test_dropped_frames_are_counted_not_vanished(self):
        config = small_config(
            input_faults=InputFaultConfig(frame_drop_rate=0.25)
        )
        report = run_chaos(config)
        assert_conservation(config, report)
        assert report.lost_input_frames > 0
        assert report.lost_input_frames == report.faults.input_dropped

    def test_batcher_ledger_closes(self):
        config = small_config(
            worker_faults=WorkerFaultSchedule(
                stalls=(WorkerStall(worker_id=0, start_s=0.2, stop_s=0.4),)
            )
        )
        runtime = ChaosRuntime(config)
        report = runtime.run()
        assert len(runtime.batcher) == 0
        assert (
            runtime.batcher.admitted_total + runtime.batcher.requeued_total
            == runtime.batcher.taken_total
        )
        assert_conservation(config, report)


class TestRecovery:
    def test_stall_trips_breaker_and_degrades_instead_of_dropping(self):
        config = small_config(
            worker_faults=WorkerFaultSchedule(
                stalls=(WorkerStall(worker_id=0, start_s=0.1, stop_s=0.5),)
            ),
            recovery=RecoveryConfig(breaker_threshold=2, breaker_cooldown_s=0.1),
        )
        report = run_chaos(config)
        faults = report.faults
        assert faults.worker_stall_timeouts > 0
        assert faults.breaker_opens >= 1
        # Stall timeouts outlive the 10 ms deadline, so the frames are
        # degraded to reuse, never retried into a guaranteed miss.
        assert faults.deadline_degraded > 0
        assert_conservation(config, report)

    def test_fast_failure_is_retried_and_served(self):
        # A generous deadline and a snappy dispatch timeout: failed frames
        # can beat their deadline on retry instead of degrading.
        serve = ServeConfig(
            n_sessions=6,
            duration_s=0.8,
            n_workers=2,
            reuse_displacement_deg=0.3,
            deadline_frames=10.0,  # 100 ms budget
            seed=3,
        )
        config = ChaosConfig(
            serve=serve,
            worker_faults=WorkerFaultSchedule(
                stalls=(WorkerStall(worker_id=0, start_s=0.3, stop_s=0.5),)
            ),
            recovery=RecoveryConfig(dispatch_timeout_s=5e-3, max_retries=3),
            fault_seed=3,
        )
        report = run_chaos(config)
        faults = report.faults
        assert faults.retries_scheduled > 0
        assert faults.frames_requeued == faults.retries_scheduled
        assert_conservation(config, report)

    def test_single_worker_crash_recovers_after_downtime(self):
        # One worker, crashed mid-run: the queue must wait out the
        # downtime via wake scheduling, then drain — nothing lost.
        serve = ServeConfig(
            n_sessions=4,
            duration_s=0.8,
            n_workers=1,
            reuse_displacement_deg=0.3,
            seed=5,
        )
        config = ChaosConfig(
            serve=serve,
            worker_faults=WorkerFaultSchedule(
                crashes=(WorkerCrash(worker_id=0, at_s=0.3, down_s=0.2),)
            ),
            fault_seed=5,
        )
        report = run_chaos(config)
        assert_conservation(config, report)
        assert report.pending_at_shutdown == 0

    def test_occluded_predict_frames_degrade_to_reuse(self):
        config = small_config(
            input_faults=InputFaultConfig(
                occlusion_rate_hz=2.0,
                occlusion_duration_s=0.3,
                occlusion_level=(0.95, 1.0),
            )
        )
        report = run_chaos(config)
        assert report.faults.occluded_frames > 0
        assert_conservation(config, report)


class TestDeterminism:
    def test_same_seed_bitwise_identical_fault_telemetry(self):
        config = default_chaos_scenario(seed=1)
        first = run_chaos(config)
        second = run_chaos(config)
        assert first.faults == second.faults
        assert first.summary() == second.summary()
        for a, b in zip(first.sessions, second.sessions):
            assert a.latencies_s == b.latencies_s
            assert a.counts == b.counts

    def test_different_fault_seed_differs(self):
        base = default_chaos_scenario(seed=0)
        other = replace(base, fault_seed=99)
        assert run_chaos(base).faults != run_chaos(other).faults


@pytest.mark.chaos
class TestAcceptanceScenario:
    """The ISSUE's acceptance criteria on the canonical scenario."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return default_chaos_scenario(seed=0)

    @pytest.fixture(scope="class")
    def report(self, scenario):
        return run_chaos(scenario)

    @pytest.fixture(scope="class")
    def baseline(self, scenario):
        return run_chaos(scenario.fault_free())

    def test_zero_silently_dropped_frames(self, scenario, report):
        assert_conservation(scenario, report)
        assert report.pending_at_shutdown == 0

    def test_deadline_misses_within_2x_of_fault_free(self, report, baseline):
        assert report.deadline_miss_rate <= 2.0 * baseline.deadline_miss_rate + 1e-9

    def test_fault_machinery_actually_exercised(self, report):
        faults = report.faults
        assert faults.input_dropped > 0
        assert faults.noise_burst_frames > 0
        assert faults.occluded_frames > 0
        assert faults.mipi_corrupted_frames > 0
        assert faults.worker_stall_timeouts > 0
        assert faults.breaker_opens >= 1
        assert faults.watchdog_reuse_frames > 0
        assert faults.widened_delta_theta_deg > 2.92

    def test_telemetry_identical_across_two_runs(self, scenario, report):
        again = run_chaos(scenario)
        assert again.faults == report.faults
        assert again.summary() == report.summary()
