"""Circuit-breaker state machine: open, cooldown, half-open probe."""

import pytest

from repro.faults import BreakerState, CircuitBreaker


def tripped(threshold=3, cooldown=0.25):
    """A breaker driven to OPEN at t=0 by consecutive failures."""
    breaker = CircuitBreaker(failure_threshold=threshold, cooldown_s=cooldown)
    for _ in range(threshold):
        breaker.record_failure(0.0)
    return breaker


class TestCircuitBreaker:
    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        assert breaker.state(0.2) is BreakerState.CLOSED
        assert breaker.allow(0.2)

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(0.1)
        breaker.record_success(0.2)
        breaker.record_failure(0.3)
        breaker.record_failure(0.4)
        assert breaker.state(0.5) is BreakerState.CLOSED

    def test_opens_at_threshold_and_blocks(self):
        breaker = tripped(threshold=3, cooldown=0.25)
        assert breaker.state(0.1) is BreakerState.OPEN
        assert not breaker.allow(0.1)
        assert breaker.reopen_s == pytest.approx(0.25)

    def test_half_open_after_cooldown_allows_single_probe(self):
        breaker = tripped(cooldown=0.25)
        assert breaker.state(0.3) is BreakerState.HALF_OPEN
        assert breaker.allow(0.3)
        breaker.note_dispatch(0.3)
        # The probe is in flight: no second batch until it resolves.
        assert not breaker.allow(0.31)

    def test_probe_success_closes(self):
        breaker = tripped(cooldown=0.25)
        breaker.note_dispatch(0.3)
        breaker.record_success(0.32)
        assert breaker.state(0.32) is BreakerState.CLOSED
        assert breaker.allow(0.32)

    def test_probe_failure_reopens(self):
        breaker = tripped(cooldown=0.25)
        breaker.note_dispatch(0.3)
        breaker.record_failure(0.35)
        assert breaker.state(0.35) is BreakerState.OPEN
        assert breaker.reopen_s == pytest.approx(0.60)

    def test_transition_log_is_ordered_and_complete(self):
        breaker = tripped(cooldown=0.25)
        breaker.note_dispatch(0.3)
        breaker.record_success(0.32)
        assert breaker.transitions == [
            (0.0, "CLOSED", "OPEN"),
            (0.25, "OPEN", "HALF_OPEN"),  # recorded at cooldown expiry
            (0.32, "HALF_OPEN", "CLOSED"),
        ]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown_s"):
            CircuitBreaker(cooldown_s=0.0)
