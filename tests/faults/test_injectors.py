"""Input-fault injectors: sensor drops, MIPI bit errors, track perturbation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eye import OculomotorModel
from repro.eye.events import MovementType
from repro.faults import (
    OCCLUSION_BLIND_OPENNESS,
    FaultyMipiLink,
    FaultySensor,
    InputFaultConfig,
    inject_input_faults,
)
from repro.hw.mipi import MipiLink
from repro.hw.sensor import CameraSensor


@pytest.fixture(scope="module")
def track():
    return OculomotorModel(seed=11).generate(500)


class TestFaultySensor:
    def test_zero_rate_never_drops(self):
        sensor = FaultySensor(drop_rate=0.0, seed=1)
        assert all(sensor.acquire() for _ in range(100))
        assert sensor.frames_dropped == 0
        assert sensor.frames_total == 100

    def test_unit_rate_drops_everything(self):
        sensor = FaultySensor(drop_rate=1.0, seed=1)
        assert not any(sensor.acquire() for _ in range(50))
        assert sensor.frames_dropped == 50

    def test_seeded_reproducibility(self):
        first = FaultySensor(drop_rate=0.3, seed=7)
        second = FaultySensor(drop_rate=0.3, seed=7)
        a = [first.acquire() for _ in range(200)]
        b = [second.acquire() for _ in range(200)]
        # Same seed, same drop pattern; and the rate is roughly honoured.
        assert a == b
        assert 0.15 < a.count(False) / 200 < 0.45

    def test_passthrough_of_wrapped_sensor(self):
        base = CameraSensor()
        sensor = FaultySensor(sensor=base, drop_rate=0.1)
        assert sensor.acquisition_s == base.acquisition_s
        assert sensor.frame_bits == base.frame_bits

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="drop_rate"):
            FaultySensor(drop_rate=1.5)


class TestFaultyMipiLink:
    def test_zero_ber_is_clean(self):
        link = FaultyMipiLink(bit_error_rate=0.0, seed=3)
        latency, errors = link.transfer(10_000)
        assert errors == 0
        assert latency == pytest.approx(link.link.transfer_latency_s(10_000))
        assert link.frames_corrupted == 0

    def test_corruption_probability_monotone_in_bits(self):
        link = FaultyMipiLink(bit_error_rate=1e-6)
        p_small = link.frame_corruption_probability(1_000)
        p_large = link.frame_corruption_probability(1_000_000)
        assert 0.0 < p_small < p_large < 1.0
        assert link.frame_corruption_probability(0) == 0.0
        with pytest.raises(ValueError, match="bits"):
            link.frame_corruption_probability(-1)

    def test_corrupted_frame_pays_one_retransmission(self):
        base = MipiLink()
        link = FaultyMipiLink(link=base, bit_error_rate=1.0, seed=3)
        bits = 50_000
        latency, errors = link.transfer(bits)
        assert errors >= 1
        assert latency == pytest.approx(2.0 * base.transfer_latency_s(bits))
        assert link.frames_corrupted == 1


class TestInjectInputFaults:
    def test_no_faults_is_identity(self, track):
        faulted, trace = inject_input_faults(track, InputFaultConfig(), seed=0)
        np.testing.assert_array_equal(faulted.gaze_deg, track.gaze_deg)
        np.testing.assert_array_equal(faulted.openness, track.openness)
        np.testing.assert_array_equal(faulted.labels, track.labels)
        assert trace.n_dropped == 0
        assert trace.n_noise_frames == 0
        assert trace.n_occluded == 0
        assert trace.n_corrupted == 0

    def test_frame_drops_roughly_match_rate(self, track):
        config = InputFaultConfig(frame_drop_rate=0.2)
        _, trace = inject_input_faults(track, config, seed=5)
        assert 0.1 < trace.n_dropped / trace.n_frames < 0.35

    def test_noise_bursts_perturb_gaze_only_inside_windows(self, track):
        config = InputFaultConfig(noise_burst_rate_hz=1.0, noise_burst_std_deg=4.0)
        faulted, trace = inject_input_faults(track, config, seed=5)
        noisy = trace.noise_deg > 0
        assert noisy.any() and not noisy.all()
        moved = np.linalg.norm(faulted.gaze_deg - track.gaze_deg, axis=1)
        np.testing.assert_allclose(moved, trace.noise_deg, atol=1e-12)
        assert (moved[~noisy] == 0).all()

    def test_noise_recomputes_velocities(self, track):
        config = InputFaultConfig(noise_burst_rate_hz=2.0, noise_burst_std_deg=6.0)
        faulted, trace = inject_input_faults(track, config, seed=5)
        assert trace.n_noise_frames > 0
        assert not np.array_equal(faulted.velocity_deg_s, track.velocity_deg_s)

    def test_occlusion_reduces_openness_and_relabels_blind_frames(self, track):
        config = InputFaultConfig(
            occlusion_rate_hz=2.0, occlusion_duration_s=0.3,
            occlusion_level=(0.9, 1.0),
        )
        faulted, trace = inject_input_faults(track, config, seed=5)
        assert trace.n_occluded > 0
        assert (faulted.openness <= track.openness + 1e-12).all()
        blind = faulted.openness < OCCLUSION_BLIND_OPENNESS
        assert blind.any()
        assert (faulted.labels[blind] == MovementType.BLINK).all()

    def test_bit_errors_cost_a_retransmission(self, track):
        # A per-bit rate high enough that most frames are corrupted.
        config = InputFaultConfig(bit_error_rate=1e-5)
        _, trace = inject_input_faults(track, config, seed=5)
        assert trace.n_corrupted > 0
        assert (trace.retransmit_s[trace.corrupted] > 0).all()
        assert (trace.retransmit_s[~trace.corrupted] == 0).all()

    def test_seeded_trace_is_reproducible(self, track):
        config = InputFaultConfig(
            frame_drop_rate=0.1, noise_burst_rate_hz=0.5,
            occlusion_rate_hz=0.5, bit_error_rate=1e-6,
        )
        _, a = inject_input_faults(track, config, seed=42)
        _, b = inject_input_faults(track, config, seed=42)
        _, c = inject_input_faults(track, config, seed=43)
        for name in ("dropped", "noise_deg", "occlusion", "corrupted", "retransmit_s"):
            np.testing.assert_array_equal(getattr(a, name), getattr(b, name))
        assert not np.array_equal(a.dropped, c.dropped) or not np.array_equal(
            a.noise_deg, c.noise_deg
        )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="frame_drop_rate"):
            InputFaultConfig(frame_drop_rate=2.0)
        with pytest.raises(ValueError, match="occlusion_level"):
            InputFaultConfig(occlusion_level=(0.8, 0.2))
        with pytest.raises(ValueError, match="noise_burst_duration_s"):
            InputFaultConfig(noise_burst_duration_s=0.0)
