"""Soft-error composition with the chaos runtime (one merged FaultReport)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.faults import (
    ChaosConfig,
    ChaosRuntime,
    SoftErrorConfig,
    default_chaos_scenario,
    run_chaos,
)
from repro.serve import ServeConfig
from repro.serve.telemetry import format_fault_report

SOFT = SoftErrorConfig(fit_per_mbit=600.0, acceleration=5e10, seed=3)


def soft_config(**overrides) -> ChaosConfig:
    serve = ServeConfig(
        n_sessions=6,
        duration_s=1.0,
        n_workers=2,
        reuse_displacement_deg=0.3,
        seed=3,
    )
    defaults = dict(serve=serve, soft_errors=SOFT, fault_seed=3)
    defaults.update(overrides)
    return ChaosConfig(**defaults)


class TestComposition:
    def test_soft_errors_compose_with_sensor_and_worker_faults(self):
        config = replace(default_chaos_scenario(seed=0), soft_errors=SOFT)
        report = run_chaos(config)
        faults = report.faults
        # One merged report carries both fault families.
        assert faults.input_dropped > 0
        assert faults.worker_stall_timeouts > 0
        assert faults.soft_errors_injected > 0
        text = format_fault_report(faults)
        assert "Soft errors:" in text
        assert "silent data corruption" in text

    def test_counters_consistent(self):
        report = run_chaos(soft_config())
        faults = report.faults
        assert faults.soft_errors_injected > 0
        assert (
            faults.sdc_detected
            == faults.sdc_recomputed + faults.sdc_fallback_degraded
        )
        assert faults.summary()["soft_errors_injected"] == faults.soft_errors_injected

    def test_default_scenario_has_no_soft_errors(self):
        config = default_chaos_scenario(seed=0)
        assert not config.soft_errors.active
        faults = run_chaos(config).faults
        assert faults.soft_errors_injected == 0
        assert faults.sdc_detected == 0
        assert "Soft errors:" not in format_fault_report(faults)

    def test_fault_free_disables_soft_errors(self):
        config = soft_config().fault_free()
        assert not config.soft_errors.active
        assert run_chaos(config).faults.soft_errors_injected == 0


class TestDeterminism:
    def test_same_seed_identical_soft_error_telemetry(self):
        config = soft_config()
        first = run_chaos(config)
        second = run_chaos(config)
        assert first.faults == second.faults
        assert first.summary() == second.summary()

    def test_soft_error_seed_changes_outcome(self):
        base = run_chaos(soft_config()).faults
        other = run_chaos(
            soft_config(soft_errors=replace(SOFT, seed=11))
        ).faults
        assert base != other


class TestSnapshot:
    def test_state_roundtrip_midrun(self):
        """SDC queues, persistent offsets, and guards all snapshot."""
        config = soft_config()
        runtime = ChaosRuntime(config)
        runtime.start()
        for _ in range(150):
            runtime.step()
        state = runtime.state_dict()

        restored = ChaosRuntime(config)
        restored.load_state(state)
        assert restored.state_dict() == state

    def test_crash_recovery_bit_identical_with_soft_errors(self, tmp_path):
        from repro.faults import ProcessKill, SimulatedCrash
        from repro.recover import (
            fleet_report_bytes,
            resume,
            run_with_checkpoints,
        )

        config = soft_config()
        baseline = ChaosRuntime(config).run()
        assert baseline.faults.soft_errors_injected > 0
        with pytest.raises(SimulatedCrash):
            run_with_checkpoints(
                ChaosRuntime(config), tmp_path, every=60,
                kill=ProcessKill(at_event=200),
            )
        recovered = resume(tmp_path)
        assert fleet_report_bytes(recovered) == fleet_report_bytes(baseline)
        assert recovered.faults == baseline.faults
