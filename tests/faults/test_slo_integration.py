"""SLO engine on the chaos runtime: a burning budget pages and widens."""

from __future__ import annotations

import pytest

from repro.faults import (
    ChaosConfig,
    ChaosRuntime,
    WorkerFaultSchedule,
    WorkerStall,
)
from repro.obs import Obs, ObsConfig, PID_SLO
from repro.obs.slo import SloEngine, parse_slo_config
from repro.serve import ServeConfig
from repro.system import DegradationLevel

#: A latency objective strict enough that the stall below must page.
STRICT_LATENCY = {
    "eval_interval_s": 0.05,
    "objectives": [{
        "name": "frame_deadline",
        "kind": "ratio",
        "total": {"metric": "serve_frame_latency_seconds"},
        "bad": {"metric": "serve_frame_latency_seconds", "above_s": 0.01},
        "target": 0.999,
        "window_s": 0.4,
        "fast_window_s": 0.1,
        "min_events": 10,
        "on_page": "widen",
    }],
}


def stall_config() -> ChaosConfig:
    serve = ServeConfig(
        n_sessions=10,
        duration_s=1.0,
        n_workers=2,
        reuse_displacement_deg=0.3,
        seed=3,
    )
    return ChaosConfig(
        serve=serve,
        fault_seed=3,
        worker_faults=WorkerFaultSchedule(
            stalls=(WorkerStall(worker_id=0, start_s=0.3, stop_s=0.55),),
        ),
    )


def run_with_slo(config_dict=STRICT_LATENCY):
    obs = Obs(ObsConfig())
    runtime = ChaosRuntime(stall_config(), obs=obs)
    engine = SloEngine(parse_slo_config(config_dict), obs)
    runtime.attach_slo(engine)
    report = runtime.run()
    return runtime, engine, report


class TestPageToWiden:
    def test_stall_pages_and_widens_every_watchdog(self):
        runtime, engine, report = run_with_slo()
        (verdict,) = engine.verdicts
        assert verdict.pages >= 1
        # The page hook escalated the fleet's watchdogs to WIDENED (or
        # further, if a watchdog had already climbed on its own).
        widened = [
            w for w in runtime.watchdogs
            if any(dst != "NOMINAL" for _, _, dst in w.transitions)
        ]
        assert len(widened) == len(runtime.watchdogs)
        page_t = min(
            s.ts_s for s in engine.obs.tracer.spans()
            if s.pid == PID_SLO and s.name.endswith("->PAGE")
        )
        hook_widened = [
            w for w in runtime.watchdogs
            if any(
                t == pytest.approx(page_t) and dst == "WIDENED"
                for t, _, dst in w.transitions
            )
        ]
        assert hook_widened, "no watchdog transition at the page instant"

    def test_page_instant_precedes_widen_instants_in_trace(self):
        runtime, engine, _ = run_with_slo()
        spans = engine.obs.tracer.spans()
        page_t = min(
            s.ts_s for s in spans
            if s.pid == PID_SLO and s.name.endswith("->PAGE")
        )
        widen_t = [
            s.ts_s for s in spans
            if s.name == "watchdog.NOMINAL->WIDENED" and s.ts_s >= page_t
        ]
        assert widen_t, "PAGE did not produce watchdog widen instants"

    def test_alert_stream_is_deterministic(self):
        _, first, _ = run_with_slo()
        _, second, _ = run_with_slo()
        assert first.history_jsonl() == second.history_jsonl()
        assert first.verdicts_json() == second.verdicts_json()

    def test_non_widening_objective_only_reports(self):
        config = {
            "eval_interval_s": 0.05,
            "objectives": [
                dict(STRICT_LATENCY["objectives"][0], on_page="none")
            ],
        }
        runtime, engine, _ = run_with_slo(config)
        (verdict,) = engine.verdicts
        assert verdict.pages >= 1
        page_t = min(
            s.ts_s for s in engine.obs.tracer.spans()
            if s.pid == PID_SLO and s.name.endswith("->PAGE")
        )
        # No watchdog moved at the page instant: on_page none observes.
        assert not any(
            t == pytest.approx(page_t) and dst == "WIDENED"
            for w in runtime.watchdogs
            for t, _, dst in w.transitions
        )

    def test_attach_slo_requires_observed_runtime(self):
        obs = Obs(ObsConfig())
        engine = SloEngine(parse_slo_config(STRICT_LATENCY), obs)
        runtime = ChaosRuntime(stall_config())  # no obs bundle
        with pytest.raises(ValueError, match="Obs bundle"):
            runtime.attach_slo(engine)
