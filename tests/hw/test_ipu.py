"""IPU cost model and its agreement with the golden preprocessing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PolonetConfig, binary_map
from repro.hw import IpuConfig, IpuModel


@pytest.fixture
def ipu():
    return IpuModel()


class TestTaskCosts:
    def test_pool_binarize_scales_with_frame(self, ipu):
        small = ipu.pool_binarize_cost((120, 160), 4)
        large = ipu.pool_binarize_cost((400, 640), 4)
        assert large.cycles > 10 * small.cycles
        assert large.energy.total_j > small.energy.total_j

    def test_reuse_check_uses_xor_width(self):
        narrow = IpuModel(IpuConfig(xor_width=16))
        wide = IpuModel(IpuConfig(xor_width=128))
        assert narrow.reuse_check_cost((100, 160)).cycles > wide.reuse_check_cost((100, 160)).cycles

    def test_pupil_search_is_sparsity_dependent(self, ipu):
        sparse = np.zeros((100, 160), dtype=np.uint8)
        sparse[:2, :10] = 1
        dense = np.ones((100, 160), dtype=np.uint8)
        assert (
            ipu.pupil_search_cost(sparse, 5).cycles
            < ipu.pupil_search_cost(dense, 5).cycles
        )

    def test_blank_map_minimal_cost(self, ipu):
        report = ipu.pupil_search_cost(np.zeros((10, 10), dtype=np.uint8), 5)
        assert report.cycles <= ipu.config.pipeline_fill + 1


class TestPathCosts:
    def test_path_ordering(self, ipu):
        binary = np.zeros((100, 160), dtype=np.uint8)
        binary[40:50, 70:80] = 1
        saccade = ipu.frame_cost((400, 640), 4, binary, 5, "saccade")
        reuse = ipu.frame_cost((400, 640), 4, binary, 5, "reuse")
        predict = ipu.frame_cost((400, 640), 4, binary, 5, "predict")
        assert saccade.cycles < reuse.cycles < predict.cycles

    def test_unknown_path_rejected(self, ipu):
        with pytest.raises(ValueError):
            ipu.frame_cost((400, 640), 4, None, 5, "teleport")

    def test_ipu_is_microseconds_at_1ghz(self, ipu):
        """The entire IPU front end is orders of magnitude below the ViT."""
        binary = np.zeros((100, 160), dtype=np.uint8)
        binary[:5, :20] = 1
        report = ipu.frame_cost((400, 640), 4, binary, 5, "predict")
        assert report.cycles / 1e9 < 100e-6


class TestGoldenAgreement:
    def test_costs_on_real_binary_maps(self, ipu, tiny_train_dataset):
        """The IPU model consumes exactly the golden model's binary maps."""
        config = PolonetConfig()
        frame = tiny_train_dataset.sequences[0].images[0].astype(np.float64)
        binary = binary_map(frame, config)
        report = ipu.pupil_search_cost(binary, config.pupil_window)
        assert report.cycles == int(binary.sum()) + ipu.config.pipeline_fill
