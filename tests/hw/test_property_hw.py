"""Property-based invariants of the hardware models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    EnergyTable,
    IpuModel,
    MatMulOp,
    SystolicArray,
    WorkloadMapper,
)

dims = st.integers(min_value=1, max_value=600)


@settings(max_examples=60, deadline=None)
@given(dims, dims, dims)
def test_systolic_cycles_bound_macs(m, k, n):
    """Cycles x peak >= MACs, always: no array computes faster than peak."""
    array = SystolicArray(16, 16, "int8")
    op = MatMulOp(m=m, k=k, n=n)
    assert array.cycles(op) * array.macs_per_cycle >= op.macs
    assert 0.0 < array.utilization(op) <= 1.0


large_dims = st.integers(min_value=64, max_value=600)


@settings(max_examples=40, deadline=None)
@given(large_dims, large_dims, large_dims)
def test_bigger_array_never_slower_on_large_gemms(m, k, n):
    """For GEMMs at least as large as the arrays, more PEs always help
    (tiny ops can invert this: fill/drain overhead scales with the array,
    which is exactly why the paper sizes the array to its workload)."""
    small = SystolicArray(8, 8, "int8")
    big = SystolicArray(32, 32, "int8")
    op = MatMulOp(m=m, k=k, n=n)
    assert big.cycles(op) <= small.cycles(op)


@settings(max_examples=40, deadline=None)
@given(dims, dims, dims)
def test_mapper_energy_positive_and_additive(m, k, n):
    mapper = WorkloadMapper(SystolicArray(16, 16, "int8"))
    op = MatMulOp(m=m, k=k, n=n)
    single = mapper.map([op])
    double = mapper.map([op, op])
    assert single.energy.total_j > 0
    assert double.cycles == 2 * single.cycles
    assert double.energy.total_j == pytest.approx(2 * single.energy.total_j, rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=512))
def test_sram_energy_monotone_in_capacity(kb):
    table = EnergyTable()
    assert table.sram_pj_per_byte(kb) <= table.sram_pj_per_byte(kb + 1)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=8, max_value=200),
    st.integers(min_value=8, max_value=200),
    st.integers(min_value=0, max_value=100),
)
def test_ipu_pupil_search_cycles_track_sparsity(h, w, n_white):
    ipu = IpuModel()
    binary = np.zeros((h, w), dtype=np.uint8)
    flat = binary.reshape(-1)
    flat[: min(n_white, flat.size)] = 1
    report = ipu.pupil_search_cost(binary, 5)
    assert report.cycles == max(1, int(binary.sum())) + ipu.config.pipeline_fill
