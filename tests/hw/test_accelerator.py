"""Accelerator composition: POLO vs per-baseline accelerators, the
path model, and synthesis-summary calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DeepVOGTracker, EdGazeTracker, ResNetGazeTracker
from repro.core import GazeViTConfig, SaccadeDetector
from repro.core.gaze_vit import vit_workload
from repro.hw import (
    AcceleratorConfig,
    Accelerator,
    MatMulOp,
    PoloAcceleratorModel,
    baseline_accelerator,
    polo_accelerator,
)


class TestPoloAccelerator:
    def test_paper_configuration(self):
        acc = polo_accelerator()
        assert acc.array.rows == 16 and acc.array.cols == 16
        assert acc.array.precision == "int8"
        assert acc.config.clock_hz == 1e9

    def test_area_matches_paper(self):
        acc = polo_accelerator()
        assert acc.area_mm2 == pytest.approx(0.75, rel=0.1)
        fractions = acc.area_fractions()
        assert fractions["buffers"] == pytest.approx(0.72, abs=0.05)
        assert fractions["engine"] == pytest.approx(0.24, abs=0.05)
        assert fractions["ipu"] == pytest.approx(0.04, abs=0.02)

    def test_polovit_latency_magnitude(self):
        """POLO_N gaze latency lands in the paper's ~10-16 ms band."""
        acc = polo_accelerator()
        report = acc.run(vit_workload(GazeViTConfig.paper()))
        assert 8e-3 < report.latency_s < 20e-3
        assert 0.5 < report.utilization <= 1.0

    def test_power_under_paper_budget(self):
        acc = polo_accelerator()
        report = acc.run(vit_workload(GazeViTConfig.paper()))
        power = acc.average_power_w(report.energy.total_j, report.latency_s)
        assert power < 0.15


class TestBaselineAccelerators:
    def test_equal_area_fp16_array(self):
        acc = baseline_accelerator("ResNet-34")
        assert acc.array.precision == "fp16"
        assert acc.array.rows == acc.array.cols == 9
        assert not acc.config.has_token_selector

    def test_latency_ordering_matches_paper(self):
        """DeepVOG heaviest, EdGaze lightest of the system baselines."""
        latencies = {}
        for tracker in (ResNetGazeTracker(), EdGazeTracker(), DeepVOGTracker()):
            acc = baseline_accelerator(tracker.name)
            latencies[tracker.name] = acc.run(tracker.workload()).latency_s
        assert latencies["DeepVOG"] > latencies["ResNet-34"] > latencies["EdGaze"]
        assert latencies["DeepVOG"] > 0.05  # 'exceeding 70ms in many cases' band

    def test_polo_faster_than_all_baselines(self):
        polo = polo_accelerator().run(vit_workload(GazeViTConfig.paper())).latency_s
        for tracker in (ResNetGazeTracker(), EdGazeTracker(), DeepVOGTracker()):
            base = baseline_accelerator(tracker.name).run(tracker.workload()).latency_s
            assert polo < base


class TestExecutionReports:
    def test_report_addition(self):
        acc = polo_accelerator()
        a = acc.run([MatMulOp(10, 16, 16)])
        b = acc.run([MatMulOp(20, 16, 16)])
        total = a + b
        assert total.cycles == a.cycles + b.cycles
        assert total.latency_s == pytest.approx(a.latency_s + b.latency_s)
        assert total.energy.total_j == pytest.approx(
            a.energy.total_j + b.energy.total_j
        )

    def test_clock_scales_latency(self):
        slow = Accelerator(AcceleratorConfig(clock_hz=5e8))
        fast = Accelerator(AcceleratorConfig(clock_hz=1e9))
        op = [MatMulOp(100, 64, 64)]
        assert slow.run(op).latency_s == pytest.approx(2 * fast.run(op).latency_s)


class TestPathModel:
    def test_path_latency_ordering(self):
        model = PoloAcceleratorModel()
        detector = SaccadeDetector((100, 160))
        sac_ops = detector.workload((100, 160))
        vit_ops = vit_workload(GazeViTConfig.paper())
        saccade = model.path_report("saccade", sac_ops)
        reuse = model.path_report("reuse", sac_ops)
        predict = model.path_report("predict", sac_ops, vit_ops)
        assert saccade.latency_s < reuse.latency_s < predict.latency_s
        # The cheap paths are a tiny fraction of a prediction (§7.1).
        assert reuse.latency_s / predict.latency_s < 0.05

    def test_predict_requires_vit_ops(self):
        model = PoloAcceleratorModel()
        sac_ops = SaccadeDetector((100, 160)).workload((100, 160))
        with pytest.raises(ValueError):
            model.path_report("predict", sac_ops)

    def test_custom_binary_map_changes_cost(self):
        model = PoloAcceleratorModel()
        detector = SaccadeDetector((100, 160))
        sac_ops = detector.workload((100, 160))
        vit_ops = vit_workload(GazeViTConfig.paper())
        dense = np.ones(model.map_shape, dtype=np.uint8)
        sparse = np.zeros(model.map_shape, dtype=np.uint8)
        sparse[0, 0] = 1
        heavy = model.path_report("predict", sac_ops, vit_ops, binary_map=dense)
        light = model.path_report("predict", sac_ops, vit_ops, binary_map=sparse)
        assert heavy.latency_s > light.latency_s
