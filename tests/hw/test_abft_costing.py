"""ABFT cost accounting in the accelerator model, plus hw input validation."""

from __future__ import annotations

import pytest

from repro.hw import (
    EnergyTable,
    MatMulOp,
    SramBuffer,
    SystolicArray,
    WorkloadMapper,
    polo_accelerator,
)

OPS = (MatMulOp(m=64, k=96, n=96), MatMulOp(m=1, k=96, n=2))


class TestAbftOp:
    def test_augmented_shape(self):
        op = MatMulOp(m=10, k=16, n=24, transposed=True)
        aug = SystolicArray.abft_op(op)
        assert (aug.m, aug.k, aug.n) == (11, 16, 25)
        assert aug.transposed

    def test_augmentation_costs_cycles(self):
        array = SystolicArray()
        for op in OPS:
            assert array.cycles(SystolicArray.abft_op(op)) >= array.cycles(op)


class TestMapperAbft:
    def test_unprotected_schedule_has_zero_abft_cycles(self):
        report = WorkloadMapper(SystolicArray()).map(OPS)
        assert report.abft_cycles == 0

    def test_abft_cycles_are_a_strict_subset(self):
        plain = WorkloadMapper(SystolicArray()).map(OPS)
        protected = WorkloadMapper(SystolicArray(), abft=True).map(OPS)
        assert 0 < protected.abft_cycles < protected.cycles
        # Total protected work = unprotected work + exactly the accounted
        # ABFT cycles — nothing is hidden, nothing double-counted.
        assert protected.cycles == plain.cycles + protected.abft_cycles

    def test_abft_charges_macs_energy_and_traffic(self):
        plain = WorkloadMapper(SystolicArray()).map(OPS)
        protected = WorkloadMapper(SystolicArray(), abft=True).map(OPS)
        assert protected.macs > plain.macs
        assert protected.energy.total_j > plain.energy.total_j
        assert protected.activation_bytes > plain.activation_bytes
        assert protected.weight_bytes > plain.weight_bytes

    def test_schedule_add_propagates_abft_cycles(self):
        mapper = WorkloadMapper(SystolicArray(), abft=True)
        one = mapper.map(OPS[:1])
        both = mapper.map(OPS[:1]) + mapper.map(OPS[1:])
        assert both.abft_cycles == one.abft_cycles + mapper.map(OPS[1:]).abft_cycles


class TestPathReportOverhead:
    def test_polo_accelerator_reports_honest_overhead(self):
        plain = polo_accelerator()
        protected = polo_accelerator(abft=True)
        ops = (MatMulOp(m=100, k=96, n=96),)
        r_plain = plain.run(list(ops))
        r_protected = protected.run(list(ops))
        assert r_protected.schedule.abft_cycles > 0
        assert r_protected.latency_s > r_plain.latency_s
        assert r_protected.energy.total_j > r_plain.energy.total_j

    def test_overhead_fraction_bounded(self):
        protected = polo_accelerator(abft=True)
        report = protected.run([MatMulOp(m=256, k=192, n=192)]).schedule
        # Checksums on a paper-scale GEMM are a thin border of the tile
        # plus the verification sweep — a bounded minority of the work.
        assert report.abft_cycles / report.cycles < 0.35


class TestHwValidation:
    def test_sram_fits_rejects_negative_bytes_naming_buffer(self):
        buffer = SramBuffer("activation", 128, EnergyTable())
        with pytest.raises(ValueError, match="activation"):
            buffer.fits(-1)

    def test_sram_access_rejects_negative_bytes_naming_buffer(self):
        buffer = SramBuffer("weight", 128, EnergyTable())
        with pytest.raises(ValueError, match="weight"):
            buffer.access(-4)

    def test_sram_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            SramBuffer("weight", 0, EnergyTable())

    def test_systolic_rejects_non_positive_dims(self):
        with pytest.raises(ValueError):
            SystolicArray(rows=0)
        with pytest.raises(ValueError):
            SystolicArray(cols=-4)

    def test_matmul_op_rejects_non_positive_dims(self):
        with pytest.raises(ValueError, match="positive"):
            MatMulOp(m=0, k=4, n=4)
