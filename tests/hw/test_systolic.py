"""Systolic-array cycle model."""

from __future__ import annotations

import pytest

from repro.hw import MatMulOp, SystolicArray


class TestCycles:
    def test_single_tile(self):
        array = SystolicArray(rows=16, cols=16)
        op = MatMulOp(m=10, k=16, n=16)
        assert array.tiles(op) == 1
        assert array.cycles(op) == 10 + 16 + 16

    def test_multi_tile(self):
        array = SystolicArray(rows=16, cols=16)
        op = MatMulOp(m=8, k=32, n=48)
        assert array.tiles(op) == 2 * 3
        assert array.cycles(op) == 6 * (8 + 32)

    def test_ragged_tiles_round_up(self):
        array = SystolicArray(rows=16, cols=16)
        op = MatMulOp(m=1, k=17, n=17)
        assert array.tiles(op) == 4

    def test_utilization_bounded(self):
        array = SystolicArray(rows=16, cols=16)
        for op in (MatMulOp(1, 1, 1), MatMulOp(512, 512, 512), MatMulOp(3, 100, 7)):
            util = array.utilization(op)
            assert 0.0 < util <= 1.0

    def test_large_gemm_high_utilization(self):
        array = SystolicArray(rows=16, cols=16)
        assert array.utilization(MatMulOp(1024, 512, 512)) > 0.9

    def test_tiny_gemm_low_utilization(self):
        array = SystolicArray(rows=16, cols=16)
        assert array.utilization(MatMulOp(1, 16, 16)) < 0.1


class TestTraffic:
    def test_weight_loads_once(self):
        array = SystolicArray(rows=16, cols=16)
        op = MatMulOp(m=100, k=64, n=64)
        assert array.weight_loads(op) == 64 * 64

    def test_activation_restreams_per_n_tile(self):
        array = SystolicArray(rows=16, cols=16)
        op = MatMulOp(m=10, k=16, n=32)
        assert array.activation_reads(op) == 10 * 16 * 2

    def test_output_writes(self):
        array = SystolicArray(rows=16, cols=16)
        assert array.output_writes(MatMulOp(m=10, k=99, n=7)) == 70


class TestValidation:
    def test_precision_checked(self):
        with pytest.raises(ValueError):
            SystolicArray(precision="fp32")

    def test_dims_checked(self):
        with pytest.raises(ValueError):
            SystolicArray(rows=0)

    def test_macs_per_cycle(self):
        assert SystolicArray(rows=8, cols=8).macs_per_cycle == 64
