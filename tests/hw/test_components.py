"""SFU, buffers, energy table, area table, sensor, links."""

from __future__ import annotations

import pytest

from repro.hw import (
    AreaTable,
    CameraSensor,
    EnergyBreakdown,
    EnergyTable,
    MipiLink,
    NocLink,
    NonlinearKind,
    NonlinearOp,
    SpecialFunctionUnit,
    SramBuffer,
)


class TestSfu:
    def test_relu_cheapest(self):
        sfu = SpecialFunctionUnit()
        relu = sfu.cycles(NonlinearOp(NonlinearKind.RELU, 1000))
        softmax = sfu.cycles(NonlinearOp(NonlinearKind.SOFTMAX, 1000))
        assert relu < softmax

    def test_cycles_scale_with_count(self):
        sfu = SpecialFunctionUnit()
        small = sfu.cycles(NonlinearOp(NonlinearKind.GELU, 100))
        large = sfu.cycles(NonlinearOp(NonlinearKind.GELU, 10_000))
        assert large == pytest.approx(100 * small, rel=0.05)

    def test_energy_weight(self):
        sfu = SpecialFunctionUnit()
        op = NonlinearOp(NonlinearKind.TANH, 500)
        assert sfu.energy_weight_for(op) == pytest.approx(0.6 * 500)


class TestBuffers:
    def test_capacity_and_fit(self):
        buf = SramBuffer("act", 128, EnergyTable())
        assert buf.capacity_bytes == 128 * 1024
        assert buf.fits(100_000)
        assert not buf.fits(200_000)

    def test_access_energy_and_traffic(self):
        buf = SramBuffer("act", 128, EnergyTable())
        joules = buf.access(1000)
        assert joules == pytest.approx(1000 * buf.pj_per_byte * 1e-12)
        assert buf.traffic_bytes == 1000
        buf.reset()
        assert buf.traffic_bytes == 0

    def test_negative_access_rejected(self):
        buf = SramBuffer("act", 128, EnergyTable())
        with pytest.raises(ValueError):
            buf.access(-1)

    def test_bigger_buffer_costs_more_per_byte(self):
        table = EnergyTable()
        assert table.sram_pj_per_byte(256) > table.sram_pj_per_byte(64)


class TestEnergyTable:
    def test_int8_cheaper_than_fp16(self):
        table = EnergyTable()
        assert table.mac_pj("int8") < table.mac_pj("fp16")

    def test_unknown_precision(self):
        with pytest.raises(ValueError):
            EnergyTable().mac_pj("fp64")

    def test_breakdown_addition_and_fractions(self):
        a = EnergyBreakdown(mac_j=1.0, buffer_j=3.0)
        b = EnergyBreakdown(sfu_j=2.0)
        total = a + b
        assert total.total_j == 6.0
        fr = total.fractions()
        assert fr["buffer"] == pytest.approx(0.5)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_empty_breakdown_fractions(self):
        assert EnergyBreakdown().fractions()["mac"] == 0.0

    def test_scaled(self):
        e = EnergyBreakdown(mac_j=2.0).scaled(0.5)
        assert e.mac_j == 1.0


class TestAreaTable:
    def test_fp16_pe_larger(self):
        table = AreaTable()
        assert table.pe_mm2("fp16") == pytest.approx(3 * table.pe_mm2("int8"))

    def test_equal_area_dim(self):
        table = AreaTable()
        dim = table.equal_area_array_dim(16, 16, "int8", "fp16")
        # 256 int8 PEs worth of area fits 256/3 fp16 PEs -> 9x9 array.
        assert dim == 9

    def test_unknown_precision(self):
        with pytest.raises(ValueError):
            AreaTable().pe_mm2("bf16")


class TestSensorAndLinks:
    def test_sensor_frame_geometry(self):
        sensor = CameraSensor()
        assert sensor.frame_bytes == 640 * 400
        assert sensor.acquisition_s == pytest.approx(1e-3)

    def test_mipi_sub_millisecond_for_eye_frames(self):
        """§2.3: MIPI transfer of the eye frame is under 1 ms."""
        sensor, link = CameraSensor(), MipiLink()
        assert link.transfer_latency_s(sensor.frame_bits) < 1e-3

    def test_mipi_energy_scales_with_bits(self):
        link = MipiLink()
        assert link.transfer_energy_j(2000) == pytest.approx(2 * link.transfer_energy_j(1000))

    def test_mipi_rejects_negative(self):
        with pytest.raises(ValueError):
            MipiLink().transfer_latency_s(-1)

    def test_noc_negligible_for_gaze_values(self):
        """§5.3: the gaze result crossing the NoC is negligible."""
        noc = NocLink()
        assert noc.transfer_latency_s(8) < 1e-6
        assert noc.transfer_energy_j(8) < 1e-9
