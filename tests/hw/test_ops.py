"""Op descriptors and conv lowering."""

from __future__ import annotations

import pytest

from repro.hw import (
    ElementwiseOp,
    MatMulOp,
    NonlinearKind,
    NonlinearOp,
    conv2d_as_matmul,
    total_elementwise,
    total_macs,
    total_nonlinear,
)


class TestMatMulOp:
    def test_counts(self):
        op = MatMulOp(m=3, k=4, n=5)
        assert op.macs == 60
        assert op.flops == 120
        assert op.input_elems == 12 + 20
        assert op.output_elems == 15

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            MatMulOp(m=0, k=1, n=1)


class TestConvLowering:
    def test_im2col_gemm_shape(self):
        op = conv2d_as_matmul(out_h=14, out_w=14, in_channels=3, out_channels=8, kernel=3)
        assert op.m == 196
        assert op.k == 27
        assert op.n == 8
        assert op.macs == 196 * 27 * 8  # exactly the conv's MAC count


class TestAggregation:
    def test_totals(self):
        ops = [
            MatMulOp(2, 2, 2),
            NonlinearOp(NonlinearKind.RELU, 10),
            ElementwiseOp(5),
            MatMulOp(1, 1, 1),
        ]
        assert total_macs(ops) == 9
        assert total_nonlinear(ops) == 10
        assert total_elementwise(ops) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            NonlinearOp(NonlinearKind.GELU, 0)
        with pytest.raises(ValueError):
            ElementwiseOp(0)
