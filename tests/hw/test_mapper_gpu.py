"""Workload mapper and the GPU-inference ablation model."""

from __future__ import annotations

import pytest

from repro.hw import (
    ElementwiseOp,
    GpuComputeModel,
    MatMulOp,
    NonlinearKind,
    NonlinearOp,
    SystolicArray,
    WorkloadMapper,
)


@pytest.fixture
def mapper():
    return WorkloadMapper(SystolicArray(16, 16, "int8"))


class TestMapper:
    def test_cycles_sum_by_category(self, mapper):
        ops = [
            MatMulOp(10, 16, 16),
            NonlinearOp(NonlinearKind.RELU, 160),
            ElementwiseOp(160),
        ]
        report = mapper.map(ops)
        assert report.cycles == (
            report.matmul_cycles + report.sfu_cycles + report.elementwise_cycles
        )
        assert report.matmul_cycles > 0
        assert report.sfu_cycles > 0
        assert report.elementwise_cycles > 0

    def test_energy_categories_populated(self, mapper):
        report = mapper.map([MatMulOp(64, 64, 64), NonlinearOp(NonlinearKind.GELU, 4096)])
        assert report.energy.mac_j > 0
        assert report.energy.sfu_j > 0
        assert report.energy.buffer_j > 0

    def test_traffic_accounting(self, mapper):
        op = MatMulOp(10, 16, 32)
        report = mapper.map([op])
        assert report.weight_bytes == 16 * 32  # int8: one byte per weight
        assert report.activation_bytes == (10 * 16 * 2 + 10 * 32) * 1

    def test_fp16_doubles_bytes(self):
        mapper = WorkloadMapper(SystolicArray(16, 16, "fp16"))
        report = mapper.map([MatMulOp(10, 16, 32)])
        assert report.weight_bytes == 16 * 32 * 2

    def test_utilization_weighted(self, mapper):
        report = mapper.map([MatMulOp(512, 256, 256)])
        assert 0.5 < report.utilization <= 1.0

    def test_unknown_op_rejected(self, mapper):
        with pytest.raises(TypeError):
            mapper.map(["not an op"])

    def test_report_addition(self, mapper):
        a = mapper.map([MatMulOp(10, 16, 16)])
        b = mapper.map([MatMulOp(20, 16, 16)])
        total = a + b
        assert total.macs == a.macs + b.macs
        assert total.cycles == a.cycles + b.cycles


class TestGpuComputeModel:
    def test_int8_faster_than_fp16(self):
        gpu = GpuComputeModel()
        ops = [MatMulOp(256, 256, 256)]
        assert gpu.latency_s(ops, "int8") < gpu.latency_s(ops, "fp16")

    def test_pruning_overhead_applied(self):
        gpu = GpuComputeModel()
        ops = [MatMulOp(256, 256, 256)]
        plain = gpu.latency_s(ops, "int8")
        pruned = gpu.latency_s(ops, "int8", token_pruned=True)
        assert pruned == pytest.approx(plain * gpu.pruning_overhead)

    def test_kernel_launch_floor(self):
        gpu = GpuComputeModel()
        many_tiny = [MatMulOp(1, 1, 1)] * 100
        assert gpu.latency_s(many_tiny, "int8") >= 100 * gpu.kernel_launch_s

    def test_nonlinear_memory_bound(self):
        gpu = GpuComputeModel()
        op = [NonlinearOp(NonlinearKind.SOFTMAX, 10_000_000)]
        expected = gpu.kernel_launch_s + 2 * 10_000_000 * 2 / gpu.memory_bandwidth_bytes_s
        assert gpu.latency_s(op, "fp16") == pytest.approx(expected)

    def test_unknown_precision(self):
        with pytest.raises(ValueError):
            GpuComputeModel().latency_s([], "fp64")

    def test_gpu_slower_than_dedicated_accelerator(self):
        """The Fig. 13b premise: dedicated hardware wins for every method."""
        from repro.baselines import ResNetGazeTracker
        from repro.hw import baseline_accelerator

        tracker = ResNetGazeTracker()
        accel = baseline_accelerator(tracker.name).run(tracker.workload()).latency_s
        gpu = GpuComputeModel().latency_s(tracker.workload(), "fp16")
        assert gpu > accel
