"""GPU latency model and rendering-pipeline composition (Figs. 1, 11)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.render import (
    GpuModel,
    RES_1080P,
    RES_1440P,
    RES_720P,
    RESOLUTIONS,
    RenderPipeline,
    SCENES,
    resolution_by_name,
    scene_by_name,
)


class TestSceneSuite:
    def test_eight_scenes_sorted_by_complexity(self):
        assert len(SCENES) == 8
        costs = [s.cycles_per_ray for s in SCENES]
        assert costs == sorted(costs)

    def test_lookup(self):
        assert scene_by_name("C").name == "C"
        with pytest.raises(KeyError):
            scene_by_name("Z")
        assert resolution_by_name("1080P") is RES_1080P
        with pytest.raises(KeyError):
            resolution_by_name("4K")


class TestFig1Calibration:
    """The GPU model must reproduce Fig. 1's aggregates."""

    def test_average_latencies(self):
        gpu = GpuModel()
        targets = {"720P": 0.080, "1080P": 0.155, "1440P": 0.282}
        for res in RESOLUTIONS:
            avg = np.mean([gpu.full_resolution_latency(res, s) for s in SCENES])
            assert avg == pytest.approx(targets[res.name], rel=0.15)

    def test_latency_spread_20_to_700ms(self):
        gpu = GpuModel()
        lats = [
            gpu.full_resolution_latency(res, s)
            for res in RESOLUTIONS
            for s in SCENES
        ]
        assert min(lats) < 0.035
        assert max(lats) > 0.5

    def test_latency_scales_with_pixels(self):
        gpu = GpuModel()
        scene = scene_by_name("E")
        l720 = gpu.full_resolution_latency(RES_720P, scene)
        l1440 = gpu.full_resolution_latency(RES_1440P, scene)
        # 4x pixels but a fixed overhead: between 2x and 4x.
        assert 2.0 < l1440 / l720 < 4.0

    def test_negative_rays_rejected(self):
        with pytest.raises(ValueError):
            GpuModel().ray_latency(-1, scene_by_name("A"))


class TestPipeline:
    @pytest.fixture
    def pipeline(self):
        return RenderPipeline()

    def test_r1_r2_sum_equals_total(self, pipeline):
        scene = scene_by_name("E")
        breakdown = pipeline.foveated_latency(scene, RES_1080P, 2.92)
        assert breakdown.total_s == pytest.approx(breakdown.r1_s + breakdown.r2_s)

    def test_latency_ordering_saccade_foveated_full(self, pipeline):
        scene = scene_by_name("E")
        saccade = pipeline.saccade_latency(scene, RES_1080P)
        foveated = pipeline.foveated_latency(scene, RES_1080P, 2.92).total_s
        full = pipeline.full_latency(scene, RES_1080P)
        assert saccade < foveated < full

    def test_foveated_latency_grows_with_error(self, pipeline):
        scene = scene_by_name("E")
        low = pipeline.foveated_latency(scene, RES_1080P, 2.92).total_s
        high = pipeline.foveated_latency(scene, RES_1080P, 13.15).total_s
        assert high > 1.3 * low

    def test_rendering_speedup_band(self, pipeline):
        """POLO's error gives a ~1.5x rendering advantage over ResNet's
        (the §7.1 claim)."""
        ratios = []
        for scene in SCENES:
            polo = pipeline.foveated_latency(scene, RES_1080P, 2.92).total_s
            resnet = pipeline.foveated_latency(scene, RES_1080P, 13.15).total_s
            ratios.append(resnet / polo)
        assert 1.2 < np.mean(ratios) < 2.2

    def test_r1_is_gaze_independent(self, pipeline):
        scene = scene_by_name("D")
        a = pipeline.foveated_latency(scene, RES_1080P, 2.0).r1_s
        b = pipeline.foveated_latency(scene, RES_1080P, 20.0).r1_s
        assert a == pytest.approx(b)

    def test_r1_average_near_paper(self, pipeline):
        """§7.4: R1 averages ~22 ms across scenes at 1080P."""
        r1 = np.mean(
            [pipeline.foveated_latency(s, RES_1080P, 2.92).r1_s for s in SCENES]
        )
        assert 0.012 < r1 < 0.03

    def test_speedup_vs_full(self, pipeline):
        assert pipeline.speedup_vs_full(scene_by_name("H"), RES_1080P, 2.92) > 3.0
