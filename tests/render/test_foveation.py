"""Foveation geometry (Eq. 1): radii, regions, ray budgets."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.render import (
    FoveationConfig,
    RES_1080P,
    RES_720P,
    eccentricity_radius_px,
    effective_rays,
    foveated_ray_fraction,
    region_pixels,
    theta_f,
)


class TestThetaF:
    def test_addition(self):
        assert theta_f(5.0, 2.92) == pytest.approx(7.92)

    def test_rejects_negative_error(self):
        with pytest.raises(ValueError):
            theta_f(5.0, -1.0)


class TestRadius:
    def test_matches_hand_calculation(self):
        # rho*d = (1920/2)/tan(48 deg); r = rho*d*tan(7.92 deg)
        rho_d = 960 / math.tan(math.radians(48.0))
        expected = rho_d * math.tan(math.radians(7.92))
        got = eccentricity_radius_px(7.92, RES_1080P, 96.0)
        assert got == pytest.approx(expected)

    def test_monotone_in_angle(self):
        radii = [eccentricity_radius_px(a, RES_1080P, 96.0) for a in (5, 10, 20, 40)]
        assert all(a < b for a, b in zip(radii, radii[1:]))

    def test_ninety_degrees_is_infinite(self):
        assert eccentricity_radius_px(90.0, RES_1080P, 96.0) == float("inf")


class TestRegions:
    def test_partition_covers_display(self):
        regions = region_pixels(2.92, RES_1080P)
        assert regions.total == pytest.approx(RES_1080P.pixels, rel=0.01)

    def test_foveal_grows_with_error(self):
        small = region_pixels(2.0, RES_1080P).foveal
        large = region_pixels(13.0, RES_1080P).foveal
        assert large > 3 * small

    def test_zero_error_still_has_fovea(self):
        regions = region_pixels(0.0, RES_1080P)
        assert regions.foveal > 0

    def test_huge_error_caps_at_display(self):
        regions = region_pixels(80.0, RES_1080P)
        assert regions.foveal == pytest.approx(RES_1080P.pixels, rel=0.01)
        assert regions.peripheral == pytest.approx(0.0, abs=RES_1080P.pixels * 0.01)


class TestRayBudget:
    def test_effective_rays_formula(self):
        config = FoveationConfig()
        regions = region_pixels(2.92, RES_1080P, config)
        rays = effective_rays(regions, config)
        expected = regions.foveal + regions.inter / 4 + regions.peripheral / 16
        assert rays == pytest.approx(expected)

    def test_fraction_below_one_and_monotone(self):
        fractions = [foveated_ray_fraction(d, RES_1080P) for d in (0.0, 3.0, 13.0, 24.0)]
        assert all(0.0 < f <= 1.0 for f in fractions)
        assert all(a < b for a, b in zip(fractions, fractions[1:]))

    def test_polo_error_gives_large_savings(self):
        """At POLO's P95 error the ray budget is a small fraction of full."""
        assert foveated_ray_fraction(2.92, RES_1080P) < 0.2

    def test_resolution_consistency(self):
        """The same angular error claims a similar *fraction* across
        resolutions (same FOV -> same angular geometry)."""
        a = foveated_ray_fraction(5.0, RES_720P)
        b = foveated_ray_fraction(5.0, RES_1080P)
        assert a == pytest.approx(b, rel=0.05)


class TestConfigValidation:
    def test_bounds(self):
        with pytest.raises(ValueError):
            FoveationConfig(theta_foveal_deg=0.0)
        with pytest.raises(ValueError):
            FoveationConfig(display_hfov_deg=200.0)
