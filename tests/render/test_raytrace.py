"""The real mini path tracer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.render import MiniScene, PathTracer, Sphere


@pytest.fixture(scope="module")
def tracer():
    return PathTracer(MiniScene.demo())


class TestFullRender:
    def test_image_validity(self, tracer):
        img = tracer.render(48, 32)
        assert img.shape == (32, 48, 3)
        assert img.min() >= 0.0 and img.max() <= 1.0
        assert np.isfinite(img).all()

    def test_scene_content_visible(self, tracer):
        """Sky above, checkerboard floor below, spheres in between."""
        img = tracer.render(64, 48)
        sky = np.asarray(MiniScene.demo().sky)
        np.testing.assert_allclose(img[0, 0], sky, atol=0.05)
        # Floor rows show the two checker shades.
        floor = img[-4:, :, 0]
        assert floor.std() > 0.05

    def test_deterministic(self, tracer):
        a = tracer.render(32, 24)
        b = tracer.render(32, 24)
        np.testing.assert_allclose(a, b)

    def test_reflective_sphere_differs_from_matte(self):
        matte = PathTracer(
            MiniScene(spheres=[Sphere((0, 0, 3), 1.0, (0.8, 0.2, 0.2), 0.0)])
        ).render(48, 36)
        shiny = PathTracer(
            MiniScene(spheres=[Sphere((0, 0, 3), 1.0, (0.8, 0.2, 0.2), 0.9)])
        ).render(48, 36)
        assert np.abs(matte - shiny).max() > 0.1

    def test_shadows_darken_floor(self):
        scene = MiniScene(spheres=[Sphere((0.5, 0.5, 2.5), 0.9, (0.5, 0.5, 0.5))])
        img = PathTracer(scene).render(64, 48)
        floor = img[40:, :, :].mean(axis=2)
        assert floor.min() < 0.55 * floor.max()  # shadowed vs lit floor


class TestFoveatedRender:
    def test_ray_savings(self, tracer):
        img, fraction = tracer.render_foveated(64, 48, (32, 24), 8.0, 16.0)
        assert img.shape == (48, 64, 3)
        assert fraction < 0.6

    def test_foveal_region_matches_full_render(self, tracer):
        full = tracer.render(64, 48)
        fov, _ = tracer.render_foveated(64, 48, (32, 24), 8.0, 16.0)
        yy, xx = np.mgrid[0:48, 0:64]
        mask = (xx - 32) ** 2 + (yy - 24) ** 2 <= 8**2
        np.testing.assert_allclose(fov[mask], full[mask], atol=1e-9)

    def test_larger_fovea_costs_more_rays(self, tracer):
        _, small = tracer.render_foveated(64, 48, (32, 24), 5.0, 10.0)
        _, large = tracer.render_foveated(64, 48, (32, 24), 16.0, 24.0)
        assert large > small

    def test_sphere_validation(self):
        with pytest.raises(ValueError):
            Sphere((0, 0, 0), 0.0, (1, 1, 1))
