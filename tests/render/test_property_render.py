"""Property-based invariants of the foveation/rendering models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render import (
    RES_1080P,
    RenderPipeline,
    foveated_ray_fraction,
    region_pixels,
    scene_by_name,
)

errors = st.floats(min_value=0.0, max_value=40.0, allow_nan=False)


@settings(max_examples=50, deadline=None)
@given(errors)
def test_regions_partition_display(delta):
    regions = region_pixels(delta, RES_1080P)
    assert regions.foveal >= 0 and regions.inter >= 0 and regions.peripheral >= 0
    assert regions.total == pytest.approx(RES_1080P.pixels, rel=0.02)


@settings(max_examples=50, deadline=None)
@given(errors, errors)
def test_ray_fraction_monotone(a, b):
    lo, hi = sorted((a, b))
    assert foveated_ray_fraction(lo, RES_1080P) <= foveated_ray_fraction(
        hi, RES_1080P
    ) + 1e-9


@settings(max_examples=50, deadline=None)
@given(errors)
def test_foveated_never_exceeds_full(delta):
    pipeline = RenderPipeline()
    scene = scene_by_name("E")
    foveated = pipeline.foveated_latency(scene, RES_1080P, delta).total_s
    full = pipeline.full_latency(scene, RES_1080P)
    assert foveated <= full * 1.01


@settings(max_examples=50, deadline=None)
@given(errors)
def test_r1_r2_decomposition_consistent(delta):
    pipeline = RenderPipeline()
    scene = scene_by_name("C")
    breakdown = pipeline.foveated_latency(scene, RES_1080P, delta)
    assert breakdown.r1_s > 0
    assert breakdown.r2_s >= 0
    assert breakdown.total_s == pytest.approx(breakdown.r1_s + breakdown.r2_s)
