"""FleetRuntime: merged event order, conservation, snapshot roundtrip."""

from __future__ import annotations

import pytest

from repro.faults.injectors import ShardKill
from repro.recover import fleet_report_bytes
from repro.serve import ServeConfig
from repro.serve.fleet import FleetConfig, FleetRuntime, run_fleet


def fleet_config(**overrides) -> FleetConfig:
    serve = overrides.pop(
        "serve", ServeConfig(n_sessions=16, duration_s=0.4, n_workers=1, seed=0)
    )
    return FleetConfig(serve=serve, **overrides)


class TestBasicRun:
    def test_report_merges_all_shards(self):
        config = fleet_config(n_shards=3)
        report = run_fleet(config)
        assert len(report.sessions) == 16
        assert [s.session_id for s in report.sessions] == list(range(16))
        # Worker pools are per shard; the report aggregates them.
        assert report.n_workers == 3 * config.serve.n_workers
        section = report.shards
        assert section is not None
        assert len(section.shard_rows) == 3
        assert section.shards_serving == 3

    def test_every_frame_is_accounted(self):
        report = run_fleet(fleet_config(n_shards=4))
        runtime_sessions = FleetRuntime(fleet_config(n_shards=4)).sessions
        for stats in report.sessions:
            assert stats.total_frames == runtime_sessions[stats.session_id].n_frames

    def test_single_shard_fleet_matches_conservation(self):
        report = run_fleet(fleet_config(n_shards=1))
        assert sum(s.total_frames for s in report.sessions) == sum(
            s.completed + s.shed + s.pending for s in report.sessions
        )


class TestDeterminism:
    def test_two_runs_are_byte_identical(self):
        config = fleet_config(
            n_shards=4,
            kills=(ShardKill(shard_id=1, at_s=0.2),),
            migration_rate_hz=8.0,
        )
        a = run_fleet(config)
        b = run_fleet(config)
        assert fleet_report_bytes(a) == fleet_report_bytes(b)

    def test_control_events_precede_shard_events(self):
        # A kill scheduled at t=0 must be the very first popped event:
        # control reshapes the topology the data plane then runs on.
        config = fleet_config(
            n_shards=2, kills=(ShardKill(shard_id=0, at_s=0.0),)
        )
        runtime = FleetRuntime(config)
        runtime.start()
        time_s, kind, _ = runtime.peek_event()
        assert time_s == 0.0
        assert kind == 1  # _K_KILL; shard kinds start at the stride (4)

    def test_shard_event_kinds_are_namespaced(self):
        runtime = FleetRuntime(fleet_config(n_shards=2))
        runtime.start()
        _, kind, _ = runtime.peek_event()
        # No control events pending -> the head is a shard event, whose
        # journal kind encodes the shard id above the control range 1..3.
        assert kind >= 4


class TestLifecycle:
    def test_finish_requires_drained_heaps(self):
        runtime = FleetRuntime(fleet_config(n_shards=2))
        runtime.start()
        runtime.step()
        with pytest.raises(RuntimeError, match="events still pending"):
            runtime.finish()

    def test_start_is_idempotent(self):
        runtime = FleetRuntime(fleet_config(n_shards=2))
        runtime.start()
        events = runtime.peek_event()
        runtime.start()
        assert runtime.peek_event() == events
        assert len(runtime.shards) == 2


class TestSnapshotRoundtrip:
    def test_mid_run_state_dict_resumes_byte_identically(self):
        config = fleet_config(
            n_shards=3,
            kills=(ShardKill(shard_id=2, at_s=0.15),),
            migration_rate_hz=5.0,
        )
        reference = run_fleet(config)

        runtime = FleetRuntime(config)
        runtime.start()
        for _ in range(300):
            assert runtime.step()
        snapshot = runtime.state_dict()

        clone = FleetRuntime(config)
        clone.load_state(snapshot)
        assert clone.events_processed == runtime.events_processed
        while clone.step():
            pass
        assert fleet_report_bytes(clone.finish()) == fleet_report_bytes(reference)

    def test_snapshot_is_json_serializable(self):
        # The checkpoint store persists this dict as canonical JSON;
        # load_state accepts the decoded form (tuples come back as
        # lists), which the byte-identical resume tests exercise.
        import json

        runtime = FleetRuntime(fleet_config(n_shards=2))
        runtime.start()
        for _ in range(50):
            runtime.step()
        json.dumps(runtime.state_dict())
