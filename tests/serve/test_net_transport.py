"""Lossy fleet transport: exactly-once delivery and determinism.

The fleet's conservation ledger must close *exactly* while the
router<->shard channel drops, duplicates, delays, and partitions
messages.  These tests pin the protocol's message-accounting identity
(every transmission is dropped or delivered; every delivered copy is
applied once, deduped, dead-lettered, or discarded late), prove
exactly-once application by matching the dedupe counter against the
duplicate-injection counter, and byte-diff double runs.
"""

from __future__ import annotations

import pytest

from repro.recover import fleet_report_bytes
from repro.serve import ServeConfig
from repro.serve.fleet import (
    FleetConfig,
    FleetRuntime,
    FleetTransport,
    GraySlow,
    LinkProfile,
    NetConfig,
    PartitionWindow,
    run_fleet,
)
from repro.serve.fleet.transport import COUNTER_NAMES


def net_serve(n_sessions: int = 12, duration_s: float = 0.4) -> ServeConfig:
    return ServeConfig(
        n_sessions=n_sessions,
        duration_s=duration_s,
        n_workers=1,
        reuse_displacement_deg=0.05,
        queue_budget_deadlines=0.8,
        seed=0,
    )


def net_fleet(net: NetConfig, n_shards: int = 3, **serve_kwargs) -> FleetConfig:
    return FleetConfig(
        serve=net_serve(**serve_kwargs), n_shards=n_shards, net=net
    )


def assert_ledger_closes(config: FleetConfig, report) -> None:
    """Every generated frame sits in exactly one terminal bucket."""
    expected = {
        s.session_id: s.n_frames for s in FleetRuntime(config).sessions
    }
    assert len(report.sessions) == len(expected)
    for stats in report.sessions:
        buckets = (
            stats.completed + stats.shed + stats.pending
            + stats.lost_input + stats.lost_shard + stats.lost_net
        )
        assert stats.total_frames == expected[stats.session_id]
        assert buckets == expected[stats.session_id]


def assert_message_identity(counters: dict) -> None:
    """Every data copy put on the wire has exactly one fate.

    ``data_sent`` counts transmissions (first sends + retransmits); the
    link then either drops the copy or delivers it, and may mint one
    extra duplicate per surviving transmission.  Delivered copies are
    applied once, deduped, dead-lettered, or discarded late — nothing
    else exists.
    """
    delivered = (
        counters["data_sent"] - counters["data_dropped"]
        + counters["dup_injected"]
    )
    assert delivered == (
        counters["frames_applied"] + counters["frames_deduped"]
        + counters["dead_letters"] + counters["late_discards"]
    )


class TestCleanChannel:
    """A fault-free link must behave like the perfect channel."""

    def test_no_faults_means_no_protocol_noise(self):
        config = net_fleet(NetConfig(enabled=True))
        report = run_fleet(config)
        counters = report.net.counters
        assert counters["data_dropped"] == 0
        assert counters["retransmits"] == 0
        assert counters["dup_injected"] == 0
        assert counters["frames_deduped"] == 0
        assert counters["dead_letters"] == 0
        assert counters["exhausted_degraded"] == 0
        assert counters["exhausted_lost"] == 0
        assert counters["suspected"] == 0
        # Every frame travelled the wire exactly once and was acked.
        assert counters["frames_applied"] == report.total_frames
        assert counters["acked"] == counters["data_sent"]
        assert_ledger_closes(config, report)
        assert sum(s.lost_net for s in report.sessions) == 0

    def test_counter_keys_are_the_declared_set(self):
        report = run_fleet(net_fleet(NetConfig(enabled=True)))
        assert tuple(report.net.counters) == COUNTER_NAMES


class TestExactlyOnce:
    def test_dedupes_exactly_match_injected_duplicates(self):
        # Pure duplication, no drops, ack timeout far above the RTT: the
        # router never retransmits, so the *only* extra copies are the
        # link's injected duplicates — and every one must be deduped.
        net = NetConfig(
            enabled=True, seed=3,
            link=LinkProfile(dup_rate=0.5, delay_s=5e-4),
        )
        config = net_fleet(net)
        report = run_fleet(config)
        counters = report.net.counters
        assert counters["retransmits"] == 0
        assert counters["dup_injected"] > 0
        assert counters["frames_deduped"] == counters["dup_injected"]
        assert counters["frames_applied"] == report.total_frames
        assert_message_identity(counters)
        assert_ledger_closes(config, report)

    def test_retransmit_storm_still_applies_once(self):
        # Heavy drop + duplication + jitter reordering: many copies of
        # the same sequence number race to the shard; exactly one
        # applies, and the conservation ledger still closes.
        net = NetConfig(
            enabled=True, seed=7,
            link=LinkProfile(
                drop_rate=0.25, dup_rate=0.25, delay_s=5e-4, jitter_s=2e-3
            ),
            ack_timeout_s=4e-3, max_retransmits=8,
        )
        config = net_fleet(net)
        report = run_fleet(config)
        counters = report.net.counters
        assert counters["retransmits"] > 0
        assert counters["frames_deduped"] > 0
        assert counters["frames_applied"] == report.total_frames
        assert counters["exhausted_degraded"] == 0
        assert counters["exhausted_lost"] == 0
        assert_message_identity(counters)
        assert_ledger_closes(config, report)


class TestDeterminism:
    def test_double_run_is_byte_identical(self):
        net = NetConfig(
            enabled=True, seed=11,
            link=LinkProfile(
                drop_rate=0.15, dup_rate=0.15, delay_s=5e-4, jitter_s=1e-3
            ),
            partitions=(
                PartitionWindow(start_s=0.2, stop_s=0.3, shard_ids=(1,)),
            ),
            gray=(GraySlow(shard_id=0, start_s=0.1, stop_s=0.15),),
        )
        config = net_fleet(net)
        assert fleet_report_bytes(run_fleet(config)) == fleet_report_bytes(
            run_fleet(config)
        )

    def test_seed_changes_the_fault_pattern(self):
        def counters(seed):
            net = NetConfig(
                enabled=True, seed=seed,
                link=LinkProfile(drop_rate=0.2, dup_rate=0.2, delay_s=5e-4),
            )
            return run_fleet(net_fleet(net)).net.counters

        a, b = counters(0), counters(1)
        assert (a["data_dropped"], a["dup_injected"]) != (
            b["data_dropped"], b["dup_injected"]
        )


class TestExhaustion:
    def blackhole(self, on_exhaust: str) -> FleetConfig:
        # 100% drop: no frame ever reaches a shard, every retransmit
        # chain exhausts.  The huge phi threshold keeps the (equally
        # starved) failure detector quiet so the test isolates the
        # exhaustion policy.
        net = NetConfig(
            enabled=True,
            link=LinkProfile(drop_rate=1.0, delay_s=5e-4),
            ack_timeout_s=1e-3, max_retransmits=2,
            phi_threshold=1e9,
            on_exhaust=on_exhaust,
        )
        return net_fleet(net, duration_s=0.2, n_sessions=6)

    def test_degrade_policy_serves_every_frame_from_fallback(self):
        config = self.blackhole("degrade")
        report = run_fleet(config)
        counters = report.net.counters
        assert counters["frames_applied"] == 0
        assert counters["exhausted_degraded"] == report.total_frames
        assert sum(s.degraded for s in report.sessions) == report.total_frames
        assert sum(s.lost_net for s in report.sessions) == 0
        assert_ledger_closes(config, report)

    def test_drop_policy_accounts_every_frame_lost(self):
        config = self.blackhole("drop")
        report = run_fleet(config)
        counters = report.net.counters
        assert counters["exhausted_lost"] == report.total_frames
        assert sum(s.lost_net for s in report.sessions) == report.total_frames
        assert sum(s.completed for s in report.sessions) == 0
        assert_ledger_closes(config, report)

    def test_exhaustion_leaves_no_pending_envelopes(self):
        # finish() hard-fails on unresolved envelopes; a completing run
        # is itself the assertion, but make the invariant explicit.
        runtime = FleetRuntime(self.blackhole("degrade"))
        runtime.start()
        while runtime.step():
            pass
        assert runtime.transport.pending == {}
        runtime.finish()


class TestTransportStateRoundtrip:
    def test_state_survives_serialization_mid_flight(self):
        # Capture the transport mid-run (pending envelopes, dedupe
        # registry, detector estimates all live) and round-trip it.
        config = net_fleet(
            NetConfig(
                enabled=True, seed=5,
                link=LinkProfile(drop_rate=0.3, dup_rate=0.2, delay_s=5e-4),
                partitions=(
                    PartitionWindow(start_s=0.1, stop_s=0.3, shard_ids=(1,)),
                ),
            )
        )
        runtime = FleetRuntime(config)
        runtime.start()
        for _ in range(900):
            if not runtime.step():
                break
        state = runtime.transport.state_dict()
        clone = FleetTransport(config.net)
        clone.load_state(state)
        assert clone.state_dict() == state
        assert clone.pending == runtime.transport.pending
        assert clone.applied == runtime.transport.applied
        assert clone.suspected == runtime.transport.suspected
        assert clone.counters == runtime.transport.counters

    def test_loading_old_state_tolerates_missing_counters(self):
        transport = FleetTransport(NetConfig(enabled=True))
        state = transport.state_dict()
        state["counters"].pop("late_discards")
        clone = FleetTransport(NetConfig(enabled=True))
        clone.load_state(state)
        assert clone.counters["late_discards"] == 0


class TestConfigGuards:
    def test_net_rejects_live_migration(self):
        with pytest.raises(ValueError, match="does not compose with live"):
            net_fleet(NetConfig(enabled=True)).__class__(
                serve=net_serve(), n_shards=3,
                net=NetConfig(enabled=True), migration_rate_hz=4.0,
            )

    def test_partition_must_name_real_shards(self):
        net = NetConfig(
            enabled=True,
            partitions=(
                PartitionWindow(start_s=0.1, stop_s=0.2, shard_ids=(9,)),
            ),
        )
        with pytest.raises(ValueError, match="partition window names shard 9"):
            net_fleet(net, n_shards=3)

    def test_on_exhaust_is_validated(self):
        with pytest.raises(ValueError, match="on_exhaust"):
            NetConfig(enabled=True, on_exhaust="explode")
