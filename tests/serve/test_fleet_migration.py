"""Live session migration and the hysteretic rebalancer."""

from __future__ import annotations

from repro.serve import ServeConfig
from repro.serve.fleet import (
    FleetConfig,
    FleetRuntime,
    RebalancerConfig,
    SessionMigration,
    run_fleet,
)


def serve_template(**overrides) -> ServeConfig:
    defaults = dict(n_sessions=16, duration_s=0.4, n_workers=1, seed=0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def placement_of(config: FleetConfig) -> dict[int, int]:
    """session id -> initial shard, per the config's ring."""
    runtime = FleetRuntime(config)
    runtime.start()
    return dict(runtime._session_shard)


class TestPlannedMigration:
    def test_pinned_target_moves_the_session(self):
        base = FleetConfig(serve=serve_template(), n_shards=3)
        home = placement_of(base)
        target = next(s for s in range(3) if s != home[5])
        config = FleetConfig(
            serve=serve_template(),
            n_shards=3,
            migrations=(SessionMigration(at_s=0.2, session_id=5, to_shard=target),),
        )
        report = run_fleet(config)
        log = report.shards.log
        assert log.migrations == [
            {
                "at_s": 0.2, "session_id": 5, "from": home[5], "to": target,
                "moved_frames": log.migrations[0]["moved_frames"],
                "reason": "plan",
            }
        ]
        rows = {r["shard_id"]: r for r in report.shards.shard_rows}
        assert rows[home[5]]["migrations_out"] == 1
        assert rows[target]["migrations_in"] == 1
        # The moved session loses nothing: migration drains and requeues.
        moved = next(s for s in report.sessions if s.session_id == 5)
        assert moved.lost_shard == 0
        assert moved.total_frames == moved.completed + moved.shed + moved.pending

    def test_migration_to_current_shard_is_skipped(self):
        base = FleetConfig(serve=serve_template(), n_shards=3)
        home = placement_of(base)
        config = FleetConfig(
            serve=serve_template(),
            n_shards=3,
            migrations=(
                SessionMigration(at_s=0.2, session_id=5, to_shard=home[5]),
            ),
        )
        report = run_fleet(config)
        assert report.shards.log.migrations_skipped == 1
        assert report.shards.log.migrations == []

    def test_ring_picks_target_when_unpinned(self):
        base = FleetConfig(serve=serve_template(), n_shards=3)
        home = placement_of(base)
        config = FleetConfig(
            serve=serve_template(),
            n_shards=3,
            migrations=(SessionMigration(at_s=0.2, session_id=5),),
        )
        report = run_fleet(config)
        (entry,) = report.shards.log.migrations
        assert entry["from"] == home[5]
        assert entry["to"] != home[5]

    def test_seeded_migration_plan_is_reproducible(self):
        config = FleetConfig(
            serve=serve_template(), n_shards=4,
            migration_rate_hz=10.0, migration_seed=3,
        )
        a = run_fleet(config).shards.log.migrations
        b = run_fleet(config).shards.log.migrations
        assert a == b
        assert len(a) > 0


class TestRebalancer:
    def predict_heavy(self) -> FleetConfig:
        # Everything lands on the inference pool; two shards overload and
        # the autoscaler has headroom to spawn.
        return FleetConfig(
            serve=serve_template(
                n_sessions=32,
                duration_s=0.6,
                reuse_displacement_deg=0.05,
                queue_budget_deadlines=0.8,
            ),
            n_shards=2,
            rebalancer=RebalancerConfig(
                interval_s=0.1,
                p95_high_s=0.5e-3,
                p95_low_s=0.1e-3,
                cooldown_s=0.1,
            ),
        )

    def test_hot_fleet_spawns_shards_and_conserves_frames(self):
        report = run_fleet(self.predict_heavy())
        section = report.shards
        assert section.log.rebalance_spawns > 0
        assert section.shards_spawned == section.log.rebalance_spawns
        rows = section.shard_rows
        assert len(rows) == 2 + section.log.rebalance_spawns
        # Migration accounting balances across the whole fleet.
        assert sum(r["migrations_out"] for r in rows) == sum(
            r["migrations_in"] for r in rows
        )
        # finish() enforces the ledger; spot-check the totals anyway.
        total = sum(s.total_frames for s in report.sessions)
        assert total == sum(
            s.completed + s.shed + s.pending + s.lost_input + s.lost_shard
            for s in report.sessions
        )

    def test_disabled_rebalancer_never_spawns(self):
        config = FleetConfig(serve=serve_template(), n_shards=2)
        report = run_fleet(config)
        assert report.shards.log.rebalance_spawns == 0
        assert report.shards.log.rebalance_drains == 0
        assert len(report.shards.shard_rows) == 2
