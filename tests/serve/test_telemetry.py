"""SessionStats / FleetReport accounting and formatting."""

import numpy as np
import pytest

from repro.serve import ServeConfig, serve_fleet
from repro.serve.telemetry import FleetReport, SessionStats, format_fleet_report


def make_stats(session_id=0):
    stats = SessionStats(session_id)
    stats.record("predict", 0.004, deadline_s=0.01)
    stats.record("reuse", 0.0001, deadline_s=0.01)
    stats.record("predict", 0.015, deadline_s=0.01)  # miss
    stats.record_degraded(0.0001, deadline_s=0.01)
    stats.record_shed("predict")
    return stats


class TestSessionStats:
    def test_counts_and_rates(self):
        stats = make_stats()
        assert stats.completed == 4
        assert stats.total_frames == 5
        assert stats.misses == 1
        assert stats.miss_rate == pytest.approx(0.25)
        assert stats.degraded == 1
        assert stats.shed == 1
        # degraded frames land in their own bucket (they are stale-gaze
        # serves, not true reuse hits); shed keeps its original path
        assert stats.counts == {
            "saccade": 0, "reuse": 1, "predict": 3, "degraded": 1,
        }

    def test_counts_invariant(self):
        # Every frame is in exactly one path bucket: degraded frames must
        # not double-count (once as degraded, once as reuse).
        stats = make_stats()
        stats.record_pending("predict")
        assert sum(stats.counts.values()) == stats.completed + stats.shed + stats.pending

    def test_percentiles_need_samples(self):
        empty = SessionStats(7)
        with pytest.raises(ValueError, match="session 7"):
            empty.percentile_ms(50)
        assert empty.miss_rate == 0.0

    def test_percentile_in_ms(self):
        stats = SessionStats(0)
        stats.record("reuse", 0.002, deadline_s=0.01)
        assert stats.percentile_ms(50) == pytest.approx(2.0)


class TestFleetReport:
    @pytest.fixture()
    def report(self):
        return FleetReport(
            sessions=[make_stats(0), make_stats(1)],
            duration_s=2.0,
            deadline_s=0.01,
            batch_occupancy={1: 2, 4: 1},
            worker_utilization=0.5,
            mean_batch_size=2.0,
            n_workers=2,
            max_batch=8,
        )

    def test_aggregates(self, report):
        assert report.completed_frames == 8
        assert report.total_frames == 10
        assert report.throughput_fps == pytest.approx(4.0)
        # per session: 3 predict counted, 1 shed -> 2 fresh predictions
        assert report.served_predict_frames == 4
        assert report.predict_goodput_fps == pytest.approx(2.0)
        assert report.deadline_miss_rate == pytest.approx(0.25)
        assert report.shed_rate == pytest.approx(0.2)
        assert report.degrade_rate == pytest.approx(0.2)

    def test_percentiles_merge_sessions(self, report):
        assert report.latency_percentile_ms(100) == pytest.approx(15.0)
        empty = FleetReport(
            sessions=[], duration_s=1.0, deadline_s=0.01, batch_occupancy={},
            worker_utilization=0.0, mean_batch_size=0.0, n_workers=1, max_batch=1,
        )
        with pytest.raises(ValueError, match="no completed frames"):
            empty.latency_percentile_ms(50)

    def test_summary_keys(self, report):
        summary = report.summary()
        for key in ("throughput_fps", "predict_goodput_fps", "p50_ms",
                    "p95_ms", "p99_ms", "miss_rate", "shed_rate",
                    "degrade_rate", "worker_utilization", "mean_batch"):
            assert key in summary
            assert np.isfinite(summary[key])

    def test_format_contains_key_lines(self, report):
        text = format_fleet_report(report)
        assert "2 sessions" in text
        assert "Batch occupancy" in text
        assert "Session" in text and "p99(ms)" in text

    def test_format_truncates_session_rows(self):
        report = serve_fleet(ServeConfig(n_sessions=10, duration_s=0.2, seed=5))
        text = format_fleet_report(report, max_session_rows=3)
        assert "and 7 more sessions" in text
