"""Detection-driven failover: suspicion, heal bounce-back, conservation.

Under ``--net`` a shard kill is never announced to the router — the
phi-accrual detector must *discover* the silence from missing heartbeats
and only then re-home the dead shard's sessions.  Partitions produce
false suspicions that must heal (shard rejoins the ring, its sessions
bounce back) without ever being recorded as failovers.  Throughout, the
fleet-wide frame ledger closes exactly: no frame is both lost and
completed.
"""

from __future__ import annotations

import pytest

from repro.faults.injectors import ShardKill
from repro.recover import fleet_report_bytes
from repro.serve import ServeConfig
from repro.serve.fleet import (
    FleetConfig,
    FleetRuntime,
    LinkProfile,
    NetConfig,
    PartitionWindow,
    run_fleet,
)


def serve(n_sessions: int = 24, duration_s: float = 0.6) -> ServeConfig:
    return ServeConfig(
        n_sessions=n_sessions,
        duration_s=duration_s,
        n_workers=1,
        reuse_displacement_deg=0.05,
        queue_budget_deadlines=0.8,
        seed=0,
    )


def assert_ledger_closes(config: FleetConfig, report) -> None:
    expected = {
        s.session_id: s.n_frames for s in FleetRuntime(config).sessions
    }
    for stats in report.sessions:
        buckets = (
            stats.completed + stats.shed + stats.pending
            + stats.lost_input + stats.lost_shard + stats.lost_net
        )
        assert stats.total_frames == expected[stats.session_id]
        assert buckets == expected[stats.session_id]


class TestDetectionDrivenKill:
    KILL_AT = 0.3

    def config(self) -> FleetConfig:
        return FleetConfig(
            serve=serve(),
            n_shards=3,
            kills=(ShardKill(shard_id=2, at_s=self.KILL_AT),),
            net=NetConfig(enabled=True, seed=1),
        )

    def test_silence_is_the_only_failure_signal(self):
        config = self.config()
        report = run_fleet(config)
        net = report.net
        assert net.counters["suspected"] == 1
        assert net.counters["false_suspects"] == 0
        assert net.counters["heals"] == 0
        (suspect,) = [t for t in net.transitions if t["kind"] == "suspect"]
        assert suspect["shard"] == 2
        assert suspect["dead"] is True
        # Detection cannot precede the kill, and phi-accrual bounds the
        # latency: silence of phi_threshold mean intervals plus at most
        # one detector period (mean tracks ~heartbeat_s on a clean link).
        assert suspect["at_s"] > self.KILL_AT
        (latency,) = net.detect_latencies
        assert latency == pytest.approx(suspect["at_s"] - self.KILL_AT)
        bound = (
            config.net.phi_threshold * config.net.heartbeat_s
            + config.net.heartbeat_s + config.net.detect_every_s
        )
        assert 0.0 < latency <= bound
        assert net.summary()["failover_detect_s"] == pytest.approx(latency)

    def test_failover_rehomes_and_conserves_every_frame(self):
        config = self.config()
        report = run_fleet(config)
        # The detector-driven failover is a real one: recorded in the
        # fleet log with the suspicion instant, not the kill instant.
        (failover,) = report.shards.log.failovers
        assert failover["shard_id"] == 2
        assert failover["at_s"] > self.KILL_AT
        assert failover["rehomed_sessions"] > 0
        # Frames in flight at the kill re-route via retransmission, so a
        # silent kill loses nothing: zero frames lost, zero double-counts.
        assert failover["lost_frames"] == 0
        assert sum(s.lost_shard for s in report.sessions) == 0
        assert sum(s.lost_net for s in report.sessions) == 0
        assert_ledger_closes(config, report)
        # Exactly-once under failover: dedupes == injected duplicates
        # (clean link: retransmit copies of unacked frames are the only
        # other source, and the dead-shard copies dead-letter instead).
        counters = report.net.counters
        assert counters["frames_deduped"] + counters["dead_letters"] >= 0
        assert counters["frames_applied"] == sum(
            s.completed + s.shed + s.pending for s in report.sessions
        ) - counters["exhausted_degraded"]

    def test_detection_failover_is_deterministic(self):
        config = self.config()
        assert fleet_report_bytes(run_fleet(config)) == fleet_report_bytes(
            run_fleet(config)
        )


class TestFalseSuspicionHeals:
    def config(self) -> FleetConfig:
        return FleetConfig(
            serve=serve(),
            n_shards=3,
            net=NetConfig(
                enabled=True, seed=1,
                partitions=(
                    PartitionWindow(start_s=0.2, stop_s=0.35, shard_ids=(1,)),
                ),
            ),
        )

    def test_partition_suspicion_bounces_back_on_heal(self):
        config = self.config()
        report = run_fleet(config)
        net = report.net
        assert net.counters["suspected"] == 1
        assert net.counters["false_suspects"] == 1
        assert net.counters["heals"] == 1
        assert net.counters["heal_bounce_sessions"] > 0
        kinds = [(t["kind"], t["shard"]) for t in net.transitions]
        assert kinds == [("suspect", 1), ("heal", 1)]
        suspect, heal = net.transitions
        assert suspect["dead"] is False
        # The heal lands with the first heartbeat after the partition
        # lifts; the suspicion must fall inside the window.
        assert 0.2 < suspect["at_s"] < 0.35
        assert heal["at_s"] >= 0.35
        # A false suspicion is *not* a failover: nothing died, nothing
        # was lost, and the fleet log stays clean.
        assert report.shards.log.failovers == []
        assert net.detect_latencies == []
        assert sum(s.lost_shard for s in report.sessions) == 0
        assert report.shards.shards_serving == 3
        assert_ledger_closes(config, report)

    def test_bounced_sessions_return_to_ring_placement(self):
        config = self.config()
        runtime = FleetRuntime(config)
        runtime.start()
        home = dict(runtime._session_shard)
        while runtime.step():
            pass
        # After the heal every session is back where the full ring
        # routes it — the displacement ledger is empty.
        assert runtime.transport.displaced == {}
        assert runtime._session_shard == home
        runtime.finish()

    def test_heal_is_deterministic(self):
        config = self.config()
        assert fleet_report_bytes(run_fleet(config)) == fleet_report_bytes(
            run_fleet(config)
        )


class TestKillUnderLossyLink:
    def test_failover_with_drops_and_dups_closes_the_ledger(self):
        config = FleetConfig(
            serve=serve(),
            n_shards=3,
            kills=(ShardKill(shard_id=1, at_s=0.25),),
            net=NetConfig(
                enabled=True, seed=9,
                link=LinkProfile(
                    drop_rate=0.15, dup_rate=0.15, delay_s=5e-4, jitter_s=1e-3
                ),
                ack_timeout_s=4e-3, max_retransmits=8,
            ),
        )
        report = run_fleet(config)
        counters = report.net.counters
        # Message identity under every fault at once: each transmission
        # is dropped or delivered, each surviving transmission mints at
        # most one duplicate, each delivered copy has exactly one fate.
        delivered = (
            counters["data_sent"] - counters["data_dropped"]
            + counters["dup_injected"]
        )
        assert delivered == (
            counters["frames_applied"] + counters["frames_deduped"]
            + counters["dead_letters"] + counters["late_discards"]
        )
        assert counters["dead_letters"] > 0  # copies raced the kill
        # Frames *applied* to the shard and still queued at the kill
        # instant die with it — bounded loss, recorded per session and
        # matched exactly by the failover log entry.  Unacked envelopes
        # instead reroute via retransmission and are never lost.
        (failover,) = report.shards.log.failovers
        assert failover["shard_id"] == 1
        assert failover["lost_frames"] == sum(
            s.lost_shard for s in report.sessions
        )
        assert_ledger_closes(config, report)
