"""End-to-end: serving loop driving real batched POLOViT inference.

Tiny scale — a couple of sessions, a fraction of a second — but the full
path: Algorithm-1 skew decides which frames reach the pool, the batcher
groups them across sessions, and the inference hook runs one vectorized
``PoloViT.predict`` per dispatch.  Batched predictions must match running
the model per-sample on the same frames.
"""

import numpy as np
import pytest

from repro.core import GazeViTConfig, PoloViT
from repro.serve import ServeConfig, serve_fleet


@pytest.fixture(scope="module")
def vit():
    return PoloViT(GazeViTConfig.compact(), seed=0)


def frame_image(session_id: int, frame_index: int, size: int = 72) -> np.ndarray:
    rng = np.random.default_rng(session_id * 100003 + frame_index)
    return rng.uniform(size=(size, size))


class TestServeWithRealModel:
    def test_batched_serving_matches_per_sample_inference(self, vit):
        config = ServeConfig(n_sessions=3, duration_s=0.15, max_batch=4, seed=6)

        def inference(batch):
            images = np.stack(
                [frame_image(r.session_id, r.frame_index) for r in batch]
            )
            return vit.predict(images, prune=False)

        report = serve_fleet(config, inference=inference)
        assert report.predictions, "no predict frames were served"
        for (sid, frame), gaze in report.predictions.items():
            solo = vit.predict(frame_image(sid, frame)[None], prune=False)[0]
            np.testing.assert_allclose(gaze, solo, atol=1e-6)

    def test_pruned_batched_serving_stays_close(self, vit):
        config = ServeConfig(n_sessions=2, duration_s=0.1, max_batch=4, seed=7)
        vit.set_prune_threshold(0.04)
        try:
            def inference(batch):
                images = np.stack(
                    [frame_image(r.session_id, r.frame_index) for r in batch]
                )
                return vit.predict(images, prune=True)

            report = serve_fleet(config, inference=inference)
            assert report.predictions
            for (sid, frame), gaze in report.predictions.items():
                solo = vit.predict(frame_image(sid, frame)[None], prune=True)[0]
                np.testing.assert_allclose(gaze, solo, atol=1e-6)
        finally:
            vit.set_prune_threshold(None)
