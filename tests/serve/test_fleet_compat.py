"""Backward compatibility: ``FleetRuntime.restore`` on old checkpoints.

Before the sharded fleet existed, ``FleetRuntime`` was an alias of
``ServeRuntime`` and call sites (plus on-disk checkpoints from PRs 4-7)
were written against it.  The contract the real class keeps:
``FleetRuntime.restore(dir)`` warm-restarts *any* checkpoint — an old
single-runtime ("serve"/"chaos") checkpoint restores to its original
runtime class and completes byte-identically.
"""

from __future__ import annotations

import pytest

from repro.faults import ProcessKill, SimulatedCrash
from repro.recover import fleet_report_bytes, run_with_checkpoints
from repro.serve import (
    FleetRuntime,
    ServeConfig,
    ServeRuntime,
    SingleShardRuntime,
)
from repro.serve.fleet import FleetConfig


def old_style_checkpoint(tmp_path, config: ServeConfig):
    """Write a checkpoint exactly as the pre-fleet serve CLI did."""
    directory = tmp_path / "old"
    with pytest.raises(SimulatedCrash):
        run_with_checkpoints(
            ServeRuntime(config), directory, every=50,
            kill=ProcessKill(at_event=120),
        )
    return directory


class TestOldCheckpointCompat:
    def test_restore_returns_the_original_runtime_class(self, tmp_path):
        config = ServeConfig(n_sessions=6, duration_s=0.4, n_workers=2, seed=1)
        directory = old_style_checkpoint(tmp_path, config)
        runtime = FleetRuntime.restore(directory)
        assert isinstance(runtime, ServeRuntime)
        assert not isinstance(runtime, FleetRuntime)

    def test_restored_old_run_completes_byte_identically(self, tmp_path):
        config = ServeConfig(n_sessions=6, duration_s=0.4, n_workers=2, seed=1)
        directory = old_style_checkpoint(tmp_path, config)
        runtime = FleetRuntime.restore(directory)
        while runtime.step():
            pass
        reference = ServeRuntime(config).run()
        assert fleet_report_bytes(runtime.finish()) == fleet_report_bytes(
            reference
        )

    def test_fleet_checkpoint_restores_to_the_fleet(self, tmp_path):
        config = FleetConfig(
            serve=ServeConfig(n_sessions=8, duration_s=0.3, seed=0), n_shards=2
        )
        directory = tmp_path / "fleet"
        with pytest.raises(SimulatedCrash):
            run_with_checkpoints(
                FleetRuntime(config), directory, every=50,
                kill=ProcessKill(at_event=120),
            )
        runtime = FleetRuntime.restore(directory)
        assert isinstance(runtime, FleetRuntime)


class TestSingleShardAlias:
    def test_single_shard_runtime_is_the_serve_loop(self):
        assert SingleShardRuntime is ServeRuntime

    def test_fleet_runtime_is_no_longer_the_alias(self):
        assert FleetRuntime is not ServeRuntime
