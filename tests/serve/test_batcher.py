"""DynamicBatcher size-or-timeout policy."""

import pytest

from repro.serve import DynamicBatcher, FrameRequest


def request(seq, arrival_s=0.0, session_id=0):
    return FrameRequest(
        session_id=session_id,
        frame_index=seq,
        arrival_s=arrival_s,
        deadline_s=arrival_s + 0.01,
        path="predict",
        seq=seq,
    )


class TestDynamicBatcher:
    def test_empty_queue_never_ready(self):
        batcher = DynamicBatcher(max_batch=4, window_s=1e-3)
        assert not batcher.ready(now=100.0)
        assert batcher.next_deadline_s() is None
        assert batcher.take() == []

    def test_full_batch_dispatches_immediately(self):
        batcher = DynamicBatcher(max_batch=2, window_s=1.0)
        batcher.enqueue(request(0, arrival_s=0.0))
        assert not batcher.ready(now=0.0)
        batcher.enqueue(request(1, arrival_s=0.0))
        assert batcher.ready(now=0.0)

    def test_window_expiry_dispatches_partial(self):
        batcher = DynamicBatcher(max_batch=8, window_s=2e-3)
        batcher.enqueue(request(0, arrival_s=1.0))
        assert not batcher.ready(now=1.0)
        assert batcher.next_deadline_s() == pytest.approx(1.002)
        assert batcher.ready(now=1.002)

    def test_zero_window_is_greedy(self):
        batcher = DynamicBatcher(max_batch=8, window_s=0.0)
        batcher.enqueue(request(0, arrival_s=5.0))
        assert batcher.ready(now=5.0)

    def test_take_is_fifo_and_capped(self):
        batcher = DynamicBatcher(max_batch=2, window_s=0.0)
        for i in range(3):
            batcher.enqueue(request(i))
        batch = batcher.take()
        assert [r.seq for r in batch] == [0, 1]
        assert len(batcher) == 1
        assert [r.seq for r in batcher.take()] == [2]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError, match="max_batch"):
            DynamicBatcher(max_batch=0)
        with pytest.raises(ValueError, match="window_s"):
            DynamicBatcher(max_batch=1, window_s=-1.0)
