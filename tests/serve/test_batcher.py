"""DynamicBatcher size-or-timeout policy."""

import pytest

from repro.serve import DynamicBatcher, FrameRequest


def request(seq, arrival_s=0.0, session_id=0):
    return FrameRequest(
        session_id=session_id,
        frame_index=seq,
        arrival_s=arrival_s,
        deadline_s=arrival_s + 0.01,
        path="predict",
        seq=seq,
    )


class TestDynamicBatcher:
    def test_empty_queue_never_ready(self):
        batcher = DynamicBatcher(max_batch=4, window_s=1e-3)
        assert not batcher.ready(now=100.0)
        assert batcher.next_deadline_s() is None
        assert batcher.take() == []

    def test_full_batch_dispatches_immediately(self):
        batcher = DynamicBatcher(max_batch=2, window_s=1.0)
        batcher.enqueue(request(0, arrival_s=0.0))
        assert not batcher.ready(now=0.0)
        batcher.enqueue(request(1, arrival_s=0.0))
        assert batcher.ready(now=0.0)

    def test_window_expiry_dispatches_partial(self):
        batcher = DynamicBatcher(max_batch=8, window_s=2e-3)
        batcher.enqueue(request(0, arrival_s=1.0))
        assert not batcher.ready(now=1.0)
        assert batcher.next_deadline_s() == pytest.approx(1.002)
        assert batcher.ready(now=1.002)

    def test_zero_window_is_greedy(self):
        batcher = DynamicBatcher(max_batch=8, window_s=0.0)
        batcher.enqueue(request(0, arrival_s=5.0))
        assert batcher.ready(now=5.0)

    def test_take_is_fifo_and_capped(self):
        batcher = DynamicBatcher(max_batch=2, window_s=0.0)
        for i in range(3):
            batcher.enqueue(request(i))
        batch = batcher.take()
        assert [r.seq for r in batch] == [0, 1]
        assert len(batcher) == 1
        assert [r.seq for r in batcher.take()] == [2]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError, match="max_batch"):
            DynamicBatcher(max_batch=0)
        with pytest.raises(ValueError, match="window_s"):
            DynamicBatcher(max_batch=1, window_s=-1.0)


class TestBatcherAccounting:
    def test_ledger_tracks_enqueue_requeue_take(self):
        batcher = DynamicBatcher(max_batch=2, window_s=0.0)
        for i in range(3):
            batcher.enqueue(request(i))
        taken = batcher.take()
        batcher.requeue(taken)  # the batch failed, frames come back
        assert batcher.admitted_total == 3
        assert batcher.requeued_total == 2
        assert batcher.taken_total == 2
        batcher.check_accounting()  # 3 + 2 == 2 + 3 pending

    def test_requeued_frames_keep_fifo_order_and_dispatch_promptly(self):
        batcher = DynamicBatcher(max_batch=2, window_s=5.0)
        for i in range(3):
            batcher.enqueue(request(i, arrival_s=0.0))
        failed = batcher.take()  # [0, 1]
        batcher.requeue(failed)
        # Queue is now [2, 0, 1]; the old arrival time of frame 2 makes
        # the window rule fire immediately despite the long window.
        assert batcher.ready(now=10.0)
        assert [r.seq for r in batcher.take()] == [2, 0]
        assert [r.seq for r in batcher.take()] == [1]

    def test_drain_returns_leftovers_and_closes_ledger(self):
        batcher = DynamicBatcher(max_batch=8, window_s=1.0)
        for i in range(3):
            batcher.enqueue(request(i))
        leftovers = batcher.drain()
        assert [r.seq for r in leftovers] == [0, 1, 2]
        assert len(batcher) == 0
        batcher.check_accounting()  # admitted 3 == taken 3 + pending 0

    def test_leak_is_detected(self):
        batcher = DynamicBatcher(max_batch=2, window_s=0.0)
        batcher.enqueue(request(0))
        batcher._queue.clear()  # simulate a silent drop
        with pytest.raises(RuntimeError, match="batcher leak"):
            batcher.check_accounting()
