"""Discrete-event serving loop: determinism, bypass, admission, batching."""

import numpy as np
import pytest

from repro.serve import (
    AdmissionPolicy,
    BatchServiceModel,
    ServeConfig,
    ServeRuntime,
    build_fleet,
    serve_fleet,
)

#: Light load: mostly reuse frames, pool rarely contended.
LIGHT = ServeConfig(n_sessions=8, duration_s=0.5, n_workers=2, seed=1)

#: Heavy load: tiny reuse threshold makes almost every frame predict-path,
#: far beyond what one worker serves sequentially.
HEAVY = ServeConfig(
    n_sessions=24,
    duration_s=0.5,
    n_workers=1,
    reuse_displacement_deg=0.05,
    queue_budget_deadlines=0.8,
    seed=1,
)


class TestDeterminism:
    def test_identical_runs_identical_reports(self):
        a = serve_fleet(HEAVY)
        b = serve_fleet(HEAVY)
        assert a.summary() == b.summary()
        for sa, sb in zip(a.sessions, b.sessions):
            assert sa.latencies_s == sb.latencies_s
            assert sa.counts == sb.counts

    def test_accounting_is_conservative(self):
        report = serve_fleet(HEAVY)
        expected = HEAVY.n_sessions * HEAVY.frames_per_session
        assert report.total_frames == expected
        assert report.completed_frames + sum(s.shed for s in report.sessions) == expected


class TestBypassPaths:
    def test_bypass_frames_never_touch_the_pool(self):
        config = ServeConfig(
            n_sessions=4, duration_s=0.5, reuse_displacement_deg=1e9, seed=2
        )
        fleet = build_fleet(config)
        report = serve_fleet(config, fleet=fleet)
        # With an infinite reuse threshold the only predict frames are the
        # per-session cold starts; everything else bypasses the batcher.
        n_predict = sum(s.counts["predict"] for s in report.sessions)
        assert n_predict == sum(
             sum(1 for d in sess.decisions if d == "predict") for sess in fleet
        )
        assert sum(report.batch_occupancy.values()) <= n_predict
        dispatched = sum(b * c for b, c in report.batch_occupancy.items())
        assert dispatched == n_predict

    def test_bypass_latency_constants(self):
        report = serve_fleet(LIGHT)
        reuse_lat = LIGHT.reuse_bypass_s
        for stats in report.sessions:
            # Most frames are reuse/saccade: their latencies equal the
            # configured bypass constants exactly.
            bypassed = [
                lat for lat in stats.latencies_s
                if abs(lat - reuse_lat) < 1e-12
                or abs(lat - LIGHT.saccade_bypass_s) < 1e-12
            ]
            assert len(bypassed) >= stats.counts["reuse"]


class TestAdmission:
    def test_degrade_caps_latency_tail(self):
        report = serve_fleet(HEAVY)
        assert report.degrade_rate > 0.05
        assert report.shed_rate == 0.0
        assert report.deadline_miss_rate < 0.05

    def test_shed_drops_frames(self):
        config = ServeConfig(
            n_sessions=HEAVY.n_sessions,
            duration_s=HEAVY.duration_s,
            n_workers=HEAVY.n_workers,
            reuse_displacement_deg=HEAVY.reuse_displacement_deg,
            queue_budget_deadlines=HEAVY.queue_budget_deadlines,
            admission=AdmissionPolicy.SHED,
            seed=HEAVY.seed,
        )
        report = serve_fleet(config)
        assert report.shed_rate > 0.05
        assert report.degrade_rate == 0.0
        assert report.completed_frames < report.total_frames

    def test_always_admits_everything_with_long_tail(self):
        config = ServeConfig(
            n_sessions=HEAVY.n_sessions,
            duration_s=HEAVY.duration_s,
            n_workers=HEAVY.n_workers,
            reuse_displacement_deg=HEAVY.reuse_displacement_deg,
            admission=AdmissionPolicy.ALWAYS,
            seed=HEAVY.seed,
        )
        report = serve_fleet(config)
        assert report.shed_rate == 0.0
        assert report.degrade_rate == 0.0
        degraded = serve_fleet(HEAVY)
        assert report.latency_percentile_ms(99) > degraded.latency_percentile_ms(99)


class TestBatching:
    def test_contention_fills_batches(self):
        report = serve_fleet(HEAVY)
        assert report.mean_batch_size > 1.5
        assert max(report.batch_occupancy) <= HEAVY.max_batch

    def test_sequential_baseline_only_singleton_batches(self):
        report = serve_fleet(HEAVY.sequential_baseline())
        assert set(report.batch_occupancy) == {1}
        assert report.mean_batch_size == 1.0

    def test_batching_beats_sequential_at_equal_miss_rate(self):
        """The tentpole claim: same fleet, same pool, same admission budget —
        cross-session batching serves strictly more fresh predictions."""
        fleet = build_fleet(HEAVY)
        batched = serve_fleet(HEAVY, fleet=fleet)
        sequential = serve_fleet(HEAVY.sequential_baseline(), fleet=fleet)
        assert batched.predict_goodput_fps > sequential.predict_goodput_fps
        assert batched.deadline_miss_rate <= sequential.deadline_miss_rate + 1e-9

    def test_custom_service_model(self):
        slow = BatchServiceModel(fixed_s=8e-3, per_sample_s=1e-3)
        report = serve_fleet(HEAVY, service=slow)
        fast = serve_fleet(HEAVY)
        assert report.predict_goodput_fps < fast.predict_goodput_fps


class TestInferenceHook:
    def test_hook_shapes_and_keys(self):
        calls = []

        def fake_inference(batch):
            calls.append(len(batch))
            return np.zeros((len(batch), 2))

        config = ServeConfig(n_sessions=4, duration_s=0.2, seed=4)
        report = serve_fleet(config, inference=fake_inference)
        assert report.predictions is not None
        n_served = sum(s.counts["predict"] - s.shed for s in report.sessions)
        assert len(report.predictions) == n_served == sum(calls)
        for (sid, frame), gaze in report.predictions.items():
            assert 0 <= sid < 4
            assert gaze.shape == (2,)

    def test_hook_bad_shape_rejected(self):
        config = ServeConfig(n_sessions=2, duration_s=0.2, seed=4)
        with pytest.raises(ValueError, match="inference hook"):
            serve_fleet(config, inference=lambda batch: np.zeros((1, 3)))

    def test_no_hook_no_predictions(self):
        assert serve_fleet(LIGHT).predictions is None


class TestRuntimeValidation:
    def test_fleet_size_mismatch(self):
        fleet = build_fleet(ServeConfig(n_sessions=2, duration_s=0.1))
        with pytest.raises(ValueError, match="fleet"):
            ServeRuntime(ServeConfig(n_sessions=3, duration_s=0.1), fleet=fleet)
