"""Fleet construction and global request ordering."""

import numpy as np
import pytest

from repro.serve import ServeConfig, build_fleet, fleet_requests


@pytest.fixture(scope="module")
def config():
    return ServeConfig(n_sessions=4, duration_s=0.5, fps=100.0, seed=3)


@pytest.fixture(scope="module")
def fleet(config):
    return build_fleet(config)


class TestBuildFleet:
    def test_fleet_shape(self, config, fleet):
        assert len(fleet) == 4
        for i, session in enumerate(fleet):
            assert session.session_id == i
            assert session.n_frames == config.frames_per_session
            assert len(session.decisions) == session.n_frames
            assert session.start_s == pytest.approx(i * config.stagger_s)

    def test_sessions_are_independent_traces(self, fleet):
        assert not np.allclose(fleet[0].track.gaze_deg, fleet[1].track.gaze_deg)

    def test_decisions_use_algorithm1_vocabulary(self, fleet):
        for session in fleet:
            assert set(session.decisions) <= {"saccade", "reuse", "predict"}

    def test_deterministic_rebuild(self, config, fleet):
        again = build_fleet(config)
        for a, b in zip(fleet, again):
            np.testing.assert_array_equal(a.track.gaze_deg, b.track.gaze_deg)
            assert a.decisions == b.decisions

    def test_arrival_clock(self, fleet):
        session = fleet[2]
        assert session.arrival_s(0) == pytest.approx(session.start_s)
        assert session.arrival_s(10) == pytest.approx(session.start_s + 0.1)


class TestFleetRequests:
    def test_global_arrival_order_and_seq(self, config, fleet):
        requests = fleet_requests(fleet, config.deadline_s)
        assert len(requests) == 4 * config.frames_per_session
        arrivals = [r.arrival_s for r in requests]
        assert arrivals == sorted(arrivals)
        assert [r.seq for r in requests] == list(range(len(requests)))

    def test_absolute_deadlines(self, config, fleet):
        for r in fleet_requests(fleet, config.deadline_s)[:50]:
            assert r.deadline_s == pytest.approx(r.arrival_s + config.deadline_s)

    def test_paths_match_session_decisions(self, config, fleet):
        for r in fleet_requests(fleet, config.deadline_s)[:200]:
            assert r.path == fleet[r.session_id].decisions[r.frame_index]
