"""Consistent-hash ring: determinism, bounded remap, routing rules."""

from __future__ import annotations

import pytest

from repro.serve.fleet import HashRing

SESSIONS = list(range(200))


def build_ring(shards=(0, 1, 2, 3), vnodes: int = 64, seed: int = 0) -> HashRing:
    ring = HashRing(vnodes=vnodes, seed=seed)
    for shard in shards:
        ring.add(shard)
    return ring


class TestDeterminism:
    def test_same_seed_routes_identically(self):
        a = build_ring()
        b = build_ring()
        assert [a.route(s) for s in SESSIONS] == [b.route(s) for s in SESSIONS]

    def test_routing_is_insertion_order_independent(self):
        a = build_ring(shards=(0, 1, 2, 3))
        b = build_ring(shards=(3, 1, 0, 2))
        assert [a.route(s) for s in SESSIONS] == [b.route(s) for s in SESSIONS]

    def test_different_seed_changes_placement(self):
        a = build_ring(seed=0)
        b = build_ring(seed=1)
        assert [a.route(s) for s in SESSIONS] != [b.route(s) for s in SESSIONS]

    def test_state_roundtrip(self):
        ring = build_ring(shards=(0, 2, 5), vnodes=16, seed=7)
        clone = HashRing.from_state(ring.state_dict())
        assert clone.nodes == ring.nodes
        assert [clone.route(s) for s in SESSIONS] == [
            ring.route(s) for s in SESSIONS
        ]


class TestBoundedRemap:
    def test_removal_only_remaps_the_dead_shards_sessions(self):
        ring = build_ring()
        before = {s: ring.route(s) for s in SESSIONS}
        ring.remove(2)
        for session, owner in before.items():
            if owner != 2:
                assert ring.route(session) == owner
            else:
                assert ring.route(session) != 2

    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize(
        "shards,removals",
        [
            ((0, 1, 2, 3), (2,)),
            ((0, 1, 2, 3), (2, 0)),
            ((0, 1, 2, 3, 4, 5), (1, 4, 5)),
            ((0, 1, 2, 3, 4, 5, 6, 7), (7, 0, 3, 5)),
        ],
    )
    def test_multi_removal_moves_only_orphaned_sessions(
        self, seed, shards, removals
    ):
        # Remove k of n shards one at a time (the failover order).  At
        # every step the only sessions that move are those owned by the
        # shard leaving the ring, and ``route(sid, avoid=dead)`` called
        # *before* the removal predicts each orphan's new home exactly —
        # the property the detector-driven re-home leans on.
        ring = build_ring(shards=shards, seed=seed)
        placement = {s: ring.route(s) for s in SESSIONS}
        for dead in removals:
            predicted = {
                s: ring.route(s, avoid=dead)
                for s, owner in placement.items()
                if owner == dead
            }
            ring.remove(dead)
            for session, owner in placement.items():
                if owner == dead:
                    assert ring.route(session) == predicted[session]
                    placement[session] = predicted[session]
                else:
                    assert ring.route(session) == owner
        survivors = set(shards) - set(removals)
        assert set(placement.values()) <= survivors
        assert set(ring.nodes) == survivors

    def test_removal_and_rejoin_restores_placement(self):
        # A healed false suspicion re-adds the shard; the ring must hand
        # back exactly the arcs it owned before — the bounce-back set.
        ring = build_ring()
        before = {s: ring.route(s) for s in SESSIONS}
        ring.remove(1)
        ring.add(1)
        assert before == {s: ring.route(s) for s in SESSIONS}

    def test_avoid_matches_post_removal_placement(self):
        # Migrating off a live shard must land the session exactly where
        # a real removal would: the later kill then never moves it again.
        ring = build_ring()
        with_avoid = {
            s: ring.route(s, avoid=2) for s in SESSIONS
        }
        ring.remove(2)
        assert with_avoid == {s: ring.route(s) for s in SESSIONS}


class TestAssignment:
    def test_covers_every_session_once_and_every_shard(self):
        ring = build_ring()
        placement = ring.assignment(SESSIONS)
        assert sorted(placement) == [0, 1, 2, 3]
        routed = [s for members in placement.values() for s in members]
        assert sorted(routed) == SESSIONS
        for shard, members in placement.items():
            assert members == sorted(members)
            assert all(ring.route(s) == shard for s in members)

    def test_vnodes_spread_load(self):
        placement = build_ring(vnodes=128).assignment(SESSIONS)
        sizes = [len(members) for members in placement.values()]
        assert min(sizes) > 0


class TestErrors:
    def test_duplicate_add_rejected(self):
        ring = build_ring()
        with pytest.raises(ValueError, match="already on the ring"):
            ring.add(1)

    def test_remove_absent_rejected(self):
        with pytest.raises(ValueError, match="not on the ring"):
            build_ring().remove(9)

    def test_empty_ring_cannot_route(self):
        with pytest.raises(RuntimeError, match="no alive shards"):
            HashRing().route(0)

    def test_cannot_avoid_the_only_shard(self):
        ring = build_ring(shards=(4,))
        with pytest.raises(RuntimeError, match="only shard"):
            ring.route(0, avoid=4)

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)
