"""WorkerPool dispatch bookkeeping."""

import pytest

from repro.serve import BatchServiceModel, WorkerPool


def pool(n=2):
    return WorkerPool(n, BatchServiceModel(fixed_s=2e-3, per_sample_s=1e-3))


class TestWorkerPool:
    def test_dispatch_tracks_busy_and_occupancy(self):
        p = pool()
        worker = p.idle_worker(0.0)
        assert worker.worker_id == 0
        done = p.dispatch(worker, batch_size=4, now=0.0)
        assert done == pytest.approx(6e-3)
        assert not worker.idle_at(3e-3)
        assert worker.idle_at(6e-3)
        assert p.batch_occupancy == {4: 1}
        assert p.in_flight_frames() == 4
        p.complete(worker)
        assert p.in_flight_frames() == 0

    def test_idle_worker_lowest_id_first(self):
        p = pool(3)
        p.dispatch(p.workers[0], 1, now=0.0)
        assert p.idle_worker(0.0).worker_id == 1

    def test_no_idle_worker_returns_none(self):
        p = pool(1)
        p.dispatch(p.workers[0], 1, now=0.0)
        assert p.idle_worker(0.0) is None

    def test_dispatch_to_busy_worker_raises(self):
        p = pool(1)
        p.dispatch(p.workers[0], 1, now=0.0)
        with pytest.raises(RuntimeError, match="busy"):
            p.dispatch(p.workers[0], 1, now=1e-3)

    def test_utilization_and_mean_batch(self):
        p = pool(2)
        p.dispatch(p.workers[0], 2, now=0.0)  # 4 ms
        p.dispatch(p.workers[1], 6, now=0.0)  # 8 ms
        assert p.utilization(0.012) == pytest.approx((4e-3 + 8e-3) / (2 * 0.012))
        assert p.mean_batch_size() == pytest.approx(4.0)
        with pytest.raises(ValueError):
            p.utilization(0.0)

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError, match="n_workers"):
            WorkerPool(0, BatchServiceModel())
