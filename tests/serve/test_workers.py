"""WorkerPool dispatch bookkeeping and fault-injection semantics."""

import pytest

from repro.serve import (
    BatchServiceModel,
    FaultyWorkerPool,
    LatencySpike,
    WorkerCrash,
    WorkerFaultSchedule,
    WorkerPool,
    WorkerStall,
)

SERVICE = BatchServiceModel(fixed_s=2e-3, per_sample_s=1e-3)


def pool(n=2):
    return WorkerPool(n, SERVICE)


def faulty_pool(schedule, n=1, stall_timeout_s=0.05):
    return FaultyWorkerPool(
        n, SERVICE, schedule=schedule, stall_timeout_s=stall_timeout_s
    )


class TestWorkerPool:
    def test_dispatch_tracks_busy_and_occupancy(self):
        p = pool()
        worker = p.idle_worker(0.0)
        assert worker.worker_id == 0
        done = p.dispatch(worker, batch_size=4, now=0.0)
        assert done == pytest.approx(6e-3)
        assert not worker.idle_at(3e-3)
        assert worker.idle_at(6e-3)
        assert p.batch_occupancy == {4: 1}
        assert p.in_flight_frames() == 4
        p.complete(worker)
        assert p.in_flight_frames() == 0

    def test_idle_worker_lowest_id_first(self):
        p = pool(3)
        p.dispatch(p.workers[0], 1, now=0.0)
        assert p.idle_worker(0.0).worker_id == 1

    def test_no_idle_worker_returns_none(self):
        p = pool(1)
        p.dispatch(p.workers[0], 1, now=0.0)
        assert p.idle_worker(0.0) is None

    def test_dispatch_to_busy_worker_raises(self):
        p = pool(1)
        p.dispatch(p.workers[0], 1, now=0.0)
        with pytest.raises(RuntimeError, match="busy"):
            p.dispatch(p.workers[0], 1, now=1e-3)

    def test_utilization_and_mean_batch(self):
        p = pool(2)
        p.dispatch(p.workers[0], 2, now=0.0)  # 4 ms
        p.dispatch(p.workers[1], 6, now=0.0)  # 8 ms
        assert p.utilization(0.012) == pytest.approx((4e-3 + 8e-3) / (2 * 0.012))
        assert p.mean_batch_size() == pytest.approx(4.0)
        with pytest.raises(ValueError):
            p.utilization(0.0)

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError, match="n_workers"):
            WorkerPool(0, BatchServiceModel())


class TestWorkerFaultSchedule:
    def test_spike_factor_composes_and_windows(self):
        schedule = WorkerFaultSchedule(
            spikes=(
                LatencySpike(start_s=1.0, stop_s=2.0, factor=2.0),  # pool-wide
                LatencySpike(start_s=1.5, stop_s=2.0, factor=3.0, worker_id=1),
            )
        )
        assert schedule.spike_factor(0, 0.5) == 1.0
        assert schedule.spike_factor(0, 1.5) == 2.0
        assert schedule.spike_factor(1, 1.7) == 6.0  # both windows apply
        assert schedule.spike_factor(1, 2.0) == 1.0  # stop is exclusive

    def test_crash_windows(self):
        crash = WorkerCrash(worker_id=0, at_s=1.0, down_s=0.5)
        schedule = WorkerFaultSchedule(crashes=(crash,))
        assert schedule.crash_during(0, 0.9, 1.1) is crash
        assert schedule.crash_during(0, 1.1, 2.0) is None
        assert schedule.crash_during(1, 0.9, 1.1) is None
        assert schedule.down_until(0, 1.2) == pytest.approx(1.5)
        assert schedule.down_until(0, 1.5) is None

    def test_empty_flag(self):
        assert WorkerFaultSchedule().empty
        assert not WorkerFaultSchedule(
            stalls=(WorkerStall(worker_id=0, start_s=0.0, stop_s=1.0),)
        ).empty

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError, match="stall window"):
            WorkerStall(worker_id=0, start_s=1.0, stop_s=0.5)
        with pytest.raises(ValueError, match="factor"):
            LatencySpike(start_s=0.0, stop_s=1.0, factor=0.5)
        with pytest.raises(ValueError, match="down_s"):
            WorkerCrash(worker_id=0, at_s=0.0, down_s=0.0)


class TestFaultyWorkerPool:
    def test_clean_dispatch_matches_base_pool(self):
        p = faulty_pool(WorkerFaultSchedule())
        outcome = p.dispatch_faulty(p.workers[0], 4, now=0.0)
        assert outcome.ok
        assert outcome.done_s == pytest.approx(6e-3)
        assert p.workers[0].batches_served == 1
        assert p.failed_batches == 0

    def test_crash_fails_inflight_batch_and_holds_downtime(self):
        schedule = WorkerFaultSchedule(
            crashes=(WorkerCrash(worker_id=0, at_s=1.001, down_s=0.5),)
        )
        p = faulty_pool(schedule)
        worker = p.workers[0]
        outcome = p.dispatch_faulty(worker, 2, now=1.0)  # service 4 ms
        assert not outcome.ok
        assert outcome.cause == "crash"
        assert outcome.done_s == pytest.approx(1.001)  # fails at the crash
        assert worker.busy_until_s == pytest.approx(1.501)  # whole downtime
        assert worker.batches_served == 0
        assert p.failed_batches == 1 and p.failed_frames == 2
        # Unavailable while down, available again once restarted.
        assert not p.available(worker, 1.2)
        assert p.available(worker, 1.501)

    def test_stall_fails_at_dispatch_timeout(self):
        schedule = WorkerFaultSchedule(
            stalls=(WorkerStall(worker_id=0, start_s=0.0, stop_s=1.0),)
        )
        p = faulty_pool(schedule, stall_timeout_s=0.02)
        outcome = p.dispatch_faulty(p.workers[0], 3, now=0.5)
        assert not outcome.ok
        assert outcome.cause == "stall"
        assert outcome.done_s == pytest.approx(0.52)

    def test_spike_stretches_service_time(self):
        schedule = WorkerFaultSchedule(
            spikes=(LatencySpike(start_s=0.0, stop_s=1.0, factor=2.0),)
        )
        p = faulty_pool(schedule)
        outcome = p.dispatch_faulty(p.workers[0], 4, now=0.5)
        assert outcome.ok
        assert outcome.done_s == pytest.approx(0.5 + 2.0 * 6e-3)

    def test_next_available_accounts_for_downtime(self):
        schedule = WorkerFaultSchedule(
            crashes=(WorkerCrash(worker_id=0, at_s=0.0, down_s=1.0),)
        )
        p = faulty_pool(schedule)
        assert p.idle_worker(0.5) is None
        assert p.next_available_s(0.5) == pytest.approx(1.0)
        assert p.next_available_s(1.0) is None  # available right now
