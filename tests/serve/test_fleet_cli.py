"""``python -m repro fleet``: params resolution and CLI surface."""

from __future__ import annotations

import pytest

from repro.recover.codec import config_hash
from repro.serve.fleet.cli import main, resolve_run_config, run_from_config
from repro.serve.telemetry import FleetReport


class TestResolveRunConfig:
    def test_defaults_and_explicit_spellings_share_a_hash(self):
        sparse = resolve_run_config({"serve": {"n_sessions": 8}})
        explicit = resolve_run_config(
            {"serve": {"n_sessions": 8}, "n_shards": 4, "vnodes": 64,
             "ring_seed": 0, "migration_rate_hz": 0.0}
        )
        assert config_hash(sparse) == config_hash(explicit)
        assert sparse["kind"] == "fleet"

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet params"):
            resolve_run_config({"shard_count": 4})

    def test_bad_kill_rejected(self):
        with pytest.raises(ValueError, match="bad fleet params"):
            resolve_run_config({"kills": [{"shard": 1, "at_s": 0.2}]})

    def test_kill_beyond_topology_rejected(self):
        with pytest.raises(ValueError, match="starts with"):
            resolve_run_config(
                {"n_shards": 2, "kills": [{"shard_id": 5, "at_s": 0.1}]}
            )

    def test_run_from_config_returns_sharded_report(self):
        report = run_from_config(
            {"serve": {"n_sessions": 8, "duration_s": 0.2}, "n_shards": 2}
        )
        assert isinstance(report, FleetReport)
        assert report.shards is not None
        assert len(report.shards.shard_rows) == 2


class TestCliMain:
    ARGS = [
        "--sessions", "16", "--shards", "4", "--duration", "0.3",
        "--kill-shard", "2@0.2",
    ]

    def test_kill_run_prints_failover_line(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Fleet topology: 4 shards started" in out
        assert "Failover: shard 2 killed at 0.200s" in out

    def test_compare_no_kill_prints_cost(self, capsys):
        assert main(self.ARGS + ["--compare-no-kill"]) == 0
        out = capsys.readouterr().out
        assert "no-kill baseline" in out
        assert "Failover cost:" in out

    def test_bad_kill_spec_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--kill-shard", "nope"])
        assert exc.value.code == 2

    def test_kill_at_event_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit) as exc:
            main(["--kill-at-event", "10"])
        assert exc.value.code == 2

    def test_checkpointed_run_and_crash_exit(self, tmp_path, capsys):
        from repro.recover import JOURNAL_NAME
        from repro.recover.cli import EXIT_SIMULATED_CRASH

        directory = tmp_path / "ckpt"
        code = main(self.ARGS + [
            "--checkpoint-dir", str(directory),
            "--checkpoint-every", "100",
            "--kill-at-event", "150",
        ])
        assert code == EXIT_SIMULATED_CRASH
        assert (directory / JOURNAL_NAME).exists()
