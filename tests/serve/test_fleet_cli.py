"""``python -m repro fleet``: params resolution and CLI surface."""

from __future__ import annotations

import pytest

from repro.recover.codec import config_hash
from repro.serve.fleet.cli import main, resolve_run_config, run_from_config
from repro.serve.telemetry import FleetReport


class TestResolveRunConfig:
    def test_defaults_and_explicit_spellings_share_a_hash(self):
        sparse = resolve_run_config({"serve": {"n_sessions": 8}})
        explicit = resolve_run_config(
            {"serve": {"n_sessions": 8}, "n_shards": 4, "vnodes": 64,
             "ring_seed": 0, "migration_rate_hz": 0.0}
        )
        assert config_hash(sparse) == config_hash(explicit)
        assert sparse["kind"] == "fleet"

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet params"):
            resolve_run_config({"shard_count": 4})

    def test_bad_kill_rejected(self):
        with pytest.raises(ValueError, match="bad fleet params"):
            resolve_run_config({"kills": [{"shard": 1, "at_s": 0.2}]})

    def test_kill_beyond_topology_rejected(self):
        with pytest.raises(ValueError, match="starts with"):
            resolve_run_config(
                {"n_shards": 2, "kills": [{"shard_id": 5, "at_s": 0.1}]}
            )

    def test_run_from_config_returns_sharded_report(self):
        report = run_from_config(
            {"serve": {"n_sessions": 8, "duration_s": 0.2}, "n_shards": 2}
        )
        assert isinstance(report, FleetReport)
        assert report.shards is not None
        assert len(report.shards.shard_rows) == 2

    def test_net_params_resolve_and_run(self):
        report = run_from_config(
            {
                "serve": {"n_sessions": 8, "duration_s": 0.2},
                "n_shards": 2,
                "net": {
                    "enabled": True,
                    "link": {"drop_rate": 0.2, "dup_rate": 0.2},
                },
            }
        )
        assert report.net is not None
        assert report.net.counters["frames_applied"] == report.total_frames

    def test_net_key_is_absent_from_plain_hashes(self):
        # Pre-transport campaign hashes must not shift: a config without
        # net (or with it disabled) resolves to the same dict as before.
        plain = resolve_run_config({"serve": {"n_sessions": 8}})
        disabled = resolve_run_config(
            {"serve": {"n_sessions": 8}, "net": {"enabled": False}}
        )
        assert "net" not in plain["config"]
        assert config_hash(plain) == config_hash(disabled)
        lossy = resolve_run_config(
            {"serve": {"n_sessions": 8}, "net": {"enabled": True}}
        )
        assert lossy["config"]["net"]["enabled"] is True
        assert config_hash(lossy) != config_hash(plain)

    def test_bad_net_params_rejected(self):
        with pytest.raises(ValueError, match="bad fleet params"):
            resolve_run_config({"net": {"enabled": True, "drop": 0.5}})
        with pytest.raises(ValueError, match="on_exhaust must be one of"):
            resolve_run_config({"net": {"enabled": True, "on_exhaust": "no"}})


class TestCliMain:
    ARGS = [
        "--sessions", "16", "--shards", "4", "--duration", "0.3",
        "--kill-shard", "2@0.2",
    ]

    def test_kill_run_prints_failover_line(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "Fleet topology: 4 shards started" in out
        assert "Failover: shard 2 killed at 0.200s" in out

    def test_compare_no_kill_prints_cost(self, capsys):
        assert main(self.ARGS + ["--compare-no-kill"]) == 0
        out = capsys.readouterr().out
        assert "no-kill baseline" in out
        assert "Failover cost:" in out

    def test_bad_kill_spec_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--kill-shard", "nope"])
        assert exc.value.code == 2

    def test_net_run_prints_transport_section(self, capsys):
        assert main([
            "--sessions", "8", "--shards", "2", "--duration", "0.2",
            "--net", "--net-drop", "0.2", "--net-dup", "0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Transport:" in out
        assert "Exactly-once:" in out
        assert "Detector:" in out

    def test_partition_flag_alone_enables_the_transport(self, capsys):
        assert main([
            "--sessions", "8", "--shards", "2", "--duration", "0.3",
            "--partition", "1@0.1:0.2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Partitions: 1 windows" in out

    def test_compare_no_fault_requires_net(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--sessions", "8", "--compare-no-fault"])
        assert exc.value.code == 2
        assert "--compare-no-fault" in capsys.readouterr().err

    def test_kill_at_event_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit) as exc:
            main(["--kill-at-event", "10"])
        assert exc.value.code == 2

    def test_checkpointed_run_and_crash_exit(self, tmp_path, capsys):
        from repro.recover import JOURNAL_NAME
        from repro.recover.cli import EXIT_SIMULATED_CRASH

        directory = tmp_path / "ckpt"
        code = main(self.ARGS + [
            "--checkpoint-dir", str(directory),
            "--checkpoint-every", "100",
            "--kill-at-event", "150",
        ])
        assert code == EXIT_SIMULATED_CRASH
        assert (directory / JOURNAL_NAME).exists()


class TestSpecParsingErrors:
    """Malformed schedule specs must exit 2 with a message naming the
    bad token — never a traceback."""

    @pytest.mark.parametrize(
        "argv,needle",
        [
            (["--kill-shard", "nope@0.3"],
             "--kill-shard: 'nope' is not an integer id in 'nope@0.3'"),
            (["--kill-shard", "2@soon"],
             "--kill-shard: 'soon' is not a time in seconds in '2@soon'"),
            (["--kill-shard", "2"],
             "--kill-shard expects ID@SECONDS, got '2'"),
            (["--migrate", "3@later"],
             "--migrate: 'later' is not a time in seconds in '3@later'"),
            (["--migrate", "x@0.2"],
             "--migrate: 'x' is not an integer id in 'x@0.2'"),
            (["--partition", "1,x@0.2:0.35"],
             "--partition: 'x' is not an integer shard id in '1,x@0.2:0.35'"),
            (["--partition", "1@0.2"],
             "--partition expects a START:STOP window in seconds, got '1@0.2'"),
            (["--partition", "@0.2:0.3"],
             "--partition expects SHARDS@START:STOP, got '@0.2:0.3'"),
            (["--gray-shard", "1@0.2:abc"],
             "--gray-shard: 'abc' is not a time in seconds in '1@0.2:abc'"),
            (["--gray-shard", "1"],
             "--gray-shard expects ID@START:STOP, got '1'"),
        ],
    )
    def test_bad_token_is_named_without_traceback(self, capsys, argv, needle):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert needle in err
        assert "Traceback" not in err
