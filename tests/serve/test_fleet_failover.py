"""Shard failover under chaos: the fleet-wide conservation property.

The seeded grid sweeps (shard count, kill schedule, migration rate) and
asserts the exact frame ledger on every cell: each session's generated
frames are accounted once across every shard they visited, and frame
loss is bounded by what was physically on the dead shard at kill time.
One configuration pins exact counts so any behavioural drift is loud.
"""

from __future__ import annotations

import pytest

from repro.faults.breaker import BreakerState, CircuitBreaker
from repro.faults.injectors import ShardKill
from repro.recover import fleet_report_bytes
from repro.serve import ServeConfig
from repro.serve.fleet import (
    FailoverConfig,
    FleetConfig,
    FleetRuntime,
    run_fleet,
)

KILL_SCHEDULES = {
    "none": (),
    "one": (ShardKill(shard_id=0, at_s=0.2),),
    "two": (ShardKill(shard_id=1, at_s=0.15), ShardKill(shard_id=0, at_s=0.3)),
}


def heavy_serve(n_sessions: int = 24) -> ServeConfig:
    return ServeConfig(
        n_sessions=n_sessions,
        duration_s=0.4,
        n_workers=1,
        reuse_displacement_deg=0.05,
        queue_budget_deadlines=0.8,
        seed=0,
    )


class TestConservationGrid:
    @pytest.mark.parametrize("n_shards", [2, 3, 5])
    @pytest.mark.parametrize("schedule", sorted(KILL_SCHEDULES))
    @pytest.mark.parametrize("migration_rate_hz", [0.0, 8.0])
    def test_ledger_is_exact(self, n_shards, schedule, migration_rate_hz):
        kills = KILL_SCHEDULES[schedule]
        if len(kills) >= n_shards:
            pytest.skip("kill schedule would empty the fleet")
        config = FleetConfig(
            serve=heavy_serve(),
            n_shards=n_shards,
            kills=kills,
            migration_rate_hz=migration_rate_hz,
        )
        # finish() itself raises on any ledger leak; re-derive it here so
        # the test documents the invariant rather than trusting the code
        # under test to self-report.
        report = run_fleet(config)
        expected = {
            s.session_id: s.n_frames for s in FleetRuntime(config).sessions
        }
        assert len(report.sessions) == len(expected)
        for stats in report.sessions:
            buckets = (
                stats.completed + stats.shed + stats.pending
                + stats.lost_input + stats.lost_shard
            )
            assert stats.total_frames == expected[stats.session_id]
            assert buckets == expected[stats.session_id]
        if not kills:
            assert sum(s.lost_shard for s in report.sessions) == 0
        assert report.shards.shards_killed == len(kills)
        assert report.shards.shards_serving == n_shards - len(kills)


class TestBoundedLoss:
    def test_only_dead_shard_residents_lose_frames(self):
        # No migrations: a session can only lose frames if the killed
        # shard was its home.  Future arrivals re-home with the session;
        # loss is strictly the batcher queue + in-flight batch at kill.
        config = FleetConfig(
            serve=heavy_serve(32), n_shards=4,
            kills=(ShardKill(shard_id=2, at_s=0.25),),
        )
        runtime = FleetRuntime(config)
        runtime.start()
        home = dict(runtime._session_shard)
        report = run_fleet(config)
        for stats in report.sessions:
            if stats.lost_shard:
                assert home[stats.session_id] == 2
        (failover,) = report.shards.log.failovers
        assert failover["lost_frames"] == sum(
            s.lost_shard for s in report.sessions
        )
        # Re-homed sessions keep completing on the survivors.
        rehomed = [s for s in report.sessions if home[s.session_id] == 2]
        assert sum(s.completed for s in rehomed) > 0

    def test_kill_schedule_is_deterministic(self):
        config = FleetConfig(
            serve=heavy_serve(), n_shards=3,
            kills=(ShardKill(shard_id=1, at_s=0.2),),
            migration_rate_hz=6.0,
        )
        assert fleet_report_bytes(run_fleet(config)) == fleet_report_bytes(
            run_fleet(config)
        )


class TestBreakerBackToBackKills:
    """Two kills inside one ``guard_s`` window: the second wave of
    refugees must flow into the breaker the first wave already opened —
    reusing its cooldown clock, never resetting it."""

    COOLDOWN = 0.04
    KILLS = (ShardKill(shard_id=2, at_s=0.2), ShardKill(shard_id=3, at_s=0.26))

    def config(self) -> FleetConfig:
        return FleetConfig(
            serve=ServeConfig(
                n_sessions=48, duration_s=0.6, n_workers=1,
                reuse_displacement_deg=0.05, queue_budget_deadlines=0.4,
                seed=0,
            ),
            n_shards=4,
            kills=self.KILLS,
            failover=FailoverConfig(
                breaker_threshold=3, breaker_cooldown_s=self.COOLDOWN,
                guard_s=0.3,
            ),
        )

    def test_second_kill_reuses_the_open_breaker(self):
        runtime = FleetRuntime(self.config())
        runtime.start()
        while runtime.step():
            pass
        report = runtime.finish()
        second_kill = self.KILLS[1].at_s
        survivors = [s for s in runtime.shards.values() if s.alive]
        assert len(survivors) == 2
        for shard in survivors:
            transitions = shard.rehome_breaker.transitions
            assert shard.breaker_degraded > 0
            # The first wave opened the breaker before the second kill...
            first_open = transitions[0]
            assert first_open[1:] == ("CLOSED", "OPEN")
            assert first_open[0] < second_kill
            # ...and the second kill landed inside an OPEN window, so
            # its refugees met an already-open breaker.
            assert any(
                to == "OPEN" and t <= second_kill < t + self.COOLDOWN
                for t, _, to in transitions
            )
            # No reset: every OPEN closes into HALF_OPEN at *exactly*
            # open-instant + cooldown on the sim clock — degradations
            # from the second wave never extend the window.
            for (t, _, to), nxt in zip(transitions, transitions[1:]):
                if to == "OPEN":
                    assert nxt[1:] == ("OPEN", "HALF_OPEN")
                    assert nxt[0] == pytest.approx(t + self.COOLDOWN)
        # The report total also counts frames shard 3 degraded while
        # guarding the first wave before it was killed itself.
        assert report.shards.rehome_breaker_degraded == sum(
            s.breaker_degraded for s in runtime.shards.values()
        )
        assert report.shards.rehome_breaker_degraded > sum(
            s.breaker_degraded for s in survivors
        ) > 0

    def test_open_breaker_ignores_failures_without_extending_cooldown(self):
        # The unit-level contract the fleet behaviour rests on, driven
        # by explicit sim-clock instants.
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=0.5)
        for _ in range(3):
            breaker.record_failure(1.0)
        assert breaker.state(1.0) is BreakerState.OPEN
        assert breaker.reopen_s == 1.5
        # A later failure burst (the second kill's refugees) while OPEN
        # must not push the reopen instant out.
        breaker.record_failure(1.2)
        breaker.record_failure(1.3)
        assert breaker.reopen_s == 1.5
        assert not breaker.allow(1.49)
        # At exactly the reopen instant one probe is admitted.
        assert breaker.allow(1.5)
        assert breaker.state(1.5) is BreakerState.HALF_OPEN
        breaker.note_dispatch(1.5)
        assert not breaker.allow(1.51)  # probe in flight
        breaker.record_failure(1.6)     # probe failed: re-open
        assert breaker.state(1.6) is BreakerState.OPEN
        assert breaker.reopen_s == pytest.approx(2.1)
        breaker.record_success(2.2)
        assert breaker.state(2.3) is BreakerState.CLOSED


class TestPinnedCounts:
    """Exact counts of one reference config (seed 0, 32 sessions, 4
    shards, shard 2 killed at 0.25s, 10 Hz migrations).  These change
    only when routing, batching, or the failover protocol changes —
    update deliberately, never to silence the test."""

    def report(self):
        config = FleetConfig(
            serve=ServeConfig(
                n_sessions=32, duration_s=0.6, n_workers=1,
                reuse_displacement_deg=0.05, queue_budget_deadlines=0.8,
                seed=0,
            ),
            n_shards=4,
            kills=(ShardKill(shard_id=2, at_s=0.25),),
            migration_rate_hz=10.0,
        )
        return run_fleet(config)

    def test_exact_failover_counts(self):
        report = self.report()
        summary = report.shards.summary()
        assert summary["rehomed_sessions"] == 9.0
        assert summary["failover_lost_frames"] == 2.0
        assert summary["migrations_planned"] == 6.0
        assert summary["migrations_completed"] == 6.0
        assert summary["migrations_skipped"] == 0.0
        assert summary["shards_serving"] == 3.0
        assert report.shards.log.failovers == [
            {"at_s": 0.25, "shard_id": 2, "rehomed_sessions": 9,
             "lost_frames": 2}
        ]

    def test_exact_frame_ledger(self):
        report = self.report()
        assert sum(s.total_frames for s in report.sessions) == 1920
        assert sum(s.completed for s in report.sessions) == 1918
        assert sum(s.lost_shard for s in report.sessions) == 2
        assert sorted(
            s.session_id for s in report.sessions if s.lost_shard
        ) == [6, 25]
