"""Shard failover under chaos: the fleet-wide conservation property.

The seeded grid sweeps (shard count, kill schedule, migration rate) and
asserts the exact frame ledger on every cell: each session's generated
frames are accounted once across every shard they visited, and frame
loss is bounded by what was physically on the dead shard at kill time.
One configuration pins exact counts so any behavioural drift is loud.
"""

from __future__ import annotations

import pytest

from repro.faults.injectors import ShardKill
from repro.recover import fleet_report_bytes
from repro.serve import ServeConfig
from repro.serve.fleet import FleetConfig, FleetRuntime, run_fleet

KILL_SCHEDULES = {
    "none": (),
    "one": (ShardKill(shard_id=0, at_s=0.2),),
    "two": (ShardKill(shard_id=1, at_s=0.15), ShardKill(shard_id=0, at_s=0.3)),
}


def heavy_serve(n_sessions: int = 24) -> ServeConfig:
    return ServeConfig(
        n_sessions=n_sessions,
        duration_s=0.4,
        n_workers=1,
        reuse_displacement_deg=0.05,
        queue_budget_deadlines=0.8,
        seed=0,
    )


class TestConservationGrid:
    @pytest.mark.parametrize("n_shards", [2, 3, 5])
    @pytest.mark.parametrize("schedule", sorted(KILL_SCHEDULES))
    @pytest.mark.parametrize("migration_rate_hz", [0.0, 8.0])
    def test_ledger_is_exact(self, n_shards, schedule, migration_rate_hz):
        kills = KILL_SCHEDULES[schedule]
        if len(kills) >= n_shards:
            pytest.skip("kill schedule would empty the fleet")
        config = FleetConfig(
            serve=heavy_serve(),
            n_shards=n_shards,
            kills=kills,
            migration_rate_hz=migration_rate_hz,
        )
        # finish() itself raises on any ledger leak; re-derive it here so
        # the test documents the invariant rather than trusting the code
        # under test to self-report.
        report = run_fleet(config)
        expected = {
            s.session_id: s.n_frames for s in FleetRuntime(config).sessions
        }
        assert len(report.sessions) == len(expected)
        for stats in report.sessions:
            buckets = (
                stats.completed + stats.shed + stats.pending
                + stats.lost_input + stats.lost_shard
            )
            assert stats.total_frames == expected[stats.session_id]
            assert buckets == expected[stats.session_id]
        if not kills:
            assert sum(s.lost_shard for s in report.sessions) == 0
        assert report.shards.shards_killed == len(kills)
        assert report.shards.shards_serving == n_shards - len(kills)


class TestBoundedLoss:
    def test_only_dead_shard_residents_lose_frames(self):
        # No migrations: a session can only lose frames if the killed
        # shard was its home.  Future arrivals re-home with the session;
        # loss is strictly the batcher queue + in-flight batch at kill.
        config = FleetConfig(
            serve=heavy_serve(32), n_shards=4,
            kills=(ShardKill(shard_id=2, at_s=0.25),),
        )
        runtime = FleetRuntime(config)
        runtime.start()
        home = dict(runtime._session_shard)
        report = run_fleet(config)
        for stats in report.sessions:
            if stats.lost_shard:
                assert home[stats.session_id] == 2
        (failover,) = report.shards.log.failovers
        assert failover["lost_frames"] == sum(
            s.lost_shard for s in report.sessions
        )
        # Re-homed sessions keep completing on the survivors.
        rehomed = [s for s in report.sessions if home[s.session_id] == 2]
        assert sum(s.completed for s in rehomed) > 0

    def test_kill_schedule_is_deterministic(self):
        config = FleetConfig(
            serve=heavy_serve(), n_shards=3,
            kills=(ShardKill(shard_id=1, at_s=0.2),),
            migration_rate_hz=6.0,
        )
        assert fleet_report_bytes(run_fleet(config)) == fleet_report_bytes(
            run_fleet(config)
        )


class TestPinnedCounts:
    """Exact counts of one reference config (seed 0, 32 sessions, 4
    shards, shard 2 killed at 0.25s, 10 Hz migrations).  These change
    only when routing, batching, or the failover protocol changes —
    update deliberately, never to silence the test."""

    def report(self):
        config = FleetConfig(
            serve=ServeConfig(
                n_sessions=32, duration_s=0.6, n_workers=1,
                reuse_displacement_deg=0.05, queue_budget_deadlines=0.8,
                seed=0,
            ),
            n_shards=4,
            kills=(ShardKill(shard_id=2, at_s=0.25),),
            migration_rate_hz=10.0,
        )
        return run_fleet(config)

    def test_exact_failover_counts(self):
        report = self.report()
        summary = report.shards.summary()
        assert summary["rehomed_sessions"] == 9.0
        assert summary["failover_lost_frames"] == 2.0
        assert summary["migrations_planned"] == 6.0
        assert summary["migrations_completed"] == 6.0
        assert summary["migrations_skipped"] == 0.0
        assert summary["shards_serving"] == 3.0
        assert report.shards.log.failovers == [
            {"at_s": 0.25, "shard_id": 2, "rehomed_sessions": 9,
             "lost_frames": 2}
        ]

    def test_exact_frame_ledger(self):
        report = self.report()
        assert sum(s.total_frames for s in report.sessions) == 1920
        assert sum(s.completed for s in report.sessions) == 1918
        assert sum(s.lost_shard for s in report.sessions) == 2
        assert sorted(
            s.session_id for s in report.sessions if s.lost_shard
        ) == [6, 25]
