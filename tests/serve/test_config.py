"""ServeConfig / BatchServiceModel validation and derived quantities."""

import pytest

from repro.serve import AdmissionPolicy, BatchServiceModel, ServeConfig


class TestBatchServiceModel:
    def test_affine_service_time(self):
        model = BatchServiceModel(fixed_s=2.0e-3, per_sample_s=5.0e-4)
        assert model.service_s(1) == pytest.approx(2.5e-3)
        assert model.service_s(8) == pytest.approx(6.0e-3)

    def test_batching_raises_throughput(self):
        model = BatchServiceModel()
        assert model.throughput_fps(8) > 2 * model.throughput_fps(1)

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError, match="batch_size"):
            BatchServiceModel().service_s(0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BatchServiceModel(fixed_s=-1.0)
        with pytest.raises(ValueError):
            BatchServiceModel(per_sample_s=0.0)

    def test_from_latency_preserves_batch1(self):
        model = BatchServiceModel.from_latency(12.26e-3, amortizable=0.8)
        assert model.service_s(1) == pytest.approx(12.26e-3)
        assert model.fixed_s == pytest.approx(0.8 * 12.26e-3)

    def test_from_latency_rejects_bad_split(self):
        with pytest.raises(ValueError, match="amortizable"):
            BatchServiceModel.from_latency(1e-3, amortizable=1.0)


class TestServeConfig:
    def test_derived_quantities(self):
        config = ServeConfig(fps=100.0, deadline_frames=1.0,
                             queue_budget_deadlines=2.0, duration_s=2.0)
        assert config.deadline_s == pytest.approx(0.01)
        assert config.queue_budget_s == pytest.approx(0.02)
        assert config.frames_per_session == 200

    def test_sequential_baseline_disables_batching(self):
        config = ServeConfig(max_batch=8, batch_window_s=2e-3, n_sessions=4)
        baseline = config.sequential_baseline()
        assert baseline.max_batch == 1
        assert baseline.batch_window_s == 0.0
        assert baseline.n_sessions == config.n_sessions
        assert baseline.seed == config.seed

    def test_rejects_nonpositive_knobs(self):
        with pytest.raises(ValueError):
            ServeConfig(n_sessions=0)
        with pytest.raises(ValueError):
            ServeConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServeConfig(batch_window_s=-1e-3)

    def test_admission_policy_values(self):
        assert AdmissionPolicy("degrade") is AdmissionPolicy.DEGRADE
        assert AdmissionPolicy("shed") is AdmissionPolicy.SHED
        assert AdmissionPolicy("always") is AdmissionPolicy.ALWAYS

    def test_rejects_negative_bypass_latencies(self):
        with pytest.raises(ValueError, match="saccade_bypass_s"):
            ServeConfig(saccade_bypass_s=-1e-6)
        with pytest.raises(ValueError, match="reuse_bypass_s"):
            ServeConfig(reuse_bypass_s=-1e-6)

    def test_rejects_nonpositive_reuse_displacement(self):
        with pytest.raises(ValueError, match="reuse_displacement_deg"):
            ServeConfig(reuse_displacement_deg=0.0)

    def test_rejects_non_enum_admission(self):
        # A raw string is an easy mistake; the error must name the field.
        with pytest.raises(ValueError, match="admission"):
            ServeConfig(admission="degrade")

    def test_rejects_negative_stagger(self):
        with pytest.raises(ValueError, match="stagger_s"):
            ServeConfig(stagger_s=-1.0)
