"""Visual-acuity falloff across the retina (paper §2.1).

Relative acuity follows the cortical-magnification model: highest at the
fovea and declining hyperbolically with eccentricity,

    A(e) = e2 / (e2 + e)

with the half-resolution eccentricity ``e2`` around 2.3 degrees.  The
foveated-rendering regions of Eq. 1 exist precisely because A(e) decays
this fast.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive

#: Half-resolution eccentricity in degrees (Weymouth-style constant).
E2_DEG = 2.3


def relative_acuity(eccentricity_deg, e2: float = E2_DEG):
    """Relative acuity in (0, 1]; accepts scalars or arrays."""
    check_positive("e2", e2)
    ecc = np.asarray(eccentricity_deg, dtype=np.float64)
    if np.any(ecc < 0):
        raise ValueError("eccentricity must be non-negative")
    return e2 / (e2 + ecc)


def minimum_angle_of_resolution(eccentricity_deg, mar0_arcmin: float = 1.0, e2: float = E2_DEG):
    """MAR in arcminutes: the finest resolvable detail at an eccentricity."""
    return mar0_arcmin / relative_acuity(eccentricity_deg, e2)


def acuity_limited_shading_rate(eccentricity_deg, e2: float = E2_DEG):
    """Fraction of full shading rate perception can actually use at an
    eccentricity — the principled ceiling for resolution-drop factors.

    Shading need scales with acuity squared (two spatial dimensions), so
    e.g. at ~7 deg the eye needs about 1/16 of foveal pixel density,
    matching the paper's peripheral 16x drop.
    """
    return relative_acuity(eccentricity_deg, e2) ** 2
