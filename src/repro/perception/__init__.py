"""Perception substrate: acuity falloff, FovVideoVDP-style visible
difference model, and the synthetic 2IFC user study."""

from repro.perception.acuity import (
    E2_DEG,
    acuity_limited_shading_rate,
    minimum_angle_of_resolution,
    relative_acuity,
)
from repro.perception.observer import ObserverConfig, SyntheticObserver, VideoProfile
from repro.perception.qoe import (
    LatencyQoeConfig,
    SaccadeMisdetectionConfig,
    false_positive_artifact_rate,
    latency_qoe,
    misdetection_qoe,
)
from repro.perception.user_study import DEFAULT_VIDEOS, StudyResult, run_user_study
from repro.perception.vdp import VdpConfig, discriminability, jnd_score, required_theta_f

__all__ = [
    "E2_DEG",
    "acuity_limited_shading_rate",
    "minimum_angle_of_resolution",
    "relative_acuity",
    "ObserverConfig",
    "SyntheticObserver",
    "VideoProfile",
    "LatencyQoeConfig",
    "SaccadeMisdetectionConfig",
    "false_positive_artifact_rate",
    "latency_qoe",
    "misdetection_qoe",
    "DEFAULT_VIDEOS",
    "StudyResult",
    "run_user_study",
    "VdpConfig",
    "discriminability",
    "jnd_score",
    "required_theta_f",
]
