"""Synthetic 2IFC observer (stand-in for the §7.5 user study).

Each trial shows the same video foveated with two different tracking-
error traces; the participant picks the higher-quality one.  The
synthetic observer converts each trace into accumulated visible-artifact
evidence via the VDP model, adds participant-specific decision noise,
and picks the lower-artifact interval — the mechanical analogue of the
published forced-choice protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perception.vdp import VdpConfig, jnd_score
from repro.utils.rng import default_rng
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class VideoProfile:
    """Content characteristics modulating artifact visibility.

    ``motion_masking`` in [0, 1): high-motion content masks foveation
    artifacts (the paper's video 2, with significant motion, shows the
    weakest preference, 73%).
    """

    name: str
    motion_masking: float = 0.0
    brightness: float = 0.7

    def __post_init__(self) -> None:
        check_in_range("motion_masking", self.motion_masking, 0.0, 0.95)
        check_in_range("brightness", self.brightness, 0.0, 1.0)


@dataclass(frozen=True)
class ObserverConfig:
    """Decision model parameters."""

    theta_foveal_deg: float = 5.0
    decision_noise: float = 0.18
    lapse_rate: float = 0.02

    def __post_init__(self) -> None:
        check_positive("theta_foveal_deg", self.theta_foveal_deg)
        check_positive("decision_noise", self.decision_noise)
        check_in_range("lapse_rate", self.lapse_rate, 0.0, 0.5)


class SyntheticObserver:
    """One participant with a private noise stream."""

    def __init__(
        self,
        config: "ObserverConfig | None" = None,
        vdp: "VdpConfig | None" = None,
        seed=None,
    ):
        self.config = config or ObserverConfig()
        self.vdp = vdp or VdpConfig()
        self._rng = default_rng(seed)

    def artifact_evidence(self, error_trace_deg: np.ndarray, video: VideoProfile) -> float:
        """Mean perceived-artifact level over a foveated video.

        The rendered foveal angle each frame is theta_i + the frame's
        tracking error (the system cannot know the instantaneous error, so
        artifacts appear whenever the *actual* error exceeds what the
        region sizing absorbed; using the per-frame error directly is the
        worst-case reading of Eq. 1).
        """
        errors = np.asarray(error_trace_deg, dtype=np.float64)
        if errors.ndim != 1 or errors.size == 0:
            raise ValueError("error trace must be a non-empty 1-D array")
        scores = jnd_score(self.config.theta_foveal_deg + 0 * errors + 1e-9, errors, self.vdp)
        masked = scores * (1.0 - video.motion_masking)
        return float(np.mean(masked))

    def choose(
        self,
        error_trace_a: np.ndarray,
        error_trace_b: np.ndarray,
        video: VideoProfile,
    ) -> int:
        """2IFC decision: returns 0 if interval A is preferred, else 1.

        Preference goes to the interval with *less* artifact evidence,
        corrupted by decision noise and a small lapse rate.
        """
        if self._rng.random() < self.config.lapse_rate:
            return int(self._rng.integers(0, 2))
        evidence_a = self.artifact_evidence(error_trace_a, video)
        evidence_b = self.artifact_evidence(error_trace_b, video)
        noise = self._rng.normal(0.0, self.config.decision_noise)
        return 0 if (evidence_b - evidence_a + noise) > 0 else 1
