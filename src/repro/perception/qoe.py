"""Quality-of-experience models (paper §8 future work).

The paper's conclusion names two open questions this module models:

* **Latency QoE** — how end-to-end TFR latency maps to user experience.
  Prior work ([5], quoted throughout the paper) puts the acceptable
  per-frame budget at 50-70 ms; we model QoE as a saturating function
  that is flat below ~50 ms, degrades through the 50-70 ms band, and
  collapses beyond it (motion-to-photon mismatch, §2.2).

* **Saccade misdetection QoE** — what false saccade detections cost.
  A false positive renders a *fixating* eye at uniform low resolution:
  a full-field artifact whose visibility follows the VDP model at zero
  eccentricity protection.  A false negative merely wastes the saccade
  saving (latency, not quality).  Combining the detector's
  false-positive rate with the per-event visibility yields the expected
  artifact rate a user sees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.perception.vdp import VdpConfig, discriminability
from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class LatencyQoeConfig:
    """Saturating latency-tolerance model calibrated to the 50-70 ms
    acceptability band of [5]."""

    comfortable_s: float = 0.050
    limit_s: float = 0.070
    collapse_scale_s: float = 0.030

    def __post_init__(self) -> None:
        check_positive("comfortable_s", self.comfortable_s)
        if self.limit_s <= self.comfortable_s:
            raise ValueError("limit_s must exceed comfortable_s")
        check_positive("collapse_scale_s", self.collapse_scale_s)


def latency_qoe(latency_s, config: "LatencyQoeConfig | None" = None):
    """QoE score in (0, 1]: 1 below the comfortable budget, ~0.5 at the
    acceptability limit, exponentially collapsing beyond.  Vectorized."""
    config = config or LatencyQoeConfig()
    latency = np.asarray(latency_s, dtype=np.float64)
    if np.any(latency <= 0):
        raise ValueError("latency must be positive")
    mid = 0.5 * (config.comfortable_s + config.limit_s)
    width = (config.limit_s - config.comfortable_s) / 4.0
    score = 1.0 / (1.0 + np.exp((latency - mid) / width))
    # Keep a floor of graceful degradation rather than exact zero.
    score = 0.02 + 0.98 * score
    return score if score.shape else float(score)


@dataclass(frozen=True)
class SaccadeMisdetectionConfig:
    """Visibility of misdetection artifacts.

    ``fp_visibility`` is the probability a single false-positive
    low-resolution frame is noticed during fixation (full-field drop at
    the fovea: VDP at theta_f -> ~0 protection).  ``fn_latency_cost_s``
    is the latency penalty of missing a saccade (the frame renders at
    the full foveated cost instead of the cheap saccade path).
    """

    frame_rate_hz: float = 100.0
    fixation_fraction: float = 0.9
    vdp: VdpConfig = VdpConfig()

    def __post_init__(self) -> None:
        check_positive("frame_rate_hz", self.frame_rate_hz)
        check_in_range("fixation_fraction", self.fixation_fraction, 0.0, 1.0)


def false_positive_artifact_rate(
    false_positive_rate: float,
    config: "SaccadeMisdetectionConfig | None" = None,
) -> float:
    """Visible artifacts per second caused by false saccade detections.

    Each false positive replaces one fixation frame with a uniform
    low-resolution frame; its visibility is the VDP discriminability of a
    rendering whose protected region has effectively collapsed (theta_f
    -> minimum) while the eye fixates (error irrelevant, content at the
    fovea is degraded).
    """
    check_in_range("false_positive_rate", false_positive_rate, 0.0, 1.0)
    config = config or SaccadeMisdetectionConfig()
    # Full-field resolution drop at the fovea: maximum-visibility event.
    visibility = discriminability(1.0, config.vdp.theta_c_deg, config.vdp)
    events_per_s = (
        false_positive_rate * config.fixation_fraction * config.frame_rate_hz
    )
    return float(events_per_s * visibility)


def misdetection_qoe(
    false_positive_rate: float,
    tolerance_events_per_s: float = 0.5,
    config: "SaccadeMisdetectionConfig | None" = None,
) -> float:
    """QoE in (0, 1]: exponential tolerance to visible artifact events
    (sparse flashes are forgiven; sustained flicker is not)."""
    check_positive("tolerance_events_per_s", tolerance_events_per_s)
    rate = false_positive_artifact_rate(false_positive_rate, config)
    return float(math.exp(-rate / tolerance_events_per_s))
