"""2IFC user-study harness (paper §7.5, Figs. 14-16).

Reproduces the published protocol mechanically: 7 participants x 4
videos x 2 error-trace pairings x 4 repeats = 32 trials each, randomized
per participant, comparing foveated rendering driven by one tracker's
error trace against another's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.perception.observer import ObserverConfig, SyntheticObserver, VideoProfile
from repro.perception.vdp import VdpConfig
from repro.utils.rng import default_rng, spawn_rngs
from repro.utils.validation import check_positive

#: The four stimulus videos of §7.5: two with significant motion, two
#: largely static, spanning bright/dark and indoor/outdoor content.
DEFAULT_VIDEOS: tuple[VideoProfile, ...] = (
    VideoProfile("video1-static-indoor", motion_masking=0.05, brightness=0.6),
    VideoProfile("video2-dynamic-outdoor", motion_masking=0.55, brightness=0.8),
    VideoProfile("video3-static-rendered", motion_masking=0.10, brightness=0.5),
    VideoProfile("video4-dynamic-dark", motion_masking=0.20, brightness=0.25),
)


@dataclass
class StudyResult:
    """Aggregated 2IFC outcomes.

    ``selection_rate`` entries are the fraction of trials in which the
    *candidate* trace (trace A, e.g. POLOViT) was preferred.
    """

    per_participant: np.ndarray  # (P,) selection rates
    per_video: dict[str, float] = field(default_factory=dict)
    per_video_std: dict[str, float] = field(default_factory=dict)

    @property
    def mean_selection(self) -> float:
        return float(self.per_participant.mean())

    @property
    def std_selection(self) -> float:
        return float(self.per_participant.std())


def run_user_study(
    candidate_trace: np.ndarray,
    baseline_trace: np.ndarray,
    videos: "tuple[VideoProfile, ...] | None" = None,
    n_participants: int = 7,
    repeats: int = 4,
    observer_config: "ObserverConfig | None" = None,
    vdp_config: "VdpConfig | None" = None,
    seed: int = 0,
) -> StudyResult:
    """Run the full 2IFC study.

    Args:
        candidate_trace: per-frame tracking-error trace (degrees) of the
            candidate method (POLOViT in the paper).
        baseline_trace: error trace of the comparator (ResNet-34).
    """
    check_positive("n_participants", n_participants)
    check_positive("repeats", repeats)
    videos = videos or DEFAULT_VIDEOS
    rngs = spawn_rngs(seed, n_participants)

    per_participant = np.zeros(n_participants)
    video_wins: dict[str, list[float]] = {v.name: [] for v in videos}

    for p, rng in enumerate(rngs):
        observer = SyntheticObserver(observer_config, vdp_config, seed=rng)
        trial_rng = default_rng(rng.integers(0, 2**31))
        wins = 0
        trials = 0
        participant_video_wins = {v.name: 0 for v in videos}
        for video in videos:
            for _ in range(repeats * 2):  # 2 error pairings per video per repeat
                # Random interval assignment (t1/t2 shuffling of §7.5).
                if trial_rng.random() < 0.5:
                    choice = observer.choose(candidate_trace, baseline_trace, video)
                    candidate_won = choice == 0
                else:
                    choice = observer.choose(baseline_trace, candidate_trace, video)
                    candidate_won = choice == 1
                wins += candidate_won
                participant_video_wins[video.name] += candidate_won
                trials += 1
        per_participant[p] = wins / trials
        for video in videos:
            video_wins[video.name].append(participant_video_wins[video.name] / (repeats * 2))

    per_video = {name: float(np.mean(values)) for name, values in video_wins.items()}
    per_video_std = {name: float(np.std(values)) for name, values in video_wins.items()}
    return StudyResult(
        per_participant=per_participant,
        per_video=per_video,
        per_video_std=per_video_std,
    )
