"""Foveation visible-difference model (FovVideoVDP stand-in; Fig. 11e).

The paper evaluates visual quality with FovVideoVDP: the probability
that an observer can discriminate a foveated rendering (foveal angle
``theta_f``, P95 tracking error ``delta_theta``) from the full-resolution
reference, and the corresponding JND score.

The stand-in is a calibrated psychometric model with a principled core:
a tracking error of ``delta_theta`` displaces the rendered foveal disc
from the true gaze, so high-acuity retina (out to roughly the acuity
margin ``theta_c``) lands on reduced-resolution content whenever
``delta_theta + theta_c > theta_f``.  Detection probability follows a
logistic psychometric function of that unprotected margin.  Constants
are calibrated to Fig. 11e: peak discriminability ~30%, and at
``delta_theta = 10 deg`` the 5% threshold sits near ``theta_f = 15 deg``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_in_range, check_positive


@dataclass(frozen=True)
class VdpConfig:
    """Psychometric constants of the visible-difference model."""

    theta_c_deg: float = 4.0  # acuity margin that must stay inside the fovea
    slope_deg: float = 1.6  # psychometric slope
    peak_probability: float = 0.30  # Fig. 11e's maximum discriminability
    jnd_per_probability: float = 4.0  # right-axis scale of Fig. 11e

    def __post_init__(self) -> None:
        check_positive("theta_c_deg", self.theta_c_deg)
        check_positive("slope_deg", self.slope_deg)
        check_in_range("peak_probability", self.peak_probability, 0.0, 1.0)


def discriminability(theta_f_deg, delta_theta_deg, config: "VdpConfig | None" = None):
    """Probability of telling foveated from full-resolution rendering.

    Vectorized over either argument.
    """
    config = config or VdpConfig()
    theta_f = np.asarray(theta_f_deg, dtype=np.float64)
    delta = np.asarray(delta_theta_deg, dtype=np.float64)
    if np.any(theta_f <= 0):
        raise ValueError("theta_f must be positive")
    if np.any(delta < 0):
        raise ValueError("delta_theta must be non-negative")
    margin = delta + config.theta_c_deg - theta_f
    prob = config.peak_probability / (1.0 + np.exp(-margin / config.slope_deg))
    return prob if prob.shape else float(prob)


def jnd_score(theta_f_deg, delta_theta_deg, config: "VdpConfig | None" = None):
    """JND score (right axis of Fig. 11e), proportional to probability."""
    config = config or VdpConfig()
    return discriminability(theta_f_deg, delta_theta_deg, config) * config.jnd_per_probability


def required_theta_f(
    delta_theta_deg: float,
    target_probability: float = 0.05,
    config: "VdpConfig | None" = None,
) -> float:
    """Smallest foveal angle keeping discriminability below the target —
    the §7.1 'human tolerance' operating point (green-triangle series of
    Fig. 12).  Inverts the psychometric function analytically."""
    config = config or VdpConfig()
    check_in_range("target_probability", target_probability, 1e-6, config.peak_probability)
    if delta_theta_deg < 0:
        raise ValueError("delta_theta must be non-negative")
    ratio = config.peak_probability / target_probability - 1.0
    margin = -config.slope_deg * math.log(ratio)
    theta_f = delta_theta_deg + config.theta_c_deg - margin
    return max(theta_f, 1.0)
