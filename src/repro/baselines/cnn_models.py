"""CNN building blocks and compact backbones for the learned baselines.

The trainable models are width/depth-reduced versions of the published
architectures (this substrate trains in pure numpy); each baseline's
``workload()`` separately reports the *paper-scale* op counts used for
hardware costing, so statistical behaviour and compute costing are
decoupled but consistent in structure.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Conv2d, Linear, Module, Sequential
from repro.nn.tensor import Tensor, concatenate


class ConvReLU(Module):
    """Conv + ReLU unit (batch norm folded away, as in deployed INT8 nets)."""

    def __init__(self, cin: int, cout: int, kernel: int = 3, stride: int = 1, seed=None):
        super().__init__()
        self.conv = Conv2d(cin, cout, kernel, stride=stride, padding=kernel // 2, seed=seed)

    def forward(self, x: Tensor) -> Tensor:
        return self.conv(x).relu()


class ResidualBlock(Module):
    """Two 3x3 convs with an identity (or strided 1x1) shortcut."""

    def __init__(self, cin: int, cout: int, stride: int = 1, seed=None):
        super().__init__()
        base = 0 if seed is None else seed
        self.conv1 = Conv2d(cin, cout, 3, stride=stride, padding=1, seed=base)
        self.conv2 = Conv2d(cout, cout, 3, stride=1, padding=1, seed=base + 1)
        self.shortcut = (
            Conv2d(cin, cout, 1, stride=stride, padding=0, seed=base + 2)
            if stride != 1 or cin != cout
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv1(x).relu()
        out = self.conv2(out)
        identity = self.shortcut(x) if self.shortcut is not None else x
        return (out + identity).relu()


class InceptionResidualBlock(Module):
    """Parallel 1x1 / 3x3 / 5x5 branches, concatenated, projected, residual."""

    def __init__(self, channels: int, seed=None):
        super().__init__()
        base = 0 if seed is None else seed
        branch = max(channels // 4, 2)
        self.b1 = Conv2d(channels, branch, 1, padding=0, seed=base)
        self.b3 = Conv2d(channels, branch, 3, padding=1, seed=base + 1)
        self.b5 = Conv2d(channels, branch, 5, padding=2, seed=base + 2)
        self.proj = Conv2d(3 * branch, channels, 1, padding=0, seed=base + 3)

    def forward(self, x: Tensor) -> Tensor:
        branches = [self.b1(x).relu(), self.b3(x).relu(), self.b5(x).relu()]
        merged = concatenate(branches, axis=1)
        return (self.proj(merged) + x).relu()


class GlobalAvgPool(Module):
    """Average over spatial dims: (N, C, H, W) -> (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))


class CnnGazeRegressor(Module):
    """Backbone + linear head regressing (theta_x, theta_y) in degrees."""

    def __init__(self, backbone: Module, feature_dim: int, seed=None):
        super().__init__()
        self.backbone = backbone
        self.head = Linear(feature_dim, 2, seed=seed)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 3:  # (N, H, W) -> (N, 1, H, W)
            x = x.reshape(x.shape[0], 1, x.shape[1], x.shape[2])
        return self.head(self.backbone(x))


def build_plain_cnn(channels: list[int], seed=None) -> tuple[Module, int]:
    """Stack of stride-2 ConvReLU units ending in global average pooling."""
    base = 0 if seed is None else seed
    layers: list[Module] = []
    cin = 1
    for i, cout in enumerate(channels):
        layers.append(ConvReLU(cin, cout, kernel=3, stride=2, seed=base + i))
        cin = cout
    layers.append(GlobalAvgPool())
    return Sequential(*layers), cin


def build_resnet(stage_channels: list[int], blocks_per_stage: int, seed=None) -> tuple[Module, int]:
    """Compact ResNet: stem conv then strided residual stages."""
    base = 0 if seed is None else seed
    layers: list[Module] = [ConvReLU(1, stage_channels[0], kernel=3, stride=2, seed=base)]
    cin = stage_channels[0]
    for s, cout in enumerate(stage_channels):
        for b in range(blocks_per_stage):
            stride = 2 if (b == 0 and s > 0) else 1
            layers.append(ResidualBlock(cin, cout, stride=stride, seed=base + 10 * s + b + 1))
            cin = cout
    layers.append(GlobalAvgPool())
    return Sequential(*layers), cin


def build_incresnet(channels: int, n_blocks: int, seed=None) -> tuple[Module, int]:
    """Compact Inception-ResNet: stem, inception-residual blocks, pooling."""
    base = 0 if seed is None else seed
    layers: list[Module] = [
        ConvReLU(1, channels, kernel=3, stride=2, seed=base),
        ConvReLU(channels, channels, kernel=3, stride=2, seed=base + 1),
    ]
    for b in range(n_blocks):
        layers.append(InceptionResidualBlock(channels, seed=base + 100 + 7 * b))
    layers.append(GlobalAvgPool())
    return Sequential(*layers), channels
