"""Pupil segmentation and geometric fitting shared by the model-based
baselines (EdGaze, DeepVOG).

Both published systems run a segmentation network and then fit a
geometric eye model; their characteristic failure modes — centroid bias
under eyelid occlusion and total loss of signal during blinks — arise
from the segmentation stage and are faithfully reproduced by the simple
intensity-threshold segmenter below (the synthetic sensor guarantees the
pupil is the darkest region, §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PupilObservation:
    """Result of segmenting one frame."""

    x: float
    y: float
    area: int
    valid: bool


def segment_pupil(
    image: np.ndarray, threshold: float = 0.13, min_pixels: int = 12
) -> PupilObservation:
    """Threshold-and-centroid pupil localization.

    Returns an invalid observation when too few dark pixels exist (blink
    or full occlusion), mirroring segmentation-network dropout.
    """
    mask = image < threshold
    area = int(mask.sum())
    if area < min_pixels:
        h, w = image.shape
        return PupilObservation(x=w / 2.0, y=h / 2.0, area=area, valid=False)
    ys, xs = np.nonzero(mask)
    return PupilObservation(x=float(xs.mean()), y=float(ys.mean()), area=area, valid=True)


def segment_batch(images: np.ndarray, threshold: float = 0.13, min_pixels: int = 12):
    """Segment a stack of frames; returns (centers (N, 2), valid (N,))."""
    centers = np.zeros((len(images), 2))
    valid = np.zeros(len(images), dtype=bool)
    for i, image in enumerate(images):
        obs = segment_pupil(image, threshold, min_pixels)
        centers[i] = (obs.x, obs.y)
        valid[i] = obs.valid
    return centers, valid


@dataclass(frozen=True)
class AffineGazeMap:
    """Least-squares affine map from pupil position to gaze angles."""

    weights: np.ndarray  # (3, 2): rows are [x, y, 1] coefficients

    def __call__(self, centers: np.ndarray) -> np.ndarray:
        centers = np.atleast_2d(centers)
        design = np.column_stack([centers, np.ones(len(centers))])
        return design @ self.weights

    @staticmethod
    def fit(centers: np.ndarray, gaze_deg: np.ndarray) -> "AffineGazeMap":
        if len(centers) < 3:
            raise ValueError("affine fit needs at least 3 observations")
        design = np.column_stack([centers, np.ones(len(centers))])
        weights, *_ = np.linalg.lstsq(design, gaze_deg, rcond=None)
        return AffineGazeMap(weights=weights)


@dataclass(frozen=True)
class PriorGeometricMap:
    """Gaze from pupil position under a *population-prior* eye model.

    DeepVOG-style model-based estimation initializes the eyeball model
    from anatomical priors rather than per-user supervised fitting; the
    resulting gain mismatch produces the systematic errors (>2°) noted in
    §3.1.  Only the rest position (intercept) is calibrated.
    """

    center: np.ndarray  # (2,) pupil position at gaze (0, 0)
    gain: np.ndarray  # (2,) pixels per degree prior

    def __call__(self, centers: np.ndarray) -> np.ndarray:
        centers = np.atleast_2d(centers)
        return (centers - self.center) / self.gain

    @staticmethod
    def calibrate(
        centers: np.ndarray, gaze_deg: np.ndarray, gain_prior: tuple[float, float]
    ) -> "PriorGeometricMap":
        """Supervised intercept calibration (deployment-style, needs labels)."""
        gain = np.asarray(gain_prior, dtype=np.float64)
        center = centers.mean(axis=0) - gain * gaze_deg.mean(axis=0)
        return PriorGeometricMap(center=center, gain=gain)

    @staticmethod
    def calibrate_unsupervised(
        centers: np.ndarray, gain_prior: tuple[float, float]
    ) -> "PriorGeometricMap":
        """Label-free eye-model initialization — how the published
        model-based systems actually work (§3.1): the eyeball rest
        position is taken as the mean observed pupil position (assuming
        the average gaze is straight ahead) and the gain comes from
        anatomical priors.  Both assumptions carry the 'imprecise
        estimation in fitting the eye's center and radius' the paper
        blames for these methods' systematic >2 degree errors."""
        if len(centers) < 3:
            raise ValueError("unsupervised calibration needs at least 3 observations")
        gain = np.asarray(gain_prior, dtype=np.float64)
        return PriorGeometricMap(center=centers.mean(axis=0), gain=gain)
