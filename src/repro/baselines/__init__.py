"""Comparator algorithms from the paper's evaluation (Table 1, §7).

Gaze trackers: NVGaze, EdGaze, DeepVOG, ResNet-34, Inception-ResNet.
Saccade detectors: I-VT (velocity threshold) and I-DT (dispersion).
"""

from repro.baselines.base import (
    ErrorSummary,
    GazeTracker,
    TrainingLog,
    angular_errors,
    predict_in_batches,
    train_regressor,
)
from repro.baselines.deepvog import DeepVOGTracker
from repro.baselines.edgaze import EdGazeTracker
from repro.baselines.incresnet import IncResNetGazeTracker
from repro.baselines.nvgaze import NVGazeTracker
from repro.baselines.pupilfit import (
    AffineGazeMap,
    PriorGeometricMap,
    PupilObservation,
    segment_batch,
    segment_pupil,
)
from repro.baselines.resnet import ResNetGazeTracker
from repro.baselines.saccade_idt import DispersionThresholdDetector
from repro.baselines.saccade_ivt import VelocityThresholdDetector

__all__ = [
    "ErrorSummary",
    "GazeTracker",
    "TrainingLog",
    "angular_errors",
    "predict_in_batches",
    "train_regressor",
    "DeepVOGTracker",
    "EdGazeTracker",
    "IncResNetGazeTracker",
    "NVGazeTracker",
    "AffineGazeMap",
    "PriorGeometricMap",
    "PupilObservation",
    "segment_batch",
    "segment_pupil",
    "ResNetGazeTracker",
    "DispersionThresholdDetector",
    "VelocityThresholdDetector",
]
