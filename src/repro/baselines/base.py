"""Common gaze-tracker interface, metrics, and training loop.

Every tracker — POLOViT and the five baselines of Table 1 — implements
:class:`GazeTracker`, so the evaluation harness can train, score, and
cost them uniformly.  Each tracker also exposes ``workload()``: its
paper-scale per-frame inference op list, consumed by the hardware models
to produce the latency/energy comparisons of §7.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.nn import Module, Adam, Tensor
from repro.nn import functional as F
from repro.utils.rng import default_rng


def angular_errors(pred_deg: np.ndarray, target_deg: np.ndarray) -> np.ndarray:
    """Per-sample gaze error: the L2 norm of the (theta_x, theta_y)
    difference in degrees, the metric of Table 1."""
    pred_deg = np.asarray(pred_deg, dtype=np.float64)
    target_deg = np.asarray(target_deg, dtype=np.float64)
    if pred_deg.shape != target_deg.shape:
        raise ValueError(f"shape mismatch: {pred_deg.shape} vs {target_deg.shape}")
    return np.linalg.norm(pred_deg - target_deg, axis=-1)


@dataclass(frozen=True)
class ErrorSummary:
    """Gaze-error statistics in the format of Table 1 / Fig. 8a."""

    mean: float
    p50: float
    p90: float
    p95: float
    p5: float
    minimum: float
    maximum: float

    @staticmethod
    def from_errors(errors: np.ndarray) -> "ErrorSummary":
        errors = np.asarray(errors, dtype=np.float64)
        if errors.size == 0:
            raise ValueError("no errors to summarize")
        return ErrorSummary(
            mean=float(errors.mean()),
            p50=float(np.percentile(errors, 50)),
            p90=float(np.percentile(errors, 90)),
            p95=float(np.percentile(errors, 95)),
            p5=float(np.percentile(errors, 5)),
            minimum=float(errors.min()),
            maximum=float(errors.max()),
        )


@dataclass
class TrainingLog:
    """Loss trajectory returned by ``fit``."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("empty training log")
        return self.losses[-1]


class GazeTracker(abc.ABC):
    """Interface shared by all gaze-direction estimators."""

    #: human-readable name used in reports (matches the paper's labels)
    name: str = "tracker"

    @abc.abstractmethod
    def fit(self, images: np.ndarray, gaze_deg: np.ndarray, **kwargs) -> TrainingLog:
        """Train or calibrate on (N, H, W) images with (N, 2) gaze labels."""

    @abc.abstractmethod
    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predict (N, 2) gaze angles in degrees."""

    @abc.abstractmethod
    def workload(self) -> list:
        """Paper-scale per-frame inference ops (see :mod:`repro.hw.ops`)."""

    def evaluate(self, images: np.ndarray, gaze_deg: np.ndarray) -> ErrorSummary:
        """Predict and summarize angular errors."""
        return ErrorSummary.from_errors(angular_errors(self.predict(images), gaze_deg))


def iterate_minibatches(n: int, batch_size: int, rng, shuffle: bool = True):
    """Yield index arrays covering ``range(n)`` in batches."""
    order = np.arange(n)
    if shuffle:
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        yield order[start : start + batch_size]


def train_regressor(
    model: Module,
    inputs: np.ndarray,
    targets: np.ndarray,
    *,
    epochs: int = 10,
    batch_size: int = 32,
    lr: float = 1e-3,
    loss_fn=None,
    weight_decay: float = 0.0,
    grad_clip: float = 5.0,
    seed=None,
) -> TrainingLog:
    """Generic minibatch training loop used by all learned trackers.

    ``loss_fn(pred: Tensor, target: np.ndarray) -> Tensor`` defaults to MSE;
    POLOViT passes the performance-aware loss from :mod:`repro.core.losses`.
    """
    rng = default_rng(seed)
    loss_fn = loss_fn or F.mse_loss
    optimizer = Adam(model.parameters(), lr=lr, weight_decay=weight_decay)
    log = TrainingLog()
    model.train()
    for _ in range(epochs):
        epoch_loss = 0.0
        batches = 0
        for idx in iterate_minibatches(len(inputs), batch_size, rng):
            optimizer.zero_grad()
            pred = model(Tensor(inputs[idx]))
            loss = loss_fn(pred, targets[idx])
            loss.backward()
            optimizer.clip_grad_norm(grad_clip)
            optimizer.step()
            epoch_loss += loss.item()
            batches += 1
        log.losses.append(epoch_loss / max(batches, 1))
    model.eval()
    return log


def predict_in_batches(model: Module, inputs: np.ndarray, batch_size: int = 64) -> np.ndarray:
    """Run inference in batches under no-grad."""
    from repro.nn import no_grad

    outputs = []
    model.eval()
    with no_grad():
        for start in range(0, len(inputs), batch_size):
            pred = model(Tensor(inputs[start : start + batch_size]))
            outputs.append(pred.data.copy())
    return np.concatenate(outputs, axis=0)
