"""EdGaze baseline [36]: event-gated segmentation + model fit.

EdGaze runs an eye-segmentation network, fits a geometric model to the
segmented pupil, and skips segmentation entirely when the event density
between consecutive frames is low (reusing the previous result).  The
stand-in reproduces all three stages: threshold segmentation, supervised
affine model fit, and event-density gating.  Workload encodes the
published ``eye_net_m`` segmentation network at OpenEDS resolution.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GazeTracker, TrainingLog
from repro.baselines.pupilfit import PriorGeometricMap, segment_batch, segment_pupil
from repro.hw.ops import NonlinearKind, NonlinearOp, conv2d_as_matmul

#: EdGaze's eye-model gain prior (pixels per degree of the 160x120 rig).
#: Slightly off the synthetic population mean, as a real anatomical prior
#: would be.
_EDGAZE_GAIN_PRIOR = (1.50, 0.96)


class EdGazeTracker(GazeTracker):
    """Segmentation + geometric eye-model fit with event-density reuse.

    Like the published system, the eye model is initialized *without
    gaze labels*: the rest position comes from the mean observed pupil
    position and the gain from an anatomical prior (§3.1's source of
    model-based systematic error).  ``fit`` therefore uses its
    ``gaze_deg`` argument only to satisfy the shared tracker interface.
    """

    name = "EdGaze"

    def __init__(
        self,
        threshold: float = 0.13,
        event_threshold: float = 0.012,
        gain_prior: tuple[float, float] = _EDGAZE_GAIN_PRIOR,
        seed: int = 0,
    ):
        self.threshold = threshold
        self.event_threshold = event_threshold
        self.gain_prior = gain_prior
        self._map: "PriorGeometricMap | None" = None
        self._seed = seed

    def fit(self, images: np.ndarray, gaze_deg: np.ndarray, **kwargs) -> TrainingLog:
        """Initialize the geometric eye model from observed pupils."""
        centers, valid = segment_batch(images, self.threshold)
        if valid.sum() < 3:
            raise ValueError("too few valid pupil segmentations to fit EdGaze")
        self._map = PriorGeometricMap.calibrate_unsupervised(
            centers[valid], self.gain_prior
        )
        residual = np.linalg.norm(self._map(centers[valid]) - gaze_deg[valid], axis=1)
        return TrainingLog(losses=[float(np.mean(residual**2))])

    def predict(self, images: np.ndarray) -> np.ndarray:
        if self._map is None:
            raise RuntimeError("EdGaze must be fit before predict")
        centers, _ = segment_batch(images, self.threshold)
        return self._map(centers)

    def predict_sequence(self, images: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Event-gated sequential prediction.

        Returns (gaze (N, 2), reused (N,) bool).  Frames whose mean absolute
        difference from the last *processed* frame is below the event
        threshold reuse the previous gaze estimate — EdGaze's core latency
        optimization.
        """
        if self._map is None:
            raise RuntimeError("EdGaze must be fit before predict")
        gaze = np.zeros((len(images), 2))
        reused = np.zeros(len(images), dtype=bool)
        last_frame = None
        last_gaze = None
        for i, frame in enumerate(images):
            if last_frame is not None:
                density = float(np.mean(np.abs(frame - last_frame)))
                if density < self.event_threshold:
                    gaze[i] = last_gaze
                    reused[i] = True
                    continue
            obs = segment_pupil(frame, self.threshold)
            last_gaze = self._map(np.array([[obs.x, obs.y]]))[0]
            gaze[i] = last_gaze
            last_frame = frame
        return gaze, reused

    def workload(self) -> list:
        """eye_net_m-scale encoder-decoder segmentation at 640x400."""
        ops = []
        # Encoder: four stride-2 double-conv stages.
        h, w, cin = 640, 400, 1
        for cout in (32, 64, 96, 128):
            h, w = h // 2, w // 2
            ops.append(conv2d_as_matmul(h, w, cin, cout, kernel=3))
            ops.append(conv2d_as_matmul(h, w, cout, cout, kernel=3))
            ops.append(NonlinearOp(NonlinearKind.RELU, 2 * h * w * cout))
            cin = cout
        # Decoder: two upsampling stages producing the pupil mask.
        for cout in (64, 32):
            h, w = h * 2, w * 2
            ops.append(conv2d_as_matmul(h, w, cin, cout, kernel=3))
            ops.append(NonlinearOp(NonlinearKind.RELU, h * w * cout))
            cin = cout
        ops.append(conv2d_as_matmul(h, w, cin, 2, kernel=1))
        ops.append(NonlinearOp(NonlinearKind.SIGMOID, h * w * 2))
        return ops
