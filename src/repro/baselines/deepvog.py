"""DeepVOG baseline [115]: segmentation + constrained geometric model.

DeepVOG fits a full 3-D eyeball model initialized from anatomical priors
rather than supervised regression; §3.1 attributes its systematic >2°
errors to imprecise eye-center/radius initialization and restrictive
geometric constraints.  The stand-in calibrates only the rest position
(intercept) and uses population-prior gains, producing exactly that
per-user systematic gain mismatch.  The workload encodes DeepVOG's
U-Net-scale segmentation network — the heaviest comparator in §7.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GazeTracker, TrainingLog
from repro.baselines.pupilfit import PriorGeometricMap, segment_batch
from repro.hw.ops import NonlinearKind, NonlinearOp, conv2d_as_matmul

#: Anatomical eyeball prior expressed as pixels-per-degree of the
#: 160x120 rig.  Real model-based pipelines derive this from a nominal
#: 12 mm eyeball radius and assumed camera geometry; like any anatomical
#: prior it sits a ~10% off the true per-user gains, which is §3.1's
#: 'imprecise estimation of the eye's center and radius'.
_GAIN_PRIOR = (1.52, 1.23)


class DeepVOGTracker(GazeTracker):
    """Segmentation + prior-constrained geometric gaze fit."""

    name = "DeepVOG"

    def __init__(self, threshold: float = 0.13, gain_prior: tuple[float, float] = _GAIN_PRIOR):
        self.threshold = threshold
        self.gain_prior = gain_prior
        self._map: "PriorGeometricMap | None" = None

    def fit(self, images: np.ndarray, gaze_deg: np.ndarray, **kwargs) -> TrainingLog:
        """Initialize the eyeball model without labels (the published
        pipeline's unsupervised fit; ``gaze_deg`` only reports residuals)."""
        centers, valid = segment_batch(images, self.threshold)
        if valid.sum() < 3:
            raise ValueError("too few valid pupil segmentations to calibrate DeepVOG")
        self._map = PriorGeometricMap.calibrate_unsupervised(
            centers[valid], self.gain_prior
        )
        residual = np.linalg.norm(self._map(centers[valid]) - gaze_deg[valid], axis=1)
        return TrainingLog(losses=[float(np.mean(residual**2))])

    def predict(self, images: np.ndarray) -> np.ndarray:
        if self._map is None:
            raise RuntimeError("DeepVOG must be calibrated before predict")
        centers, _ = segment_batch(images, self.threshold)
        return self._map(centers)

    def workload(self) -> list:
        """U-Net-scale segmentation at 320x240 (≈7 G MACs)."""
        ops = []
        h, w = 320, 240
        cin = 1
        channels = (32, 64, 128, 256)
        # Encoder: double-conv blocks with stride-2 downsampling.
        for cout in channels:
            ops.append(conv2d_as_matmul(h, w, cin, cout, kernel=3))
            ops.append(conv2d_as_matmul(h, w, cout, cout, kernel=3))
            ops.append(NonlinearOp(NonlinearKind.RELU, 2 * h * w * cout))
            h, w = h // 2, w // 2
            cin = cout
        # Decoder mirrors the encoder.
        for cout in reversed(channels[:-1]):
            h, w = h * 2, w * 2
            ops.append(conv2d_as_matmul(h, w, cin, cout, kernel=3))
            ops.append(conv2d_as_matmul(h, w, cout, cout, kernel=3))
            ops.append(NonlinearOp(NonlinearKind.RELU, 2 * h * w * cout))
            cin = cout
        ops.append(conv2d_as_matmul(h * 2, w * 2, cin, 1, kernel=1))
        ops.append(NonlinearOp(NonlinearKind.SIGMOID, h * 2 * w * 2))
        return ops
