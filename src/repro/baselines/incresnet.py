"""Inception-ResNet baseline [9]: a heavier ensemble-style comparator.

Table 1 places it close to ResNet-34 in accuracy (mean 1.72°, P95 12.4°)
while §7 shows it as the most compute-hungry learned baseline.  The
trainable stand-in uses inception-residual blocks; the workload encodes
an Inception-ResNet-scale network at 299x299.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GazeTracker, TrainingLog, predict_in_batches, train_regressor
from repro.baselines.cnn_models import CnnGazeRegressor, build_incresnet
from repro.hw.ops import NonlinearKind, NonlinearOp, conv2d_as_matmul
from repro.utils.image import resize_bilinear


class IncResNetGazeTracker(GazeTracker):
    """Compact inception-residual gaze regressor trained with MSE."""

    name = "IncResNet"

    def __init__(self, input_size: int = 32, seed: int = 0):
        self.input_size = input_size
        backbone, feat = build_incresnet(channels=16, n_blocks=3, seed=seed)
        self.model = CnnGazeRegressor(backbone, feat, seed=seed + 99)
        self._seed = seed

    def _prepare(self, images: np.ndarray) -> np.ndarray:
        resized = resize_bilinear(images.astype(np.float64), self.input_size, self.input_size)
        return resized - 0.5

    def fit(self, images: np.ndarray, gaze_deg: np.ndarray, **kwargs) -> TrainingLog:
        kwargs.setdefault("epochs", 12)
        kwargs.setdefault("lr", 1.5e-3)
        kwargs.setdefault("seed", self._seed)
        return train_regressor(self.model, self._prepare(images), gaze_deg, **kwargs)

    def predict(self, images: np.ndarray) -> np.ndarray:
        return predict_in_batches(self.model, self._prepare(images))

    def workload(self) -> list:
        """Inception-ResNet-scale network at 299x299 (≈4.4 G MACs)."""
        ops = []
        # Stem: three stride-2 convs.
        size, cin = 299, 1
        for cout in (32, 64, 96):
            size = size // 2
            ops.append(conv2d_as_matmul(size, size, cin, cout, kernel=3))
            ops.append(NonlinearOp(NonlinearKind.RELU, size * size * cout))
            cin = cout
        # Inception-residual stages: branches approximated by their GEMM sum.
        stage_specs = [  # (blocks, channels, spatial)
            (5, 128, 35),
            (10, 256, 17),
            (5, 448, 8),
        ]
        for blocks, channels, size in stage_specs:
            branch = channels // 4
            for _ in range(blocks):
                ops.append(conv2d_as_matmul(size, size, channels, branch, kernel=1))
                ops.append(conv2d_as_matmul(size, size, channels, branch, kernel=3))
                ops.append(conv2d_as_matmul(size, size, channels, branch, kernel=5))
                ops.append(conv2d_as_matmul(size, size, 3 * branch, channels, kernel=1))
                ops.append(NonlinearOp(NonlinearKind.RELU, size * size * channels))
        return ops
