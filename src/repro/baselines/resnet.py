"""ResNet-34 baseline [44]: the strongest appearance-based comparator.

Table 1 reports it achieving the lowest baseline mean error (1.52°) but a
long error tail (P95 = 13.15°) because it is trained to minimize the
*average* error only — exactly the failure mode POLOViT's minimax loss
targets.  The trainable stand-in is a compact residual network trained
with plain MSE; the workload encodes ResNet-34 at 224x224.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GazeTracker, TrainingLog, predict_in_batches, train_regressor
from repro.baselines.cnn_models import CnnGazeRegressor, build_resnet
from repro.hw.ops import NonlinearKind, NonlinearOp, conv2d_as_matmul
from repro.utils.image import resize_bilinear


class ResNetGazeTracker(GazeTracker):
    """Compact residual-network gaze regressor trained with MSE."""

    name = "ResNet-34"

    def __init__(self, input_size: int = 32, seed: int = 0):
        self.input_size = input_size
        backbone, feat = build_resnet([8, 16, 32], blocks_per_stage=1, seed=seed)
        self.model = CnnGazeRegressor(backbone, feat, seed=seed + 99)
        self._seed = seed

    def _prepare(self, images: np.ndarray) -> np.ndarray:
        resized = resize_bilinear(images.astype(np.float64), self.input_size, self.input_size)
        return resized - 0.5

    def fit(self, images: np.ndarray, gaze_deg: np.ndarray, **kwargs) -> TrainingLog:
        kwargs.setdefault("epochs", 12)
        kwargs.setdefault("lr", 1.5e-3)
        kwargs.setdefault("seed", self._seed)
        return train_regressor(self.model, self._prepare(images), gaze_deg, **kwargs)

    def predict(self, images: np.ndarray) -> np.ndarray:
        return predict_in_batches(self.model, self._prepare(images))

    def workload(self) -> list:
        """ResNet-34 at 224x224 (≈1.8 G MACs), stage-by-stage."""
        ops = []
        # Stem: 7x7/2 conv to 64 channels, then 3x3/2 max pool.
        ops.append(conv2d_as_matmul(112, 112, 1, 64, kernel=7))
        ops.append(NonlinearOp(NonlinearKind.RELU, 112 * 112 * 64))
        stage_specs = [  # (blocks, channels, spatial)
            (3, 64, 56),
            (4, 128, 28),
            (6, 256, 14),
            (3, 512, 7),
        ]
        cin = 64
        for blocks, cout, size in stage_specs:
            for b in range(blocks):
                in_ch = cin if b == 0 else cout
                ops.append(conv2d_as_matmul(size, size, in_ch, cout, kernel=3))
                ops.append(conv2d_as_matmul(size, size, cout, cout, kernel=3))
                ops.append(NonlinearOp(NonlinearKind.RELU, 2 * size * size * cout))
            cin = cout
        return ops
