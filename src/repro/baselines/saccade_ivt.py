"""I-VT: velocity-threshold saccade detection [33, 80, 95].

The classical comparator for POLONet's learned saccade detector: it
differentiates the gaze-position signal and flags samples whose angular
velocity exceeds a threshold.  Note the dependence it carries — it needs
an accurate gaze estimate *first*, which is exactly the computational
cost POLO's §4.1 detector avoids.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


class VelocityThresholdDetector:
    """I-VT saccade detector over sampled gaze positions."""

    def __init__(self, threshold_deg_s: float = 70.0, smoothing: int = 1):
        check_positive("threshold_deg_s", threshold_deg_s)
        if smoothing < 1:
            raise ValueError(f"smoothing must be >= 1, got {smoothing}")
        self.threshold_deg_s = threshold_deg_s
        self.smoothing = smoothing

    def velocities(self, gaze_deg: np.ndarray, fps: float) -> np.ndarray:
        """Angular speed (deg/s) per sample via central differences."""
        gaze_deg = np.asarray(gaze_deg, dtype=np.float64)
        if gaze_deg.ndim != 2 or gaze_deg.shape[1] != 2:
            raise ValueError(f"gaze must be (T, 2), got {gaze_deg.shape}")
        deltas = np.gradient(gaze_deg, axis=0) * fps
        speed = np.linalg.norm(deltas, axis=1)
        if self.smoothing > 1:
            kernel = np.ones(self.smoothing) / self.smoothing
            speed = np.convolve(speed, kernel, mode="same")
        return speed

    def detect(self, gaze_deg: np.ndarray, fps: float) -> np.ndarray:
        """Boolean saccade flags per sample."""
        return self.velocities(gaze_deg, fps) > self.threshold_deg_s
