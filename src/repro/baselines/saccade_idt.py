"""I-DT: dispersion-threshold saccade detection [92].

Classifies windows whose gaze-point spatial dispersion stays below a
threshold as fixations; everything else is saccadic.  Like I-VT it
requires a continuously running high-precision gaze estimate (§3.2).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive


class DispersionThresholdDetector:
    """I-DT saccade detector over sampled gaze positions."""

    def __init__(self, dispersion_deg: float = 1.0, window: int = 8):
        check_positive("dispersion_deg", dispersion_deg)
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.dispersion_deg = dispersion_deg
        self.window = window

    @staticmethod
    def _dispersion(points: np.ndarray) -> float:
        """Salvucci-Goldberg dispersion: (max-min)_x + (max-min)_y."""
        spans = points.max(axis=0) - points.min(axis=0)
        return float(spans.sum())

    def detect(self, gaze_deg: np.ndarray, fps: float = 0.0) -> np.ndarray:
        """Boolean saccade flags per sample (``fps`` accepted for interface
        parity with I-VT; dispersion is resolution-independent)."""
        gaze_deg = np.asarray(gaze_deg, dtype=np.float64)
        if gaze_deg.ndim != 2 or gaze_deg.shape[1] != 2:
            raise ValueError(f"gaze must be (T, 2), got {gaze_deg.shape}")
        n = len(gaze_deg)
        is_fixation = np.zeros(n, dtype=bool)
        start = 0
        while start + self.window <= n:
            stop = start + self.window
            if self._dispersion(gaze_deg[start:stop]) <= self.dispersion_deg:
                # Grow the window while dispersion stays under threshold.
                while stop < n and self._dispersion(gaze_deg[start : stop + 1]) <= self.dispersion_deg:
                    stop += 1
                is_fixation[start:stop] = True
                start = stop
            else:
                start += 1
        return ~is_fixation
