"""NVGaze baseline [56]: a deliberately tiny appearance-based CNN.

NVGaze targets sub-millisecond inference with a very small network; in
the paper's evaluation (Table 1) that capacity limit shows up as the
largest mean error (6.81°) and unstable tails.  The trainable stand-in
is a narrow plain CNN; the workload reflects the published network's
scale (a few tens of millions of MACs at 127x127 input).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import GazeTracker, TrainingLog, predict_in_batches, train_regressor
from repro.baselines.cnn_models import CnnGazeRegressor, build_plain_cnn
from repro.hw.ops import NonlinearKind, NonlinearOp, conv2d_as_matmul
from repro.utils.image import resize_bilinear


class NVGazeTracker(GazeTracker):
    """Tiny plain-CNN gaze regressor."""

    name = "NVGaze"

    def __init__(self, input_size: int = 32, seed: int = 0):
        self.input_size = input_size
        backbone, feat = build_plain_cnn([4, 6, 8], seed=seed)
        self.model = CnnGazeRegressor(backbone, feat, seed=seed + 99)
        self._seed = seed

    def _prepare(self, images: np.ndarray) -> np.ndarray:
        resized = resize_bilinear(images.astype(np.float64), self.input_size, self.input_size)
        return resized - 0.5

    def fit(self, images: np.ndarray, gaze_deg: np.ndarray, **kwargs) -> TrainingLog:
        kwargs.setdefault("epochs", 8)
        kwargs.setdefault("lr", 2e-3)
        kwargs.setdefault("seed", self._seed)
        return train_regressor(self.model, self._prepare(images), gaze_deg, **kwargs)

    def predict(self, images: np.ndarray) -> np.ndarray:
        return predict_in_batches(self.model, self._prepare(images))

    def workload(self) -> list:
        """Published-scale NVGaze: 6 stride-2 convs at 127x127 input."""
        ops = []
        size, cin = 128, 1
        for cout in (16, 24, 36, 54, 81, 122):
            size //= 2
            ops.append(conv2d_as_matmul(size, size, cin, cout, kernel=3))
            ops.append(NonlinearOp(NonlinearKind.RELU, size * size * cout))
            cin = cout
        return ops
