"""POLO reproduction: Process Only Where You Look (ISCA 2025).

A pure-Python implementation of the paper's full stack:

* :mod:`repro.core` — POLONet (saccade detection, gaze reuse, analytical
  cropping, token-pruned gaze ViT, performance-aware training).
* :mod:`repro.nn` — the numpy autograd framework everything trains on.
* :mod:`repro.eye` — synthetic OpenEDS-like near-eye data substrate.
* :mod:`repro.baselines` — NVGaze / EdGaze / DeepVOG / ResNet /
  IncResNet gaze trackers and I-VT / I-DT saccade detectors.
* :mod:`repro.hw` — POLO accelerator, per-baseline accelerators,
  sensor/MIPI/NoC, and the GPU-inference ablation model.
* :mod:`repro.render` — foveation geometry, GPU rendering-latency model,
  and a real mini path tracer.
* :mod:`repro.perception` — acuity, visible-difference model, synthetic
  2IFC user study.
* :mod:`repro.system` — end-to-end TFR latency composition (Eqs. 6-8).
* :mod:`repro.experiments` — one module per paper table/figure.
"""

__version__ = "1.0.0"

from repro.core import PoloNet, PoloViT, SaccadeDetector, build_polonet
from repro.eye import make_openeds_like, synthesize_dataset
from repro.system import TfrSystem, TrackerSystemProfile

__all__ = [
    "__version__",
    "PoloNet",
    "PoloViT",
    "SaccadeDetector",
    "build_polonet",
    "make_openeds_like",
    "synthesize_dataset",
    "TfrSystem",
    "TrackerSystemProfile",
]
