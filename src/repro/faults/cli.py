"""``python -m repro chaos`` — run a reproducible chaos scenario.

Starts from the canonical acceptance scenario (10% sensor frame drops,
noise-burst/occlusion mix, one worker crash, one latency-spike window)
and lets flags scale or disable each fault class.  The printed report is
byte-identical across runs of the same flags — ``--compare-fault-free``
additionally replays the identical fleet with every fault disabled and
prints the degradation budget actually consumed.
"""

from __future__ import annotations

import argparse
from dataclasses import fields, replace

from repro.faults.config import (
    ChaosConfig,
    InputFaultConfig,
    SoftErrorConfig,
    WorkerFaultSchedule,
    default_chaos_scenario,
)
from repro.faults.runtime import ChaosRuntime, run_chaos
from repro.obs.cli import (
    add_obs_arguments,
    add_slo_arguments,
    emit_obs_artifacts,
    emit_slo_artifacts,
    obs_from_args,
    resolve_obs_out,
)
from repro.recover.cli import add_checkpoint_arguments, run_checkpointed_cli
from repro.serve.config import AdmissionPolicy, ServeConfig
from repro.serve.telemetry import FleetReport, format_fleet_report


def _checked_overrides(overrides: dict, cls, what: str) -> dict:
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise ValueError(
            f"unknown {what} params: {unknown} (known: {sorted(known)})"
        )
    return dict(overrides)


def config_from_params(params: dict) -> ChaosConfig:
    """Campaign params -> a validated :class:`ChaosConfig`.

    Starts from :func:`default_chaos_scenario` (exactly like the CLI)
    and applies overrides: ``"serve"`` / ``"input_faults"`` sub-dicts of
    dataclass field overrides, plus the scalar knobs the CLI exposes
    (``seed``, ``no_worker_faults``, ``soft_error_fit``,
    ``soft_error_accel``, ``fault_free``).  Unknown keys are rejected.
    """
    params = dict(params)
    seed = int(params.pop("seed", 0))
    base = default_chaos_scenario(seed=seed)

    serve_over = _checked_overrides(params.pop("serve", {}), ServeConfig, "chaos serve")
    if isinstance(serve_over.get("admission"), str):
        serve_over["admission"] = AdmissionPolicy(serve_over["admission"])
    serve = replace(base.serve, **serve_over)

    faults_over = _checked_overrides(
        params.pop("input_faults", {}), InputFaultConfig, "chaos input-fault"
    )
    if "occlusion_level" in faults_over:
        faults_over["occlusion_level"] = tuple(faults_over["occlusion_level"])
    input_faults = replace(base.input_faults, **faults_over)

    no_worker_faults = bool(params.pop("no_worker_faults", False))
    worker_faults = base.worker_faults
    if no_worker_faults or any(
        c.worker_id >= serve.n_workers for c in worker_faults.crashes
    ):
        worker_faults = WorkerFaultSchedule()

    fit = float(params.pop("soft_error_fit", 0.0))
    accel = float(params.pop("soft_error_accel", 5e10))
    soft_errors = SoftErrorConfig.inactive()
    if fit > 0:
        soft_errors = SoftErrorConfig(
            fit_per_mbit=fit, acceleration=accel, seed=seed
        )

    fault_free = bool(params.pop("fault_free", False))
    if params:
        raise ValueError(
            f"unknown chaos params: {sorted(params)} (known: "
            "['fault_free', 'input_faults', 'no_worker_faults', 'seed', "
            "'serve', 'soft_error_accel', 'soft_error_fit'])"
        )
    config = ChaosConfig(
        serve=serve,
        input_faults=input_faults,
        worker_faults=worker_faults,
        recovery=base.recovery,
        watchdog=base.watchdog,
        profile=base.profile,
        soft_errors=soft_errors,
        fault_seed=seed,
    )
    if fault_free:
        config = config.fault_free()
    return config


# ----------------------------------------------------------------------
# Campaign entry point (repro.exp)
# ----------------------------------------------------------------------
def resolve_run_config(params: dict) -> dict:
    """Validate campaign params -> the fully resolved canonical dict."""
    from repro.recover.configio import chaos_config_to_dict

    return {"kind": "chaos", "config": chaos_config_to_dict(config_from_params(params))}


def run_from_config(params: dict, obs=None) -> FleetReport:
    """Campaign entry point: params dict -> the run's FleetReport."""
    from repro.recover.configio import chaos_config_from_dict

    resolved = resolve_run_config(params)
    return run_chaos(chaos_config_from_dict(resolved["config"]), obs=obs)


def build_parser() -> argparse.ArgumentParser:
    base = default_chaos_scenario()
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Run a seeded fault-injection scenario on the serving fleet.",
    )
    parser.add_argument("--sessions", type=int, default=base.serve.n_sessions)
    parser.add_argument("--duration", type=float, default=base.serve.duration_s,
                        help="simulated window in seconds")
    parser.add_argument("--workers", type=int, default=base.serve.n_workers)
    parser.add_argument("--seed", type=int, default=0,
                        help="seeds both the fleet and the fault streams")
    parser.add_argument("--drop-rate", type=float,
                        default=base.input_faults.frame_drop_rate,
                        help="i.i.d. sensor frame-drop probability")
    parser.add_argument("--noise-burst-rate", type=float,
                        default=base.input_faults.noise_burst_rate_hz,
                        help="tracking noise bursts per second per session")
    parser.add_argument("--occlusion-rate", type=float,
                        default=base.input_faults.occlusion_rate_hz,
                        help="eyelid occlusion episodes per second per session")
    parser.add_argument("--bit-error-rate", type=float,
                        default=base.input_faults.bit_error_rate,
                        help="MIPI per-bit transient error probability")
    parser.add_argument("--no-worker-faults", action="store_true",
                        help="disable the crash/stall/spike schedule")
    parser.add_argument("--soft-error-fit", type=float, default=0.0,
                        help="silicon soft-error FIT/Mbit rate composed onto "
                        "the scenario (0 disables; see repro.reliability)")
    parser.add_argument("--soft-error-accel", type=float, default=5e10,
                        help="soft-error acceleration factor (wall-time "
                        "compression of the FIT rate)")
    parser.add_argument("--fault-free", action="store_true",
                        help="disable every fault (baseline run)")
    parser.add_argument("--compare-fault-free", action="store_true",
                        help="also run the zero-fault baseline and print the "
                        "degradation budget consumed")
    parser.add_argument("--max-session-rows", type=int, default=8)
    add_checkpoint_arguments(parser)
    add_obs_arguments(parser)
    add_slo_arguments(parser)
    return parser


def config_from_args(args: argparse.Namespace) -> ChaosConfig:
    return config_from_params(
        {
            "seed": args.seed,
            "serve": {
                "n_sessions": args.sessions,
                "duration_s": args.duration,
                "n_workers": args.workers,
            },
            "input_faults": {
                "frame_drop_rate": args.drop_rate,
                "noise_burst_rate_hz": args.noise_burst_rate,
                "occlusion_rate_hz": args.occlusion_rate,
                "bit_error_rate": args.bit_error_rate,
            },
            "no_worker_faults": args.no_worker_faults,
            "soft_error_fit": args.soft_error_fit,
            "soft_error_accel": args.soft_error_accel,
            "fault_free": args.fault_free,
        }
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        config = config_from_args(args)
    except ValueError as err:
        parser.error(str(err))
    if args.kill_at_event is not None and args.checkpoint_dir is None:
        parser.error("--kill-at-event requires --checkpoint-dir")
    if args.slo is not None and args.checkpoint_dir is not None:
        parser.error("--slo and --checkpoint-dir are mutually exclusive "
                     "(the SLO engine is not checkpointed)")
    obs = obs_from_args(args)
    slo_engine = None
    if args.slo is not None:
        from repro.obs.config import Obs, ObsConfig
        from repro.obs.slo import SloConfigError, SloEngine, resolve_slo_config

        if obs is None:
            obs = Obs(ObsConfig(top_k=args.obs_top))
        try:
            slo_config = resolve_slo_config(args.slo, config.serve.deadline_s)
        except SloConfigError as err:
            parser.error(str(err))
        slo_engine = SloEngine(slo_config, obs)
    if args.checkpoint_dir is not None:
        runtime = ChaosRuntime(config, obs=obs)
        report = run_checkpointed_cli(runtime, args, parser)
        if not isinstance(report, FleetReport):
            return report  # simulated crash exit code
    elif slo_engine is not None:
        runtime = ChaosRuntime(config, obs=obs)
        runtime.attach_slo(slo_engine)
        report = runtime.run()
    else:
        report = run_chaos(config, obs=obs)
    print(format_fleet_report(report, max_session_rows=args.max_session_rows))
    if slo_engine is not None:
        from repro.obs.slo import evaluate_summary, format_summary_verdicts
        from repro.serve.telemetry import fleet_summary_metrics

        print("\n--- SLO verdicts ---\n")
        print(slo_engine.format_verdicts())
        summary_objectives = slo_engine.config.summary_objectives
        if summary_objectives:
            rows = evaluate_summary(
                summary_objectives, fleet_summary_metrics(report)
            )
            print()
            print(format_summary_verdicts(rows))
    if args.obs:
        from repro.recover.configio import chaos_config_to_dict

        resolved = {"kind": "chaos", "config": chaos_config_to_dict(config)}
        out_dir = resolve_obs_out(args.obs_out, "chaos", resolved)
        emit_obs_artifacts(obs, out_dir, top_k=args.obs_top)
        if slo_engine is not None:
            emit_slo_artifacts(slo_engine, out_dir)
    if args.compare_fault_free and not args.fault_free:
        baseline = run_chaos(config.fault_free())
        print("\n--- fault-free baseline ---\n")
        print(format_fleet_report(baseline, max_session_rows=args.max_session_rows))
        miss = report.deadline_miss_rate
        base_miss = baseline.deadline_miss_rate
        ratio = miss / base_miss if base_miss > 0 else float("inf")
        print(
            f"\nDeadline misses under faults: {miss:.2%} vs {base_miss:.2%} "
            f"fault-free ({ratio:.2f}x)"
            if base_miss > 0
            else f"\nDeadline misses under faults: {miss:.2%} "
            f"(fault-free baseline missed none)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
