"""``python -m repro chaos`` — run a reproducible chaos scenario.

Starts from the canonical acceptance scenario (10% sensor frame drops,
noise-burst/occlusion mix, one worker crash, one latency-spike window)
and lets flags scale or disable each fault class.  The printed report is
byte-identical across runs of the same flags — ``--compare-fault-free``
additionally replays the identical fleet with every fault disabled and
prints the degradation budget actually consumed.
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.faults.config import (
    ChaosConfig,
    InputFaultConfig,
    SoftErrorConfig,
    WorkerFaultSchedule,
    default_chaos_scenario,
)
from repro.faults.runtime import ChaosRuntime, run_chaos
from repro.obs.cli import add_obs_arguments, emit_obs_artifacts, obs_from_args
from repro.recover.cli import add_checkpoint_arguments, run_checkpointed_cli
from repro.serve.telemetry import FleetReport, format_fleet_report


def build_parser() -> argparse.ArgumentParser:
    base = default_chaos_scenario()
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Run a seeded fault-injection scenario on the serving fleet.",
    )
    parser.add_argument("--sessions", type=int, default=base.serve.n_sessions)
    parser.add_argument("--duration", type=float, default=base.serve.duration_s,
                        help="simulated window in seconds")
    parser.add_argument("--workers", type=int, default=base.serve.n_workers)
    parser.add_argument("--seed", type=int, default=0,
                        help="seeds both the fleet and the fault streams")
    parser.add_argument("--drop-rate", type=float,
                        default=base.input_faults.frame_drop_rate,
                        help="i.i.d. sensor frame-drop probability")
    parser.add_argument("--noise-burst-rate", type=float,
                        default=base.input_faults.noise_burst_rate_hz,
                        help="tracking noise bursts per second per session")
    parser.add_argument("--occlusion-rate", type=float,
                        default=base.input_faults.occlusion_rate_hz,
                        help="eyelid occlusion episodes per second per session")
    parser.add_argument("--bit-error-rate", type=float,
                        default=base.input_faults.bit_error_rate,
                        help="MIPI per-bit transient error probability")
    parser.add_argument("--no-worker-faults", action="store_true",
                        help="disable the crash/stall/spike schedule")
    parser.add_argument("--soft-error-fit", type=float, default=0.0,
                        help="silicon soft-error FIT/Mbit rate composed onto "
                        "the scenario (0 disables; see repro.reliability)")
    parser.add_argument("--soft-error-accel", type=float, default=5e10,
                        help="soft-error acceleration factor (wall-time "
                        "compression of the FIT rate)")
    parser.add_argument("--fault-free", action="store_true",
                        help="disable every fault (baseline run)")
    parser.add_argument("--compare-fault-free", action="store_true",
                        help="also run the zero-fault baseline and print the "
                        "degradation budget consumed")
    parser.add_argument("--max-session-rows", type=int, default=8)
    add_checkpoint_arguments(parser)
    add_obs_arguments(parser)
    return parser


def config_from_args(args: argparse.Namespace) -> ChaosConfig:
    base = default_chaos_scenario(seed=args.seed)
    serve = replace(
        base.serve,
        n_sessions=args.sessions,
        duration_s=args.duration,
        n_workers=args.workers,
    )
    input_faults = replace(
        base.input_faults,
        frame_drop_rate=args.drop_rate,
        noise_burst_rate_hz=args.noise_burst_rate,
        occlusion_rate_hz=args.occlusion_rate,
        bit_error_rate=args.bit_error_rate,
    )
    worker_faults = base.worker_faults
    if args.no_worker_faults or any(
        c.worker_id >= args.workers for c in worker_faults.crashes
    ):
        worker_faults = WorkerFaultSchedule()
    soft_errors = SoftErrorConfig.inactive()
    if args.soft_error_fit > 0:
        soft_errors = SoftErrorConfig(
            fit_per_mbit=args.soft_error_fit,
            acceleration=args.soft_error_accel,
            seed=args.seed,
        )
    config = ChaosConfig(
        serve=serve,
        input_faults=input_faults,
        worker_faults=worker_faults,
        recovery=base.recovery,
        watchdog=base.watchdog,
        profile=base.profile,
        soft_errors=soft_errors,
        fault_seed=args.seed,
    )
    if args.fault_free:
        config = config.fault_free()
    return config


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        config = config_from_args(args)
    except ValueError as err:
        parser.error(str(err))
    if args.kill_at_event is not None and args.checkpoint_dir is None:
        parser.error("--kill-at-event requires --checkpoint-dir")
    obs = obs_from_args(args)
    if args.checkpoint_dir is not None:
        runtime = ChaosRuntime(config, obs=obs)
        report = run_checkpointed_cli(runtime, args, parser)
        if not isinstance(report, FleetReport):
            return report  # simulated crash exit code
    else:
        report = run_chaos(config, obs=obs)
    print(format_fleet_report(report, max_session_rows=args.max_session_rows))
    if obs is not None:
        emit_obs_artifacts(obs, args.obs_out, top_k=args.obs_top)
    if args.compare_fault_free and not args.fault_free:
        baseline = run_chaos(config.fault_free())
        print("\n--- fault-free baseline ---\n")
        print(format_fleet_report(baseline, max_session_rows=args.max_session_rows))
        miss = report.deadline_miss_rate
        base_miss = baseline.deadline_miss_rate
        ratio = miss / base_miss if base_miss > 0 else float("inf")
        print(
            f"\nDeadline misses under faults: {miss:.2%} vs {base_miss:.2%} "
            f"fault-free ({ratio:.2f}x)"
            if base_miss > 0
            else f"\nDeadline misses under faults: {miss:.2%} "
            f"(fault-free baseline missed none)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
