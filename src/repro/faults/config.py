"""Configuration of the fault-injection and graceful-degradation layer.

A chaos run is fully described by one :class:`ChaosConfig`: the serving
fleet (``repro.serve.ServeConfig``), the input-fault mix applied to every
session's sensing chain, the declarative worker-fault schedule, the
recovery policy (retries, backoff, circuit breaker), and the
tracking-quality watchdog thresholds.  Everything is seeded — the input
faults from ``fault_seed`` (independent of the fleet's oculomotor seed),
the worker faults from the schedule's literal times — so the same config
reproduces bit-identical fault and degradation telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.reliability.softerror import SoftErrorConfig
from repro.serve.config import ServeConfig
from repro.serve.workers import (
    LatencySpike,
    WorkerCrash,
    WorkerFaultSchedule,
    WorkerStall,
)
from repro.system.tfr import TrackerSystemProfile
from repro.system.watchdog import WatchdogConfig
from repro.utils.validation import check_in_range, check_positive, check_probability

#: Default POLO-like operating point: INT8 POLOViT fresh-prediction
#: latency with on-device bypass paths and the paper's P95 error budget.
DEFAULT_TRACKER_PROFILE = TrackerSystemProfile(
    name="POLO-INT8",
    td_predict_s=2.4e-3,
    delta_theta_deg=2.92,
    td_saccade_s=1.2e-4,
    td_reuse_s=1.2e-4,
)


@dataclass(frozen=True)
class InputFaultConfig:
    """Sensing-chain fault mix, applied independently per session.

    * ``frame_drop_rate`` — i.i.d. probability the sensor delivers no
      frame (exposure abort, readout overrun).
    * noise bursts — windows of elevated tracking error (Poisson arrivals
      at ``noise_burst_rate_hz``, each ``noise_burst_duration_s`` long)
      adding N(0, ``noise_burst_std_deg``) to the gaze signal.
    * occlusion episodes — partial/total eyelid occlusion (droop, rubbing,
      HMD slip) multiplying eyelid openness down by a sampled level.
    * ``bit_error_rate`` — per-bit MIPI transient error probability; a
      corrupted frame costs one link-layer retransmission and dents the
      frame's confidence.
    """

    frame_drop_rate: float = 0.0
    noise_burst_rate_hz: float = 0.0
    noise_burst_duration_s: float = 0.3
    noise_burst_std_deg: float = 4.0
    occlusion_rate_hz: float = 0.0
    occlusion_duration_s: float = 0.25
    occlusion_level: tuple[float, float] = (0.6, 1.0)
    bit_error_rate: float = 0.0

    def __post_init__(self) -> None:
        check_probability("frame_drop_rate", self.frame_drop_rate)
        check_positive("noise_burst_rate_hz", self.noise_burst_rate_hz, strict=False)
        check_positive("noise_burst_duration_s", self.noise_burst_duration_s)
        check_positive("noise_burst_std_deg", self.noise_burst_std_deg, strict=False)
        check_positive("occlusion_rate_hz", self.occlusion_rate_hz, strict=False)
        check_positive("occlusion_duration_s", self.occlusion_duration_s)
        lo, hi = self.occlusion_level
        check_in_range("occlusion_level[0]", lo, 0.0, 1.0)
        check_in_range("occlusion_level[1]", hi, lo, 1.0)
        check_probability("bit_error_rate", self.bit_error_rate)

    @property
    def any_active(self) -> bool:
        return (
            self.frame_drop_rate > 0
            or self.noise_burst_rate_hz > 0
            or self.occlusion_rate_hz > 0
            or self.bit_error_rate > 0
        )


@dataclass(frozen=True)
class RecoveryConfig:
    """Retry, backoff, and circuit-breaker policy of the chaos runtime.

    A failed batch's frames are requeued after an exponential backoff
    (``backoff_base_s * backoff_factor ** retries``) — unless the retry
    could not complete before the frame's deadline, in which case the
    frame is *degraded* to buffered-gaze reuse right away (graceful
    degradation beats a guaranteed deadline miss).  ``max_retries``
    exhaustion also degrades, never drops.  Per-worker circuit breakers
    open after ``breaker_threshold`` consecutive failures and re-admit
    the worker through a half-open probe after ``breaker_cooldown_s``.
    """

    max_retries: int = 2
    backoff_base_s: float = 1.0e-3
    backoff_factor: float = 2.0
    dispatch_timeout_s: float = 0.05
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 0.25

    def __post_init__(self) -> None:
        check_positive("max_retries", self.max_retries, strict=False)
        check_positive("backoff_base_s", self.backoff_base_s)
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        check_positive("dispatch_timeout_s", self.dispatch_timeout_s)
        check_positive("breaker_threshold", self.breaker_threshold)
        check_positive("breaker_cooldown_s", self.breaker_cooldown_s)


@dataclass(frozen=True)
class ChaosConfig:
    """One reproducible chaos scenario, end to end."""

    serve: ServeConfig = field(default_factory=ServeConfig)
    input_faults: InputFaultConfig = field(default_factory=InputFaultConfig)
    worker_faults: WorkerFaultSchedule = field(default_factory=WorkerFaultSchedule)
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)
    profile: TrackerSystemProfile = DEFAULT_TRACKER_PROFILE
    #: Silicon soft errors composed with the sensor/worker fault classes
    #: (inactive by default; ``python -m repro chaos --soft-error-fit``
    #: turns them on).  The schedule shares the scenario's determinism:
    #: same config + seed -> same upsets -> same merged FaultReport.
    soft_errors: SoftErrorConfig = field(default_factory=SoftErrorConfig.inactive)
    fault_seed: int = 0

    def __post_init__(self) -> None:
        for crash in self.worker_faults.crashes:
            if crash.worker_id >= self.serve.n_workers:
                raise ValueError(
                    f"crash targets worker {crash.worker_id} but the pool "
                    f"has {self.serve.n_workers} workers"
                )
        for stall in self.worker_faults.stalls:
            if stall.worker_id >= self.serve.n_workers:
                raise ValueError(
                    f"stall targets worker {stall.worker_id} but the pool "
                    f"has {self.serve.n_workers} workers"
                )

    def fault_free(self) -> "ChaosConfig":
        """The same fleet and pool with every fault disabled — the
        comparison baseline for degradation budgets."""
        return replace(
            self,
            input_faults=InputFaultConfig(),
            worker_faults=WorkerFaultSchedule(),
            soft_errors=SoftErrorConfig.inactive(),
        )


def default_chaos_scenario(seed: int = 0) -> ChaosConfig:
    """The canonical acceptance scenario: 10% sensor frame drops, a noise
    burst / occlusion mix, a stall window that trips worker 0's circuit
    breaker, a worker-0 crash at t=0.8s, and a latency-spike window on
    worker 1 — all on a two-worker pool under predict-heavy load."""
    serve = ServeConfig(
        n_sessions=24,
        duration_s=2.0,
        n_workers=2,
        reuse_displacement_deg=0.3,
        queue_budget_deadlines=0.8,
        seed=seed,
    )
    return ChaosConfig(
        serve=serve,
        input_faults=InputFaultConfig(
            frame_drop_rate=0.10,
            noise_burst_rate_hz=0.2,
            noise_burst_duration_s=0.3,
            noise_burst_std_deg=4.0,
            occlusion_rate_hz=0.1,
            occlusion_duration_s=0.25,
            bit_error_rate=1.0e-8,
        ),
        worker_faults=WorkerFaultSchedule(
            crashes=(WorkerCrash(worker_id=0, at_s=0.8, down_s=0.4),),
            stalls=(WorkerStall(worker_id=0, start_s=0.55, stop_s=0.75),),
            spikes=(LatencySpike(start_s=1.4, stop_s=1.6, factor=1.6, worker_id=1),),
        ),
        fault_seed=seed,
    )


__all__ = [
    "ChaosConfig",
    "DEFAULT_TRACKER_PROFILE",
    "InputFaultConfig",
    "LatencySpike",
    "RecoveryConfig",
    "SoftErrorConfig",
    "WorkerCrash",
    "WorkerFaultSchedule",
    "WorkerStall",
    "default_chaos_scenario",
]
