"""Fault injection and graceful degradation for the serving stack.

Deterministic, seedable chaos engineering for the multi-session runtime:
input faults on the sensing chain (frame drops, noise bursts, eyelid
occlusion, MIPI bit errors), serving faults with recovery (worker
crashes/stalls/latency spikes, retry + backoff, per-worker circuit
breakers), and a tracking-quality watchdog that trades foveal-region
size and prediction freshness for robustness before falling back to
full-resolution rendering.  ``python -m repro chaos`` runs a scenario.
"""

from repro.faults.breaker import BreakerState, CircuitBreaker
from repro.faults.config import (
    DEFAULT_TRACKER_PROFILE,
    ChaosConfig,
    InputFaultConfig,
    LatencySpike,
    RecoveryConfig,
    SoftErrorConfig,
    WorkerCrash,
    WorkerFaultSchedule,
    WorkerStall,
    default_chaos_scenario,
)
from repro.faults.injectors import (
    OCCLUSION_BLIND_OPENNESS,
    FaultyMipiLink,
    FaultySensor,
    InputFaultTrace,
    ProcessKill,
    ShardKill,
    SimulatedCrash,
    inject_input_faults,
)
from repro.faults.netfaults import GraySlow, LinkProfile, PartitionWindow
from repro.faults.runtime import ChaosRuntime, build_chaos_fleet, run_chaos

__all__ = [
    "BreakerState",
    "ChaosConfig",
    "ChaosRuntime",
    "CircuitBreaker",
    "DEFAULT_TRACKER_PROFILE",
    "FaultyMipiLink",
    "FaultySensor",
    "GraySlow",
    "InputFaultConfig",
    "InputFaultTrace",
    "LatencySpike",
    "LinkProfile",
    "OCCLUSION_BLIND_OPENNESS",
    "PartitionWindow",
    "ProcessKill",
    "RecoveryConfig",
    "ShardKill",
    "SimulatedCrash",
    "SoftErrorConfig",
    "WorkerCrash",
    "WorkerFaultSchedule",
    "WorkerStall",
    "build_chaos_fleet",
    "default_chaos_scenario",
    "inject_input_faults",
    "run_chaos",
]
