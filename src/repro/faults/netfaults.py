"""Network fault schedules for the fleet's simulated transport.

The sharded fleet's router and shards exchange messages over the
deterministic channel in :mod:`repro.serve.fleet.transport`.  These are
the *fault shapes* that channel can apply, declared here (with the other
chaos schedules) so the fleet config composes them like every other
injector:

* :class:`LinkProfile` — per-message drop/duplicate probabilities and a
  base-plus-jitter one-way delay (jitter alone is enough to reorder
  deliveries).
* :class:`PartitionWindow` — a set of shards cut off from the router in
  both directions for ``[start_s, stop_s)``, then healed.  The topology
  is hub-and-spoke (router <-> shard links only), so "splitting the ring
  into groups" means disconnecting the named shards from the hub.
* :class:`GraySlow` — a gray failure: the shard stays alive and correct
  but its links run ``delay_factor`` slower for a window, which is what
  trips false suspicions in the failure detector.

Like every injector in this package, the schedules are pure data: the
transport derives all randomness from hashed ``(seed, link, seq,
attempt)`` keys, so there is no RNG state to checkpoint and a run is
reproducible from the config alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class LinkProfile:
    """Per-link message fault distribution (applies to every link)."""

    #: Probability one transmitted copy (data or ack) is dropped.
    drop_rate: float = 0.0
    #: Probability a delivered data message gains a duplicate copy.
    dup_rate: float = 0.0
    #: Base one-way delay in seconds.
    delay_s: float = 5e-4
    #: Uniform extra delay in ``[0, jitter_s)`` — the reordering source.
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        check_probability("drop_rate", self.drop_rate)
        check_probability("dup_rate", self.dup_rate)
        check_positive("delay_s", self.delay_s, strict=False)
        check_positive("jitter_s", self.jitter_s, strict=False)

    @property
    def any_faults(self) -> bool:
        return self.drop_rate > 0 or self.dup_rate > 0 or self.jitter_s > 0


@dataclass(frozen=True)
class PartitionWindow:
    """Shards disconnected from the router for ``[start_s, stop_s)``."""

    start_s: float
    stop_s: float
    shard_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        check_positive("start_s", self.start_s, strict=False)
        if self.stop_s <= self.start_s:
            raise ValueError(
                f"partition window needs stop_s > start_s, got "
                f"[{self.start_s}, {self.stop_s})"
            )
        if not self.shard_ids:
            raise ValueError("partition window names no shards")
        if any(int(s) < 0 for s in self.shard_ids):
            raise ValueError(
                f"shard ids must be non-negative, got {self.shard_ids}"
            )

    def covers(self, shard_id: int, t: float) -> bool:
        return shard_id in self.shard_ids and self.start_s <= t < self.stop_s


@dataclass(frozen=True)
class GraySlow:
    """A gray failure: shard ``shard_id`` is alive but its links run
    ``delay_factor`` slower for ``[start_s, stop_s)``."""

    shard_id: int
    start_s: float
    stop_s: float
    delay_factor: float = 25.0

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError(
                f"shard_id must be non-negative, got {self.shard_id}"
            )
        check_positive("start_s", self.start_s, strict=False)
        if self.stop_s <= self.start_s:
            raise ValueError(
                f"gray window needs stop_s > start_s, got "
                f"[{self.start_s}, {self.stop_s})"
            )
        if self.delay_factor < 1.0:
            raise ValueError(
                f"delay_factor must be >= 1, got {self.delay_factor}"
            )

    def covers(self, shard_id: int, t: float) -> bool:
        return shard_id == self.shard_id and self.start_s <= t < self.stop_s
