"""Deterministic, seedable input-fault injectors for the sensing chain.

Three layers of the eye-to-SoC path can fail, and each gets an injector
that wraps the corresponding clean model:

* :class:`FaultySensor` wraps :class:`repro.hw.sensor.CameraSensor` —
  i.i.d. frame drops (the sensor delivers nothing this frame).
* :class:`FaultyMipiLink` wraps :class:`repro.hw.mipi.MipiLink` —
  per-bit transient errors; a corrupted frame costs one link-layer
  retransmission (``transfer_with_retransmits``) and a confidence dent.
* :func:`inject_input_faults` wraps a ``repro.eye`` oculomotor trace —
  noise bursts perturb the gaze signal (breaking reuse anchors exactly
  the way real tracking noise does) and occlusion episodes drive eyelid
  openness down to partial or total closure.

All sampling comes from one ``numpy`` generator per call, so a fixed seed
reproduces the exact fault trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eye.events import MovementType
from repro.eye.motion import GazeTrack
from repro.faults.config import InputFaultConfig
from repro.hw.mipi import MipiLink
from repro.hw.sensor import CameraSensor
from repro.utils.rng import default_rng
from repro.utils.validation import check_probability

#: Eyelid openness below which no usable gaze signal exists (matches the
#: blink-labelling threshold of the oculomotor generator).
OCCLUSION_BLIND_OPENNESS = 0.2


class SimulatedCrash(RuntimeError):
    """The serving process died mid-run (raised by :class:`ProcessKill`).

    Escapes the checkpointed event loop exactly like a SIGKILL would end
    the real process: no cleanup handlers run inside the runtime, and
    whatever the durability layer already fsynced is all that survives.
    """


@dataclass(frozen=True)
class ProcessKill:
    """Kill the runtime process after ``at_event`` events have applied.

    The process itself is the fault domain here — unlike the worker
    crash/stall schedule, nothing inside the run survives; recovery is
    ``repro.recover``'s checkpoint-plus-journal warm restart.  Firing on
    an event *index* (not a timestamp) keeps kills exact under any
    config: the same index always interrupts the same prefix of the
    deterministic event stream.
    """

    at_event: int

    def __post_init__(self) -> None:
        if self.at_event <= 0:
            raise ValueError(
                f"at_event must be a positive event index, got {self.at_event}"
            )

    def fires_at(self, events_processed: int) -> bool:
        return events_processed == self.at_event


@dataclass(frozen=True)
class ShardKill:
    """Kill one shard of a sharded fleet at an exact simulated instant.

    The fault domain is a whole shard runtime — its batcher queue and
    every frame in flight on its workers die with it; sessions re-home
    to the surviving shards via the consistent-hash ring
    (``repro.serve.fleet``).  Firing on the simulation clock (not an
    event index) models an external failure: the kill lands between
    events at time ``at_s`` regardless of how busy the shard was.
    """

    shard_id: int
    at_s: float

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError(
                f"shard_id must be non-negative, got {self.shard_id}"
            )
        if self.at_s < 0:
            raise ValueError(f"at_s must be non-negative, got {self.at_s}")


class FaultySensor:
    """Camera sensor with transient frame drops."""

    def __init__(
        self,
        sensor: "CameraSensor | None" = None,
        drop_rate: float = 0.0,
        seed=None,
    ):
        self.sensor = sensor or CameraSensor()
        self.drop_rate = check_probability("drop_rate", drop_rate)
        self.rng = default_rng(seed)
        self.frames_total = 0
        self.frames_dropped = 0

    def acquire(self) -> bool:
        """One exposure; False means the frame was lost at the sensor."""
        self.frames_total += 1
        if self.rng.random() < self.drop_rate:
            self.frames_dropped += 1
            return False
        return True

    @property
    def acquisition_s(self) -> float:
        return self.sensor.acquisition_s

    @property
    def frame_bits(self) -> int:
        return self.sensor.frame_bits


class FaultyMipiLink:
    """MIPI link with transient bit errors and CRC-triggered retransmits."""

    def __init__(
        self,
        link: "MipiLink | None" = None,
        bit_error_rate: float = 0.0,
        seed=None,
    ):
        self.link = link or MipiLink()
        self.bit_error_rate = check_probability("bit_error_rate", bit_error_rate)
        self.rng = default_rng(seed)
        self.frames_total = 0
        self.frames_corrupted = 0

    def frame_corruption_probability(self, bits: int) -> float:
        """Probability at least one bit of a ``bits``-long frame flips."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        return float(1.0 - (1.0 - self.bit_error_rate) ** bits)

    def transfer(self, bits: int) -> tuple[float, int]:
        """One frame transfer: ``(latency_s, n_bit_errors)``.

        A corrupted frame (any flipped bit) is retransmitted once; the
        retransmission is assumed clean (transients are transient).
        """
        self.frames_total += 1
        if self.rng.random() < self.frame_corruption_probability(bits):
            self.frames_corrupted += 1
            n_errors = max(1, int(self.rng.poisson(self.bit_error_rate * bits)))
            return self.link.transfer_with_retransmits(bits, 1), n_errors
        return self.link.transfer_latency_s(bits), 0


@dataclass
class InputFaultTrace:
    """Per-frame record of the input faults injected into one session."""

    dropped: np.ndarray  # (T,) bool — sensor delivered no frame
    noise_deg: np.ndarray  # (T,) extra angular tracking error magnitude
    occlusion: np.ndarray  # (T,) injected eyelid closure in [0, 1]
    corrupted: np.ndarray  # (T,) bool — MIPI transient bit errors
    retransmit_s: np.ndarray  # (T,) extra link latency of corrupted frames

    @property
    def n_frames(self) -> int:
        return int(self.dropped.size)

    @property
    def n_dropped(self) -> int:
        return int(self.dropped.sum())

    @property
    def n_noise_frames(self) -> int:
        return int((self.noise_deg > 0).sum())

    @property
    def n_occluded(self) -> int:
        return int((self.occlusion > 0).sum())

    @property
    def n_corrupted(self) -> int:
        return int(self.corrupted.sum())


def _burst_windows(
    rng: np.random.Generator,
    n_frames: int,
    fps: float,
    rate_hz: float,
    duration_s: float,
) -> np.ndarray:
    """Boolean mask of Poisson-arriving fault windows over the trace."""
    mask = np.zeros(n_frames, dtype=bool)
    if rate_hz <= 0:
        return mask
    expected = rate_hz * n_frames / fps
    n_windows = int(rng.poisson(expected))
    length = max(1, int(round(duration_s * fps)))
    for _ in range(n_windows):
        start = int(rng.integers(0, n_frames))
        mask[start : start + length] = True
    return mask


def inject_input_faults(
    track: GazeTrack,
    config: InputFaultConfig,
    seed=None,
    sensor: "CameraSensor | None" = None,
    link: "MipiLink | None" = None,
) -> tuple[GazeTrack, InputFaultTrace]:
    """Apply the configured input-fault mix to one oculomotor trace.

    Returns the faulted track (perturbed gaze, reduced openness,
    re-labelled blind frames, recomputed velocities) plus the per-frame
    fault trace the chaos runtime and watchdog consume.
    """
    rng = default_rng(seed)
    sensor = sensor or CameraSensor()
    link = link or MipiLink()
    n = len(track)

    dropped = rng.random(n) < config.frame_drop_rate

    noise_mask = _burst_windows(
        rng, n, track.fps, config.noise_burst_rate_hz, config.noise_burst_duration_s
    )
    noise_xy = np.zeros((n, 2))
    if noise_mask.any():
        noise_xy[noise_mask] = rng.normal(
            0.0, config.noise_burst_std_deg, size=(int(noise_mask.sum()), 2)
        )
    noise_deg = np.linalg.norm(noise_xy, axis=1)

    occl_mask = _burst_windows(
        rng, n, track.fps, config.occlusion_rate_hz, config.occlusion_duration_s
    )
    occlusion = np.zeros(n)
    if occl_mask.any():
        lo, hi = config.occlusion_level
        occlusion[occl_mask] = rng.uniform(lo, hi, size=int(occl_mask.sum()))

    p_corrupt = 1.0 - (1.0 - config.bit_error_rate) ** sensor.frame_bits
    corrupted = rng.random(n) < p_corrupt
    retransmit_s = np.where(corrupted, link.transfer_latency_s(sensor.frame_bits), 0.0)

    gaze = track.gaze_deg + noise_xy
    openness = np.minimum(track.openness, 1.0 - occlusion)
    labels = track.labels.copy()
    labels[openness < OCCLUSION_BLIND_OPENNESS] = MovementType.BLINK
    faulted = track.copy_with(gaze_deg=gaze, labels=labels, openness=openness)

    trace = InputFaultTrace(
        dropped=dropped,
        noise_deg=noise_deg,
        occlusion=occlusion,
        corrupted=corrupted,
        retransmit_s=retransmit_s,
    )
    return faulted, trace
