"""Per-worker circuit breaker.

Standard three-state breaker driving worker eviction/re-admission in the
chaos runtime:

* ``CLOSED`` — worker serves normally; consecutive failures are counted.
* ``OPEN`` — after ``failure_threshold`` consecutive failures the worker
  is evicted from dispatch for ``cooldown_s`` (a flapping worker must not
  keep eating batches that healthy workers could serve).
* ``HALF_OPEN`` — cooldown elapsed: exactly one probe batch is allowed.
  Success closes the breaker; failure re-opens it for another cooldown.

The breaker is driven by the deterministic event loop, so its transition
log (consumed by the fault telemetry) is bit-reproducible.
"""

from __future__ import annotations

import enum

from repro.utils.validation import check_positive


class BreakerState(enum.Enum):
    CLOSED = "CLOSED"
    OPEN = "OPEN"
    HALF_OPEN = "HALF_OPEN"


class CircuitBreaker:
    """Failure-counting breaker for one worker."""

    def __init__(self, failure_threshold: int = 3, cooldown_s: float = 0.25):
        self.failure_threshold = int(
            check_positive("failure_threshold", failure_threshold)
        )
        self.cooldown_s = check_positive("cooldown_s", cooldown_s)
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._open_until_s = 0.0
        self._probe_in_flight = False
        self.transitions: list[tuple[float, str, str]] = []

    # ------------------------------------------------------------------
    def state(self, now: float) -> BreakerState:
        """Current state, observing cooldown expiry lazily."""
        if self._state is BreakerState.OPEN and now >= self._open_until_s:
            self._transition(self._open_until_s, BreakerState.HALF_OPEN)
        return self._state

    def allow(self, now: float) -> bool:
        """May a batch be dispatched to this worker right now?"""
        state = self.state(now)
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.HALF_OPEN:
            return not self._probe_in_flight
        return False

    def note_dispatch(self, now: float) -> None:
        """A batch was actually dispatched (marks the half-open probe)."""
        if self.state(now) is BreakerState.HALF_OPEN:
            self._probe_in_flight = True

    # ------------------------------------------------------------------
    def record_success(self, now: float) -> None:
        self._consecutive_failures = 0
        self._probe_in_flight = False
        if self.state(now) is BreakerState.HALF_OPEN:
            self._transition(now, BreakerState.CLOSED)

    def record_failure(self, now: float) -> None:
        state = self.state(now)
        self._probe_in_flight = False
        if state is BreakerState.HALF_OPEN:
            self._open(now)
            return
        self._consecutive_failures += 1
        if (
            state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._open(now)

    # ------------------------------------------------------------------
    def _open(self, now: float) -> None:
        self._consecutive_failures = 0
        self._open_until_s = now + self.cooldown_s
        self._transition(now, BreakerState.OPEN)

    def _transition(self, now: float, to: BreakerState) -> None:
        self.transitions.append((now, self._state.value, to.value))
        self._state = to

    @property
    def reopen_s(self) -> "float | None":
        """When an OPEN breaker re-admits its worker (None otherwise)."""
        return self._open_until_s if self._state is BreakerState.OPEN else None

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "state": self._state.value,
            "consecutive_failures": self._consecutive_failures,
            "open_until_s": self._open_until_s,
            "probe_in_flight": self._probe_in_flight,
            "transitions": [list(t) for t in self.transitions],
        }

    def load_state(self, state: dict) -> None:
        self._state = BreakerState(state["state"])
        self._consecutive_failures = int(state["consecutive_failures"])
        self._open_until_s = float(state["open_until_s"])
        self._probe_in_flight = bool(state["probe_in_flight"])
        self.transitions = [
            (float(t), str(src), str(dst)) for t, src, dst in state["transitions"]
        ]
