"""Fault-aware serving loop: injection, recovery, graceful degradation.

:class:`ChaosRuntime` extends the deterministic discrete-event loop of
:class:`repro.serve.runtime.ServeRuntime` with the full fault model:

* **Input faults** — each session's oculomotor trace is pre-faulted by
  :func:`repro.faults.injectors.inject_input_faults`; dropped frames are
  accounted as lost input (never silently vanished), MIPI-corrupted
  frames arrive late by one retransmission, occlusion-blinded frames are
  degraded to buffered-gaze reuse.
* **Serving faults + recovery** — dispatches go through a
  :class:`~repro.serve.workers.FaultyWorkerPool`; a failed batch's frames
  are re-queued with exponential backoff, degraded instead when the retry
  could not beat the frame's deadline, and per-worker circuit breakers
  evict flapping workers until a cooldown + half-open probe re-admits
  them.
* **Tracking-quality watchdog** — one
  :class:`~repro.system.watchdog.TrackingWatchdog` per session monitors
  realized error/confidence and walks the degradation ladder: widen the
  foveal radius (Eq. 1), stop trusting fresh predictions, fall back to
  full-resolution rendering; recovery is hysteretic.

Everything stays deterministic: fault times are scheduled, sampling is
seeded per session, and ties break on the event heap exactly as in the
base loop — a seed reproduces bit-identical fault/degradation telemetry.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from repro.faults.breaker import BreakerState, CircuitBreaker
from repro.faults.config import ChaosConfig
from repro.faults.injectors import (
    OCCLUSION_BLIND_OPENNESS,
    InputFaultTrace,
    inject_input_faults,
)
from repro.obs import Obs, PID_RELIABILITY, PID_WORKERS, session_pid
from repro.reliability.guard import GazeVerdict, PlausibilityConfig, PlausibilityGuard
from repro.reliability.softerror import FaultSite, SoftErrorEvent, SoftErrorModel
from repro.serve.config import AdmissionPolicy, BatchServiceModel
from repro.serve.request import ClientSession, FrameRequest, build_fleet
from repro.serve.runtime import _ARRIVAL, _COMPLETE, _WINDOW, InferenceFn, ServeRuntime
from repro.serve.telemetry import FaultReport, FleetReport
from repro.serve.workers import DispatchOutcome, FaultyWorkerPool, WorkerState
from repro.system.session import SessionConfig, decide_paths
from repro.system.watchdog import DegradationLevel, TrackingWatchdog

#: Per-session sub-seed strides (distinct odd primes keep the fault and
#: error streams independent of each other and of the oculomotor seeds).
_FAULT_SEED_STRIDE = 9176
_ERROR_SEED_STRIDE = 7919

#: Gaze deviation (degrees) beyond which an uncaught corruption counts
#: as silent data corruption — just above the INT8 quantization grid.
SDC_THRESHOLD_DEG = 0.05


def build_chaos_fleet(
    config: ChaosConfig,
) -> tuple[list[ClientSession], list[InputFaultTrace]]:
    """The serve fleet with input faults layered onto every session.

    Starts from the *same* clean fleet ``build_fleet`` would produce for
    the serve config (so fault-free comparisons replay identical
    behaviour), then perturbs each track and recomputes its Algorithm-1
    decisions — noisy gaze breaks reuse anchors exactly the way real
    tracking noise does.
    """
    clean = build_fleet(config.serve)
    session_config = SessionConfig(
        reuse_displacement_deg=config.serve.reuse_displacement_deg,
        post_saccade_low_res=config.serve.post_saccade_low_res,
    )
    fleet, traces = [], []
    for session in clean:
        faulted, trace = inject_input_faults(
            session.track,
            config.input_faults,
            seed=config.fault_seed * _FAULT_SEED_STRIDE + session.session_id,
        )
        fleet.append(
            ClientSession(
                session_id=session.session_id,
                track=faulted,
                decisions=decide_paths(faulted, session_config),
                start_s=session.start_s,
            )
        )
        traces.append(trace)
    return fleet, traces


class ChaosRuntime(ServeRuntime):
    """One chaos scenario: faulted fleet, faulty pool, recovery stack."""

    def __init__(
        self,
        chaos: ChaosConfig,
        service: "BatchServiceModel | None" = None,
        inference: "InferenceFn | None" = None,
        obs: "Obs | None" = None,
    ):
        fleet, traces = build_chaos_fleet(chaos)
        super().__init__(
            chaos.serve, service=service, inference=inference, fleet=fleet, obs=obs
        )
        self.chaos = chaos
        self.traces = traces
        self.pool = FaultyWorkerPool(
            chaos.serve.n_workers,
            self.service,
            schedule=chaos.worker_faults,
            stall_timeout_s=chaos.recovery.dispatch_timeout_s,
        )
        self.breakers = [
            CircuitBreaker(
                failure_threshold=chaos.recovery.breaker_threshold,
                cooldown_s=chaos.recovery.breaker_cooldown_s,
            )
            for _ in range(chaos.serve.n_workers)
        ]
        self.watchdogs = [
            TrackingWatchdog(
                chaos.profile,
                chaos.watchdog,
                start_s=s.start_s,
                on_transition=self._watchdog_hook(s.session_id),
            )
            for s in self.fleet
        ]
        self.faults = FaultReport()
        # Per-session realized tracking error of the healthy tracker: a
        # half-normal stream whose P95 equals the profile's delta-theta.
        scale = chaos.profile.delta_theta_deg / 1.96
        self.base_error = [
            np.abs(
                np.random.default_rng(
                    chaos.fault_seed * _ERROR_SEED_STRIDE + s.session_id
                ).normal(0.0, scale, size=s.n_frames)
            )
            for s in self.fleet
        ]
        self._retransmitted: set[tuple[int, int]] = set()
        self._pending_wake_s: "float | None" = None
        # Silicon soft errors (repro.reliability): one seeded schedule
        # over the whole window, events dealt round-robin onto sessions
        # and consumed by each session's next predict-path frame (SRAM
        # corruption persists until the datapath fetches it).
        self._sdc_queues: list[list[tuple[int, SoftErrorEvent]]] = [
            [] for _ in self.fleet
        ]
        self._sdc_next: list[int] = [0] * len(self.fleet)
        self._sdc_persistent = [np.zeros(2) for _ in self.fleet]
        self._guard_last_frame: list["int | None"] = [None] * len(self.fleet)
        self.guards: "list[PlausibilityGuard] | None" = None
        if chaos.soft_errors.active:
            self.guards = [
                PlausibilityGuard(PlausibilityConfig(fps=chaos.serve.fps))
                for _ in self.fleet
            ]
            schedule = SoftErrorModel(chaos.soft_errors).schedule(
                chaos.serve.duration_s
            )
            for index, event in enumerate(schedule):
                sid = index % len(self.fleet)
                session = self.fleet[sid]
                frame = int((event.t_s - session.start_s) * chaos.serve.fps)
                frame = min(max(frame, 0), session.n_frames - 1)
                self._sdc_queues[sid].append((frame, event))
            for queue in self._sdc_queues:
                queue.sort(key=lambda item: item[0])

    # ------------------------------------------------------------------
    # SLO coupling: a paging latency budget widens the fovea
    # ------------------------------------------------------------------
    def attach_slo(self, engine) -> None:
        """Attach an SLO engine and wire its PAGE action to the ladder:
        an objective with ``on_page: "widen"`` escalates every session's
        watchdog to WIDENED — the Eq. 1 foveal-radius widening path —
        the moment the error budget pages."""
        super().attach_slo(engine)
        engine.on_page = self._slo_page_hook

    def _slo_page_hook(self, objective, now_s: float) -> None:
        if objective.on_page != "widen":
            return
        for watchdog in self.watchdogs:
            watchdog.escalate(now_s, DegradationLevel.WIDENED)

    # ------------------------------------------------------------------
    # Observability hooks (no-ops unless ``obs`` is enabled)
    # ------------------------------------------------------------------
    def _watchdog_hook(self, session_id: int):
        """Per-session ``on_transition`` callback emitting trace instants
        (``watchdog.NOMINAL->WIDENED`` style) + a transition counter."""
        if not self.obs.enabled:
            return None

        def hook(now_s: float, src: str, dst: str) -> None:
            self.obs.tracer.instant(
                f"watchdog.{src}->{dst}", now_s, cat="watchdog",
                pid=session_pid(session_id),
                args={"from": src, "to": dst},
            )
            self.obs.metrics.counter(
                "watchdog_transitions_total",
                help="Watchdog degradation-ladder transitions.",
                to=dst,
            ).inc()

        return hook

    # ------------------------------------------------------------------
    # Silicon soft errors + SDC guard (repro.reliability)
    # ------------------------------------------------------------------
    def _sdc_offset(self, event: SoftErrorEvent) -> np.ndarray:
        """Gaze-space corruption of one upset.

        Magnitude follows the flipped bit's weight on the INT8 activation
        grid (``2^bit`` codes — low bits are sub-threshold nudges, high
        bits are wild jumps); direction is a deterministic function of
        the bit offset so repeated events spread over angles."""
        assert self.guards is not None
        config = self.guards[0].config
        code_scale = config.field_deg / 2.0 / 127.0
        magnitude = float(1 << (event.bit_offset % 8)) * code_scale
        theta = math.radians(event.bit_offset % 360)
        return magnitude * np.array([math.cos(theta), math.sin(theta)])

    def _sdc_obs(self, sid: int, frame: int, now: float, outcome: str) -> None:
        if not self.obs.enabled:
            return
        self.obs.tracer.instant(
            f"sdc.{outcome}", now, cat="reliability", pid=PID_RELIABILITY,
            args={"session": sid, "frame": frame},
        )
        self.obs.metrics.counter(
            "sdc_outcomes_total",
            help="SDC-guard outcomes for soft-error-affected frames.",
            outcome=outcome,
        ).inc()

    def _sdc_layer(
        self, request: FrameRequest, sid: int, i: int, now: float, blind: bool
    ) -> tuple[float, bool]:
        """Apply pending upsets to this frame's tracker output and gate
        it through the plausibility guard.

        Returns ``(extra_error_deg, degrade)``: the residual gaze
        deviation an *escaped* corruption adds to the realized tracking
        error (which the watchdog then observes — escaped SDC widens the
        foveal radius exactly like any other tracking error), and
        whether the guard fell back to gaze reuse for this frame.
        """
        assert self.guards is not None
        guard = self.guards[sid]
        gaze = np.asarray(self.fleet[sid].track.gaze_deg[i], dtype=np.float64)
        last = self._guard_last_frame[sid]
        gap = 1.0 if last is None else float(max(i - last, 1))
        if blind:
            return 0.0, False
        self._guard_last_frame[sid] = i
        if request.path != "predict":
            # Bypass paths reuse the buffered gaze — no datapath fetch,
            # no corruption; just keep the physiological reference warm.
            guard.check(gaze, frames=gap)
            return 0.0, False
        queue, cursor = self._sdc_queues[sid], self._sdc_next[sid]
        events: list[SoftErrorEvent] = []
        while cursor < len(queue) and queue[cursor][0] <= i:
            events.append(queue[cursor][1])
            cursor += 1
        self._sdc_next[sid] = cursor
        persistent = self._sdc_persistent[sid]
        transient = np.zeros(2)
        for event in events:
            offset = self._sdc_offset(event)
            if event.site is FaultSite.WEIGHT:
                # Weight-SRAM corruption persists until a scrub reloads
                # the store; activation/accumulator upsets are transient.
                persistent += offset
            else:
                transient += offset
            self.faults.soft_errors_injected += 1
            if self.obs.enabled:
                self.obs.tracer.instant(
                    f"sdc.flip.{event.site.value}", now, cat="reliability",
                    pid=PID_RELIABILITY,
                    args={
                        "session": sid, "frame": i,
                        "bit": event.bit_offset, "mode": event.mode.value,
                    },
                )
                self.obs.metrics.counter(
                    "sdc_soft_errors_total",
                    help="Soft errors injected into the tracker datapath.",
                    site=event.site.value,
                ).inc()
        if not events and not persistent.any():
            guard.check(gaze, frames=gap)
            return 0.0, False
        corrupted = gaze + persistent + transient
        out, verdict = guard.check(
            corrupted, recompute=lambda: gaze + persistent, frames=gap
        )
        if verdict is GazeVerdict.FALLBACK:
            self.faults.sdc_detected += 1
            self.faults.sdc_fallback_degraded += 1
            # The guard cannot localize the fault, but two implausible
            # computes in a row say state is corrupted: scrub the store.
            persistent[:] = 0.0
            self._sdc_obs(sid, i, now, "fallback")
            return 0.0, True
        if verdict is GazeVerdict.RECOMPUTED:
            self.faults.sdc_detected += 1
            self.faults.sdc_recomputed += 1
            self._sdc_obs(sid, i, now, "recomputed")
        deviation = float(np.linalg.norm(out - gaze))
        if deviation > SDC_THRESHOLD_DEG:
            self.faults.sdc_escaped += 1
            self._sdc_obs(sid, i, now, "escaped")
        return deviation, False

    # ------------------------------------------------------------------
    # Admission (capacity-aware: breaker-evicted and crashed workers do
    # not count toward the pool the estimate divides by)
    # ------------------------------------------------------------------
    def _available_workers(self, now: float) -> int:
        n = 0
        for worker in self.pool.workers:
            if self.pool.schedule.down_until(worker.worker_id, now) is not None:
                continue
            if self.breakers[worker.worker_id].state(now) is BreakerState.OPEN:
                continue
            n += 1
        return max(1, n)

    def _admit(self, request: FrameRequest, now: float) -> bool:
        if self.config.admission is AdmissionPolicy.ALWAYS:
            return True
        pending = len(self.batcher) + self.pool.in_flight_frames() + 1
        batches = math.ceil(pending / self.config.max_batch)
        wait = (
            batches
            * self.service.service_s(self.config.max_batch)
            / self._available_workers(now)
        )
        if wait <= self.config.queue_budget_s:
            return True
        if self.config.admission is AdmissionPolicy.DEGRADE:
            self._degrade_now(request, now, cause="admission")
        else:  # SHED
            self.stats[request.session_id].record_shed(request.path)
            if self.obs.enabled:
                self.obs.tracer.instant(
                    "shed", now, cat="serve",
                    pid=session_pid(request.session_id),
                    args={"frame": request.frame_index},
                )
                assert self._instruments is not None
                self._instruments.shed.inc()
        return False

    # ------------------------------------------------------------------
    # Dispatch through breakers and the faulty pool
    # ------------------------------------------------------------------
    def _eligible_worker(self, now: float) -> "WorkerState | None":
        for worker in self.pool.workers:
            if self.pool.available(worker, now) and self.breakers[
                worker.worker_id
            ].allow(now):
                return worker
        return None

    def _schedule_wake(self, now: float) -> None:
        """Queued work but no eligible worker: wake the loop when the
        earliest worker could come back (crash downtime end, breaker
        cooldown expiry, or simply a busy worker finishing)."""
        candidates = []
        for worker in self.pool.workers:
            at = max(worker.busy_until_s, now)
            down = self.pool.schedule.down_until(worker.worker_id, at)
            if down is not None:
                at = down
            reopen = self.breakers[worker.worker_id].reopen_s
            if reopen is not None:
                at = max(at, reopen)
            candidates.append(at)
        if not candidates:
            return
        wake = max(min(candidates), now + 1e-9)
        if self._pending_wake_s is not None and self._pending_wake_s <= wake:
            return
        self._pending_wake_s = wake
        self._push(wake, _WINDOW, None)

    def _try_dispatch(self, now: float) -> None:
        if self._pending_wake_s is not None and now >= self._pending_wake_s:
            self._pending_wake_s = None
        while self.batcher.ready(now):
            worker = self._eligible_worker(now)
            if worker is None:
                self._schedule_wake(now)
                return
            batch = self.batcher.take()
            self._note_dispatch(batch, now)
            breaker = self.breakers[worker.worker_id]
            breaker.note_dispatch(now)
            outcome = self.pool.dispatch_faulty(worker, len(batch), now)
            if outcome.ok and self.inference is not None:
                outputs = np.asarray(self.inference(batch))
                if outputs.shape != (len(batch), 2):
                    raise ValueError(
                        f"inference hook returned shape {outputs.shape}, "
                        f"expected ({len(batch)}, 2)"
                    )
                assert self.predictions is not None
                for request, gaze in zip(batch, outputs):
                    self.predictions[(request.session_id, request.frame_index)] = gaze
            if self.obs.enabled:
                self._trace_batch(
                    worker.worker_id, batch, now, outcome.done_s, ok=outcome.ok
                )
            self._push(outcome.done_s, _COMPLETE, (worker, batch, outcome))

    # ------------------------------------------------------------------
    # Retry / backoff
    # ------------------------------------------------------------------
    def _retry_or_degrade(self, request: FrameRequest, now: float) -> None:
        recovery = self.chaos.recovery
        next_attempt = request.retries + 1
        backoff = recovery.backoff_base_s * recovery.backoff_factor**request.retries
        retry_at = now + backoff
        expected_done = retry_at + self.service.service_s(self.config.max_batch)
        if next_attempt > recovery.max_retries:
            self.faults.retry_exhausted_degraded += 1
            self._degrade_now(request, now, cause="retry_exhausted")
        elif expected_done > request.deadline_s:
            # The retry cannot beat the deadline: degrade immediately —
            # a stale-but-on-time gaze beats a fresh-but-late one.
            self.faults.deadline_degraded += 1
            self._degrade_now(request, now, cause="deadline")
        else:
            self.faults.retries_scheduled += 1
            if self.obs.enabled:
                self.obs.tracer.instant(
                    "retry.scheduled", now, cat="faults",
                    pid=session_pid(request.session_id),
                    args={"frame": request.frame_index, "attempt": next_attempt},
                )
            self._push(retry_at, _ARRIVAL, replace(request, retries=next_attempt))

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self, request: FrameRequest, now: float) -> None:
        sid, i = request.session_id, request.frame_index
        if request.retries > 0:
            # A retried frame rejoining the batcher after backoff; it was
            # admitted on first arrival and is never silently dropped.
            self.batcher.requeue([request])
            self.faults.frames_requeued += 1
            self._try_dispatch(now)
            return

        trace = self.traces[sid]
        if trace.dropped[i]:
            self.faults.input_dropped += 1
            self.stats[sid].record_lost_input()
            if self.obs.enabled:
                self.obs.tracer.instant(
                    "input.dropped", now, cat="faults",
                    pid=session_pid(sid), args={"frame": i},
                )
            return
        if trace.corrupted[i] and (sid, i) not in self._retransmitted:
            # Link-layer CRC caught a transient: the frame arrives one
            # retransmission later (its deadline does not move).
            self._retransmitted.add((sid, i))
            self.faults.mipi_corrupted_frames += 1
            if self.obs.enabled:
                self.obs.tracer.instant(
                    "input.retransmit", now, cat="faults",
                    pid=session_pid(sid), args={"frame": i},
                )
            self._push(now + float(trace.retransmit_s[i]), _ARRIVAL, request)
            return

        openness = float(self.fleet[sid].track.openness[i])
        blind = openness < OCCLUSION_BLIND_OPENNESS
        if trace.noise_deg[i] > 0:
            self.faults.noise_burst_frames += 1
        if trace.occlusion[i] > 0:
            self.faults.occluded_frames += 1
        sdc_error_deg = 0.0
        if self.guards is not None:
            sdc_error_deg, degrade = self._sdc_layer(request, sid, i, now, blind)
            if degrade:
                self._degrade_now(request, now, cause="sdc")
                return
        error_deg = float(
            self.base_error[sid][i] + trace.noise_deg[i] + sdc_error_deg
        )
        confidence = openness * (0.5 if trace.corrupted[i] else 1.0)
        level = self.watchdogs[sid].observe(
            now, error_deg=None if blind else error_deg, confidence=confidence
        )

        if level is DegradationLevel.FULL_RES:
            # Tracking lost: render full-resolution — no gaze needed, the
            # frame completes without touching the serving path at all.
            self.faults.watchdog_full_res_frames += 1
            self.stats[sid].record(
                "full_res", now - request.arrival_s, self.config.deadline_s
            )
            self._makespan_s = max(self._makespan_s, now)
            if self.obs.enabled:
                self._trace_frame(request, "full_res", now - request.arrival_s)
            return
        if request.path == "saccade":
            self._record_completion(request, now + self.config.saccade_bypass_s)
            return
        if request.path == "reuse":
            self._record_completion(request, now + self.config.reuse_bypass_s)
            return
        # Predict path.
        if blind:
            self.faults.occlusion_degraded += 1
            self._degrade_now(request, now, cause="occlusion")
            return
        if level >= DegradationLevel.REUSE_ONLY:
            self.faults.watchdog_reuse_frames += 1
            self._degrade_now(request, now, cause="watchdog")
            return
        if not self._admit(request, now):
            return
        self.batcher.enqueue(request)
        self._try_dispatch(now)
        if len(self.batcher) > 0 and self.batcher.window_s > 0:
            deadline = self.batcher.next_deadline_s()
            if deadline is not None:
                self._push(deadline, _WINDOW, None)

    def _on_complete(self, worker_batch, now: float) -> None:
        worker, batch, outcome = worker_batch
        self.pool.complete(worker)
        breaker = self.breakers[worker.worker_id]
        if outcome.ok:
            breaker.record_success(now)
            for request in batch:
                self._record_completion(request, now)
        else:
            breaker.record_failure(now)
            self.faults.batch_failures += 1
            if outcome.cause == "crash":
                self.faults.worker_crash_failures += 1
            else:
                self.faults.worker_stall_timeouts += 1
            if self.obs.enabled:
                self.obs.tracer.instant(
                    f"batch.failed.{outcome.cause}", now, cat="faults",
                    pid=PID_WORKERS, tid=worker.worker_id,
                    args={"batch_size": len(batch)},
                )
                self.obs.metrics.counter(
                    "serve_batch_failures_total",
                    help="Dispatched batches that failed, by fault cause.",
                    cause=outcome.cause,
                ).inc()
            for request in batch:
                self._retry_or_degrade(request, now)
        self._try_dispatch(now)

    # ------------------------------------------------------------------
    # Snapshot protocol (repro.recover)
    # ------------------------------------------------------------------
    RUNTIME_KIND = "chaos"

    def _encode_payload(self, kind: int, payload: object) -> object:
        if kind == _COMPLETE:
            worker, batch, outcome = payload  # type: ignore[misc]
            return {
                "worker": worker.worker_id,
                "batch": [request.to_dict() for request in batch],
                "outcome": {
                    "done_s": outcome.done_s,
                    "ok": outcome.ok,
                    "cause": outcome.cause,
                },
            }
        return super()._encode_payload(kind, payload)

    def _decode_payload(self, kind: int, data: object) -> object:
        if kind == _COMPLETE:
            worker = self.pool.workers[int(data["worker"])]  # type: ignore[index]
            batch = [FrameRequest.from_dict(r) for r in data["batch"]]  # type: ignore[index]
            saved = data["outcome"]  # type: ignore[index]
            outcome = DispatchOutcome(
                done_s=float(saved["done_s"]),
                ok=bool(saved["ok"]),
                cause=None if saved["cause"] is None else str(saved["cause"]),
            )
            return (worker, batch, outcome)
        return super()._decode_payload(kind, data)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["faults"] = self.faults.state_dict()
        state["retransmitted"] = sorted(list(pair) for pair in self._retransmitted)
        state["pending_wake_s"] = self._pending_wake_s
        state["breakers"] = [b.state_dict() for b in self.breakers]
        state["watchdogs"] = [w.state_dict() for w in self.watchdogs]
        state["sdc"] = {
            "next": list(self._sdc_next),
            "persistent": [[float(x) for x in p] for p in self._sdc_persistent],
            "guard_last_frame": list(self._guard_last_frame),
            "guards": None
            if self.guards is None
            else [g.state_dict() for g in self.guards],
        }
        return state

    def load_state(self, state: dict) -> None:
        # Input-fault traces and the per-session error streams are pure
        # functions of the (seeded) config and were rebuilt by __init__;
        # only the mutable recovery-stack state needs restoring.
        super().load_state(state)
        self.faults.load_state(state["faults"])
        self._retransmitted = {
            (int(sid), int(frame)) for sid, frame in state["retransmitted"]
        }
        wake = state["pending_wake_s"]
        self._pending_wake_s = None if wake is None else float(wake)
        if len(state["breakers"]) != len(self.breakers) or len(
            state["watchdogs"]
        ) != len(self.watchdogs):
            raise ValueError("snapshot breaker/watchdog counts do not match config")
        for breaker, saved in zip(self.breakers, state["breakers"]):
            breaker.load_state(saved)
        for watchdog, saved in zip(self.watchdogs, state["watchdogs"]):
            watchdog.load_state(saved)
        sdc = state.get("sdc")
        if sdc is not None:
            self._sdc_next = [int(n) for n in sdc["next"]]
            self._sdc_persistent = [
                np.asarray(p, dtype=np.float64) for p in sdc["persistent"]
            ]
            self._guard_last_frame = [
                None if f is None else int(f) for f in sdc["guard_last_frame"]
            ]
            if sdc["guards"] is not None and self.guards is not None:
                for guard, saved in zip(self.guards, sdc["guards"]):
                    guard.load_state(saved)

    # ------------------------------------------------------------------
    # Telemetry assembly
    # ------------------------------------------------------------------
    def _fault_report(self) -> FaultReport:
        end_s = max(self.config.duration_s, self._makespan_s)
        dwell: dict[str, float] = {}
        degradation: list[tuple[float, int, str, str]] = []
        widened = self.chaos.profile.delta_theta_deg
        for sid, watchdog in enumerate(self.watchdogs):
            watchdog.finalize(end_s)
            for name, seconds in watchdog.dwell_s().items():
                dwell[name] = dwell.get(name, 0.0) + seconds
            degradation.extend(
                (t, sid, src, dst) for (t, src, dst) in watchdog.transitions
            )
            widened = max(widened, watchdog.max_widened_delta_theta_deg)
        degradation.sort(key=lambda item: (item[0], item[1]))
        breaker_transitions: list[tuple[float, int, str, str]] = []
        for wid, breaker in enumerate(self.breakers):
            breaker_transitions.extend(
                (t, wid, src, dst) for (t, src, dst) in breaker.transitions
            )
        breaker_transitions.sort(key=lambda item: (item[0], item[1]))
        self.faults.breaker_transitions = breaker_transitions
        self.faults.degradation_transitions = degradation
        self.faults.degradation_dwell_s = {
            name: dwell[name] for name in sorted(dwell)
        }
        self.faults.widened_delta_theta_deg = widened
        return self.faults


def run_chaos(
    chaos: ChaosConfig,
    service: "BatchServiceModel | None" = None,
    inference: "InferenceFn | None" = None,
    obs: "Obs | None" = None,
) -> FleetReport:
    """Run one seeded chaos scenario; the report carries ``.faults``."""
    return ChaosRuntime(chaos, service=service, inference=inference, obs=obs).run()
