"""Command-line report generator: ``python -m repro <experiment>``.

Regenerates individual paper tables/figures (or the full analytic set)
without going through pytest.  Training-dependent experiments accept a
``--scale`` flag; everything prints the same rows the paper reports.

``python -m repro serve [...]`` runs the multi-session serving simulator
instead (see ``repro.serve.cli`` for its flags),
``python -m repro chaos [...]`` runs a seeded fault-injection scenario on
it (see ``repro.faults.cli``), ``python -m repro trace [...]`` runs a
traced workload and exports trace.json / metrics.prom
(see ``repro.obs.cli``), ``python -m repro recover [...]`` warm-restarts
a killed checkpointed run (see ``repro.recover.cli``), and
``python -m repro sdc [...]`` runs the soft-error / silent-data-corruption
resilience campaign (see ``repro.reliability.cli``).
"""

from __future__ import annotations

import argparse
import sys

ANALYTIC = ("fig1", "fig11e", "fig12", "fig13a", "fig13b", "fig13c", "table5", "sec7", "qoe", "fps")
TRAINED = ("table1", "fig8a", "table2", "table3", "table4", "fig15", "all-trained")


def _run_analytic(name: str) -> str:
    from repro import experiments as ex

    errors = ex.paper_reference_errors(0.2)
    if name == "fig1":
        return ex.format_fig1(ex.run_fig1())
    if name == "fig11e":
        return ex.format_fig11e(ex.run_fig11e())
    if name == "fig12":
        return ex.format_fig12(ex.run_fig12(errors))
    if name == "fig13a":
        return ex.format_fig13a(ex.run_fig13a())
    if name == "fig13b":
        return ex.format_fig13b(ex.run_fig13b(errors))
    if name == "fig13c":
        return ex.format_fig13c(ex.run_fig13c(errors))
    if name == "table5":
        return ex.format_table5(ex.run_table5())
    if name == "sec7":
        return ex.format_accelerator_pa(ex.run_accelerator_pa())
    if name == "qoe":
        return ex.format_latency_qoe(ex.run_latency_qoe(errors))
    if name == "fps":
        return ex.format_fps(ex.run_fps(errors))
    raise KeyError(name)


def _run_trained(name: str, scale: str, seed: int) -> str:
    from repro import experiments as ex
    from repro.experiments.common import ContextScale

    context = ex.get_context(
        ContextScale.tiny() if scale == "tiny" else ContextScale.bench(), seed=seed
    )
    pieces = []
    if name in ("table1", "fig8a", "all-trained"):
        result = ex.run_table1(context)
        if name in ("table1", "all-trained"):
            pieces.append(ex.format_table1(result))
        if name in ("fig8a", "all-trained"):
            pieces.append(ex.format_fig8a(result))
    if name in ("table2", "all-trained"):
        pieces.append(ex.format_table2(ex.run_table2(context)))
    if name in ("table3", "all-trained"):
        pieces.append(ex.format_table3(ex.run_table3(context)))
    if name in ("table4", "all-trained"):
        pieces.append(ex.format_table4(ex.run_table4(context)))
    if name in ("fig15", "all-trained"):
        pieces.append(ex.format_fig15(ex.run_fig15(context)))
    if not pieces:
        raise KeyError(name)
    return "\n\n".join(pieces)


def main(argv: "list[str] | None" = None) -> int:
    raw = sys.argv[1:] if argv is None else argv
    if raw and raw[0] == "serve":
        from repro.serve.cli import main as serve_main

        return serve_main(raw[1:])
    if raw and raw[0] == "chaos":
        from repro.faults.cli import main as chaos_main

        return chaos_main(raw[1:])
    if raw and raw[0] == "trace":
        from repro.obs.cli import main as trace_main

        return trace_main(raw[1:])
    if raw and raw[0] == "recover":
        from repro.recover.cli import main as recover_main

        return recover_main(raw[1:])
    if raw and raw[0] == "sdc":
        from repro.reliability.cli import main as sdc_main

        return sdc_main(raw[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__
    )
    parser.add_argument(
        "experiment",
        choices=(*ANALYTIC, *TRAINED, "all-analytic"),
        help="which paper table/figure to regenerate",
    )
    parser.add_argument("--scale", choices=("tiny", "bench"), default="tiny")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.experiment == "all-analytic":
        print("\n\n".join(_run_analytic(name) for name in ANALYTIC))
    elif args.experiment in ANALYTIC:
        print(_run_analytic(args.experiment))
    else:
        print(_run_trained(args.experiment, args.scale, args.seed))
    return 0


if __name__ == "__main__":
    sys.exit(main())
