"""Command-line report generator: ``python -m repro <experiment>``.

Regenerates individual paper tables/figures (or the full analytic set)
without going through pytest.  Training-dependent experiments accept a
``--scale`` flag; everything prints the same rows the paper reports.

``python -m repro serve [...]`` runs the multi-session serving simulator
instead (see ``repro.serve.cli`` for its flags),
``python -m repro chaos [...]`` runs a seeded fault-injection scenario on
it (see ``repro.faults.cli``), ``python -m repro trace [...]`` runs a
traced workload and exports trace.json / metrics.prom
(see ``repro.obs.cli``), ``python -m repro recover [...]`` warm-restarts
a killed checkpointed run (see ``repro.recover.cli``),
``python -m repro sdc [...]`` runs the soft-error / silent-data-corruption
resilience campaign (see ``repro.reliability.cli``), and
``python -m repro exp [...]`` runs declarative experiment campaigns with
the on-disk tracking backend (see ``repro.exp.cli``),
``python -m repro bench [...]`` runs benchmark suites against the
persisted performance-trajectory ledger (see ``repro.bench.cli``), and
``python -m repro fleet [...]`` runs the sharded fleet with
consistent-hash routing, live migration, and shard failover
(see ``repro.serve.fleet.cli``).
"""

from __future__ import annotations

import sys
from importlib import import_module

#: Subcommand registry: name -> module exposing ``main(argv) -> int``.
#: New subcommands register here (and nowhere else); anything not listed
#: falls through to the paper-experiment generator.
SUBCOMMANDS: dict[str, str] = {
    "serve": "repro.serve.cli",
    "chaos": "repro.faults.cli",
    "trace": "repro.obs.cli",
    "recover": "repro.recover.cli",
    "sdc": "repro.reliability.cli",
    "exp": "repro.exp.cli",
    "bench": "repro.bench.cli",
    "fleet": "repro.serve.fleet.cli",
}


def main(argv: "list[str] | None" = None) -> int:
    raw = sys.argv[1:] if argv is None else argv
    if raw and raw[0] in SUBCOMMANDS:
        module = import_module(SUBCOMMANDS[raw[0]])
        return module.main(raw[1:])
    from repro.experiments.cli import main as experiments_main

    return experiments_main(raw, description=__doc__)


if __name__ == "__main__":
    sys.exit(main())
