"""Table 5: average 1080P TFR latency vs token-pruning ratio, plus the
Vive Pro Eye commercial comparison.

The sweep exposes the paper's central trade-off: more pruning shrinks
gaze-tracking latency but raises tracking error, which enlarges the
foveal region and raises rendering latency — the minimum sits at 20%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.profiles import polo_execution, profile_from_execution
from repro.render import RES_1080P, SCENES
from repro.system import TfrSystem, vive_pro_eye_profile
from repro.system.metrics import table_to_text

PRUNING_RATIOS = (0.0, 0.1, 0.2, 0.3, 0.4)

#: P95 error vs pruning ratio.  Table 1 gives 0.0 / 0.2 / 0.4; the 0.1 and
#: 0.3 points are interpolated, matching the paper's monotone trend.
PAPER_ERROR_BY_RATIO = {0.0: 2.30, 0.1: 2.58, 0.2: 2.92, 0.3: 4.2, 0.4: 5.91}


@dataclass
class PruningSweepResult:
    """Average 1080P TFR latency per pruning ratio, plus Vive Pro Eye."""

    latency_ms: dict = field(default_factory=dict)  # ratio -> ms
    gaze_ms: dict = field(default_factory=dict)
    render_ms: dict = field(default_factory=dict)
    vive_ms: float = 0.0

    def best_ratio(self) -> float:
        return min(self.latency_ms, key=self.latency_ms.get)


def run_table5(
    errors_by_ratio: "dict[float, float] | None" = None,
    system: "TfrSystem | None" = None,
) -> PruningSweepResult:
    errors_by_ratio = errors_by_ratio or PAPER_ERROR_BY_RATIO
    system = system or TfrSystem()
    result = PruningSweepResult()
    for ratio, error in errors_by_ratio.items():
        execution = polo_execution(ratio)
        profile = profile_from_execution(execution, error)
        frames = [
            system.frame_latency(profile, s, RES_1080P, "predict") for s in SCENES
        ]
        result.latency_ms[ratio] = float(np.mean([f.total_s for f in frames]) * 1e3)
        result.gaze_ms[ratio] = float(np.mean([f.gaze_s for f in frames]) * 1e3)
        result.render_ms[ratio] = float(np.mean([f.rendering_s for f in frames]) * 1e3)

    vive = vive_pro_eye_profile()
    result.vive_ms = float(
        np.mean(
            [system.frame_latency(vive, s, RES_1080P, "predict").total_s for s in SCENES]
        )
        * 1e3
    )
    return result


def format_table5(result: PruningSweepResult) -> str:
    headers = ["Pruning ratio"] + [f"{r:.0%}" for r in result.latency_ms] + ["Vive Pro Eye"]
    rows = [
        ["TFR latency (ms)"]
        + [f"{v:.1f}" for v in result.latency_ms.values()]
        + [f"{result.vive_ms:.1f}"],
        ["gaze (ms)"] + [f"{v:.1f}" for v in result.gaze_ms.values()] + ["50.0"],
        ["render (ms)"] + [f"{v:.1f}" for v in result.render_ms.values()] + ["-"],
    ]
    text = "Table 5 — TFR latency vs pruning ratio (1080P)\n" + table_to_text(headers, rows)
    return text + f"\nBest ratio: {result.best_ratio():.0%}"
