"""§7 synthesis results: POLO accelerator area, area breakdown, and
average power (paper: 0.75 mm^2, 72% buffers / 24% engine / 4% IPU,
0.15 W average)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.profiles import polo_execution
from repro.hw import polo_accelerator
from repro.system.metrics import table_to_text


@dataclass(frozen=True)
class AcceleratorPaResult:
    total_mm2: float
    buffers_fraction: float
    engine_fraction: float
    ipu_fraction: float
    predict_energy_mj: float
    predict_latency_ms: float
    average_power_w: float


def run_accelerator_pa(pruning_ratio: float = 0.2) -> AcceleratorPaResult:
    accelerator = polo_accelerator()
    fractions = accelerator.area_fractions()
    execution = polo_execution(pruning_ratio)
    energy = execution.energy_predict.total_j
    latency = execution.td_predict_s
    return AcceleratorPaResult(
        total_mm2=fractions["total_mm2"],
        buffers_fraction=fractions["buffers"],
        engine_fraction=fractions["engine"],
        ipu_fraction=fractions["ipu"],
        predict_energy_mj=energy * 1e3,
        predict_latency_ms=latency * 1e3,
        average_power_w=energy / latency,
    )


def format_accelerator_pa(result: AcceleratorPaResult) -> str:
    headers = ["Quantity", "Measured", "Paper"]
    rows = [
        ["Area (mm^2)", f"{result.total_mm2:.3f}", "0.75"],
        ["Buffers share", f"{100 * result.buffers_fraction:.0f}%", "72%"],
        ["Engine share", f"{100 * result.engine_fraction:.0f}%", "24%"],
        ["IPU share", f"{100 * result.ipu_fraction:.0f}%", "4%"],
        ["Predict-path power (W)", f"{result.average_power_w:.3f}", "<= 0.15"],
        ["Predict-path latency (ms)", f"{result.predict_latency_ms:.2f}", "~9.8-10.7"],
    ]
    return "§7 — POLO accelerator synthesis summary\n" + table_to_text(headers, rows)
