"""Paper table/figure regeneration behind one callable surface.

``python -m repro <experiment>`` dispatches here (see
``repro.__main__``), and the experiment-campaign layer (``repro.exp``)
drives the same code programmatically through :func:`run_from_config`
instead of shelling out — one implementation, two front ends.
"""

from __future__ import annotations

import argparse

#: Analytic experiments: pure closed-form/simulation reports, no training.
ANALYTIC = ("fig1", "fig11e", "fig12", "fig13a", "fig13b", "fig13c",
            "table5", "sec7", "qoe", "fps")
#: Training-dependent experiments (share one ExperimentContext per scale).
TRAINED = ("table1", "fig8a", "table2", "table3", "table4", "fig15",
           "all-trained")

SCALES = ("tiny", "bench")


def run_analytic(name: str) -> str:
    from repro import experiments as ex

    errors = ex.paper_reference_errors(0.2)
    if name == "fig1":
        return ex.format_fig1(ex.run_fig1())
    if name == "fig11e":
        return ex.format_fig11e(ex.run_fig11e())
    if name == "fig12":
        return ex.format_fig12(ex.run_fig12(errors))
    if name == "fig13a":
        return ex.format_fig13a(ex.run_fig13a())
    if name == "fig13b":
        return ex.format_fig13b(ex.run_fig13b(errors))
    if name == "fig13c":
        return ex.format_fig13c(ex.run_fig13c(errors))
    if name == "table5":
        return ex.format_table5(ex.run_table5())
    if name == "sec7":
        return ex.format_accelerator_pa(ex.run_accelerator_pa())
    if name == "qoe":
        return ex.format_latency_qoe(ex.run_latency_qoe(errors))
    if name == "fps":
        return ex.format_fps(ex.run_fps(errors))
    raise KeyError(name)


def run_trained(name: str, scale: str, seed: int) -> str:
    from repro import experiments as ex
    from repro.experiments.common import ContextScale

    context = ex.get_context(
        ContextScale.tiny() if scale == "tiny" else ContextScale.bench(), seed=seed
    )
    pieces = []
    if name in ("table1", "fig8a", "all-trained"):
        result = ex.run_table1(context)
        if name in ("table1", "all-trained"):
            pieces.append(ex.format_table1(result))
        if name in ("fig8a", "all-trained"):
            pieces.append(ex.format_fig8a(result))
    if name in ("table2", "all-trained"):
        pieces.append(ex.format_table2(ex.run_table2(context)))
    if name in ("table3", "all-trained"):
        pieces.append(ex.format_table3(ex.run_table3(context)))
    if name in ("table4", "all-trained"):
        pieces.append(ex.format_table4(ex.run_table4(context)))
    if name in ("fig15", "all-trained"):
        pieces.append(ex.format_fig15(ex.run_fig15(context)))
    if not pieces:
        raise KeyError(name)
    return "\n\n".join(pieces)


def run_experiment(name: str, scale: str = "tiny", seed: int = 0) -> str:
    """One experiment (or ``all-analytic``) -> its formatted report text."""
    if name == "all-analytic":
        return "\n\n".join(run_analytic(n) for n in ANALYTIC)
    if name in ANALYTIC:
        return run_analytic(name)
    if name in TRAINED:
        return run_trained(name, scale, seed)
    raise KeyError(name)


# ----------------------------------------------------------------------
# Campaign entry point (repro.exp)
# ----------------------------------------------------------------------
def resolve_run_config(params: dict) -> dict:
    """Validate campaign params -> the fully resolved canonical dict."""
    params = dict(params)
    name = params.pop("experiment", None)
    scale = params.pop("scale", "tiny")
    seed = params.pop("seed", 0)
    if params:
        raise ValueError(
            f"unknown paper-experiment params: {sorted(params)} "
            "(expected: experiment, scale, seed)"
        )
    if name not in (*ANALYTIC, *TRAINED, "all-analytic"):
        raise ValueError(
            f"unknown experiment {name!r}; choose from "
            f"{(*ANALYTIC, *TRAINED, 'all-analytic')}"
        )
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {SCALES}")
    return {"experiment": name, "scale": scale, "seed": int(seed)}


def run_from_config(params: dict) -> str:
    """Campaign entry point: params dict -> the report text."""
    resolved = resolve_run_config(params)
    return run_experiment(
        resolved["experiment"], resolved["scale"], resolved["seed"]
    )


# ----------------------------------------------------------------------
# CLI (the default ``python -m repro`` command)
# ----------------------------------------------------------------------
def build_parser(description: "str | None" = None) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=description or __doc__
    )
    parser.add_argument(
        "experiment",
        choices=(*ANALYTIC, *TRAINED, "all-analytic"),
        help="which paper table/figure to regenerate",
    )
    parser.add_argument("--scale", choices=SCALES, default="tiny")
    parser.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: "list[str] | None" = None,
         description: "str | None" = None) -> int:
    args = build_parser(description).parse_args(argv)
    print(run_experiment(args.experiment, args.scale, args.seed))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
