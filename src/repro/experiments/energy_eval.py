"""Fig. 13a: per-frame gaze-tracking energy breakdown (MAC / SFU /
buffer) of each algorithm on its dedicated accelerator."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.profiles import (
    SYSTEM_BASELINES,
    baseline_execution,
    polo_execution,
)
from repro.hw.energy import EnergyBreakdown
from repro.system.metrics import table_to_text


@dataclass
class EnergyResult:
    """Per-method energy breakdowns in millijoules."""

    breakdowns: dict[str, EnergyBreakdown] = field(default_factory=dict)

    def total_mj(self, name: str) -> float:
        return self.breakdowns[name].total_j * 1e3

    def polo_reduction(self) -> float:
        """Average baseline-to-POLO energy ratio (paper: 4.1x)."""
        polo = self.total_mj("POLO")
        ratios = [self.total_mj(n) / polo for n in SYSTEM_BASELINES]
        return float(np.mean(ratios))


def run_fig13a(pruning_ratio: float = 0.2) -> EnergyResult:
    result = EnergyResult()
    polo = polo_execution(pruning_ratio)
    result.breakdowns["POLO"] = polo.energy_predict
    for name in SYSTEM_BASELINES:
        result.breakdowns[name] = baseline_execution(name).energy_predict
    return result


def format_fig13a(result: EnergyResult) -> str:
    headers = ["Method", "Total(mJ)", "MAC%", "SFU%", "Buffer%"]
    rows = []
    for name, e in result.breakdowns.items():
        fr = e.fractions()
        rows.append(
            [
                name,
                f"{e.total_j * 1e3:.3f}",
                f"{100 * fr['mac']:.0f}",
                f"{100 * fr['sfu']:.0f}",
                f"{100 * (fr['buffer'] + fr['other']):.0f}",
            ]
        )
    text = "Fig. 13a — gaze-tracking energy per frame\n" + table_to_text(headers, rows)
    return text + f"\nAverage baseline/POLO energy ratio: {result.polo_reduction():.2f}x"
