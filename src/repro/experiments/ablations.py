"""Figs. 13b and 13c: the accelerator ablation (gaze DNN on the GPU
instead of the dedicated accelerator) and the computational-pattern
ablation (sequential vs parallel R1/R2 scheduling), both at 1080P."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import (
    DeepVOGTracker,
    EdGazeTracker,
    IncResNetGazeTracker,
    ResNetGazeTracker,
)
from repro.experiments.profiles import (
    SYSTEM_BASELINES,
    baseline_execution,
    polo_execution,
    pruned_vit_workload,
)
from repro.core import GazeViTConfig
from repro.hw import GpuComputeModel
from repro.render import RES_1080P, SCENES
from repro.system import Schedule, TfrSystem, TrackerSystemProfile
from repro.system.metrics import table_to_text

_TRACKER_CLASSES = {
    "ResNet-34": ResNetGazeTracker,
    "IncResNet": IncResNetGazeTracker,
    "EdGaze": EdGazeTracker,
    "DeepVOG": DeepVOGTracker,
}


@dataclass
class AcceleratorAblationResult:
    """Fig. 13b: scene-averaged 1080P TFR latency with and without the
    dedicated gaze accelerator."""

    with_accel_ms: dict[str, float] = field(default_factory=dict)
    gpu_only_ms: dict[str, float] = field(default_factory=dict)

    def ratio(self, name: str) -> float:
        return self.gpu_only_ms[name] / self.with_accel_ms[name]


def run_fig13b(
    errors_p95: dict[str, float],
    pruning_ratio: float = 0.2,
    gpu: "GpuComputeModel | None" = None,
    system: "TfrSystem | None" = None,
) -> AcceleratorAblationResult:
    gpu = gpu or GpuComputeModel()
    system = system or TfrSystem()
    result = AcceleratorAblationResult()

    def averaged(profile: TrackerSystemProfile) -> float:
        return float(
            np.mean(
                [
                    system.frame_latency(profile, s, RES_1080P).total_s
                    for s in SCENES
                ]
            )
            * 1e3
        )

    # POLO: accelerator vs GPU-run POLOViT (INT8 stays INT8 on the GPU).
    polo = polo_execution(pruning_ratio)
    accel_profile = TrackerSystemProfile(
        "POLO_N", polo.td_predict_s, errors_p95["POLO"]
    )
    vit_ops = pruned_vit_workload(GazeViTConfig.paper(), pruning_ratio)
    gpu_td = gpu.latency_s(vit_ops, "int8", token_pruned=pruning_ratio > 0)
    gpu_profile = TrackerSystemProfile("POLO_N", gpu_td, errors_p95["POLO"])
    result.with_accel_ms["POLO_N"] = averaged(accel_profile)
    result.gpu_only_ms["POLO_N"] = averaged(gpu_profile)

    for name in SYSTEM_BASELINES:
        execution = baseline_execution(name)
        accel_profile = TrackerSystemProfile(name, execution.td_predict_s, errors_p95[name])
        ops = _TRACKER_CLASSES[name]().workload()
        gpu_profile = TrackerSystemProfile(
            name, gpu.latency_s(ops, "fp16"), errors_p95[name]
        )
        result.with_accel_ms[name] = averaged(accel_profile)
        result.gpu_only_ms[name] = averaged(gpu_profile)
    return result


def format_fig13b(result: AcceleratorAblationResult) -> str:
    headers = ["Method", "Accelerator(ms)", "GPU only(ms)", "Ratio"]
    rows = [
        [
            name,
            f"{result.with_accel_ms[name]:.1f}",
            f"{result.gpu_only_ms[name]:.1f}",
            f"{result.ratio(name):.2f}x",
        ]
        for name in result.with_accel_ms
    ]
    return "Fig. 13b — TFR latency with vs without gaze accelerator (1080P)\n" + table_to_text(
        headers, rows
    )


# ----------------------------------------------------------------------
@dataclass
class ScheduleAblationResult:
    """Fig. 13c: sequential vs parallel scheduling at 1080P."""

    sequential_ms: dict[str, float] = field(default_factory=dict)
    parallel_ms: dict[str, float] = field(default_factory=dict)

    def reduction(self, name: str) -> float:
        return 1.0 - self.parallel_ms[name] / self.sequential_ms[name]

    def average_reduction(self) -> float:
        return float(np.mean([self.reduction(n) for n in self.sequential_ms]))


def run_fig13c(
    errors_p95: dict[str, float],
    pruning_ratio: float = 0.2,
    system: "TfrSystem | None" = None,
) -> ScheduleAblationResult:
    system = system or TfrSystem()
    result = ScheduleAblationResult()
    polo = polo_execution(pruning_ratio)
    profiles = {
        "POLO_N": TrackerSystemProfile("POLO_N", polo.td_predict_s, errors_p95["POLO"])
    }
    for name in SYSTEM_BASELINES:
        profiles[name] = TrackerSystemProfile(
            name, baseline_execution(name).td_predict_s, errors_p95[name]
        )
    for name, profile in profiles.items():
        seq = np.mean(
            [
                system.frame_latency(profile, s, RES_1080P, schedule=Schedule.SEQUENTIAL).total_s
                for s in SCENES
            ]
        )
        par = np.mean(
            [
                system.frame_latency(profile, s, RES_1080P, schedule=Schedule.PARALLEL).total_s
                for s in SCENES
            ]
        )
        result.sequential_ms[name] = float(seq * 1e3)
        result.parallel_ms[name] = float(par * 1e3)
    return result


def format_fig13c(result: ScheduleAblationResult) -> str:
    headers = ["Method", "Sequential(ms)", "Parallel(ms)", "Reduction"]
    rows = [
        [
            name,
            f"{result.sequential_ms[name]:.1f}",
            f"{result.parallel_ms[name]:.1f}",
            f"{100 * result.reduction(name):.1f}%",
        ]
        for name in result.sequential_ms
    ]
    text = "Fig. 13c — computational pattern ablation (1080P)\n" + table_to_text(headers, rows)
    return text + f"\nAverage reduction: {100 * result.average_reduction():.1f}%"
