"""Table 4: gaze error on *reused* frames as the reuse threshold gamma2
varies.

Runs the full POLONet runtime over the validation sequences at each
gamma2, collects the angular error of every frame whose gaze came from
the reuse path, and reports the mean / P95 — larger gamma2 tolerates
bigger inter-frame change before re-predicting, so staleness (and error)
grows monotonically, which is the paper's crossover argument for
gamma2 = 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.baselines import angular_errors
from repro.core import Decision, PoloNet
from repro.experiments.common import MIN_OPENNESS, ExperimentContext
from repro.system.metrics import table_to_text

GAMMA2_VALUES = (5.0, 10.0, 15.0, 20.0)


@dataclass
class ReuseSweepResult:
    """Per-gamma2 reused-frame error statistics."""

    stats: dict = field(default_factory=dict)  # gamma2 -> dict

    def reuse_fraction(self, gamma2: float) -> float:
        return self.stats[gamma2]["reuse_fraction"]


def run_table4(
    context: ExperimentContext, gamma2_values: tuple = GAMMA2_VALUES
) -> ReuseSweepResult:
    result = ReuseSweepResult()
    bundle = context.bundle
    for gamma2 in gamma2_values:
        config = replace(context.polonet_config, gamma2=gamma2)
        polonet = PoloNet(
            bundle.detector, bundle.vit, config, prune=bundle.polonet.prune
        )
        reused_errors = []
        decisions = {d: 0 for d in Decision}
        for seq in context.val.sequences:
            polonet.reset()
            for i in range(len(seq)):
                frame = seq.images[i].astype(np.float64)
                res = polonet.process_frame(frame)
                decisions[res.decision] += 1
                usable = seq.openness[i] >= MIN_OPENNESS
                if res.decision is Decision.REUSE and usable:
                    err = angular_errors(
                        res.gaze_deg[None], seq.gaze_deg[i][None]
                    )[0]
                    reused_errors.append(err)
        reused = np.asarray(reused_errors)
        total = sum(decisions.values())
        result.stats[gamma2] = {
            "mean": float(reused.mean()) if reused.size else float("nan"),
            "p95": float(np.percentile(reused, 95)) if reused.size else float("nan"),
            "n_reused": int(reused.size),
            "reuse_fraction": decisions[Decision.REUSE] / max(total, 1),
        }
    return result


def format_table4(result: ReuseSweepResult) -> str:
    headers = ["gamma2", "P95 Error(deg)", "Mean(deg)", "Reuse fraction"]
    rows = [
        [
            f"<= {g:.0f}",
            f"{s['p95']:.2f}",
            f"{s['mean']:.2f}",
            f"{s['reuse_fraction']:.2f}",
        ]
        for g, s in result.stats.items()
    ]
    return "Table 4 — impact of gamma2 on reused-frame error\n" + table_to_text(headers, rows)
