"""Eq. 8 / §5.3: maximum sustainable TFR frame rates per method.

The paper derives FPS_max = 1 / (Ts + Tc + Td + Tr) (sequential) and
1 / (Tr1 + Tr2) once gaze processing hides behind R1 (parallel).  This
experiment tabulates both, event-mix-averaged for POLO.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.profiles import SYSTEM_BASELINES, system_profiles
from repro.eye.events import EventMix
from repro.render import RESOLUTIONS, SCENES
from repro.system import Schedule, TfrSystem
from repro.system.metrics import table_to_text


@dataclass
class FpsResult:
    """Scene-averaged FPS_max per (method, resolution, schedule)."""

    fps: dict = field(default_factory=dict)

    def get(self, method: str, resolution: str, schedule: Schedule) -> float:
        return self.fps[(method, resolution, schedule.value)]


def run_fps(
    errors_p95: dict[str, float],
    event_mix: "EventMix | None" = None,
    pruning_ratio: float = 0.2,
    system: "TfrSystem | None" = None,
) -> FpsResult:
    system = system or TfrSystem()
    profiles = system_profiles(errors_p95, pruning_ratio)
    result = FpsResult()
    for res in RESOLUTIONS:
        for name, profile in profiles.items():
            label = "POLO" if name == "POLO" else name
            for schedule in Schedule:
                mix = event_mix if name == "POLO" else None
                fps_values = [
                    system.fps_max(profile, scene, res, mix, schedule)
                    for scene in SCENES
                ]
                result.fps[(label, res.name, schedule.value)] = float(
                    np.mean(fps_values)
                )
    return result


def format_fps(result: FpsResult) -> str:
    methods = ["POLO", *SYSTEM_BASELINES]
    headers = ["Method"] + [
        f"{r.name} {s.value[:3]}" for r in RESOLUTIONS for s in Schedule
    ]
    rows = []
    for method in methods:
        row = [method]
        for res in RESOLUTIONS:
            for schedule in Schedule:
                row.append(f"{result.get(method, res.name, schedule):.0f}")
        rows.append(row)
    return "Eq. 8 — maximum sustainable FPS (scene-averaged)\n" + table_to_text(
        headers, rows
    )
