"""Fig. 15: the 2IFC user study comparing foveated rendering driven by
POLOViT's error traces against ResNet-34's.

Error traces come from the trained trackers' per-frame validation errors
(the paper replays recorded tracking-error traces on a Quest Pro); the
synthetic observers then perform the 7-participant, 32-trial protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import angular_errors
from repro.experiments.common import (
    ExperimentContext,
    polovit_validation_errors,
    tracker_validation_errors,
)
from repro.perception import DEFAULT_VIDEOS, StudyResult, run_user_study
from repro.system.metrics import table_to_text


@dataclass
class UserStudyExperiment:
    """Study result plus the traces that produced it."""

    result: StudyResult
    candidate_trace: np.ndarray
    baseline_trace: np.ndarray


def error_traces(context: ExperimentContext) -> tuple[np.ndarray, np.ndarray]:
    """Per-frame error traces: (POLOViT(0.2), ResNet-34)."""
    candidate = polovit_validation_errors(context.bundle.vit, context, prune=True)
    baseline = tracker_validation_errors(context.baselines["ResNet-34"], context)
    return candidate, baseline


def run_fig15(
    context: "ExperimentContext | None" = None,
    traces: "tuple[np.ndarray, np.ndarray] | None" = None,
    n_participants: int = 7,
    repeats: int = 4,
    seed: int = 42,
) -> UserStudyExperiment:
    if traces is None:
        if context is None:
            raise ValueError("provide either a context or explicit error traces")
        traces = error_traces(context)
    candidate, baseline = traces
    result = run_user_study(
        candidate,
        baseline,
        videos=DEFAULT_VIDEOS,
        n_participants=n_participants,
        repeats=repeats,
        seed=seed,
    )
    return UserStudyExperiment(
        result=result, candidate_trace=candidate, baseline_trace=baseline
    )


def format_fig15(experiment: UserStudyExperiment) -> str:
    result = experiment.result
    headers = ["Video", "POLOViT preferred", "std"]
    rows = [
        [name, f"{100 * rate:.0f}%", f"{100 * result.per_video_std[name]:.0f}%"]
        for name, rate in result.per_video.items()
    ]
    text = "Fig. 15 — 2IFC user study selections\n" + table_to_text(headers, rows)
    text += (
        f"\nOverall: POLOViT preferred {100 * result.mean_selection:.0f}%"
        f" +/- {100 * result.std_selection:.0f}% across participants"
    )
    return text
