"""Assembling system profiles: tracker -> (gaze latency, error) pairs.

Bridges the algorithm layer and the system layer: runs each method's
paper-scale workload through its dedicated accelerator model to get the
gaze-processing latency Td, and pairs it with a tracking error Delta-theta
(measured on the synthetic validation set, or the paper's Table 1 values
for system-model tests that must be independent of training noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines import (
    DeepVOGTracker,
    EdGazeTracker,
    IncResNetGazeTracker,
    NVGazeTracker,
    ResNetGazeTracker,
)
from repro.core import GazeViTConfig, SaccadeDetector
from repro.core.gaze_vit import vit_workload
from repro.hw import (
    EnergyBreakdown,
    PoloAcceleratorModel,
    baseline_accelerator,
    polo_accelerator,
)
from repro.system import TrackerSystemProfile

#: Paper-scale eye-frame geometry (OpenEDS sensor).
PAPER_FRAME_SHAPE = (400, 640)
PAPER_POOL_M = 4
PAPER_MAP_SHAPE = (100, 160)

_BASELINE_CLASSES = {
    "NVGaze": NVGazeTracker,
    "ResNet-34": ResNetGazeTracker,
    "IncResNet": IncResNetGazeTracker,
    "EdGaze": EdGazeTracker,
    "DeepVOG": DeepVOGTracker,
}

BASELINE_NAMES = tuple(_BASELINE_CLASSES)
#: The four baselines that appear in the §7 system figures.
SYSTEM_BASELINES = ("ResNet-34", "IncResNet", "EdGaze", "DeepVOG")


@dataclass(frozen=True)
class GazeExecution:
    """Accelerator-level results for one method's gaze processing."""

    name: str
    td_predict_s: float
    energy_predict: EnergyBreakdown
    td_saccade_s: "float | None" = None
    td_reuse_s: "float | None" = None


def polo_execution(
    pruning_ratio: float = 0.2,
    vit_config: "GazeViTConfig | None" = None,
) -> GazeExecution:
    """Run POLONet's three paths on the POLO accelerator.

    Token pruning is applied to the paper-scale ViT workload by scaling
    block token counts the way the compact model's calibrated filter does:
    full tokens for the first ``prune_every`` blocks, then a geometric
    reduction reaching the target overall compute ratio.
    """
    vit_config = vit_config or GazeViTConfig.paper()
    ops = pruned_vit_workload(vit_config, pruning_ratio)

    detector = SaccadeDetector(PAPER_MAP_SHAPE)
    saccade_ops = detector.workload(PAPER_MAP_SHAPE)

    model = PoloAcceleratorModel(
        polo_accelerator(), frame_shape=PAPER_FRAME_SHAPE, pool_m=PAPER_POOL_M
    )
    predict = model.path_report("predict", saccade_ops, ops)
    saccade = model.path_report("saccade", saccade_ops)
    reuse = model.path_report("reuse", saccade_ops)
    return GazeExecution(
        name="POLO",
        td_predict_s=predict.latency_s,
        energy_predict=predict.energy,
        td_saccade_s=saccade.latency_s,
        td_reuse_s=reuse.latency_s,
    )


def pruned_vit_workload(config: GazeViTConfig, pruning_ratio: float) -> list:
    """Paper-scale POLOViT ops under an overall compute-pruning ratio.

    The token selector fires every ``prune_every`` blocks; block token
    counts step down uniformly at each firing so the summed token-compute
    equals ``1 - pruning_ratio`` of the unpruned total, mirroring how the
    calibrated threshold behaves on the compact model.
    """
    if not 0.0 <= pruning_ratio < 1.0:
        raise ValueError(f"pruning_ratio must be in [0, 1), got {pruning_ratio}")
    full = config.num_patches + 1
    depth = config.depth
    if pruning_ratio == 0.0:
        tokens = [full] * depth
    else:
        # Uniform per-stage drop fraction f solving sum = (1-r)*full*depth.
        target = (1.0 - pruning_ratio) * full * depth
        lo, hi = 0.0, 0.9
        for _ in range(40):
            f = 0.5 * (lo + hi)
            tokens = _staged_tokens(full, depth, config.prune_every, f)
            if sum(tokens) > target:
                lo = f
            else:
                hi = f
        tokens = _staged_tokens(full, depth, config.prune_every, 0.5 * (lo + hi))
    return vit_workload(config, tokens)


def _staged_tokens(full: int, depth: int, prune_every: int, drop: float) -> list[int]:
    tokens = []
    current = full
    for block in range(depth):
        tokens.append(int(round(current)))
        if (block + 1) % prune_every == 0 and (block + 1) < depth:
            current = max(2.0, current * (1.0 - drop))
    return tokens


def baseline_execution(name: str) -> GazeExecution:
    """Run one baseline's workload on its dedicated FP16 accelerator."""
    tracker = _BASELINE_CLASSES[name]()
    accelerator = baseline_accelerator(name)
    report = accelerator.run(tracker.workload())
    return GazeExecution(
        name=name, td_predict_s=report.latency_s, energy_predict=report.energy
    )


# ----------------------------------------------------------------------
def profile_from_execution(
    execution: GazeExecution, delta_theta_deg: float
) -> TrackerSystemProfile:
    return TrackerSystemProfile(
        name=execution.name,
        td_predict_s=execution.td_predict_s,
        delta_theta_deg=delta_theta_deg,
        td_saccade_s=execution.td_saccade_s,
        td_reuse_s=execution.td_reuse_s,
        energy_predict_j=execution.energy_predict.total_j,
    )


def system_profiles(
    errors_p95: dict[str, float],
    pruning_ratio: float = 0.2,
) -> dict[str, TrackerSystemProfile]:
    """Profiles for POLO plus the four §7 baselines.

    ``errors_p95`` maps method name -> Delta-theta in degrees; 'POLO' keys
    the POLOViT error at the chosen pruning ratio.
    """
    profiles = {
        "POLO": profile_from_execution(
            polo_execution(pruning_ratio), errors_p95["POLO"]
        )
    }
    for name in SYSTEM_BASELINES:
        profiles[name] = profile_from_execution(
            baseline_execution(name), errors_p95[name]
        )
    return profiles


def paper_reference_errors(pruning_ratio: float = 0.2) -> dict[str, float]:
    """P95 errors straight from the paper's Table 1."""
    from repro.experiments.common import PAPER_TABLE1

    key = f"POLOViT({pruning_ratio:.1f})"
    if key not in PAPER_TABLE1:
        raise KeyError(f"paper reports no pruning ratio {pruning_ratio}")
    errors = {name: PAPER_TABLE1[name][2] for name in SYSTEM_BASELINES}
    errors["POLO"] = PAPER_TABLE1[key][2]
    return errors
