"""Extension experiments (paper §8 future work).

Two studies the paper's conclusion defers, built on the same substrates:

* ``run_latency_qoe`` — maps each method's end-to-end TFR latency to a
  quality-of-experience score at every scene/resolution, locating where
  each method crosses the 50-70 ms acceptability band.
* ``run_saccade_sensitivity`` — sweeps the saccade detector's operating
  threshold, trading false positives (visible low-res flashes during
  fixation) against false negatives (lost latency savings), and reports
  the expected artifact rate and the Eq. 6 average latency at each point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import PoloNet
from repro.experiments.common import ExperimentContext
from repro.experiments.profiles import SYSTEM_BASELINES, system_profiles
from repro.eye import MovementType
from repro.eye.events import EventMix
from repro.perception.qoe import (
    false_positive_artifact_rate,
    latency_qoe,
    misdetection_qoe,
)
from repro.render import RESOLUTIONS, SCENES
from repro.system import TfrSystem
from repro.system.metrics import table_to_text


# ----------------------------------------------------------------------
# Latency QoE
# ----------------------------------------------------------------------

@dataclass
class LatencyQoeResult:
    """Per-method QoE at each resolution (scene-averaged)."""

    qoe: dict = field(default_factory=dict)  # (method, resolution) -> score
    latency_ms: dict = field(default_factory=dict)

    def best_method(self, resolution: str) -> str:
        candidates = {m: s for (m, r), s in self.qoe.items() if r == resolution}
        return max(candidates, key=candidates.get)


def run_latency_qoe(
    errors_p95: dict[str, float],
    pruning_ratio: float = 0.2,
    system: "TfrSystem | None" = None,
) -> LatencyQoeResult:
    system = system or TfrSystem()
    profiles = system_profiles(errors_p95, pruning_ratio)
    result = LatencyQoeResult()
    for res in RESOLUTIONS:
        for name, profile in profiles.items():
            label = "POLO_N" if name == "POLO" else name
            latency = float(
                np.mean(
                    [
                        system.frame_latency(profile, scene, res).total_s
                        for scene in SCENES
                    ]
                )
            )
            result.latency_ms[(label, res.name)] = latency * 1e3
            result.qoe[(label, res.name)] = float(latency_qoe(latency))
    return result


def format_latency_qoe(result: LatencyQoeResult) -> str:
    methods = sorted({m for m, _ in result.qoe})
    headers = ["Method"] + [f"{r.name} QoE" for r in RESOLUTIONS]
    rows = [
        [m] + [f"{result.qoe[(m, r.name)]:.2f}" for r in RESOLUTIONS] for m in methods
    ]
    return "Extension — latency quality-of-experience\n" + table_to_text(headers, rows)


# ----------------------------------------------------------------------
# Saccade-misdetection sensitivity
# ----------------------------------------------------------------------

@dataclass
class SaccadeSensitivityResult:
    """Per-threshold detector operating points."""

    points: dict = field(default_factory=dict)
    # threshold -> {fpr, fnr, artifact_rate, qoe, avg_latency_ms}


def measure_detector_rates(
    context: ExperimentContext, threshold: float, max_frames: int = 150
) -> tuple[float, float, EventMix]:
    """False-positive / false-negative rates of the trained detector at a
    given decision threshold, plus the resulting event mix."""
    detector = context.bundle.detector
    polonet = PoloNet(
        detector,
        context.bundle.vit,
        context.polonet_config,
        saccade_threshold=threshold,
        prune=True,
    )
    fp = fn = tp = tn = 0
    counts = {"saccade": 0, "reuse": 0, "predict": 0}
    for seq in context.val.sequences:
        polonet.reset()
        n = min(len(seq), max_frames)
        for i in range(n):
            result = polonet.process_frame(seq.images[i].astype(np.float64))
            counts[result.decision.value] += 1
            is_saccade = seq.labels[i] == MovementType.SACCADE
            flagged = result.decision.value == "saccade"
            if flagged and is_saccade:
                tp += 1
            elif flagged and not is_saccade:
                fp += 1
            elif not flagged and is_saccade:
                fn += 1
            else:
                tn += 1
    fpr = fp / max(fp + tn, 1)
    fnr = fn / max(fn + tp, 1)
    mix = EventMix.from_counts(
        max(counts["saccade"], 0), counts["reuse"], max(counts["predict"], 1)
    )
    return fpr, fnr, mix


def run_saccade_sensitivity(
    context: ExperimentContext,
    errors_p95: dict[str, float],
    thresholds: tuple = (0.3, 0.5, 0.7, 0.9),
    system: "TfrSystem | None" = None,
) -> SaccadeSensitivityResult:
    from repro.experiments.profiles import polo_execution, profile_from_execution
    from repro.render import RES_1080P, scene_by_name

    system = system or TfrSystem()
    scene = scene_by_name("E")
    profile = profile_from_execution(polo_execution(0.2), errors_p95["POLO"])
    result = SaccadeSensitivityResult()
    for threshold in thresholds:
        fpr, fnr, mix = measure_detector_rates(context, threshold)
        avg_latency = system.average_latency(profile, scene, RES_1080P, mix)
        result.points[threshold] = {
            "fpr": fpr,
            "fnr": fnr,
            "artifact_rate": false_positive_artifact_rate(fpr),
            "qoe": misdetection_qoe(fpr),
            "avg_latency_ms": avg_latency * 1e3,
            "event_mix": mix,
        }
    return result


def format_saccade_sensitivity(result: SaccadeSensitivityResult) -> str:
    headers = ["Threshold", "FPR", "FNR", "Artifacts/s", "QoE", "Avg latency(ms)"]
    rows = [
        [
            f"{t:.1f}",
            f"{p['fpr']:.3f}",
            f"{p['fnr']:.3f}",
            f"{p['artifact_rate']:.2f}",
            f"{p['qoe']:.2f}",
            f"{p['avg_latency_ms']:.1f}",
        ]
        for t, p in result.points.items()
    ]
    return (
        "Extension — saccade misdetection sensitivity (scene E, 1080P)\n"
        + table_to_text(headers, rows)
    )
