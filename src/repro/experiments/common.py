"""Shared experiment infrastructure.

Training the trackers is the expensive part of regenerating the paper's
tables, and several tables reuse the same trained models, so this module
builds a cached :class:`ExperimentContext` holding the synthetic
datasets, the trained POLONet bundle, and the trained baselines.

It also fixes the evaluation protocol:

* every tracker — learned and model-based alike — fits on the training
  participants and is evaluated on the held-out validation participants
  (the paper's §6 protocol: "all DNNs trained under the same
  conditions").  This is what gives the model-based methods their large
  Table 1 errors: their geometric fits inherit the training users'
  rigs/anatomy and do not transfer exactly;
* frames with the eye essentially closed are excluded from gaze scoring
  (no gaze is observable), while partially occluded frames stay in, which
  is precisely where the error tails of Fig. 8a come from.

``tracker_validation_errors`` can optionally run the deployment-style
per-user calibration instead (``per_user_calibration=True``), which is
how a commercial VOG system would actually ship.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import (
    DeepVOGTracker,
    EdGazeTracker,
    ErrorSummary,
    GazeTracker,
    IncResNetGazeTracker,
    NVGazeTracker,
    ResNetGazeTracker,
    angular_errors,
)
from repro.core import (
    PoloViT,
    PolonetConfig,
    build_crop_dataset,
    build_polonet,
)
from repro.core.training import PolonetBundle
from repro.eye import EyeDataset, EyeSequence, synthesize_dataset

MIN_OPENNESS = 0.3
CALIBRATION_FRAMES = 40


@dataclass(frozen=True)
class ContextScale:
    """Dataset / training sizes for one fidelity level."""

    name: str
    train_participants: int
    val_participants: int
    frames_per_participant: int
    vit_epochs: int
    cnn_epochs: int
    saccade_epochs: int

    @staticmethod
    def tiny() -> "ContextScale":
        """Fast enough for unit/integration tests."""
        return ContextScale("tiny", 2, 1, 120, 3, 5, 5)

    @staticmethod
    def bench() -> "ContextScale":
        """The scale used by the benchmark harness.

        Mirrors the OpenEDS participant structure (32 train / a held-out
        validation group): participant diversity is what controls
        cross-user generalization, so it is the dimension we keep at
        paper scale while shortening each recording.
        """
        return ContextScale("bench", 32, 3, 100, 24, 10, 10)


@dataclass
class ExperimentContext:
    """Everything the table/figure experiments share."""

    scale: ContextScale
    seed: int
    train: EyeDataset
    val: EyeDataset
    bundle: PolonetBundle
    baselines: dict[str, GazeTracker] = field(default_factory=dict)

    @property
    def polonet_config(self) -> PolonetConfig:
        return self.bundle.polonet.config


_CONTEXT_CACHE: dict[tuple[str, int], ExperimentContext] = {}

#: Directory for the on-disk context cache; empty string disables it.
CACHE_ENV_VAR = "REPRO_CONTEXT_CACHE"


def get_context(scale: "ContextScale | None" = None, seed: int = 0) -> ExperimentContext:
    """Build (or return the cached) experiment context.

    Two cache layers: an in-process dict, and an optional on-disk cache
    (set ``REPRO_CONTEXT_CACHE=<dir>``) holding the trained weights and
    synthesized datasets so that benchmark re-runs skip the training.
    """
    scale = scale or ContextScale.bench()
    key = (scale.name, seed)
    if key in _CONTEXT_CACHE:
        return _CONTEXT_CACHE[key]

    disk = _disk_cache_dir(scale, seed)
    if disk is not None:
        context = _load_context_from_disk(disk, scale, seed)
        if context is not None:
            _CONTEXT_CACHE[key] = context
            return context

    train = synthesize_dataset(
        scale.train_participants, scale.frames_per_participant, seed=seed
    )
    val = synthesize_dataset(
        scale.val_participants, scale.frames_per_participant, seed=seed + 10_000
    )
    for offset, seq in enumerate(val.sequences):
        seq.participant = 1000 + offset

    bundle = build_polonet(
        train,
        vit_epochs=scale.vit_epochs,
        saccade_epochs=scale.saccade_epochs,
        seed=seed,
    )

    baselines = _make_baselines(seed)
    images, gaze = _usable_frames(train)
    for name, tracker in baselines.items():
        if _is_model_based(tracker):
            continue  # calibrated per validation user at evaluation time
        epochs = scale.cnn_epochs
        tracker.fit(images, gaze, epochs=epochs)

    context = ExperimentContext(
        scale=scale, seed=seed, train=train, val=val, bundle=bundle, baselines=baselines
    )
    _CONTEXT_CACHE[key] = context
    if disk is not None:
        _save_context_to_disk(disk, context)
    return context


def clear_context_cache() -> None:
    _CONTEXT_CACHE.clear()


def _make_baselines(seed: int) -> dict[str, GazeTracker]:
    return {
        "NVGaze": NVGazeTracker(seed=seed + 1),
        "ResNet-34": ResNetGazeTracker(seed=seed + 2),
        "IncResNet": IncResNetGazeTracker(seed=seed + 3),
        "EdGaze": EdGazeTracker(seed=seed + 4),
        "DeepVOG": DeepVOGTracker(),
    }


# ----------------------------------------------------------------------
# On-disk context cache
# ----------------------------------------------------------------------

def _disk_cache_dir(scale: ContextScale, seed: int):
    import os
    from pathlib import Path

    root = os.environ.get(CACHE_ENV_VAR, "")
    if not root:
        return None
    return Path(root) / f"context-{scale.name}-{seed}"


def _dataset_to_arrays(dataset: EyeDataset) -> dict:
    arrays = {}
    for i, seq in enumerate(dataset.sequences):
        arrays[f"images_{i}"] = seq.images.astype(np.float16)
        arrays[f"gaze_{i}"] = seq.gaze_deg
        arrays[f"labels_{i}"] = seq.labels
        arrays[f"openness_{i}"] = seq.openness
        arrays[f"velocity_{i}"] = seq.velocity_deg_s
        arrays[f"participant_{i}"] = np.array(seq.participant)
        arrays[f"fps_{i}"] = np.array(seq.fps)
    arrays["n_sequences"] = np.array(len(dataset.sequences))
    return arrays


def _dataset_from_arrays(archive) -> EyeDataset:
    from repro.eye.events import post_saccade_mask

    n = int(archive["n_sequences"])
    sequences = []
    for i in range(n):
        labels = archive[f"labels_{i}"]
        fps = float(archive[f"fps_{i}"])
        window = max(1, int(round(0.05 * fps)))
        sequences.append(
            EyeSequence(
                participant=int(archive[f"participant_{i}"]),
                images=archive[f"images_{i}"].astype(np.float32),
                gaze_deg=archive[f"gaze_{i}"],
                labels=labels,
                openness=archive[f"openness_{i}"],
                velocity_deg_s=archive[f"velocity_{i}"],
                post_saccade=post_saccade_mask(labels, window),
                fps=fps,
            )
        )
    return EyeDataset(sequences)


def _save_context_to_disk(directory, context: ExperimentContext) -> None:
    from repro.core.persistence import save_polonet
    from repro.nn import save_weights

    directory.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(directory / "train.npz", **_dataset_to_arrays(context.train))
    np.savez_compressed(directory / "val.npz", **_dataset_to_arrays(context.val))
    save_polonet(context.bundle.polonet, directory / "polonet")
    for name, tracker in context.baselines.items():
        if not _is_model_based(tracker):
            save_weights(tracker.model, directory / f"baseline_{name}.npz")
    (directory / "DONE").write_text("ok")


def _load_context_from_disk(directory, scale: ContextScale, seed: int):
    from repro.core.persistence import load_polonet
    from repro.core.training import PolonetBundle
    from repro.baselines.base import TrainingLog
    from repro.nn import load_weights

    if not (directory / "DONE").exists():
        return None
    with np.load(directory / "train.npz") as archive:
        train = _dataset_from_arrays(archive)
    with np.load(directory / "val.npz") as archive:
        val = _dataset_from_arrays(archive)
    polonet = load_polonet(directory / "polonet")
    bundle = PolonetBundle(
        polonet=polonet,
        vit=polonet.gaze_vit,
        detector=polonet.saccade_detector,
        vit_log=TrainingLog(losses=[float("nan")]),
        saccade_log=TrainingLog(losses=[float("nan")]),
    )
    baselines = _make_baselines(seed)
    for name, tracker in baselines.items():
        if not _is_model_based(tracker):
            load_weights(tracker.model, directory / f"baseline_{name}.npz")
    return ExperimentContext(
        scale=scale, seed=seed, train=train, val=val, bundle=bundle, baselines=baselines
    )


# ----------------------------------------------------------------------
# Evaluation protocol
# ----------------------------------------------------------------------

def _is_model_based(tracker: GazeTracker) -> bool:
    return isinstance(tracker, (EdGazeTracker, DeepVOGTracker))


def _usable_frames(dataset: EyeDataset) -> tuple[np.ndarray, np.ndarray]:
    """All frames with an observable eye, flattened across sequences."""
    images, gaze = [], []
    for seq in dataset.sequences:
        keep = seq.openness >= MIN_OPENNESS
        images.append(seq.images[keep].astype(np.float64))
        gaze.append(seq.gaze_deg[keep])
    return np.concatenate(images), np.concatenate(gaze)


def tracker_validation_errors(
    tracker: GazeTracker,
    context: ExperimentContext,
    calibration_frames: int = CALIBRATION_FRAMES,
    per_user_calibration: bool = False,
) -> np.ndarray:
    """Per-frame angular errors on the validation participants.

    Default protocol (the paper's): model-based trackers fit their
    geometric model on the pooled *training* participants, exactly like
    the learned trackers, and are evaluated cross-user.  With
    ``per_user_calibration`` they instead calibrate on an evenly-spaced
    sample of each validation sequence (deployment-style).
    """
    if _is_model_based(tracker) and not per_user_calibration:
        images, gaze = _usable_frames(context.train)
        tracker.fit(images, gaze)
    errors = []
    for seq in context.val.sequences:
        keep = seq.openness >= MIN_OPENNESS
        images = seq.images[keep].astype(np.float64)
        gaze = seq.gaze_deg[keep]
        if _is_model_based(tracker) and per_user_calibration:
            if len(images) <= calibration_frames + 4:
                raise ValueError("validation sequence too short for calibration")
            calib_idx = np.linspace(0, len(images) - 1, calibration_frames).astype(int)
            eval_mask = np.ones(len(images), dtype=bool)
            eval_mask[calib_idx] = False
            tracker.fit(images[calib_idx], gaze[calib_idx])
            pred = tracker.predict(images[eval_mask])
            errors.append(angular_errors(pred, gaze[eval_mask]))
        else:
            pred = tracker.predict(images)
            errors.append(angular_errors(pred, gaze))
    return np.concatenate(errors)


def polovit_validation_errors(
    vit: PoloViT,
    context: ExperimentContext,
    prune: bool = True,
) -> np.ndarray:
    """POLOViT errors through the full preprocessing (crop) pipeline."""
    crops, gaze = build_crop_dataset(
        context.val, context.polonet_config, min_openness=MIN_OPENNESS
    )
    pred = vit.predict(crops, prune=prune)
    return angular_errors(pred, gaze)


def summarize(errors: np.ndarray) -> ErrorSummary:
    return ErrorSummary.from_errors(errors)


# ----------------------------------------------------------------------
# Paper-reference profiles (system-model inputs decoupled from training)
# ----------------------------------------------------------------------

#: Table 1 of the paper: (mean, P90, P95) angular error in degrees.
PAPER_TABLE1 = {
    "NVGaze": (6.81, 13.07, 18.62),
    "EdGaze": (3.25, 18.29, 22.80),
    "DeepVOG": (3.47, 17.76, 23.77),
    "ResNet-34": (1.52, 5.96, 13.15),
    "IncResNet": (1.72, 6.23, 12.40),
    "POLOViT(0.4)": (2.26, 4.93, 5.91),
    "POLOViT(0.2)": (1.29, 2.31, 2.92),
    "POLOViT(0.0)": (0.98, 1.48, 2.30),
}
