"""Fig. 11e: discriminability and JND score versus foveal eccentricity
for selected P95 tracking errors."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.perception.vdp import VdpConfig, discriminability, jnd_score, required_theta_f
from repro.system.metrics import table_to_text

DELTA_THETAS = (2.0, 3.0, 5.0, 10.0)
THETA_F_GRID = tuple(np.arange(2.5, 15.1, 1.25))


@dataclass
class DiscriminabilityResult:
    """Curves of Fig. 11e plus the 5% thresholds used in §7.1."""

    curves: dict = field(default_factory=dict)  # delta -> (theta_f, prob, jnd)
    thresholds_5pct: dict = field(default_factory=dict)  # delta -> theta_f


def run_fig11e(config: "VdpConfig | None" = None) -> DiscriminabilityResult:
    config = config or VdpConfig()
    result = DiscriminabilityResult()
    grid = np.array(THETA_F_GRID)
    for delta in DELTA_THETAS:
        probs = discriminability(grid, delta, config)
        jnds = jnd_score(grid, delta, config)
        result.curves[delta] = (grid.copy(), probs, jnds)
        result.thresholds_5pct[delta] = required_theta_f(delta, 0.05, config)
    return result


def format_fig11e(result: DiscriminabilityResult) -> str:
    headers = ["theta_f(deg)"] + [f"d={d:.0f}deg" for d in result.curves]
    grid = next(iter(result.curves.values()))[0]
    rows = []
    for i, tf in enumerate(grid):
        rows.append(
            [f"{tf:.2f}"]
            + [f"{100 * result.curves[d][1][i]:.1f}%" for d in result.curves]
        )
    text = "Fig. 11e — discriminability vs foveal eccentricity\n" + table_to_text(headers, rows)
    text += "\n5% thresholds: " + ", ".join(
        f"delta={d:.0f}deg -> theta_f={t:.1f}deg" for d, t in result.thresholds_5pct.items()
    )
    return text
