"""Fig. 12 and §7.1: end-to-end TFR latency across scenes, resolutions,
and methods (POLO_S / POLO_R / POLO_N vs the four baselines vs
full-resolution rendering), with latency breakdowns, the mean-error and
JND-tolerance operating points, and the averaged speedup summary."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import Decision
from repro.experiments.common import ExperimentContext
from repro.experiments.profiles import SYSTEM_BASELINES, system_profiles
from repro.eye.events import EventMix
from repro.perception.vdp import required_theta_f
from repro.render import RESOLUTIONS, SCENES
from repro.system import Schedule, TfrSystem, TrackerSystemProfile
from repro.system.metrics import table_to_text

POLO_PATHS = ("saccade", "reuse", "predict")
PATH_LABELS = {"saccade": "POLO_S", "reuse": "POLO_R", "predict": "POLO_N"}


@dataclass
class E2eResult:
    """All Fig. 12 series, in milliseconds."""

    method_latency: dict = field(default_factory=dict)  # (method, scene, res) -> ms
    breakdown: dict = field(default_factory=dict)  # (method, scene, res) -> FrameLatency
    full_latency: dict = field(default_factory=dict)  # (scene, res) -> ms
    polo_average: dict = field(default_factory=dict)  # (scene, res) -> ms (Eq. 6/7 mix)
    mean_error_latency: dict = field(default_factory=dict)  # mean-error operating point
    jnd_latency: dict = field(default_factory=dict)  # tolerance operating point
    event_mix: "EventMix | None" = None
    profiles: dict = field(default_factory=dict)

    def scene_average(self, method: str, res: str) -> float:
        return float(
            np.mean([self.method_latency[(method, s.name, res)] for s in SCENES])
        )

    def speedup_summary(self) -> dict[str, dict[str, float]]:
        """Per-resolution POLO_N and event-averaged speedups vs baselines."""
        out = {}
        for res in RESOLUTIONS:
            base = np.mean([self.scene_average(n, res.name) for n in SYSTEM_BASELINES])
            polo_n = self.scene_average("POLO_N", res.name)
            polo_avg = float(
                np.mean([self.polo_average[(s.name, res.name)] for s in SCENES])
            )
            full = float(np.mean([self.full_latency[(s.name, res.name)] for s in SCENES]))
            out[res.name] = {
                "polo_n_speedup": base / polo_n,
                "polo_avg_speedup": base / polo_avg,
                "vs_full": full / polo_n,
                "polo_n_ms": polo_n,
                "polo_avg_ms": polo_avg,
                "baseline_avg_ms": base,
                "full_ms": full,
            }
        return out


def measure_event_mix(context: ExperimentContext, max_frames: int = 200) -> EventMix:
    """Run the trained POLONet over validation sequences and count the
    Algorithm-1 path taken per frame (drives Eqs. 6-7)."""
    polonet = context.bundle.polonet
    counts = {d: 0 for d in Decision}
    for seq in context.val.sequences:
        polonet.reset()
        n = min(len(seq), max_frames)
        for i in range(n):
            res = polonet.process_frame(seq.images[i].astype(np.float64))
            counts[res.decision] += 1
    return EventMix.from_counts(
        counts[Decision.SACCADE], counts[Decision.REUSE], counts[Decision.PREDICT]
    )


def run_fig12(
    errors_p95: dict[str, float],
    errors_mean: "dict[str, float] | None" = None,
    event_mix: "EventMix | None" = None,
    pruning_ratio: float = 0.2,
    schedule: Schedule = Schedule.SEQUENTIAL,
    system: "TfrSystem | None" = None,
) -> E2eResult:
    """Compute every Fig. 12 series from per-method P95 (and optionally
    mean) tracking errors."""
    system = system or TfrSystem()
    profiles = system_profiles(errors_p95, pruning_ratio)
    result = E2eResult(event_mix=event_mix, profiles=profiles)

    for res in RESOLUTIONS:
        for scene in SCENES:
            key_sr = (scene.name, res.name)
            result.full_latency[key_sr] = (
                system.full_resolution_latency(scene, res) * 1e3
            )
            polo = profiles["POLO"]
            for path in POLO_PATHS:
                label = PATH_LABELS[path]
                frame = system.frame_latency(polo, scene, res, path, schedule)
                result.method_latency[(label, scene.name, res.name)] = frame.total_s * 1e3
                result.breakdown[(label, scene.name, res.name)] = frame
            if event_mix is not None:
                result.polo_average[key_sr] = (
                    system.average_latency(polo, scene, res, event_mix, schedule) * 1e3
                )
            else:
                result.polo_average[key_sr] = result.method_latency[
                    ("POLO_N", scene.name, res.name)
                ]
            for name in SYSTEM_BASELINES:
                frame = system.frame_latency(profiles[name], scene, res, "predict", schedule)
                result.method_latency[(name, scene.name, res.name)] = frame.total_s * 1e3
                result.breakdown[(name, scene.name, res.name)] = frame

            # Alternative operating points for the dotted series.
            for store, delta_for in (
                (result.mean_error_latency, "mean"),
                (result.jnd_latency, "jnd"),
            ):
                if delta_for == "mean" and errors_mean is None:
                    continue
                for name, profile in profiles.items():
                    label = "POLO_N" if name == "POLO" else name
                    delta = _operating_delta(
                        name, profile, errors_p95, errors_mean, delta_for
                    )
                    frame = system.frame_latency(
                        profile.with_delta_theta(delta), scene, res, "predict", schedule
                    )
                    store[(label, scene.name, res.name)] = frame.total_s * 1e3
    return result


def _operating_delta(
    name: str,
    profile: TrackerSystemProfile,
    errors_p95: dict,
    errors_mean: "dict | None",
    kind: str,
) -> float:
    if kind == "mean":
        return errors_mean[name]
    # JND tolerance point: the smallest theta_f keeping discriminability
    # under 5% replaces theta_i + delta; express it as an equivalent delta.
    theta_f = required_theta_f(errors_p95[name], target_probability=0.05)
    return max(theta_f - 5.0, 0.0)


def format_fig12(result: E2eResult, resolution: str = "1080P") -> str:
    methods = ["POLO_S", "POLO_R", "POLO_N", *SYSTEM_BASELINES]
    headers = ["Scene"] + methods + ["Full"]
    rows = []
    for scene in SCENES:
        row = [scene.name]
        for m in methods:
            row.append(f"{result.method_latency[(m, scene.name, resolution)]:.1f}")
        row.append(f"{result.full_latency[(scene.name, resolution)]:.1f}")
        rows.append(row)
    text = f"Fig. 12 — end-to-end TFR latency at {resolution} (ms)\n"
    text += table_to_text(headers, rows)
    summary = result.speedup_summary()
    text += "\n\nSpeedup summary (baseline-average / POLO):\n"
    headers2 = ["Resolution", "POLO_N x", "POLO-avg x", "vs full x", "POLO_N ms"]
    rows2 = [
        [
            res,
            f"{s['polo_n_speedup']:.2f}",
            f"{s['polo_avg_speedup']:.2f}",
            f"{s['vs_full']:.2f}",
            f"{s['polo_n_ms']:.1f}",
        ]
        for res, s in summary.items()
    ]
    return text + table_to_text(headers2, rows2)
