"""Table 2 (saccade accuracy vs RNN hidden dimension) and Table 3
(macro-F1 vs binarization threshold gamma1)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import PolonetConfig, SaccadeDetector, SaccadeNetConfig, binary_map
from repro.core.training import (
    build_saccade_sequences,
    evaluate_saccade_detector,
    train_saccade_detector,
)
from repro.experiments.common import ExperimentContext
from repro.system.metrics import table_to_text

HIDDEN_DIMS = (16, 32, 64, 128)
GAMMA1_VALUES = (35.0, 40.0, 45.0, 50.0)


@dataclass
class SaccadeSweepResult:
    """Metric rows keyed by the swept parameter value."""

    parameter: str
    metrics: dict = field(default_factory=dict)  # value -> {'accuracy','macro_f1'}


def _train_and_score(
    context: ExperimentContext,
    config: PolonetConfig,
    saccade_config: SaccadeNetConfig,
    seed: int,
    sequences=None,
    labels=None,
) -> dict[str, float]:
    sample = context.train.sequences[0].images[0].astype(float)
    map_shape = binary_map(sample, config).shape
    detector = SaccadeDetector(map_shape, saccade_config, seed=seed)
    if sequences is None:
        sequences, labels = build_saccade_sequences(context.train, config)
    train_saccade_detector(
        detector,
        sequences,
        labels,
        epochs=context.scale.saccade_epochs,
        seed=seed,
    )
    return evaluate_saccade_detector(detector, context.val, config)


def run_table2(context: ExperimentContext) -> SaccadeSweepResult:
    """Sweep the RNN hidden dimension at the default gamma1."""
    result = SaccadeSweepResult(parameter="hidden_dim")
    config = context.polonet_config
    # gamma1 is fixed across the sweep, so the binary-map sequences are
    # shared by all four trainings.
    sequences, labels = build_saccade_sequences(context.train, config)
    for hidden in HIDDEN_DIMS:
        saccade_config = SaccadeNetConfig(hidden_dim=hidden)
        result.metrics[hidden] = _train_and_score(
            context,
            config,
            saccade_config,
            seed=context.seed + hidden,
            sequences=sequences,
            labels=labels,
        )
    return result


def run_table3(context: ExperimentContext) -> SaccadeSweepResult:
    """Sweep gamma1 at the default hidden dimension (32)."""
    result = SaccadeSweepResult(parameter="gamma1")
    for gamma1 in GAMMA1_VALUES:
        config = replace(context.polonet_config, gamma1=gamma1)
        result.metrics[gamma1] = _train_and_score(
            context, config, SaccadeNetConfig(), seed=context.seed + int(gamma1)
        )
    return result


def format_table2(result: SaccadeSweepResult) -> str:
    headers = ["Hidden dim"] + [str(v) for v in result.metrics]
    rows = [
        ["Accuracy"] + [f"{m['accuracy'] * 100:.1f}" for m in result.metrics.values()],
        ["Macro F1"] + [f"{m['macro_f1']:.3f}" for m in result.metrics.values()],
    ]
    return "Table 2 — saccade detection vs hidden dim\n" + table_to_text(headers, rows)


def format_table3(result: SaccadeSweepResult) -> str:
    headers = ["gamma1", "Macro F1"]
    rows = [[f"{v:.0f}", f"{m['macro_f1']:.3f}"] for v, m in result.metrics.items()]
    return "Table 3 — impact of gamma1\n" + table_to_text(headers, rows)
