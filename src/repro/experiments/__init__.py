"""Experiment harness: one module per paper table/figure.

Each ``run_*`` function returns a structured result object; each
``format_*`` renders the same rows/series the paper reports.  Heavy
shared artifacts (datasets, trained models) live in the cached
:class:`~repro.experiments.common.ExperimentContext`.
"""

from repro.experiments.ablations import (
    AcceleratorAblationResult,
    ScheduleAblationResult,
    format_fig13b,
    format_fig13c,
    run_fig13b,
    run_fig13c,
)
from repro.experiments.accelerator_pa import (
    AcceleratorPaResult,
    format_accelerator_pa,
    run_accelerator_pa,
)
from repro.experiments.common import (
    PAPER_TABLE1,
    ContextScale,
    ExperimentContext,
    clear_context_cache,
    get_context,
    polovit_validation_errors,
    summarize,
    tracker_validation_errors,
)
from repro.experiments.discriminability import (
    DiscriminabilityResult,
    format_fig11e,
    run_fig11e,
)
from repro.experiments.e2e import E2eResult, format_fig12, measure_event_mix, run_fig12
from repro.experiments.extensions import (
    LatencyQoeResult,
    SaccadeSensitivityResult,
    format_latency_qoe,
    format_saccade_sensitivity,
    run_latency_qoe,
    run_saccade_sensitivity,
)
from repro.experiments.fps_eval import FpsResult, format_fps, run_fps
from repro.experiments.energy_eval import EnergyResult, format_fig13a, run_fig13a
from repro.experiments.gaze_error import (
    GazeErrorResult,
    format_fig8a,
    format_table1,
    run_table1,
)
from repro.experiments.profiles import (
    BASELINE_NAMES,
    SYSTEM_BASELINES,
    baseline_execution,
    paper_reference_errors,
    polo_execution,
    pruned_vit_workload,
    system_profiles,
)
from repro.experiments.pruning_sweep import (
    PruningSweepResult,
    format_table5,
    run_table5,
)
from repro.experiments.rendering import RenderingLatencyResult, format_fig1, run_fig1
from repro.experiments.reuse_eval import ReuseSweepResult, format_table4, run_table4
from repro.experiments.saccade_eval import (
    SaccadeSweepResult,
    format_table2,
    format_table3,
    run_table2,
    run_table3,
)
from repro.experiments.user_study_exp import (
    UserStudyExperiment,
    error_traces,
    format_fig15,
    run_fig15,
)

__all__ = [
    "AcceleratorAblationResult",
    "ScheduleAblationResult",
    "format_fig13b",
    "format_fig13c",
    "run_fig13b",
    "run_fig13c",
    "AcceleratorPaResult",
    "format_accelerator_pa",
    "run_accelerator_pa",
    "PAPER_TABLE1",
    "ContextScale",
    "ExperimentContext",
    "clear_context_cache",
    "get_context",
    "polovit_validation_errors",
    "summarize",
    "tracker_validation_errors",
    "DiscriminabilityResult",
    "format_fig11e",
    "run_fig11e",
    "E2eResult",
    "format_fig12",
    "measure_event_mix",
    "run_fig12",
    "LatencyQoeResult",
    "SaccadeSensitivityResult",
    "format_latency_qoe",
    "format_saccade_sensitivity",
    "run_latency_qoe",
    "run_saccade_sensitivity",
    "FpsResult",
    "format_fps",
    "run_fps",
    "EnergyResult",
    "format_fig13a",
    "run_fig13a",
    "GazeErrorResult",
    "format_fig8a",
    "format_table1",
    "run_table1",
    "BASELINE_NAMES",
    "SYSTEM_BASELINES",
    "baseline_execution",
    "paper_reference_errors",
    "polo_execution",
    "pruned_vit_workload",
    "system_profiles",
    "PruningSweepResult",
    "format_table5",
    "run_table5",
    "RenderingLatencyResult",
    "format_fig1",
    "run_fig1",
    "ReuseSweepResult",
    "format_table4",
    "run_table4",
    "SaccadeSweepResult",
    "format_table2",
    "format_table3",
    "run_table2",
    "run_table3",
    "UserStudyExperiment",
    "error_traces",
    "format_fig15",
    "run_fig15",
]
