"""Fig. 1: full-resolution ray-traced rendering latency across scenes
and resolutions on the Jetson-Orin-NX GPU model."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.render import RESOLUTIONS, SCENES, GpuModel, Resolution, SceneProfile
from repro.system.metrics import table_to_text


@dataclass(frozen=True)
class RenderingLatencyResult:
    """Per-scene-per-resolution full-render latencies in milliseconds."""

    latencies_ms: dict  # (scene, resolution) -> ms
    averages_ms: dict  # resolution -> ms

    def latency(self, scene: str, resolution: str) -> float:
        return self.latencies_ms[(scene, resolution)]


def run_fig1(gpu: "GpuModel | None" = None) -> RenderingLatencyResult:
    gpu = gpu or GpuModel()
    latencies = {}
    averages = {}
    for res in RESOLUTIONS:
        values = []
        for scene in SCENES:
            ms = gpu.full_resolution_latency(res, scene) * 1e3
            latencies[(scene.name, res.name)] = ms
            values.append(ms)
        averages[res.name] = float(np.mean(values))
    return RenderingLatencyResult(latencies_ms=latencies, averages_ms=averages)


def format_fig1(result: RenderingLatencyResult) -> str:
    headers = ["Scene"] + [r.name for r in RESOLUTIONS]
    rows = [
        [s.name] + [f"{result.latency(s.name, r.name):.1f}" for r in RESOLUTIONS]
        for s in SCENES
    ]
    rows.append(
        ["Average"] + [f"{result.averages_ms[r.name]:.1f}" for r in RESOLUTIONS]
    )
    return "Fig. 1 — full-resolution rendering latency (ms)\n" + table_to_text(headers, rows)
