"""Table 1 / Fig. 8a: gaze-tracking error of POLOViT (INT8, at pruning
ratios 0.0 / 0.2 / 0.4) against the five baselines."""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.baselines import ErrorSummary
from repro.experiments.common import (
    ExperimentContext,
    polovit_validation_errors,
    tracker_validation_errors,
)
from repro.system.metrics import table_to_text

PRUNE_RATIOS = (0.0, 0.2, 0.4)


@dataclass
class GazeErrorResult:
    """Error summaries per method plus raw error arrays (for Fig. 8a)."""

    summaries: dict[str, ErrorSummary] = field(default_factory=dict)
    raw_errors: dict[str, np.ndarray] = field(default_factory=dict)

    def ordered_names(self) -> list[str]:
        return list(self.summaries)


def run_table1(context: ExperimentContext) -> GazeErrorResult:
    """Evaluate every method on the validation participants."""
    result = GazeErrorResult()
    for name, tracker in context.baselines.items():
        errors = tracker_validation_errors(tracker, context)
        result.raw_errors[name] = errors
        result.summaries[name] = ErrorSummary.from_errors(errors)

    vit = context.bundle.vit
    calib_crops, _ = _calibration_crops(context)
    for ratio in PRUNE_RATIOS:
        model = vit if ratio == 0.2 else copy.deepcopy(vit)
        if ratio == 0.0:
            model.set_prune_threshold(None)
        elif ratio != 0.2:
            model.calibrate_pruning(calib_crops, ratio)
        errors = polovit_validation_errors(model, context, prune=ratio > 0)
        key = f"INT8-POLOViT({ratio:.1f})"
        result.raw_errors[key] = errors
        result.summaries[key] = ErrorSummary.from_errors(errors)
    return result


def _calibration_crops(context: ExperimentContext):
    from repro.core import build_crop_dataset

    crops, gaze = build_crop_dataset(context.train, context.polonet_config)
    n = min(16, len(crops))
    return crops[:n], gaze[:n]


def format_table1(result: GazeErrorResult) -> str:
    headers = ["Method", "Mean(deg)", "P90(deg)", "P95(deg)"]
    rows = [
        [name, f"{s.mean:.2f}", f"{s.p90:.2f}", f"{s.p95:.2f}"]
        for name, s in result.summaries.items()
    ]
    return "Table 1 — gaze tracking error\n" + table_to_text(headers, rows)


def format_fig8a(result: GazeErrorResult) -> str:
    """Fig. 8a: distribution statistics (mean, p5, p95, min, max)."""
    headers = ["Method", "Min", "P5", "Mean", "P95", "Max"]
    rows = []
    for name, s in result.summaries.items():
        rows.append(
            [
                name,
                f"{s.minimum:.2f}",
                f"{s.p5:.2f}",
                f"{s.mean:.2f}",
                f"{s.p95:.2f}",
                f"{s.maximum:.2f}",
            ]
        )
    return "Fig. 8a — gaze error distributions (deg)\n" + table_to_text(headers, rows)
