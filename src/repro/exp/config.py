"""Declarative campaign configs: plain dicts, zero dependencies.

A campaign is a JSON-safe dict (no YAML, no schema library) describing
parameter sweeps over the registered runners::

    {
      "name": "admission-sweep",
      "runs": [
        {
          "runner": "serve",
          "params": {"n_sessions": 8, "duration_s": 0.5},
          "grid":   {"max_batch": [4, 8], "admission": ["degrade", "shed"]},
          "seeds":  [0, 1],
          "list":   [{"n_sessions": 32}]
        }
      ]
    }

Each block expands to the cartesian product of its ``grid`` axes
(``seeds`` is shorthand for a ``seed`` axis) merged over ``params``,
followed by the explicit ``list`` entries; a block with a ``list`` and
no grid enumerates only the list.  Grid keys may be dotted
paths (``"serve.n_sessions"``) to reach into nested runner params.
Expansion is fully deterministic: axes iterate in sorted-key order with
the rightmost axis fastest, so the same config always yields the same
run sequence — the property the resumable ledger and the byte-diffing
``exp-smoke`` CI job rest on.

A run's *identity* is not its spelling but the
:func:`~repro.recover.codec.config_hash` of the runner's fully resolved
config (defaults applied, canonical JSON) — see
:func:`repro.exp.runners.resolve_spec`.
"""

from __future__ import annotations

import copy
import itertools
import json
import os
import re

from repro.exp.errors import CampaignConfigError

_NAME_RE = re.compile(r"^[a-zA-Z0-9][a-zA-Z0-9._-]*$")

_BLOCK_KEYS = frozenset({"runner", "params", "grid", "seeds", "list"})
# "slo" is an optional summary-objective block evaluated against every
# run's metrics by repro.exp.runner (parsed via repro.obs.slo).
_TOP_KEYS = frozenset({"name", "runs", "slo"})


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CampaignConfigError(message)


def _set_path(params: dict, path: str, value) -> None:
    """Set a possibly dotted key (``"serve.n_sessions"``) in ``params``."""
    keys = path.split(".")
    _require(
        all(keys), f"bad sweep key {path!r} (empty path segment)"
    )
    node = params
    for key in keys[:-1]:
        child = node.setdefault(key, {})
        _require(
            isinstance(child, dict),
            f"sweep key {path!r} descends into non-dict param {key!r}",
        )
        node = child
    node[keys[-1]] = value


def _merge(base: dict, overrides: dict) -> dict:
    merged = copy.deepcopy(base)
    for path, value in overrides.items():
        _set_path(merged, path, copy.deepcopy(value))
    return merged


def _expand_block(block: dict, index: int) -> "list[tuple[str, dict]]":
    _require(isinstance(block, dict), f"runs[{index}] must be a dict")
    unknown = sorted(set(block) - _BLOCK_KEYS)
    _require(
        not unknown,
        f"runs[{index}]: unknown keys {unknown} (known: {sorted(_BLOCK_KEYS)})",
    )
    runner = block.get("runner")
    _require(
        isinstance(runner, str) and bool(runner),
        f"runs[{index}]: 'runner' is required and must be a string",
    )
    params = block.get("params", {})
    _require(isinstance(params, dict), f"runs[{index}]: 'params' must be a dict")

    grid = dict(block.get("grid", {}))
    _require(isinstance(grid, dict), f"runs[{index}]: 'grid' must be a dict")
    seeds = block.get("seeds")
    if seeds is not None:
        _require(
            isinstance(seeds, list) and seeds,
            f"runs[{index}]: 'seeds' must be a non-empty list",
        )
        _require(
            "seed" not in grid,
            f"runs[{index}]: 'seeds' and grid['seed'] are mutually exclusive",
        )
        grid["seed"] = [int(s) for s in seeds]
    for axis, values in grid.items():
        _require(
            isinstance(values, list) and values,
            f"runs[{index}]: grid axis {axis!r} must be a non-empty list",
        )

    explicit = block.get("list", [])
    _require(isinstance(explicit, list), f"runs[{index}]: 'list' must be a list")

    expanded: list[tuple[str, dict]] = []
    # With no grid axes the product is the single bare-params point —
    # emitted only when there is no explicit list to enumerate instead.
    if grid or not explicit:
        axes = sorted(grid)
        for point in itertools.product(*(grid[axis] for axis in axes)):
            expanded.append((runner, _merge(params, dict(zip(axes, point)))))
    for j, overrides in enumerate(explicit):
        _require(
            isinstance(overrides, dict),
            f"runs[{index}]: list[{j}] must be a dict of param overrides",
        )
        expanded.append((runner, _merge(params, overrides)))
    return expanded


def expand_campaign(config: dict) -> "tuple[str, list[tuple[str, dict]]]":
    """Validate a campaign dict -> ``(name, [(runner, params), ...])``.

    Purely syntactic: runner names and params are validated later by
    :func:`repro.exp.runners.resolve_spec`, which also assigns run ids
    and collapses duplicates.
    """
    _require(isinstance(config, dict), "campaign config must be a dict")
    unknown = sorted(set(config) - _TOP_KEYS)
    _require(
        not unknown,
        f"unknown campaign keys {unknown} (known: {sorted(_TOP_KEYS)})",
    )
    name = config.get("name")
    _require(
        isinstance(name, str) and bool(_NAME_RE.match(name or "")),
        f"campaign 'name' must match {_NAME_RE.pattern}, got {name!r}",
    )
    blocks = config.get("runs")
    _require(
        isinstance(blocks, list) and bool(blocks),
        "campaign 'runs' must be a non-empty list of sweep blocks",
    )
    specs: list[tuple[str, dict]] = []
    for index, block in enumerate(blocks):
        specs.extend(_expand_block(block, index))
    return name, specs


def load_campaign(path: "str | os.PathLike") -> dict:
    """Read a campaign config from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        try:
            config = json.load(handle)
        except json.JSONDecodeError as err:
            raise CampaignConfigError(f"campaign file {path}: {err}") from err
    if not isinstance(config, dict):
        raise CampaignConfigError(f"campaign file {path}: top level must be a dict")
    return config
