"""``python -m repro exp`` — declarative experiment campaigns.

Subcommands::

    exp run <config.json> --dir DIR [--workers N] [--kill-after-runs K]
    exp expand <config.json>          # dry-run: the resolved run table
    exp list --dir DIR                # every ledger record
    exp show RUN --dir DIR            # one run's metrics + artifacts
    exp cat RUN ARTIFACT --dir DIR    # print a stored artifact
    exp compare RUN... --dir DIR [--baseline RUN]
    exp export --dir DIR --format prom|jsonl

``run`` is resumable: rerunning the same config against the same
directory skips every run the ledger already holds (a second identical
invocation is a 100% cache hit).  A run killed by ``--kill-after-runs``
exits with the serving stack's simulated-crash code and resumes the
same way.  All stdout is deterministic — the ``exp-smoke`` CI job diffs
double runs byte-for-byte.
"""

from __future__ import annotations

import argparse
import sys

from repro.exp.compare import format_comparison, format_run_list, format_run_show
from repro.exp.config import load_campaign
from repro.exp.errors import CampaignConfigError, CampaignKilled, LedgerError
from repro.exp.runner import resolve_campaign, run_campaign
from repro.exp.track import export_jsonl, export_prometheus, load_records
from repro.system.metrics import table_to_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro exp",
        description="Run, resume, and compare declarative experiment "
        "campaigns against the zero-dependency tracking backend.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dir(p):
        p.add_argument("--dir", required=True,
                       help="campaign tracking directory")

    run = sub.add_parser("run", help="execute (or resume) a campaign")
    run.add_argument("config", help="campaign config (JSON)")
    add_dir(run)
    run.add_argument("--workers", type=int, default=0, metavar="N",
                     help="process-pool width (0 = in-process, default)")
    run.add_argument("--kill-after-runs", type=int, default=None, metavar="K",
                     help="chaos mode: die after K recorded runs")

    expand = sub.add_parser("expand", help="print the resolved run table "
                            "without executing anything")
    expand.add_argument("config", help="campaign config (JSON)")

    lst = sub.add_parser("list", help="list every recorded run")
    add_dir(lst)

    show = sub.add_parser("show", help="one run's metrics and artifacts")
    show.add_argument("run", help="run id (unique prefix accepted)")
    add_dir(show)

    cat = sub.add_parser("cat", help="print a run's stored artifact")
    cat.add_argument("run", help="run id (unique prefix accepted)")
    cat.add_argument("artifact", help="artifact name, e.g. report.txt")
    add_dir(cat)

    compare = sub.add_parser("compare", help="aligned metric table across runs")
    compare.add_argument("runs", nargs="+", metavar="RUN",
                         help="run ids (unique prefixes accepted)")
    add_dir(compare)
    compare.add_argument("--baseline", default=None, metavar="RUN",
                         help="show signed deltas against this run")

    export = sub.add_parser("export", help="dump all run metrics")
    add_dir(export)
    export.add_argument("--format", choices=("prom", "jsonl"),
                        default="jsonl", dest="fmt")
    return parser


def _cmd_run(args) -> int:
    from repro.recover.cli import EXIT_SIMULATED_CRASH

    config = load_campaign(args.config)
    try:
        result = run_campaign(
            config, args.dir,
            workers=args.workers,
            kill_after_runs=args.kill_after_runs,
        )
    except CampaignKilled as err:
        print(f"simulated campaign kill: {err}", file=sys.stderr)
        print(f"resume with: python -m repro exp run {args.config} "
              f"--dir {args.dir}", file=sys.stderr)
        return EXIT_SIMULATED_CRASH
    print(result.summary_line())
    for record in result.records:
        if record["status"] != "ok":
            print(f"  failed: {record['run_id']} ({record['runner']})",
                  file=sys.stderr)
    return 0 if result.failed == 0 else 1


def _cmd_expand(args) -> int:
    config = load_campaign(args.config)
    name, specs = resolve_campaign(config)
    rows = [[i + 1, s.run_id, s.runner] for i, s in enumerate(specs)]
    print(f"campaign {name}: {len(specs)} unique runs")
    print(table_to_text(["#", "run", "runner"], rows, min_width=4))
    return 0


def _cmd_cat(args) -> int:
    from repro.exp.compare import _select
    from repro.exp.track import ArtifactStore, OBJECTS_DIR

    from pathlib import Path

    records = load_records(args.dir)
    (record,) = _select(records, [args.run])
    digest = record["artifacts"].get(args.artifact)
    if digest is None:
        raise LedgerError(
            f"run {record['run_id']} has no artifact {args.artifact!r} "
            f"(has: {sorted(record['artifacts'])})"
        )
    store = ArtifactStore(Path(args.dir) / OBJECTS_DIR)
    sys.stdout.write(store.get(digest))
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "expand":
            return _cmd_expand(args)
        if args.command == "list":
            print(format_run_list(load_records(args.dir)))
            return 0
        if args.command == "show":
            print(format_run_show(load_records(args.dir), args.run))
            return 0
        if args.command == "cat":
            return _cmd_cat(args)
        if args.command == "compare":
            print(format_comparison(load_records(args.dir), args.runs,
                                    baseline=args.baseline))
            return 0
        if args.command == "export":
            text = (export_prometheus(args.dir) if args.fmt == "prom"
                    else export_jsonl(args.dir))
            sys.stdout.write(text)
            return 0
    except (CampaignConfigError, LedgerError, OSError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
