"""Zero-dependency on-disk tracking backend.

A campaign directory is the whole database::

    <dir>/campaign.json     manifest: name + campaign config + its hash
    <dir>/runs.jsonl        append-only CRC-sealed runs ledger
    <dir>/objects/ab/abcd.. content-addressed artifact store (sha256)

The ledger reuses the write-ahead frame journal's format and reader
(:mod:`repro.recover.journal`): canonical-JSON records sealed with a
CRC32, strictly increasing ``i``, a torn final line tolerated (that is
what a kill mid-append produces) and truncated before the file is
reopened for append, any interior damage fatal.  Records carry no wall
clocks or host names, and are appended in campaign-expansion order even
under the process-pool executor — so two runs of the same campaign
produce byte-identical ledgers, and a killed-then-resumed ledger
byte-equals an uninterrupted one.  The ``exp-smoke`` CI job diffs
exactly that.

Artifacts are immutable: stored under their own sha256, fetched back
through a hash check, shared between runs that produce identical bytes.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.exp.errors import LedgerError
from repro.recover.codec import canonical_json, config_hash
from repro.recover.errors import JournalError
from repro.recover.journal import JournalWriter, _verify_line, read_journal

MANIFEST_NAME = "campaign.json"
LEDGER_NAME = "runs.jsonl"
OBJECTS_DIR = "objects"


# ----------------------------------------------------------------------
# Artifact store
# ----------------------------------------------------------------------
class ArtifactStore:
    """Content-addressed text blobs: ``objects/<sha[:2]>/<sha256>``."""

    def __init__(self, root: "str | os.PathLike"):
        self.root = Path(root)

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / digest

    def put(self, text: str) -> str:
        """Store ``text``; return its sha256 digest.  Idempotent."""
        data = text.encode("utf-8")
        digest = hashlib.sha256(data).hexdigest()
        path = self._path(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_bytes(data)
            os.replace(tmp, path)  # atomic: readers never see half a blob
        return digest

    def get(self, digest: str) -> str:
        path = self._path(digest)
        if not path.exists():
            raise LedgerError(f"artifact {digest} missing from {self.root}")
        data = path.read_bytes()
        if hashlib.sha256(data).hexdigest() != digest:
            raise LedgerError(f"artifact {digest} fails its content hash")
        return data.decode("utf-8")

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()


# ----------------------------------------------------------------------
# Runs ledger
# ----------------------------------------------------------------------
def _truncate_torn_tail(path: Path) -> None:
    """Drop a torn final line so append-mode reopen stays canonical.

    ``read_journal`` tolerates the torn tail at *read* time, but a
    writer reopened in append mode would concatenate the next record
    onto it — truncate the file to its last verifiable line instead.
    """
    if not path.exists():
        return
    data = path.read_bytes()
    lines = data.decode("utf-8").splitlines(keepends=True)
    if not lines:
        return
    last = lines[-1]
    torn = not last.endswith("\n")
    if not torn:
        try:
            _verify_line(last.rstrip("\n"), path, len(lines))
        except JournalError:
            torn = True
    if torn:
        keep = len(data) - len(last.encode("utf-8"))
        with open(path, "r+b") as handle:
            handle.truncate(keep)


def load_records(directory: "str | os.PathLike") -> list[dict]:
    """All verified ledger records, in append (= campaign) order."""
    try:
        return read_journal(Path(directory) / LEDGER_NAME)
    except JournalError as err:
        raise LedgerError(str(err)) from err


def load_manifest(directory: "str | os.PathLike") -> dict:
    path = Path(directory) / MANIFEST_NAME
    if not path.exists():
        raise LedgerError(f"{directory} is not a campaign directory "
                          f"(no {MANIFEST_NAME})")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as err:
        raise LedgerError(f"manifest {path}: {err}") from err
    stored = manifest.get("config_hash")
    actual = config_hash(manifest.get("config"))
    if stored != actual:
        raise LedgerError(
            f"manifest {path}: config hash {stored} does not match its "
            f"config ({actual}) — the manifest was edited or corrupted"
        )
    return manifest


@dataclass
class Ledger:
    """Open tracking backend for one campaign directory."""

    directory: Path
    manifest: dict
    store: ArtifactStore
    records: list[dict] = field(default_factory=list)
    _writer: "JournalWriter | None" = None

    @property
    def completed_ids(self) -> "set[str]":
        """Run ids with a successful record — the resume skip set."""
        return {r["run_id"] for r in self.records if r["status"] == "ok"}

    def record_run(
        self,
        run_id: str,
        runner: str,
        config: dict,
        status: str,
        metrics: dict,
        artifacts: "dict[str, str]",
    ) -> dict:
        """Append one sealed run record and fsync it — the durability
        barrier a kill can land after, never inside (a torn line is
        truncated on the next open)."""
        record = {
            "i": (self.records[-1]["i"] + 1) if self.records else 1,
            "run_id": run_id,
            "runner": runner,
            "status": status,
            "config": config,
            "metrics": metrics,
            "artifacts": artifacts,
        }
        self._writer.append(record)
        self._writer.sync()
        self.records.append(record)
        return record

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "Ledger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_ledger(
    directory: "str | os.PathLike", name: str, campaign_config: dict
) -> Ledger:
    """Create or resume the tracking backend for ``campaign_config``.

    A fresh directory gets a manifest; an existing one must belong to
    the *same* campaign (same config hash) — pointing a different sweep
    at a populated directory is an error, not a silent merge.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path = directory / MANIFEST_NAME
    digest = config_hash(campaign_config)
    if manifest_path.exists():
        manifest = load_manifest(directory)
        if manifest["config_hash"] != digest:
            raise LedgerError(
                f"{directory} already tracks campaign "
                f"{manifest['name']!r} (config {manifest['config_hash']}); "
                f"refusing to mix in {name!r} (config {digest})"
            )
    else:
        manifest = {"name": name, "config": campaign_config,
                    "config_hash": digest}
        tmp = manifest_path.with_name(manifest_path.name + ".tmp")
        tmp.write_text(canonical_json(manifest) + "\n", encoding="utf-8")
        os.replace(tmp, manifest_path)
    ledger_path = directory / LEDGER_NAME
    _truncate_torn_tail(ledger_path)
    records = load_records(directory)
    writer = JournalWriter(ledger_path, resume=True)
    return Ledger(
        directory=directory,
        manifest=manifest,
        store=ArtifactStore(directory / OBJECTS_DIR),
        records=records,
        _writer=writer,
    )


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
def export_jsonl(directory: "str | os.PathLike") -> str:
    """One canonical-JSON line per run: id, runner, status, metrics."""
    lines = []
    for record in load_records(directory):
        lines.append(canonical_json({
            "run_id": record["run_id"],
            "runner": record["runner"],
            "status": record["status"],
            "metrics": record["metrics"],
        }))
    return "".join(line + "\n" for line in lines)


def export_prometheus(directory: "str | os.PathLike") -> str:
    """Every numeric run metric as a labelled gauge, one scrape page."""
    from repro.obs.metrics import MetricsRegistry

    manifest = load_manifest(directory)
    registry = MetricsRegistry()
    for record in load_records(directory):
        for name, value in record["metrics"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            registry.gauge(
                "exp_run_metric",
                "Per-run campaign metric",
                campaign=manifest["name"],
                run=record["run_id"],
                runner=record["runner"],
                metric=name,
            ).set(value)
    return registry.to_prometheus()
