"""Campaign execution: deterministic fan-out with ledger-backed resume.

:func:`run_campaign` expands the campaign, resolves every run to its
config-hash identity, skips the runs the directory's ledger already
holds, and executes the rest — sequentially or on a process pool.  In
both modes ledger records are appended **in expansion order** (the pool
submits everything, then harvests futures in order), so the ledger is
byte-identical across sequential runs, parallel runs, and
kill-then-resume runs of the same campaign.

``kill_after_runs`` is the chaos hook the ``exp-smoke`` CI job and the
resume tests use: after that many records have been fsynced this
process raises :class:`~repro.exp.errors.CampaignKilled`, mirroring the
serving stack's :class:`~repro.faults.injectors.ProcessKill`.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.exp.config import expand_campaign
from repro.exp.errors import CampaignConfigError, CampaignKilled
from repro.exp.runners import RunOutcome, RunSpec, execute_spec, resolve_spec
from repro.exp.track import Ledger, open_ledger
from repro.obs.slo import (
    SloConfigError,
    evaluate_summary,
    parse_summary_slo,
    summary_verdict_metrics,
)


@dataclass
class CampaignResult:
    """What one ``exp run`` invocation did (and found already done)."""

    name: str
    directory: Path
    total: int      # unique runs in the expanded campaign
    skipped: int    # already in the ledger -> not re-executed
    executed: int   # ran to a successful record this invocation
    failed: int     # ran but raised -> recorded with status "failed"
    records: list[dict] = field(default_factory=list)

    def summary_line(self) -> str:
        return (
            f"campaign {self.name}: {self.total} runs "
            f"({self.skipped} cached, {self.executed} executed, "
            f"{self.failed} failed)"
        )


def resolve_campaign(config: dict) -> "tuple[str, list[RunSpec]]":
    """Expand + resolve + dedupe -> the campaign's unique run sequence.

    Two sweep points that resolve to the same config (e.g. an explicit
    default vs. an omitted one) are one run; the first spelling wins and
    order is otherwise preserved.
    """
    name, pairs = expand_campaign(config)
    specs: list[RunSpec] = []
    seen: set[str] = set()
    for runner, params in pairs:
        spec = resolve_spec(runner, params)
        if spec.run_id in seen:
            continue
        seen.add(spec.run_id)
        specs.append(spec)
    return name, specs


def _record(ledger: Ledger, spec: RunSpec, outcome: "RunOutcome | Exception") -> bool:
    """Store artifacts + append the sealed record; True if the run failed."""
    if isinstance(outcome, Exception):
        digest = ledger.store.put(f"{type(outcome).__name__}: {outcome}\n")
        ledger.record_run(
            run_id=spec.run_id, runner=spec.runner, config=spec.config,
            status="failed", metrics={}, artifacts={"error.txt": digest},
        )
        return True
    digests = {
        name: ledger.store.put(text)
        for name, text in sorted(outcome.artifacts.items())
    }
    ledger.record_run(
        run_id=spec.run_id, runner=spec.runner, config=spec.config,
        status="ok", metrics=outcome.metrics, artifacts=digests,
    )
    return False


def run_campaign(
    config: dict,
    directory: "str | os.PathLike",
    workers: int = 0,
    kill_after_runs: "int | None" = None,
) -> CampaignResult:
    """Execute a campaign dict into ``directory``; resumable by rerun.

    ``workers=0`` runs in-process; ``workers=N`` fans out onto an
    ``N``-process pool.  A failing run is recorded as ``failed`` and the
    campaign continues — reruns retry failed runs (only ``ok`` records
    join the skip set).
    """
    # Optional campaign-wide SLO block: summary objectives checked
    # against every run's metrics, verdicts merged into the recorded
    # metrics (pure function of the outcome -> resume-deterministic).
    slo_objectives = None
    if "slo" in config:
        try:
            slo_objectives = parse_summary_slo(config["slo"])
        except SloConfigError as err:
            raise CampaignConfigError(f"campaign slo: {err}") from err

    name, specs = resolve_campaign(config)
    with open_ledger(directory, name, config) as ledger:
        completed = ledger.completed_ids
        pending = [s for s in specs if s.run_id not in completed]
        result = CampaignResult(
            name=name,
            directory=Path(directory),
            total=len(specs),
            skipped=len(specs) - len(pending),
            executed=0,
            failed=0,
        )
        appended = 0

        def finish(spec: RunSpec, outcome: "RunOutcome | Exception") -> None:
            nonlocal appended
            if slo_objectives is not None and isinstance(outcome, RunOutcome):
                rows = evaluate_summary(slo_objectives, outcome.metrics)
                outcome.metrics.update(summary_verdict_metrics(rows))
            if _record(ledger, spec, outcome):
                result.failed += 1
            else:
                result.executed += 1
            appended += 1
            if kill_after_runs is not None and appended >= kill_after_runs:
                raise CampaignKilled(
                    f"killed after {appended} runs "
                    f"({len(pending) - appended} left unexecuted)"
                )

        if workers <= 0 or len(pending) <= 1:
            for spec in pending:
                try:
                    outcome = execute_spec(spec.runner, spec.params)
                except Exception as err:  # noqa: BLE001 — recorded, not hidden
                    outcome = err
                finish(spec, outcome)
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(execute_spec, spec.runner, spec.params)
                    for spec in pending
                ]
                # Harvest in submission order: workers finish in any
                # order, the ledger stays deterministic anyway.
                try:
                    for spec, future in zip(pending, futures):
                        try:
                            outcome = future.result()
                        except Exception as err:  # noqa: BLE001
                            outcome = err
                        finish(spec, outcome)
                except CampaignKilled:
                    for future in futures:
                        future.cancel()
                    raise
        result.records = list(ledger.records)
    return result
