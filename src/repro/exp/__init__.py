"""repro.exp — declarative experiment campaigns on a zero-dependency
tracking backend.

Campaign configs are plain JSON-safe dicts (:mod:`repro.exp.config`),
runs are identified by the config hash of their fully resolved params
(:mod:`repro.exp.runners`), execution is resumable and deterministic
(:mod:`repro.exp.runner`), and everything lands in an append-only
CRC-sealed ledger plus a content-addressed artifact store
(:mod:`repro.exp.track`).  ``python -m repro exp`` is the front door.
"""

from repro.exp.config import expand_campaign, load_campaign
from repro.exp.errors import CampaignConfigError, CampaignKilled, LedgerError
from repro.exp.runner import CampaignResult, resolve_campaign, run_campaign
from repro.exp.runners import RUNNERS, RunOutcome, RunSpec, execute_spec, resolve_spec
from repro.exp.track import (
    ArtifactStore,
    Ledger,
    export_jsonl,
    export_prometheus,
    load_manifest,
    load_records,
    open_ledger,
)

__all__ = [
    "ArtifactStore",
    "CampaignConfigError",
    "CampaignKilled",
    "CampaignResult",
    "Ledger",
    "LedgerError",
    "RUNNERS",
    "RunOutcome",
    "RunSpec",
    "execute_spec",
    "expand_campaign",
    "export_jsonl",
    "export_prometheus",
    "load_campaign",
    "load_manifest",
    "load_records",
    "open_ledger",
    "resolve_campaign",
    "resolve_spec",
    "run_campaign",
]
