"""Runner registry: every campaign-drivable workload behind one seam.

Each runner pairs the owning subsystem's programmatic entry points —
``resolve_run_config(params) -> dict`` (validate + canonicalize) and
``run_from_config(params) -> report`` (execute) — with a bridge that
turns the report into the tracking backend's three durable outputs:

* a flat ``metrics`` dict (what ``exp compare`` tabulates),
* ``report.txt`` (the same human-readable report the CLI prints),
* a :class:`~repro.obs.metrics.MetricsRegistry` snapshot, exported per
  run as ``metrics.prom`` (Prometheus text) and ``metrics.jsonl`` (one
  canonical-JSON instrument per line).

Everything here is deterministic: no wall clocks, no hostnames — two
executions of the same resolved config produce byte-equal artifacts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exp.errors import CampaignConfigError
from repro.obs.metrics import MetricsRegistry
from repro.recover.codec import canonical_json, config_hash


@dataclass(frozen=True)
class RunSpec:
    """One fully resolved run: identity, provenance, and how to run it."""

    runner: str
    params: dict = field(hash=False)
    config: dict = field(hash=False)  # fully resolved canonical config
    run_id: str = ""


@dataclass
class RunOutcome:
    """What one executed run hands to the tracking backend."""

    metrics: dict
    artifacts: "dict[str, str]"  # name -> text content


# ----------------------------------------------------------------------
# Registry bridges
# ----------------------------------------------------------------------
def _finite(value: float) -> "float | str":
    value = float(value)
    return value if math.isfinite(value) else repr(value)


def _sanitize(metrics: dict) -> dict:
    """Canonical JSON rejects NaN/Inf; stringify them instead of dying."""
    return {str(k): _finite(v) for k, v in metrics.items()}


def _registry_artifacts(registry: MetricsRegistry) -> "dict[str, str]":
    """Snapshot a registry into the two export formats."""
    lines = []
    for instrument in registry.instruments():
        row = {
            "name": instrument.name,
            "labels": instrument.labels,
            "kind": instrument.kind,
        }
        if instrument.kind == "histogram":
            summary = instrument.summary((50, 95, 99))
            row.update(
                count=instrument.count,
                sum=_finite(instrument.sum),
                p50=_finite(summary["p50"]),
                p95=_finite(summary["p95"]),
                p99=_finite(summary["p99"]),
            )
        else:
            row["value"] = _finite(instrument.value)
        lines.append(canonical_json(row))
    return {
        "metrics.prom": registry.to_prometheus(),
        "metrics.jsonl": "".join(line + "\n" for line in lines),
    }


def _fleet_registry(report) -> MetricsRegistry:
    """Bridge a FleetReport into a registry (gauges, counters, and the
    latency/queue-wait distributions replayed from the per-session
    accumulators — deterministic, no live tracing required)."""
    from repro.serve.telemetry import publish_fleet_metrics

    registry = MetricsRegistry()
    publish_fleet_metrics(report, registry)
    latency = registry.histogram(
        "serve_frame_latency_seconds", "End-to-end frame latency"
    )
    for session in report.sessions:
        for sample in session.latencies_s:
            latency.observe(sample)
    return registry


def _fleet_outcome(report, extra_metrics: "dict | None" = None) -> RunOutcome:
    from repro.serve.telemetry import fleet_summary_metrics, format_fleet_report

    metrics = fleet_summary_metrics(report)
    if extra_metrics:
        metrics.update(extra_metrics)
    artifacts = {"report.txt": format_fleet_report(report) + "\n"}
    artifacts.update(_registry_artifacts(_fleet_registry(report)))
    return RunOutcome(metrics=_sanitize(metrics), artifacts=artifacts)


def _execute_serve(params: dict) -> RunOutcome:
    from repro.serve.cli import run_from_config

    return _fleet_outcome(run_from_config(params))


def _execute_chaos(params: dict) -> RunOutcome:
    from repro.faults.cli import run_from_config

    return _fleet_outcome(run_from_config(params))


def _execute_fleet(params: dict) -> RunOutcome:
    from repro.serve.fleet.cli import run_from_config

    return _fleet_outcome(run_from_config(params))


def _execute_sdc(params: dict) -> RunOutcome:
    from repro.reliability.campaign import format_sdc_report, sdc_summary_metrics
    from repro.reliability.cli import run_from_config

    report = run_from_config(params)
    registry = MetricsRegistry()
    metrics: dict = sdc_summary_metrics(report)
    registry.gauge(
        "sdc_abft_cycle_overhead", "Measured ABFT predict-path cycle overhead"
    ).set(report.cycle_overhead)
    for run in report.runs:
        labels = {"protection": run.protection, "fit": f"{run.fit_per_mbit:g}"}
        registry.gauge("sdc_coverage", "SDC coverage", **labels).set(run.coverage)
        registry.gauge("sdc_escaped", "Escaped SDC frames", **labels).set(
            run.escaped_sdc
        )
        registry.gauge("sdc_p95_error_deg", "P95 output deviation", **labels).set(
            run.p95_error_deg
        )
    artifacts = {"report.txt": format_sdc_report(report) + "\n"}
    artifacts.update(_registry_artifacts(registry))
    return RunOutcome(metrics=_sanitize(metrics), artifacts=artifacts)


def _execute_recover(params: dict) -> RunOutcome:
    from repro.recover.cli import run_from_config

    probe = run_from_config(params)
    outcome = _fleet_outcome(
        probe.report,
        extra_metrics={
            "killed": float(probe.killed),
            "replayed_events": float(probe.replayed_events),
            "skipped_checkpoints": float(probe.skipped_checkpoints),
            "verified": float(probe.verified),
        },
    )
    verdict = (
        "recover probe: killed={killed} replayed={replayed} "
        "skipped_checkpoints={skipped} verified={verified}\n".format(
            killed=probe.killed,
            replayed=probe.replayed_events,
            skipped=probe.skipped_checkpoints,
            verified=probe.verified,
        )
    )
    outcome.artifacts["report.txt"] = verdict + outcome.artifacts["report.txt"]
    return outcome


def _execute_paper(params: dict) -> RunOutcome:
    from repro.experiments.cli import run_from_config

    text = run_from_config(params)
    registry = MetricsRegistry()
    registry.gauge("paper_report_lines", "Lines in the generated report").set(
        len(text.splitlines())
    )
    artifacts = {"report.txt": text + "\n"}
    artifacts.update(_registry_artifacts(registry))
    return RunOutcome(
        metrics=_sanitize({"report_lines": float(len(text.splitlines()))}),
        artifacts=artifacts,
    )


def _resolve_serve(params: dict) -> dict:
    from repro.serve.cli import resolve_run_config

    return resolve_run_config(params)


def _resolve_chaos(params: dict) -> dict:
    from repro.faults.cli import resolve_run_config

    return resolve_run_config(params)


def _resolve_fleet(params: dict) -> dict:
    from repro.serve.fleet.cli import resolve_run_config

    return resolve_run_config(params)


def _resolve_sdc(params: dict) -> dict:
    from repro.reliability.cli import resolve_run_config

    return resolve_run_config(params)


def _resolve_recover(params: dict) -> dict:
    from repro.recover.cli import resolve_run_config

    return resolve_run_config(params)


def _resolve_paper(params: dict) -> dict:
    from repro.experiments.cli import resolve_run_config

    return {"kind": "paper", "config": resolve_run_config(params)}


#: name -> (resolve, execute).  New workloads register here; the rest of
#: the campaign machinery (expansion, ledger, compare) is runner-agnostic.
RUNNERS = {
    "serve": (_resolve_serve, _execute_serve),
    "chaos": (_resolve_chaos, _execute_chaos),
    "fleet": (_resolve_fleet, _execute_fleet),
    "sdc": (_resolve_sdc, _execute_sdc),
    "recover": (_resolve_recover, _execute_recover),
    "paper": (_resolve_paper, _execute_paper),
}


def resolve_spec(runner: str, params: dict) -> RunSpec:
    """Validate one (runner, params) pair and assign its run identity.

    The run id is the :func:`~repro.recover.codec.config_hash` of the
    fully resolved config — *not* of the params spelling — so omitted
    defaults, dict ordering, and equivalent spellings share an id, which
    is exactly what makes ledger-based resume a config-hash cache.
    """
    entry = RUNNERS.get(runner)
    if entry is None:
        raise CampaignConfigError(
            f"unknown runner {runner!r}; registered: {sorted(RUNNERS)}"
        )
    resolve, _ = entry
    try:
        resolved = resolve(params)
    except (ValueError, TypeError) as err:
        raise CampaignConfigError(f"{runner} params rejected: {err}") from err
    return RunSpec(
        runner=runner, params=params, config=resolved, run_id=config_hash(resolved)
    )


def execute_spec(runner: str, params: dict) -> RunOutcome:
    """Execute one resolved run (also the process-pool child entry)."""
    _, execute = RUNNERS[runner]
    return execute(params)
