"""Comparison surface: ``exp list`` / ``exp show`` / ``exp compare``.

Everything renders through :func:`repro.system.metrics.table_to_text`,
the same aligned-table renderer the benchmark reports and the metrics
snapshot use, and everything is a pure function of the ledger — the
output is deterministic, which is what lets tests assert on it.

``compare`` marks the best run per metric with ``*`` using the explicit
metric-direction registry (:mod:`repro.obs.directions` — the same one
``bench gate`` fails PRs with, so both agree on what a regression is)
and, when a baseline run is named, appends a signed delta to every other
run's cell so regressions read directly off the table.
"""

from __future__ import annotations

from repro.exp.errors import LedgerError
from repro.obs.directions import metric_direction
from repro.system.metrics import table_to_text

__all__ = [
    "format_comparison",
    "format_run_list",
    "format_run_show",
    "metric_direction",
]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _select(records: list[dict], run_ids: "list[str]") -> list[dict]:
    """Resolve run ids (unique-prefix matching allowed) against the ledger."""
    by_status: dict[str, dict] = {r["run_id"]: r for r in records}
    chosen = []
    for wanted in run_ids:
        matches = [r for rid, r in by_status.items() if rid.startswith(wanted)]
        if not matches:
            raise LedgerError(f"no run {wanted!r} in the ledger")
        if len(matches) > 1:
            full = sorted(r["run_id"] for r in matches)
            raise LedgerError(f"run id {wanted!r} is ambiguous: {full}")
        chosen.append(matches[0])
    return chosen


def format_run_list(records: list[dict]) -> str:
    """``exp list`` — one row per ledger record, append order."""
    headers = ["#", "run", "runner", "status", "metrics", "artifacts"]
    rows = [
        [
            record["i"],
            record["run_id"],
            record["runner"],
            record["status"],
            len(record["metrics"]),
            ",".join(sorted(record["artifacts"])),
        ]
        for record in records
    ]
    return table_to_text(headers, rows, min_width=4)


def format_run_show(records: list[dict], run_id: str) -> str:
    """``exp show`` — one run's config hash, metrics, and artifacts."""
    (record,) = _select(records, [run_id])
    lines = [
        f"run {record['run_id']} ({record['runner']}, {record['status']})",
        "",
        table_to_text(
            ["metric", "value"],
            [[name, _fmt(record["metrics"][name])]
             for name in sorted(record["metrics"])],
            min_width=4,
        ),
        "",
        "artifacts:",
    ]
    for name in sorted(record["artifacts"]):
        lines.append(f"  {name}  {record['artifacts'][name]}")
    return "\n".join(lines)


def format_comparison(
    records: list[dict],
    run_ids: "list[str]",
    baseline: "str | None" = None,
) -> str:
    """``exp compare`` — aligned metric table across the chosen runs.

    Rows are the union of metric names (sorted); a metric a run did not
    record renders as ``-``.  ``*`` marks the best value where the
    direction heuristic knows one; with a baseline, other columns gain
    ``(+x/-x)`` deltas against it.
    """
    chosen = _select(records, run_ids)
    base = _select(records, [baseline])[0] if baseline else None
    if base is not None and all(r is not base for r in chosen):
        chosen = [base] + chosen

    names = sorted({name for r in chosen for name in r["metrics"]})
    headers = ["metric"] + [
        r["run_id"] + (" (base)" if base is not None and r is base else "")
        for r in chosen
    ]
    rows = []
    for name in names:
        direction = metric_direction(name)
        values = [r["metrics"].get(name) for r in chosen]
        numeric = [
            v for v in values if isinstance(v, (int, float))
        ]
        best = None
        if direction and len(numeric) > 1:
            best = min(numeric) if direction < 0 else max(numeric)
        row = [name]
        for record, value in zip(chosen, values):
            if value is None:
                row.append("-")
                continue
            cell = _fmt(value)
            if base is not None and record is not base:
                ref = base["metrics"].get(name)
                if isinstance(ref, (int, float)) and isinstance(value, (int, float)):
                    cell += f" ({value - ref:+.6g})"
            if best is not None and value == best:
                cell += " *"
            row.append(cell)
        rows.append(row)
    return table_to_text(headers, rows, min_width=4)
