"""Exception taxonomy of the experiment-campaign layer."""

from __future__ import annotations


class CampaignConfigError(ValueError):
    """The campaign config dict is malformed (unknown keys, bad sweep
    axes, an unregistered runner, params a runner rejects)."""


class LedgerError(RuntimeError):
    """The runs ledger is damaged beyond the tolerated torn tail, or a
    stored artifact fails its content-hash check."""


class CampaignKilled(RuntimeError):
    """``kill_after_runs`` fired — the campaign process is dead.

    Mirrors :class:`repro.faults.injectors.SimulatedCrash`: whatever the
    ledger already fsynced is all that survives, and a re-run of the
    same campaign resumes past the completed prefix.
    """
