"""MIPI CSI link model (paper §2.3/§7: sub-millisecond transfer of the
eye frame from sensor to SoC; latency/energy after [2, 63])."""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MipiLink:
    """Serial camera link with fixed setup latency plus serialization."""

    bandwidth_bps: float = 2.5e9
    setup_s: float = 20e-6
    energy_pj_per_bit: float = 5.0

    def __post_init__(self) -> None:
        check_positive("bandwidth_bps", self.bandwidth_bps)
        check_positive("setup_s", self.setup_s, strict=False)
        check_positive("energy_pj_per_bit", self.energy_pj_per_bit)

    def transfer_latency_s(self, bits: int) -> float:
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits}")
        return self.setup_s + bits / self.bandwidth_bps

    def transfer_energy_j(self, bits: int) -> float:
        return bits * self.energy_pj_per_bit * 1e-12

    def transfer_with_retransmits(self, bits: int, n_retransmits: int) -> float:
        """Latency of a transfer plus ``n_retransmits`` full re-sends.

        A transient bit error detected by the link-layer CRC costs one
        whole-frame retransmission; the fault injectors use this to price
        corrupted eye frames.
        """
        if n_retransmits < 0:
            raise ValueError(
                f"n_retransmits must be non-negative, got {n_retransmits}"
            )
        return (1 + n_retransmits) * self.transfer_latency_s(bits)
