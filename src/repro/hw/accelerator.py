"""Accelerator composition: the POLO accelerator and the per-baseline
dedicated accelerators (paper §5, §7).

The POLO accelerator runs INT8 (POLOViT is weight/activation quantized,
Table 1) on a 16 x 16 array with IPU and token selector.  Each baseline
gets a dedicated accelerator with the same compute-engine *area* (§7);
since the baselines are FP16 models, the equal-area array is smaller
(8 x 8 with the default area table), which is the architectural source of
POLO's gaze-latency advantage beyond its smaller op count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.area import AreaTable
from repro.hw.buffers import SramBuffer
from repro.hw.energy import EnergyBreakdown, EnergyTable
from repro.hw.ipu import IpuModel, IpuReport
from repro.hw.mapper import ScheduleReport, WorkloadMapper
from repro.hw.sfu import SpecialFunctionUnit
from repro.hw.systolic import SystolicArray
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class AcceleratorConfig:
    """Geometry, precision, clock, and buffering of one accelerator."""

    name: str = "POLO"
    rows: int = 16
    cols: int = 16
    precision: str = "int8"
    clock_hz: float = 1e9
    act_buffer_kb: float = 128.0
    weight_buffer_kb: float = 128.0
    has_token_selector: bool = True
    has_ipu: bool = True
    #: Cost every GEMM in its Huang–Abraham-augmented form (checksum row
    #: and column are real array work) plus checksum generation and
    #: verification passes.  See :mod:`repro.reliability.abft`.
    abft_protected: bool = False

    def __post_init__(self) -> None:
        check_positive("clock_hz", self.clock_hz)


@dataclass
class ExecutionReport:
    """Latency/energy/utilization of one accelerator invocation."""

    latency_s: float
    cycles: int
    energy: EnergyBreakdown
    utilization: float
    schedule: "ScheduleReport | None" = None

    def __add__(self, other: "ExecutionReport") -> "ExecutionReport":
        total_cycles = self.cycles + other.cycles
        util = 0.0
        if total_cycles:
            util = (
                self.utilization * self.cycles + other.utilization * other.cycles
            ) / total_cycles
        return ExecutionReport(
            latency_s=self.latency_s + other.latency_s,
            cycles=total_cycles,
            energy=self.energy + other.energy,
            utilization=util,
            schedule=None,
        )


class Accelerator:
    """A systolic-array accelerator instance with its mapper and IPU."""

    def __init__(
        self,
        config: "AcceleratorConfig | None" = None,
        energy: "EnergyTable | None" = None,
        area: "AreaTable | None" = None,
    ):
        self.config = config or AcceleratorConfig()
        self.energy_table = energy or EnergyTable()
        self.area_table = area or AreaTable()
        cfg = self.config
        self.array = SystolicArray(cfg.rows, cfg.cols, cfg.precision)
        self.sfu = SpecialFunctionUnit()
        self.act_buffer = SramBuffer("activation", cfg.act_buffer_kb, self.energy_table)
        self.weight_buffer = SramBuffer("weight", cfg.weight_buffer_kb, self.energy_table)
        self.mapper = WorkloadMapper(
            self.array,
            self.sfu,
            self.energy_table,
            self.act_buffer,
            self.weight_buffer,
            abft=cfg.abft_protected,
        )
        self.ipu = IpuModel(energy=self.energy_table) if cfg.has_ipu else None

    # ------------------------------------------------------------------
    def run(self, ops: list) -> ExecutionReport:
        """Execute a DNN workload; returns latency at the configured clock."""
        schedule = self.mapper.map(ops)
        return ExecutionReport(
            latency_s=schedule.cycles / self.config.clock_hz,
            cycles=schedule.cycles,
            energy=schedule.energy,
            utilization=schedule.utilization,
            schedule=schedule,
        )

    def run_ipu(self, report: IpuReport) -> ExecutionReport:
        """Wrap an IPU cost report in accelerator time units."""
        return ExecutionReport(
            latency_s=report.cycles / self.config.clock_hz,
            cycles=report.cycles,
            energy=report.energy,
            utilization=0.0,
        )

    # ------------------------------------------------------------------
    @property
    def area_mm2(self) -> float:
        cfg = self.config
        return self.area_table.accelerator_mm2(
            cfg.rows,
            cfg.cols,
            cfg.precision,
            cfg.act_buffer_kb + cfg.weight_buffer_kb,
            with_token_selector=cfg.has_token_selector,
            with_ipu=cfg.has_ipu,
        )

    def area_fractions(self) -> dict[str, float]:
        """Area split in the Fig.-less §7 reporting format
        (buffers / compute engine / IPU)."""
        cfg = self.config
        buffers = self.area_table.buffers_mm2(cfg.act_buffer_kb + cfg.weight_buffer_kb)
        engine = self.area_table.compute_engine_mm2(
            cfg.rows, cfg.cols, cfg.precision, cfg.has_token_selector
        )
        ipu = self.area_table.ipu_mm2 if cfg.has_ipu else 0.0
        total = buffers + engine + ipu
        return {
            "buffers": buffers / total,
            "engine": engine / total,
            "ipu": ipu / total,
            "total_mm2": total,
        }

    def average_power_w(self, energy_j: float, latency_s: float) -> float:
        if latency_s <= 0:
            raise ValueError("latency must be positive")
        return energy_j / latency_s


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------

def polo_accelerator(
    energy: "EnergyTable | None" = None,
    area: "AreaTable | None" = None,
    abft: bool = False,
) -> Accelerator:
    """The paper's POLO accelerator: 16x16 INT8 @ 1 GHz, 2x128 KB.

    With ``abft=True`` every GEMM is costed in its checksum-augmented
    form so reliability overhead appears in latency/energy/utilization."""
    return Accelerator(
        AcceleratorConfig(abft_protected=abft), energy=energy, area=area
    )


def baseline_accelerator(
    name: str,
    energy: "EnergyTable | None" = None,
    area: "AreaTable | None" = None,
) -> Accelerator:
    """A dedicated FP16 accelerator with the same compute-engine area as
    POLO's (§7); equal area buys a smaller FP16 array."""
    area = area or AreaTable()
    dim = area.equal_area_array_dim(16, 16, "int8", "fp16")
    config = AcceleratorConfig(
        name=name,
        rows=dim,
        cols=dim,
        precision="fp16",
        has_token_selector=False,
        has_ipu=False,
    )
    return Accelerator(config, energy=energy, area=area)


# ----------------------------------------------------------------------
# POLONet per-path execution (drives Eq. 6)
# ----------------------------------------------------------------------

@dataclass
class PathReport:
    """Gaze-processing latency/energy for one Algorithm-1 path."""

    path: str
    latency_s: float
    energy: EnergyBreakdown
    cycles: int = 0
    #: Cycles spent on ABFT checksum work (zero unless the accelerator is
    #: ``abft_protected``); a subset of ``cycles``.
    abft_cycles: int = 0

    @property
    def abft_overhead(self) -> float:
        """Fraction of total cycles attributable to ABFT protection."""
        if self.cycles == 0:
            return 0.0
        return self.abft_cycles / self.cycles


class PoloAcceleratorModel:
    """Costs POLONet's three execution paths on the POLO accelerator.

    The saccade RNN runs on every frame; the reuse check adds the XOR
    pass; a fresh prediction adds the pupil search and the gaze ViT.
    """

    def __init__(
        self,
        accelerator: "Accelerator | None" = None,
        frame_shape: tuple[int, int] = (400, 640),
        pool_m: int = 4,
        pupil_window: int = 5,
    ):
        self.accelerator = accelerator or polo_accelerator()
        if self.accelerator.ipu is None:
            raise ValueError("POLO accelerator model requires an IPU")
        self.frame_shape = frame_shape
        self.pool_m = pool_m
        self.pupil_window = pupil_window

    @property
    def map_shape(self) -> tuple[int, int]:
        return (self.frame_shape[0] // self.pool_m, self.frame_shape[1] // self.pool_m)

    def path_report(
        self,
        path: str,
        saccade_ops: list,
        vit_ops: "list | None" = None,
        binary_map: "np.ndarray | None" = None,
        tracer=None,
        t0_s: float = 0.0,
    ) -> PathReport:
        """Latency/energy of one frame on 'saccade', 'reuse', or 'predict'.

        With a ``tracer`` (see :mod:`repro.obs`), emits sim-clock
        per-stage spans on the accelerator track starting at ``t0_s``:
        the IPU datapath stages, the saccade RNN, and — on the predict
        path — the gaze ViT broken down into systolic / SFU /
        token-selector cycle shares from the mapper's schedule.  Tracing
        is read-only: the returned report is identical with or without a
        tracer.
        """
        acc = self.accelerator
        clock = acc.config.clock_hz
        if binary_map is None and path == "predict":
            # Worst-case white-pixel population for the pupil search: the
            # pupil disc occupies ~2% of the pooled map.
            h, w = self.map_shape
            binary_map = np.zeros((h, w), dtype=np.uint8)
            n_white = max(1, int(0.02 * h * w))
            binary_map.reshape(-1)[:n_white] = 1
        stage_reports = acc.ipu.frame_stage_costs(
            self.frame_shape, self.pool_m, binary_map, self.pupil_window, path
        )
        cycles = sum(r.cycles for r in stage_reports)
        energy = EnergyBreakdown()
        for r in stage_reports:
            energy = energy + r.energy
        ipu_report = IpuReport(path, cycles, energy)
        saccade_exec = acc.run(saccade_ops)
        total = acc.run_ipu(ipu_report) + saccade_exec
        vit_exec = None
        if path == "predict":
            if vit_ops is None:
                raise ValueError("predict path requires the gaze ViT workload")
            vit_exec = acc.run(vit_ops)
            total = total + vit_exec
        if tracer is not None and tracer.enabled:
            self._trace_stages(tracer, t0_s, clock, stage_reports, saccade_exec, vit_exec)
        abft_cycles = 0
        for exec_report in (saccade_exec, vit_exec):
            if exec_report is not None and exec_report.schedule is not None:
                abft_cycles += exec_report.schedule.abft_cycles
        return PathReport(
            path=path,
            latency_s=total.latency_s,
            energy=total.energy,
            cycles=total.cycles,
            abft_cycles=abft_cycles,
        )

    def _trace_stages(
        self,
        tracer,
        t0_s: float,
        clock_hz: float,
        stage_reports: list,
        saccade_exec: ExecutionReport,
        vit_exec: "ExecutionReport | None",
    ) -> None:
        from repro.obs import PID_ACCEL

        t = t0_s
        for report in stage_reports:
            dur = report.cycles / clock_hz
            tracer.record_span(
                f"ipu.{report.task}", t, dur, cat="accel", pid=PID_ACCEL,
                args={"cycles": report.cycles},
            )
            t += dur
        tracer.record_span(
            "array.saccade_rnn", t, saccade_exec.latency_s, cat="accel",
            pid=PID_ACCEL, args={"cycles": saccade_exec.cycles},
        )
        t += saccade_exec.latency_s
        if vit_exec is None:
            return
        tracer.record_span(
            "array.gaze_vit", t, vit_exec.latency_s, cat="accel",
            pid=PID_ACCEL, args={"cycles": vit_exec.cycles},
        )
        schedule = vit_exec.schedule
        if schedule is not None:
            sub = t
            for name, cycles in (
                ("systolic", schedule.matmul_cycles),
                ("sfu", schedule.sfu_cycles),
                ("token_selector", schedule.elementwise_cycles),
            ):
                dur = cycles / clock_hz
                tracer.record_span(
                    f"array.gaze_vit.{name}", sub, dur, cat="accel",
                    pid=PID_ACCEL, tid=1, args={"cycles": cycles},
                )
                sub += dur
