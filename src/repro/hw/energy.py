"""Per-operation energy constants and technology scaling.

The paper synthesizes the accelerator in 45 nm (Nangate) at 1 GHz, models
buffers with CACTI, and scales results to 22 nm with DeepScaleTool (§7).
We encode the same flow as data: per-op energies at 45 nm from standard
published measurements (Horowitz, ISSCC'14 style numbers), a DeepScaleTool
style 45->22 nm scaling factor, and a CACTI-like sqrt-capacity model for
SRAM access energy.  All downstream energy numbers derive from this one
table, so the calibration is auditable in a single place.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from repro.utils.validation import check_positive

#: DeepScaleTool-style scaling of dynamic energy from 45 nm to 22 nm.
ENERGY_SCALE_45_TO_22 = 0.37
#: Corresponding area scaling.
AREA_SCALE_45_TO_22 = 0.25


@dataclass(frozen=True)
class EnergyTable:
    """Per-operation dynamic energy in picojoules at the target node.

    ``mac_int8_pj`` / ``mac_fp16_pj``: one multiply-accumulate.
    ``sfu_op_pj``: one LUT/PWL nonlinear evaluation in the SFU.
    ``bit_op_pj``: one bit-level IPU operation (XOR, 1-bit add slice).
    ``sram_pj_per_byte_128kb``: SRAM access energy per byte for a 128 KB
    macro; other capacities scale as sqrt(capacity).
    ``dram_pj_per_byte``: off-chip access energy per byte.
    ``mipi_pj_per_bit``: link energy per transferred bit.
    """

    mac_int8_pj: float = 0.25 * ENERGY_SCALE_45_TO_22
    mac_fp16_pj: float = 0.8 * ENERGY_SCALE_45_TO_22
    sfu_op_pj: float = 0.9 * ENERGY_SCALE_45_TO_22
    bit_op_pj: float = 0.004 * ENERGY_SCALE_45_TO_22
    sram_pj_per_byte_128kb: float = 4.0 * ENERGY_SCALE_45_TO_22
    dram_pj_per_byte: float = 20.0
    mipi_pj_per_bit: float = 5.0

    def __post_init__(self) -> None:
        for name in (
            "mac_int8_pj",
            "mac_fp16_pj",
            "sfu_op_pj",
            "bit_op_pj",
            "sram_pj_per_byte_128kb",
            "dram_pj_per_byte",
            "mipi_pj_per_bit",
        ):
            check_positive(name, getattr(self, name))

    def mac_pj(self, precision: str) -> float:
        """MAC energy for a datapath precision ('int8' or 'fp16')."""
        if precision == "int8":
            return self.mac_int8_pj
        if precision == "fp16":
            return self.mac_fp16_pj
        raise ValueError(f"unknown precision {precision!r}")

    def sram_pj_per_byte(self, capacity_kb: float) -> float:
        """CACTI-like access energy: grows with the square root of
        capacity (bitline/wordline length scaling)."""
        check_positive("capacity_kb", capacity_kb)
        return self.sram_pj_per_byte_128kb * math.sqrt(capacity_kb / 128.0)


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules attributed to each accelerator component (Fig. 13a axes)."""

    mac_j: float = 0.0
    sfu_j: float = 0.0
    buffer_j: float = 0.0
    other_j: float = 0.0

    @property
    def total_j(self) -> float:
        return self.mac_j + self.sfu_j + self.buffer_j + self.other_j

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            mac_j=self.mac_j + other.mac_j,
            sfu_j=self.sfu_j + other.sfu_j,
            buffer_j=self.buffer_j + other.buffer_j,
            other_j=self.other_j + other.other_j,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            mac_j=self.mac_j * factor,
            sfu_j=self.sfu_j * factor,
            buffer_j=self.buffer_j * factor,
            other_j=self.other_j * factor,
        )

    def fractions(self) -> dict[str, float]:
        total = self.total_j
        if total <= 0:
            return {"mac": 0.0, "sfu": 0.0, "buffer": 0.0, "other": 0.0}
        return {
            "mac": self.mac_j / total,
            "sfu": self.sfu_j / total,
            "buffer": self.buffer_j / total,
            "other": self.other_j / total,
        }
