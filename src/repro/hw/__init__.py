"""Hardware substrate: systolic array, SFU, IPU, buffers, accelerator
composition, sensor/link models, and the DNN-on-GPU ablation model."""

from repro.hw.accelerator import (
    Accelerator,
    AcceleratorConfig,
    ExecutionReport,
    PathReport,
    PoloAcceleratorModel,
    baseline_accelerator,
    polo_accelerator,
)
from repro.hw.area import AreaTable, MAC_AREA_RATIO
from repro.hw.buffers import SramBuffer
from repro.hw.energy import (
    AREA_SCALE_45_TO_22,
    ENERGY_SCALE_45_TO_22,
    EnergyBreakdown,
    EnergyTable,
)
from repro.hw.gpu_compute import GpuComputeModel
from repro.hw.ipu import IpuConfig, IpuModel, IpuReport
from repro.hw.mapper import ScheduleReport, WorkloadMapper
from repro.hw.mipi import MipiLink
from repro.hw.noc import NocLink
from repro.hw.ops import (
    ElementwiseOp,
    MatMulOp,
    NonlinearKind,
    NonlinearOp,
    conv2d_as_matmul,
    total_elementwise,
    total_macs,
    total_nonlinear,
)
from repro.hw.sensor import CameraSensor
from repro.hw.sfu import SpecialFunctionUnit
from repro.hw.systolic import SystolicArray

__all__ = [
    "Accelerator",
    "AcceleratorConfig",
    "ExecutionReport",
    "PathReport",
    "PoloAcceleratorModel",
    "baseline_accelerator",
    "polo_accelerator",
    "AreaTable",
    "MAC_AREA_RATIO",
    "SramBuffer",
    "AREA_SCALE_45_TO_22",
    "ENERGY_SCALE_45_TO_22",
    "EnergyBreakdown",
    "EnergyTable",
    "GpuComputeModel",
    "IpuConfig",
    "IpuModel",
    "IpuReport",
    "ScheduleReport",
    "WorkloadMapper",
    "MipiLink",
    "NocLink",
    "ElementwiseOp",
    "MatMulOp",
    "NonlinearKind",
    "NonlinearOp",
    "conv2d_as_matmul",
    "total_elementwise",
    "total_macs",
    "total_nonlinear",
    "CameraSensor",
    "SpecialFunctionUnit",
    "SystolicArray",
]
