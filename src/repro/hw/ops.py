"""Abstract compute-op descriptors.

Every gaze-processing algorithm (POLONet and each baseline) describes its
paper-scale inference workload as a list of these ops.  The hardware
models (``repro.hw.accelerator``, ``repro.hw.gpu_compute``) consume the
same lists to produce cycle counts, energy, and memory traffic, which is
what makes the cross-algorithm latency comparisons apples-to-apples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class NonlinearKind(enum.Enum):
    """Nonlinearities the SFU supports (paper §5.2)."""

    SOFTMAX = "softmax"
    LAYERNORM = "layernorm"
    GELU = "gelu"
    RELU = "relu"
    TANH = "tanh"
    SIGMOID = "sigmoid"


@dataclass(frozen=True)
class MatMulOp:
    """Dense matrix multiply C[m, n] = A[m, k] @ B[k, n].

    Convolutions are lowered to this form via im2col before costing, which
    matches how both the systolic array and a GPU's GEMM path execute them.
    ``transposed`` marks the in-place transposed matmuls of attention that
    the reconfigurable systolic array of [118] supports.
    """

    m: int
    k: int
    n: int
    transposed: bool = False

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError(f"matmul dims must be positive, got {(self.m, self.k, self.n)}")

    @property
    def macs(self) -> int:
        return self.m * self.k * self.n

    @property
    def flops(self) -> int:
        return 2 * self.macs

    @property
    def input_elems(self) -> int:
        return self.m * self.k + self.k * self.n

    @property
    def output_elems(self) -> int:
        return self.m * self.n


@dataclass(frozen=True)
class NonlinearOp:
    """``count`` scalar applications of one nonlinearity."""

    kind: NonlinearKind
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")


@dataclass(frozen=True)
class ElementwiseOp:
    """``count`` scalar add/mul-class operations (residuals, biases, masks)."""

    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")


Op = "MatMulOp | NonlinearOp | ElementwiseOp"


def conv2d_as_matmul(
    out_h: int,
    out_w: int,
    in_channels: int,
    out_channels: int,
    kernel: int,
) -> MatMulOp:
    """Lower a convolution to its im2col GEMM."""
    return MatMulOp(m=out_h * out_w, k=in_channels * kernel * kernel, n=out_channels)


def total_macs(ops: list) -> int:
    return sum(op.macs for op in ops if isinstance(op, MatMulOp))


def total_nonlinear(ops: list) -> int:
    return sum(op.count for op in ops if isinstance(op, NonlinearOp))


def total_elementwise(ops: list) -> int:
    return sum(op.count for op in ops if isinstance(op, ElementwiseOp))
