"""DNN-inference-on-GPU latency model for the no-accelerator ablation
(paper §7.2, Fig. 13b).

When the gaze-tracking accelerator is removed, the rendering GPU runs
the gaze DNN itself inside the graphics/compute context that Vulkan-Sim
models — batch-1, many small kernels, no tensor-core inference runtime,
plus the GPU-hostile operations the paper calls out (softmax/layernorm,
token top-k and reshaping).  Effective MAC throughput is therefore far
below peak.  The model charges:

* sustained MAC throughput by precision (INT8 via dp4a-style packing is
  ~4x the FP16-accumulate path),
* a per-kernel launch overhead for every op,
* memory-bound nonlinearities at the DRAM-bandwidth rate,
* an extra penalty factor for token-pruned ViTs (top-k + reshape).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.ops import MatMulOp, NonlinearOp
from repro.utils.validation import check_positive

_GPU_MACS_PER_S = {"int8": 80e9, "fp16": 20e9}


@dataclass(frozen=True)
class GpuComputeModel:
    """Batch-1 DNN inference latency on the rendering GPU."""

    name: str = "Jetson Orin NX (graphics-context inference)"
    kernel_launch_s: float = 8e-6
    memory_bandwidth_bytes_s: float = 102e9
    pruning_overhead: float = 1.3

    def __post_init__(self) -> None:
        check_positive("kernel_launch_s", self.kernel_launch_s)
        check_positive("memory_bandwidth_bytes_s", self.memory_bandwidth_bytes_s)
        if self.pruning_overhead < 1.0:
            raise ValueError("pruning_overhead must be >= 1")

    def macs_per_s(self, precision: str) -> float:
        try:
            return _GPU_MACS_PER_S[precision]
        except KeyError:
            raise ValueError(f"unknown precision {precision!r}") from None

    def latency_s(self, ops: list, precision: str, token_pruned: bool = False) -> float:
        """Seconds to run one inference of ``ops`` at ``precision``."""
        rate = self.macs_per_s(precision)
        bytes_per_elem = 1 if precision == "int8" else 2
        total = 0.0
        for op in ops:
            total += self.kernel_launch_s
            if isinstance(op, MatMulOp):
                total += op.macs / rate
            elif isinstance(op, NonlinearOp):
                # Memory bound: read + write each element once.
                total += 2 * op.count * bytes_per_elem / self.memory_bandwidth_bytes_s
            else:
                count = getattr(op, "count", 0)
                total += 3 * count * bytes_per_elem / self.memory_bandwidth_bytes_s
        if token_pruned:
            total *= self.pruning_overhead
        return total
