"""Image Pre-processing Unit model (paper §5.1, Fig. 10).

Three shared-datapath tasks over the full-sized eye frame:

* **Pool + binarize** — M x M tiles stream through the adder tree, one
  tile per cycle; the tile sum is compared against gamma1 pre-scaled by
  M^2 (the hardware's division-free trick).
* **Gaze-reuse test** — the two binary maps stream through the XOR array
  (one word of ``xor_width`` pixels per cycle) into the adder tree.
* **Pupil search** — an S x S window sum evaluated *only at white
  pixels*, exploiting binary-map sparsity; cycle count is therefore
  data-dependent (the count of white pixels).

Functional outputs delegate to the golden model in
:mod:`repro.core.preprocessing`; tests assert that hardware-reported
outputs equal the golden outputs exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.energy import EnergyBreakdown, EnergyTable
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class IpuConfig:
    """Datapath widths of the shared IPU hardware."""

    xor_width: int = 64  # binary pixels compared per cycle
    adder_tree_width: int = 16  # pixels summed per cycle in pooling
    pipeline_fill: int = 8

    def __post_init__(self) -> None:
        check_positive("xor_width", self.xor_width)
        check_positive("adder_tree_width", self.adder_tree_width)


@dataclass(frozen=True)
class IpuReport:
    """Cycles and energy of one IPU task invocation."""

    task: str
    cycles: int
    energy: EnergyBreakdown


class IpuModel:
    """Costing (and functional pass-through) of the IPU datapaths."""

    def __init__(self, config: "IpuConfig | None" = None, energy: "EnergyTable | None" = None):
        self.config = config or IpuConfig()
        self.energy = energy or EnergyTable()

    # ------------------------------------------------------------------
    # Costing
    # ------------------------------------------------------------------
    def pool_binarize_cost(self, frame_shape: tuple[int, int], pool_m: int) -> IpuReport:
        """Adder-tree pooling + comparator binarization over the frame."""
        h, w = frame_shape
        tiles = (h // pool_m) * (w // pool_m)
        pixels_per_tile = pool_m * pool_m
        cycles_per_tile = max(1, pixels_per_tile // self.config.adder_tree_width)
        cycles = tiles * cycles_per_tile + self.config.pipeline_fill
        # Byte-wide adds for pooling, one comparator op per tile.
        ops = h * w + tiles
        energy = EnergyBreakdown(other_j=ops * 8 * self.energy.bit_op_pj * 1e-12)
        return IpuReport("pool_binarize", cycles, energy)

    def reuse_check_cost(self, map_shape: tuple[int, int]) -> IpuReport:
        """XOR array + adder tree over the two binary maps."""
        pixels = map_shape[0] * map_shape[1]
        cycles = max(1, pixels // self.config.xor_width) + self.config.pipeline_fill
        energy = EnergyBreakdown(other_j=2 * pixels * self.energy.bit_op_pj * 1e-12)
        return IpuReport("reuse_check", cycles, energy)

    def pupil_search_cost(self, binary_map: np.ndarray, window: int) -> IpuReport:
        """Sparse sliding-window sum; one white-centred window per cycle."""
        white = int(binary_map.sum())
        cycles = max(1, white) + self.config.pipeline_fill
        ops = white * window * window
        energy = EnergyBreakdown(other_j=ops * self.energy.bit_op_pj * 1e-12)
        return IpuReport("pupil_search", cycles, energy)

    # ------------------------------------------------------------------
    # Combined per-frame costs for the three POLONet paths
    # ------------------------------------------------------------------
    def frame_stage_costs(
        self,
        frame_shape: tuple[int, int],
        pool_m: int,
        binary_map: "np.ndarray | None",
        window: int,
        path: str,
    ) -> list[IpuReport]:
        """Per-stage IPU reports for one frame, in datapath order.

        The stage list is what per-stage profiling traces; summing it in
        order reproduces :meth:`frame_cost` exactly.
        """
        if path not in ("saccade", "reuse", "predict"):
            raise ValueError(f"unknown path {path!r}")
        reports = [self.pool_binarize_cost(frame_shape, pool_m)]
        map_shape = (frame_shape[0] // pool_m, frame_shape[1] // pool_m)
        if path in ("reuse", "predict"):
            reports.append(self.reuse_check_cost(map_shape))
        if path == "predict":
            if binary_map is None:
                binary_map = np.ones(map_shape, dtype=np.uint8) * 0  # worst case none
            reports.append(self.pupil_search_cost(binary_map, window))
        return reports

    def frame_cost(
        self,
        frame_shape: tuple[int, int],
        pool_m: int,
        binary_map: "np.ndarray | None",
        window: int,
        path: str,
    ) -> IpuReport:
        """IPU work for one frame on a given Algorithm-1 path.

        ``path``: 'saccade' runs pooling/binarization only; 'reuse' adds the
        XOR difference; 'predict' additionally runs the pupil search.
        """
        reports = self.frame_stage_costs(frame_shape, pool_m, binary_map, window, path)
        cycles = sum(r.cycles for r in reports)
        energy = EnergyBreakdown()
        for r in reports:
            energy = energy + r.energy
        return IpuReport(path, cycles, energy)
