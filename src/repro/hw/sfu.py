"""Special Function Unit timing model (paper §5.2).

The SFU executes every nonlinearity the ViT and saccade network need:
softmax exponentials via LUT, layer-norm square roots via LUT, GeLU/Tanh
via piecewise-linear segments, and ReLU via comparators.  Throughputs
below are scalar lanes per cycle for each kind; comparator-based ReLU is
the cheapest, LUT softmax the most expensive (it also accumulates the
normalizing sum).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.ops import NonlinearKind, NonlinearOp

#: Scalar evaluations per cycle for each supported nonlinearity.
DEFAULT_THROUGHPUT: dict[NonlinearKind, float] = {
    NonlinearKind.SOFTMAX: 4.0,
    NonlinearKind.LAYERNORM: 4.0,
    NonlinearKind.GELU: 8.0,
    NonlinearKind.TANH: 8.0,
    NonlinearKind.SIGMOID: 8.0,
    NonlinearKind.RELU: 16.0,
}

#: Relative energy per evaluation (multiplied by EnergyTable.sfu_op_pj).
DEFAULT_ENERGY_WEIGHT: dict[NonlinearKind, float] = {
    NonlinearKind.SOFTMAX: 1.0,
    NonlinearKind.LAYERNORM: 1.0,
    NonlinearKind.GELU: 0.6,
    NonlinearKind.TANH: 0.6,
    NonlinearKind.SIGMOID: 0.6,
    NonlinearKind.RELU: 0.15,
}


@dataclass(frozen=True)
class SpecialFunctionUnit:
    """LUT/PWL nonlinearity engine."""

    throughput: dict = field(default_factory=lambda: dict(DEFAULT_THROUGHPUT))
    energy_weight: dict = field(default_factory=lambda: dict(DEFAULT_ENERGY_WEIGHT))

    def cycles(self, op: NonlinearOp) -> int:
        rate = self.throughput.get(op.kind)
        if rate is None:
            raise ValueError(f"SFU does not support {op.kind}")
        return max(1, int(round(op.count / rate)))

    def energy_weight_for(self, op: NonlinearOp) -> float:
        weight = self.energy_weight.get(op.kind)
        if weight is None:
            raise ValueError(f"SFU does not support {op.kind}")
        return weight * op.count
