"""Workload-to-engine mapping: op lists -> cycles, energy, traffic.

The mapper walks an op list (see :mod:`repro.hw.ops`), schedules GEMMs on
the systolic array and nonlinearities on the SFU, and charges SRAM
traffic for weights (loaded once, weight-stationary), streamed
activations, and written outputs.  It is shared by the POLO accelerator
and every baseline's dedicated accelerator, so cross-algorithm
comparisons differ only in array geometry, precision, and op lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.buffers import SramBuffer
from repro.hw.energy import EnergyBreakdown, EnergyTable
from repro.hw.ops import ElementwiseOp, MatMulOp, NonlinearOp
from repro.hw.sfu import SpecialFunctionUnit
from repro.hw.systolic import SystolicArray
from repro.obs.profile import profiled

_BYTES_PER_ELEM = {"int8": 1, "fp16": 2}


@dataclass
class ScheduleReport:
    """Result of mapping one workload."""

    cycles: int = 0
    matmul_cycles: int = 0
    sfu_cycles: int = 0
    elementwise_cycles: int = 0
    macs: int = 0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    weight_bytes: int = 0
    activation_bytes: int = 0
    peak_macs_per_cycle: int = 1
    #: Cycles attributable to ABFT protection (checksum rows/columns on
    #: the array plus checksum generation and verification on the
    #: elementwise datapath).  Zero on unprotected schedules; always a
    #: subset of ``cycles`` so overhead fractions are exact.
    abft_cycles: int = 0

    @property
    def utilization(self) -> float:
        """Achieved fraction of peak MAC throughput over the whole run."""
        if self.cycles == 0:
            return 0.0
        return self.macs / (self.cycles * self.peak_macs_per_cycle)

    def __add__(self, other: "ScheduleReport") -> "ScheduleReport":
        return ScheduleReport(
            peak_macs_per_cycle=max(self.peak_macs_per_cycle, other.peak_macs_per_cycle),
            cycles=self.cycles + other.cycles,
            matmul_cycles=self.matmul_cycles + other.matmul_cycles,
            sfu_cycles=self.sfu_cycles + other.sfu_cycles,
            elementwise_cycles=self.elementwise_cycles + other.elementwise_cycles,
            macs=self.macs + other.macs,
            energy=self.energy + other.energy,
            weight_bytes=self.weight_bytes + other.weight_bytes,
            activation_bytes=self.activation_bytes + other.activation_bytes,
            abft_cycles=self.abft_cycles + other.abft_cycles,
        )


class WorkloadMapper:
    """Maps op lists onto one array + SFU + buffer configuration."""

    def __init__(
        self,
        array: SystolicArray,
        sfu: "SpecialFunctionUnit | None" = None,
        energy: "EnergyTable | None" = None,
        act_buffer: "SramBuffer | None" = None,
        weight_buffer: "SramBuffer | None" = None,
        elementwise_per_cycle: int = 16,
        abft: bool = False,
    ):
        self.array = array
        self.sfu = sfu or SpecialFunctionUnit()
        self.energy_table = energy or EnergyTable()
        self.act_buffer = act_buffer or SramBuffer("activation", 128, self.energy_table)
        self.weight_buffer = weight_buffer or SramBuffer("weight", 128, self.energy_table)
        self.elementwise_per_cycle = elementwise_per_cycle
        #: Cost every GEMM as its Huang–Abraham-augmented form plus
        #: checksum generation/verification passes (see :meth:`map`).
        self.abft = abft

    @property
    def bytes_per_elem(self) -> int:
        return _BYTES_PER_ELEM[self.array.precision]

    @profiled(name="mapper.map", cat="hw")
    def map(self, ops: list) -> ScheduleReport:
        """Schedule the op list; ops execute back-to-back (no overlap)."""
        report = ScheduleReport(peak_macs_per_cycle=self.array.macs_per_cycle)
        mac_pj = self.energy_table.mac_pj(self.array.precision)
        for op in ops:
            if isinstance(op, MatMulOp):
                exec_op = self.array.abft_op(op) if self.abft else op
                cycles = self.array.cycles(exec_op)
                report.matmul_cycles += cycles
                report.macs += exec_op.macs
                report.energy = report.energy + EnergyBreakdown(
                    mac_j=exec_op.macs * mac_pj * 1e-12
                )
                w_bytes = self.array.weight_loads(exec_op) * self.bytes_per_elem
                a_bytes = (
                    self.array.activation_reads(exec_op)
                    + self.array.output_writes(exec_op)
                ) * self.bytes_per_elem
                report.weight_bytes += w_bytes
                report.activation_bytes += a_bytes
                report.energy = report.energy + EnergyBreakdown(
                    buffer_j=self.weight_buffer.access(w_bytes)
                    + self.act_buffer.access(a_bytes)
                )
                if self.abft:
                    # Checksum generation (column sums of A, row sums of
                    # B) and product verification (row + column sums of
                    # the augmented C against the stored checksums) run
                    # on the elementwise adder datapath; the augmented
                    # GEMM's extra row/column is array work.  All of it
                    # lands in ``abft_cycles`` so ``path_report`` can
                    # state the protection overhead exactly.
                    verify_adds = (
                        op.m * op.k
                        + op.k * op.n
                        + 2 * (op.m + 1) * (op.n + 1)
                    )
                    verify_cycles = max(
                        1, verify_adds // self.elementwise_per_cycle
                    )
                    report.elementwise_cycles += verify_cycles
                    v_bytes = (op.m + 1) * (op.n + 1) * self.bytes_per_elem
                    report.activation_bytes += v_bytes
                    report.energy = report.energy + EnergyBreakdown(
                        buffer_j=self.act_buffer.access(v_bytes),
                        other_j=verify_adds
                        * 0.05
                        * self.energy_table.sfu_op_pj
                        * 1e-12,
                    )
                    report.abft_cycles += (
                        cycles - self.array.cycles(op) + verify_cycles
                    )
            elif isinstance(op, NonlinearOp):
                cycles = self.sfu.cycles(op)
                report.sfu_cycles += cycles
                report.energy = report.energy + EnergyBreakdown(
                    sfu_j=self.sfu.energy_weight_for(op)
                    * self.energy_table.sfu_op_pj
                    * 1e-12
                )
                a_bytes = 2 * op.count * self.bytes_per_elem  # read + write
                report.activation_bytes += a_bytes
                report.energy = report.energy + EnergyBreakdown(
                    buffer_j=self.act_buffer.access(a_bytes)
                )
            elif isinstance(op, ElementwiseOp):
                cycles = max(1, op.count // self.elementwise_per_cycle)
                report.elementwise_cycles += cycles
                a_bytes = 3 * op.count * self.bytes_per_elem
                report.activation_bytes += a_bytes
                report.energy = report.energy + EnergyBreakdown(
                    buffer_j=self.act_buffer.access(a_bytes),
                    other_j=op.count * 0.05 * self.energy_table.sfu_op_pj * 1e-12,
                )
            else:
                raise TypeError(f"unsupported op type {type(op).__name__}")
        report.cycles = (
            report.matmul_cycles + report.sfu_cycles + report.elementwise_cycles
        )
        return report
