"""Weight-stationary systolic-array timing model (paper §5.2).

The POLO computational engine is a 16 x 16 array of 8-bit MACs fed in a
staggered (skewed) fashion; weights are preloaded into the PEs and
inputs stream through.  For a GEMM C[M,N] = A[M,K] @ B[K,N] the array
processes one (rows x cols) tile of B at a time:

    tiles  = ceil(K / rows) * ceil(N / cols)
    cycles = tiles * (M + rows + cols)

where ``rows + cols`` is the systolic fill/drain skew; per-tile weight
preload is double-buffered behind the previous tile's drain and adds no
cycles.  The reconfigurable design of [118] performs transposed matmuls
in place, so ``transposed`` ops incur no extra pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.ops import MatMulOp
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SystolicArray:
    """Array geometry and datapath precision."""

    rows: int = 16
    cols: int = 16
    precision: str = "int8"

    def __post_init__(self) -> None:
        check_positive("rows", self.rows)
        check_positive("cols", self.cols)
        if self.precision not in ("int8", "fp16"):
            raise ValueError(f"unknown precision {self.precision!r}")

    @property
    def macs_per_cycle(self) -> int:
        return self.rows * self.cols

    def tiles(self, op: MatMulOp) -> int:
        return math.ceil(op.k / self.rows) * math.ceil(op.n / self.cols)

    def cycles(self, op: MatMulOp) -> int:
        """Total cycles to execute one GEMM."""
        per_tile = op.m + self.rows + self.cols
        return self.tiles(op) * per_tile

    def utilization(self, op: MatMulOp) -> float:
        """Achieved MACs per cycle over peak (accounts for ragged tiles
        and fill/drain overhead)."""
        return op.macs / (self.cycles(op) * self.macs_per_cycle)

    def weight_loads(self, op: MatMulOp) -> int:
        """Weight elements fetched from SRAM (each loaded exactly once
        under weight-stationary dataflow)."""
        return op.k * op.n

    def activation_reads(self, op: MatMulOp) -> int:
        """Input elements streamed from SRAM.  The A panel is re-streamed
        once per N-tile (it cannot be held in the array)."""
        return op.m * op.k * math.ceil(op.n / self.cols)

    def output_writes(self, op: MatMulOp) -> int:
        """Accumulated outputs written back (partial sums stay in the
        accumulator across K-tiles)."""
        return op.m * op.n

    @staticmethod
    def abft_op(op: MatMulOp) -> MatMulOp:
        """The Huang–Abraham-augmented GEMM of ``op``.

        ABFT appends a column-sum row to ``A`` and a row-sum column to
        ``B``, so the protected product is ``(m+1) x (n+1)`` — one extra
        row and column of *real* MACs that stream through the array like
        any other work.  Costing this op instead of the original is what
        makes the protection overhead show up honestly in cycle, energy,
        and utilization reports."""
        return MatMulOp(op.m + 1, op.k, op.n + 1, transposed=op.transposed)
