"""Network-on-chip link model (paper §5.3).

The gaze result crossing the NoC is a handful of bytes — the paper
explicitly neglects it — but the model keeps it explicit so the latency
composition is complete and auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class NocLink:
    """On-chip interconnect hop."""

    bandwidth_bytes_per_s: float = 32e9
    hop_latency_s: float = 50e-9
    energy_pj_per_byte: float = 0.8

    def __post_init__(self) -> None:
        check_positive("bandwidth_bytes_per_s", self.bandwidth_bytes_per_s)
        check_positive("hop_latency_s", self.hop_latency_s, strict=False)

    def transfer_latency_s(self, n_bytes: int, hops: int = 2) -> float:
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be non-negative, got {n_bytes}")
        return hops * self.hop_latency_s + n_bytes / self.bandwidth_bytes_per_s

    def transfer_energy_j(self, n_bytes: int) -> float:
        return n_bytes * self.energy_pj_per_byte * 1e-12
