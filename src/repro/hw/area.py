"""Area model at 22 nm (paper §7: the synthesized POLO accelerator
occupies 0.75 mm^2, split 72% buffers / 24% computational engine / 4%
IPU).

The constants below are chosen so that the paper's configuration —
16 x 16 INT8 PEs, SFU, token selector, 128 KB + 128 KB SRAM, IPU —
reproduces those published aggregates; baseline accelerators are then
sized under the *same total compute area* (§7: "optimized to enhance
performance for each gaze-tracking DNN within the same total chip area"),
which is what forces FP16 baselines onto smaller arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive

#: Relative datapath area of one MAC by precision: a FP16
#: multiply-accumulate (multiplier + alignment/normalization logic) costs
#: about 3x the area of an INT8 MAC.
MAC_AREA_RATIO = {"int8": 1.0, "fp16": 3.0}


@dataclass(frozen=True)
class AreaTable:
    """Component areas in mm^2 at 22 nm."""

    pe_int8_mm2: float = 0.00045
    sfu_mm2: float = 0.035
    token_selector_mm2: float = 0.015
    ipu_mm2: float = 0.03
    sram_mm2_per_kb: float = 0.00211

    def __post_init__(self) -> None:
        for name in (
            "pe_int8_mm2",
            "sfu_mm2",
            "token_selector_mm2",
            "ipu_mm2",
            "sram_mm2_per_kb",
        ):
            check_positive(name, getattr(self, name))

    def pe_mm2(self, precision: str) -> float:
        try:
            ratio = MAC_AREA_RATIO[precision]
        except KeyError:
            raise ValueError(f"unknown precision {precision!r}") from None
        return self.pe_int8_mm2 * ratio

    def array_mm2(self, rows: int, cols: int, precision: str) -> float:
        return rows * cols * self.pe_mm2(precision)

    def compute_engine_mm2(
        self, rows: int, cols: int, precision: str, with_token_selector: bool
    ) -> float:
        area = self.array_mm2(rows, cols, precision) + self.sfu_mm2
        if with_token_selector:
            area += self.token_selector_mm2
        return area

    def buffers_mm2(self, total_kb: float) -> float:
        return total_kb * self.sram_mm2_per_kb

    def accelerator_mm2(
        self,
        rows: int,
        cols: int,
        precision: str,
        buffer_kb: float,
        with_token_selector: bool = True,
        with_ipu: bool = True,
    ) -> float:
        total = self.compute_engine_mm2(rows, cols, precision, with_token_selector)
        total += self.buffers_mm2(buffer_kb)
        if with_ipu:
            total += self.ipu_mm2
        return total

    def equal_area_array_dim(
        self, reference_rows: int, reference_cols: int, reference_precision: str, precision: str
    ) -> int:
        """Largest square array of ``precision`` PEs fitting in the area of
        the reference array — how the baseline accelerators are sized."""
        budget = self.array_mm2(reference_rows, reference_cols, reference_precision)
        per_pe = self.pe_mm2(precision)
        dim = int(math.floor(math.sqrt(budget / per_pe)))
        return max(dim, 1)
