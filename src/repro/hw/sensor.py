"""Near-eye camera sensor model (paper §7: 2-layer stacked digital pixel
sensor after [67], 65 nm top layer / 22 nm logic layer).

The paper treats acquisition as a ~1 ms, low-energy stage (Fig. 4b);
this model exposes that latency plus a per-frame energy derived from the
published sensor's power at its frame rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CameraSensor:
    """Acquisition-latency and energy model."""

    name: str = "stacked-DPS-640x400"
    width: int = 640
    height: int = 400
    bits_per_pixel: int = 8
    acquisition_s: float = 1.0e-3
    #: ~4 mW sensing power at 100 fps gives 40 uJ per frame.
    energy_per_frame_j: float = 40e-6

    def __post_init__(self) -> None:
        check_positive("acquisition_s", self.acquisition_s)
        check_positive("energy_per_frame_j", self.energy_per_frame_j)

    @property
    def frame_bits(self) -> int:
        return self.width * self.height * self.bits_per_pixel

    @property
    def frame_bytes(self) -> int:
        return self.frame_bits // 8
