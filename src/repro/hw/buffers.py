"""On-chip SRAM buffer model (paper §5.2: 128 KB activation/metadata
buffer + 128 KB weight buffer, sized down by cropping and token pruning).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.energy import EnergyTable
from repro.utils.validation import check_positive


@dataclass
class SramBuffer:
    """A capacity-checked SRAM with access-energy accounting."""

    name: str
    capacity_kb: float
    energy: EnergyTable

    def __post_init__(self) -> None:
        check_positive("capacity_kb", self.capacity_kb)
        self._accesses_bytes = 0

    @property
    def capacity_bytes(self) -> int:
        return int(self.capacity_kb * 1024)

    @property
    def pj_per_byte(self) -> float:
        return self.energy.sram_pj_per_byte(self.capacity_kb)

    def fits(self, n_bytes: int) -> bool:
        if n_bytes < 0:
            raise ValueError(
                f"n_bytes must be non-negative, got {n_bytes} "
                f"(capacity check on {self.name!r} buffer)"
            )
        return n_bytes <= self.capacity_bytes

    def access(self, n_bytes: int) -> float:
        """Record ``n_bytes`` of traffic; returns the energy in joules."""
        if n_bytes < 0:
            raise ValueError(
                f"n_bytes must be non-negative, got {n_bytes} "
                f"(access on {self.name!r} buffer)"
            )
        self._accesses_bytes += n_bytes
        return n_bytes * self.pj_per_byte * 1e-12

    @property
    def traffic_bytes(self) -> int:
        return self._accesses_bytes

    def reset(self) -> None:
        self._accesses_bytes = 0
