"""Small image-processing helpers shared by trackers and preprocessing."""

from __future__ import annotations

import numpy as np


def resize_bilinear(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Bilinear resize of a (H, W) or (N, H, W) array."""
    if image.ndim == 3:
        return np.stack([resize_bilinear(im, out_h, out_w) for im in image])
    h, w = image.shape
    if (h, w) == (out_h, out_w):
        return image.copy()
    ys = np.linspace(0, h - 1, out_h)
    xs = np.linspace(0, w - 1, out_w)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    top = image[np.ix_(y0, x0)] * (1 - wx) + image[np.ix_(y0, x1)] * wx
    bottom = image[np.ix_(y1, x0)] * (1 - wx) + image[np.ix_(y1, x1)] * wx
    return top * (1 - wy) + bottom * wy


def block_reduce_mean(image: np.ndarray, block: int) -> np.ndarray:
    """Average-pool a (H, W) image by non-overlapping ``block`` x ``block``
    tiles, truncating ragged edges (matches the IPU's tiled adder tree)."""
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")
    h, w = image.shape
    h_out, w_out = h // block, w // block
    trimmed = image[: h_out * block, : w_out * block]
    return trimmed.reshape(h_out, block, w_out, block).mean(axis=(1, 3))


def center_crop(image: np.ndarray, out_h: int, out_w: int) -> np.ndarray:
    """Crop the central (out_h, out_w) region, clamping to the image."""
    h, w = image.shape
    out_h, out_w = min(out_h, h), min(out_w, w)
    top = (h - out_h) // 2
    left = (w - out_w) // 2
    return image[top : top + out_h, left : left + out_w]


def crop_centered(image: np.ndarray, cy: int, cx: int, out_h: int, out_w: int) -> np.ndarray:
    """Crop an (out_h, out_w) window centred at (cy, cx), shifting the
    window to stay inside the image (never padding) — the behaviour of the
    analytical cropper in §4.2, which always returns a full-size crop."""
    h, w = image.shape
    if out_h > h or out_w > w:
        raise ValueError(f"crop {out_h}x{out_w} exceeds image {h}x{w}")
    top = int(np.clip(cy - out_h // 2, 0, h - out_h))
    left = int(np.clip(cx - out_w // 2, 0, w - out_w))
    return image[top : top + out_h, left : left + out_w]


def normalize_unit(image: np.ndarray) -> np.ndarray:
    """Shift/scale to [0, 1]; constant images map to zeros."""
    lo, hi = float(image.min()), float(image.max())
    if hi - lo < 1e-12:
        return np.zeros_like(image)
    return (image - lo) / (hi - lo)
