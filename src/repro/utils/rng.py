"""Deterministic random-number management.

Every stochastic component in the library accepts either a seed or a
``numpy.random.Generator``.  Centralizing the conversion here keeps all
experiments reproducible run-to-run: the benchmarks seed each pipeline
stage independently so that, e.g., regenerating Table 1 does not perturb
the stream used by Table 2.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def default_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a ``Generator`` from a seed, an existing generator, or fresh entropy.

    Passing an existing generator returns it unchanged so callers can thread
    one stream through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: "int | np.random.Generator | None", n: int) -> list[np.random.Generator]:
    """Split a seed into ``n`` independent generators.

    Used wherever a component fans out into parallel stochastic parts (e.g.
    one generator per synthetic participant in the user study) so that the
    parts stay independent regardless of consumption order.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = default_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)] if isinstance(
        seed, np.random.Generator
    ) else [np.random.default_rng(s) for s in np.random.SeedSequence(_as_entropy(seed)).spawn(n)]


def _as_entropy(seed: "int | None") -> "int | None":
    if seed is None:
        return None
    return int(seed)


class RngMixin:
    """Mixin giving a class a lazily-created, seedable ``self.rng``."""

    def __init__(self, seed: "int | np.random.Generator | None" = None) -> None:
        self._rng = default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def reseed(self, seed: "int | np.random.Generator | None") -> None:
        """Reset the internal stream (used by tests to replay a scenario)."""
        self._rng = default_rng(seed)
