"""Shared utilities: deterministic RNG management, validation helpers."""

from repro.utils.rng import RngMixin, default_rng, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "RngMixin",
    "default_rng",
    "spawn_rngs",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_shape",
]
