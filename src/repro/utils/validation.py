"""Argument-validation helpers shared across the library.

These raise early with messages that name the offending parameter, which
keeps the numeric code in the substrates free of repetitive guard clauses.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Validate that ``value`` lies in the closed interval [low, high]."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_shape(name: str, array: np.ndarray, shape: tuple) -> np.ndarray:
    """Validate an array's shape; ``None`` entries match any extent."""
    if array.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {array.shape}"
        )
    for axis, (actual, expected) in enumerate(zip(array.shape, shape)):
        if expected is not None and actual != expected:
            raise ValueError(
                f"{name} axis {axis} must have extent {expected}, got shape {array.shape}"
            )
    return array
