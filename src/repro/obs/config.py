"""Observability configuration and the per-run Obs bundle."""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, ScopedTracer, Tracer
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ObsConfig:
    """Knobs of one observability session.

    ``enabled=False`` (the library default) makes every tracer call a
    no-op; enabling it swaps in the real ring-buffer tracer.  The
    metrics registry always exists — counters are cheap and reports can
    publish into it unconditionally — but runtimes only feed it live
    when ``enabled``.
    """

    enabled: bool = True
    ring_capacity: int = 1 << 16
    top_k: int = 10

    def __post_init__(self) -> None:
        check_positive("ring_capacity", self.ring_capacity)
        check_positive("top_k", self.top_k)


class Obs:
    """One run's tracer + metrics registry, built from an ObsConfig."""

    def __init__(self, config: "ObsConfig | None" = None):
        self.config = config or ObsConfig()
        self.tracer: "Tracer | NullTracer" = (
            Tracer(self.config.ring_capacity) if self.config.enabled else NULL_TRACER
        )
        self.metrics = MetricsRegistry()

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def scoped(self, shard_id: int) -> "Obs":
        """A shard-scoped view of this bundle.

        The view *shares* the metrics registry (instruments dedupe by
        name, so N shards incrementing ``serve_frames_total`` yields the
        fleet-wide aggregate for free) but namespaces the tracer's track
        ids into the shard's pid block — see
        :class:`~repro.obs.tracer.ScopedTracer`.
        """
        view = object.__new__(Obs)
        view.config = self.config
        view.tracer = (
            ScopedTracer(self.tracer, shard_id) if self.enabled else NULL_TRACER
        )
        view.metrics = self.metrics
        return view


#: Shared disabled bundle — the default ``obs`` of every runtime.  Its
#: registry is intentionally shared-and-ignored: disabled runtimes never
#: publish into it.
NULL_OBS = Obs(ObsConfig(enabled=False))
