"""Online SLO engine: declarative objectives, burn rates, alerting.

The paper's pipeline lives or dies by latency budgets, so the serving
stack gets the same discipline production SRE practice applies to one:
explicit service-level objectives, evaluated *online* against the
:class:`~repro.obs.metrics.MetricsRegistry` instruments the runtimes
already publish, with multi-window burn-rate alerting.

Two objective kinds cover the telemetry we have:

* ``ratio`` — a good-events fraction over an event stream, e.g. "95% of
  frames complete under the deadline".  The bad-event stream is usually
  the same latency histogram filtered by a threshold (``above_s``), so a
  P95-latency SLO is a ratio SLO over threshold exceedances.  The burn
  rate is the classic error-budget consumption speed:
  ``(bad / total) / (1 - target)`` — burn 1.0 spends the budget exactly
  at the sustainable rate, burn 10 spends it 10x too fast.
* ``rate_min`` — an event-rate floor, e.g. "the fleet sustains at least
  800 fresh predictions per second".  Burn is ``target_rate / observed``.

Every objective is evaluated on two windows at once (fast + slow, à la
multi-window multi-burn alerting): the fast window catches cliffs in
seconds, the slow window keeps one noisy blip from paging.  An alert
fires only when *both* windows burn — that is what closes the classic
fast-window flappiness hole.  The per-objective alert state machine is
``OK -> WARN -> PAGE -> RESOLVED -> OK``; every transition is emitted as
a tracer instant on the dedicated :data:`~repro.obs.tracer.PID_SLO`
track and counted in the registry, so alerts are visible in Perfetto
next to the frames that caused them and in the Prometheus export.

Pages can act, not just report: an objective with ``on_page: "widen"``
makes :class:`~repro.faults.runtime.ChaosRuntime` escalate every
session's :class:`~repro.system.watchdog.TrackingWatchdog` to WIDENED —
a burning latency budget triggers the Eq. 1 foveal-radius widening path
instead of silently missing deadlines.

Everything is sim-clock driven and deterministic: evaluation happens at
fixed interval boundaries of the simulation clock, so two runs of the
same config produce byte-identical alert streams, history, and verdicts.

``summary`` objectives are the offline counterpart: threshold checks
(``metric <= target``) against a run's final flat metrics dict, used by
``python -m repro sdc --slo`` and by ``repro.exp`` campaign configs to
record per-run SLO verdicts in the runs ledger.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path

from repro.obs.config import Obs
from repro.obs.metrics import Histogram
from repro.obs.tracer import PID_SLO
from repro.system.metrics import table_to_text


class SloConfigError(ValueError):
    """A malformed SLO config (unknown keys, metrics, windows)."""


#: Instrument names the serve/chaos runtimes publish while running —
#: the universe an online objective may reference.  ``repro.obs.lint``
#: and config parsing both reject names outside it, so a typo'd metric
#: fails loudly instead of silently never burning.
KNOWN_ONLINE_METRICS = frozenset({
    "serve_frames_total",
    "serve_frame_latency_seconds",
    "serve_queue_wait_seconds",
    "serve_batch_size",
    "serve_batches_total",
    "serve_deadline_miss_total",
    "serve_shed_total",
    "serve_degraded_total",
    "serve_batch_failures_total",
    "watchdog_transitions_total",
    "sdc_outcomes_total",
    "sdc_soft_errors_total",
})

#: Burn rate reported when the observed rate is zero (a full outage
#: burns "infinitely" fast; the cap keeps the arithmetic finite).
BURN_CAP = 1e3

#: Alert states, in gauge-encoding order.
ALERT_STATES = ("OK", "WARN", "PAGE", "RESOLVED")

_REF_KEYS = frozenset({"metric", "labels", "above_s"})
_OBJECTIVE_KEYS = frozenset({
    "name", "kind", "description", "total", "bad", "target", "window_s",
    "fast_window_s", "warn_burn", "page_burn", "min_events", "on_page",
})
_SUMMARY_KEYS = frozenset({"name", "metric", "op", "target", "description"})
_CONFIG_KEYS = frozenset({"eval_interval_s", "objectives", "summary_objectives"})

_NAME_OK = "abcdefghijklmnopqrstuvwxyz0123456789_"


def _check_name(name, where: str) -> str:
    if not isinstance(name, str) or not name:
        raise SloConfigError(f"{where}: 'name' must be a non-empty string")
    if any(c not in _NAME_OK for c in name):
        raise SloConfigError(
            f"{where}: name {name!r} must be lowercase [a-z0-9_] "
            "(it becomes a metric label)"
        )
    return name


@dataclass(frozen=True)
class MetricRef:
    """One event stream: a registry instrument, optionally filtered.

    ``above_s`` turns a latency histogram into the stream of samples
    exceeding the threshold — the bad-event stream of a latency SLO.
    """

    metric: str
    labels: "tuple[tuple[str, str], ...]" = ()
    above_s: "float | None" = None


@dataclass(frozen=True)
class SloObjective:
    """One declarative online objective."""

    name: str
    kind: str  # "ratio" | "rate_min"
    total: MetricRef
    bad: "MetricRef | None"
    target: float
    window_s: float
    fast_window_s: float
    warn_burn: float = 1.0
    page_burn: float = 4.0
    min_events: int = 1
    on_page: str = "none"  # "none" | "widen"
    description: str = ""

    @property
    def error_budget(self) -> float:
        """Allowed bad fraction of a ratio objective."""
        return 1.0 - self.target


@dataclass(frozen=True)
class SummaryObjective:
    """One offline threshold check against a run's final metrics."""

    name: str
    metric: str
    op: str  # "<=" | ">="
    target: float
    description: str = ""


@dataclass(frozen=True)
class SloConfig:
    """A parsed SLO config: online objectives + summary checks."""

    objectives: "tuple[SloObjective, ...]" = ()
    summary_objectives: "tuple[SummaryObjective, ...]" = ()
    eval_interval_s: float = 0.05


@dataclass(frozen=True)
class SloVerdict:
    """One objective's end-of-run compliance verdict."""

    name: str
    kind: str
    target: float
    attained: "float | None"
    ok: bool
    pages: int
    warns: int
    final_state: str


# ----------------------------------------------------------------------
# Config parsing
# ----------------------------------------------------------------------
def _parse_ref(data, where: str) -> MetricRef:
    if not isinstance(data, dict):
        raise SloConfigError(f"{where}: metric ref must be a dict")
    unknown = sorted(set(data) - _REF_KEYS)
    if unknown:
        raise SloConfigError(
            f"{where}: unknown ref keys {unknown} (known: {sorted(_REF_KEYS)})"
        )
    metric = data.get("metric")
    if not isinstance(metric, str) or not metric:
        raise SloConfigError(f"{where}: 'metric' must be a non-empty string")
    if metric not in KNOWN_ONLINE_METRICS:
        raise SloConfigError(
            f"{where}: unknown metric {metric!r} "
            f"(known online instruments: {sorted(KNOWN_ONLINE_METRICS)})"
        )
    labels = data.get("labels", {})
    if not isinstance(labels, dict):
        raise SloConfigError(f"{where}: 'labels' must be a dict")
    above = data.get("above_s")
    if above is not None:
        above = float(above)
        if above <= 0:
            raise SloConfigError(f"{where}: 'above_s' must be positive")
    return MetricRef(
        metric=metric,
        labels=tuple(sorted((str(k), str(v)) for k, v in labels.items())),
        above_s=above,
    )


def _parse_objective(data, index: int) -> SloObjective:
    where = f"objectives[{index}]"
    if not isinstance(data, dict):
        raise SloConfigError(f"{where}: must be a dict")
    unknown = sorted(set(data) - _OBJECTIVE_KEYS)
    if unknown:
        raise SloConfigError(
            f"{where}: unknown keys {unknown} (known: {sorted(_OBJECTIVE_KEYS)})"
        )
    name = _check_name(data.get("name"), where)
    kind = data.get("kind")
    if kind not in ("ratio", "rate_min"):
        raise SloConfigError(
            f"{where}: 'kind' must be 'ratio' or 'rate_min', got {kind!r}"
        )
    if "total" not in data or "target" not in data or "window_s" not in data:
        raise SloConfigError(
            f"{where}: 'total', 'target', and 'window_s' are required"
        )
    total = _parse_ref(data["total"], f"{where}.total")
    bad = None
    if kind == "ratio":
        if "bad" not in data:
            raise SloConfigError(f"{where}: ratio objectives need a 'bad' ref")
        bad = _parse_ref(data["bad"], f"{where}.bad")
    elif "bad" in data:
        raise SloConfigError(f"{where}: rate_min objectives take no 'bad' ref")
    target = float(data["target"])
    if kind == "ratio" and not 0.0 < target < 1.0:
        raise SloConfigError(
            f"{where}: ratio target must be in (0, 1), got {target}"
        )
    if kind == "rate_min" and target <= 0:
        raise SloConfigError(f"{where}: rate_min target must be positive")
    window = float(data["window_s"])
    fast = float(data.get("fast_window_s", window / 4.0))
    if window <= 0 or fast <= 0:
        raise SloConfigError(f"{where}: windows must be positive")
    if fast >= window:
        raise SloConfigError(
            f"{where}: fast_window_s ({fast}) must be shorter than "
            f"window_s ({window})"
        )
    warn = float(data.get("warn_burn", 1.0))
    page = float(data.get("page_burn", 4.0))
    if not 0 < warn <= page:
        raise SloConfigError(
            f"{where}: need 0 < warn_burn <= page_burn, got {warn}, {page}"
        )
    min_events = int(data.get("min_events", 1))
    if min_events < 1:
        raise SloConfigError(f"{where}: min_events must be >= 1")
    on_page = data.get("on_page", "none")
    if on_page not in ("none", "widen"):
        raise SloConfigError(
            f"{where}: on_page must be 'none' or 'widen', got {on_page!r}"
        )
    return SloObjective(
        name=name, kind=kind, total=total, bad=bad, target=target,
        window_s=window, fast_window_s=fast, warn_burn=warn, page_burn=page,
        min_events=min_events, on_page=on_page,
        description=str(data.get("description", "")),
    )


def _parse_summary(data, index: int) -> SummaryObjective:
    where = f"summary_objectives[{index}]"
    if not isinstance(data, dict):
        raise SloConfigError(f"{where}: must be a dict")
    unknown = sorted(set(data) - _SUMMARY_KEYS)
    if unknown:
        raise SloConfigError(
            f"{where}: unknown keys {unknown} (known: {sorted(_SUMMARY_KEYS)})"
        )
    name = _check_name(data.get("name"), where)
    metric = data.get("metric")
    if not isinstance(metric, str) or not metric:
        raise SloConfigError(f"{where}: 'metric' must be a non-empty string")
    op = data.get("op")
    if op not in ("<=", ">="):
        raise SloConfigError(f"{where}: 'op' must be '<=' or '>=', got {op!r}")
    if "target" not in data:
        raise SloConfigError(f"{where}: 'target' is required")
    return SummaryObjective(
        name=name, metric=metric, op=op, target=float(data["target"]),
        description=str(data.get("description", "")),
    )


def parse_slo_config(data) -> SloConfig:
    """Validate a config dict -> :class:`SloConfig` (raises on nonsense)."""
    if not isinstance(data, dict):
        raise SloConfigError("SLO config must be a dict")
    unknown = sorted(set(data) - _CONFIG_KEYS)
    if unknown:
        raise SloConfigError(
            f"unknown config keys {unknown} (known: {sorted(_CONFIG_KEYS)})"
        )
    interval = float(data.get("eval_interval_s", 0.05))
    if interval <= 0:
        raise SloConfigError("eval_interval_s must be positive")
    raw_online = data.get("objectives", [])
    raw_summary = data.get("summary_objectives", [])
    if not isinstance(raw_online, list) or not isinstance(raw_summary, list):
        raise SloConfigError("'objectives'/'summary_objectives' must be lists")
    objectives = tuple(_parse_objective(o, i) for i, o in enumerate(raw_online))
    summary = tuple(_parse_summary(o, i) for i, o in enumerate(raw_summary))
    if not objectives and not summary:
        raise SloConfigError("config declares no objectives at all")
    names = [o.name for o in objectives] + [o.name for o in summary]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise SloConfigError(f"duplicate objective names: {dupes}")
    return SloConfig(
        objectives=objectives, summary_objectives=summary,
        eval_interval_s=interval,
    )


def load_slo_config(path: "str | Path") -> SloConfig:
    """Read and validate an ``*.slo.json`` file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as err:
        raise SloConfigError(f"{path}: unreadable ({err})") from err
    except json.JSONDecodeError as err:
        raise SloConfigError(f"{path}: invalid JSON ({err})") from err
    return parse_slo_config(data)


def default_slo_config(deadline_s: float) -> SloConfig:
    """The built-in objective set (``--slo default``): 95% of frames
    inside the run's own deadline, paging into the widening path."""
    latency = MetricRef(metric="serve_frame_latency_seconds")
    return SloConfig(objectives=(
        SloObjective(
            name="frame_p95_latency",
            kind="ratio",
            total=latency,
            bad=MetricRef(
                metric="serve_frame_latency_seconds", above_s=float(deadline_s)
            ),
            target=0.95,
            window_s=0.5,
            fast_window_s=0.125,
            warn_burn=1.0,
            page_burn=4.0,
            min_events=10,
            on_page="widen",
            description="95% of frames complete inside the deadline",
        ),
    ))


def resolve_slo_config(spec: str, deadline_s: float) -> SloConfig:
    """CLI ``--slo`` value -> config: ``default`` or a file path."""
    if spec == "default":
        return default_slo_config(deadline_s)
    return load_slo_config(spec)


# ----------------------------------------------------------------------
# Online engine
# ----------------------------------------------------------------------
class _ObjectiveState:
    """Mutable per-objective evaluation state."""

    __slots__ = (
        "objective", "tid", "state", "pages", "warns",
        "snap_t", "snap_total", "snap_bad", "cursors",
    )

    def __init__(self, objective: SloObjective, tid: int, start_s: float):
        self.objective = objective
        self.tid = tid
        self.state = "OK"
        self.pages = 0
        self.warns = 0
        # Cumulative-count snapshots at eval boundaries; the implicit
        # origin snapshot anchors windows wider than the run so far.
        self.snap_t: list[float] = [start_s]
        self.snap_total: list[float] = [0.0]
        self.snap_bad: list[float] = [0.0]
        # Per-ref (index, count) cursors for threshold-filtered
        # histogram streams — each sample is scanned exactly once.
        self.cursors: dict[str, tuple[int, int]] = {}


class SloEngine:
    """Evaluates a :class:`SloConfig` online against an Obs bundle.

    The owning runtime calls :meth:`maybe_evaluate` after each event
    (with the sim clock) and :meth:`finalize` once at end of run; the
    engine reads the registry, updates burn rates and alert states, and
    emits instants/gauges/counters.  ``on_page`` (settable) fires with
    ``(objective, now_s)`` whenever an objective enters PAGE.
    """

    def __init__(self, config: SloConfig, obs: Obs, start_s: float = 0.0):
        if not obs.enabled:
            raise ValueError(
                "SloEngine needs an enabled Obs bundle (live instruments)"
            )
        self.config = config
        self.obs = obs
        self.start_s = float(start_s)
        self.on_page = None
        self.history: list[dict] = []
        self._next_eval_s = self.start_s + config.eval_interval_s
        self._states = [
            _ObjectiveState(objective, tid, self.start_s)
            for tid, objective in enumerate(config.objectives)
        ]
        self._verdicts: "list[SloVerdict] | None" = None
        obs.tracer.declare_track(PID_SLO, "slo")
        for state in self._states:
            obs.tracer.declare_track(
                PID_SLO, "slo", tid=state.tid,
                thread_name=state.objective.name,
            )

    # ------------------------------------------------------------------
    # Reading event streams
    # ------------------------------------------------------------------
    def _read(self, ref: MetricRef, state: _ObjectiveState, role: str) -> float:
        """Cumulative event count of one stream, as of right now."""
        instrument = self.obs.metrics.get(ref.metric, **dict(ref.labels))
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            if ref.above_s is None:
                return float(instrument.count)
            cursor, above = state.cursors.get(role, (0, 0))
            samples = instrument._samples
            for value in samples[cursor:]:
                if value > ref.above_s:
                    above += 1
            state.cursors[role] = (len(samples), above)
            return float(above)
        return float(instrument.value)

    def _window_delta(
        self, state: _ObjectiveState, now_s: float, window_s: float
    ) -> "tuple[float, float, float]":
        """(elapsed, total_delta, bad_delta) over the trailing window."""
        # Latest snapshot at or before the window start; the origin
        # snapshot covers windows longer than the run so far.
        index = bisect_right(state.snap_t, now_s - window_s) - 1
        index = max(index, 0)
        elapsed = now_s - state.snap_t[index]
        total = state.snap_total[-1] - state.snap_total[index]
        bad = state.snap_bad[-1] - state.snap_bad[index]
        return elapsed, total, bad

    def _burn(
        self, state: _ObjectiveState, now_s: float, window_s: float
    ) -> "float | None":
        """Burn rate over one window; None when the signal is too thin."""
        objective = state.objective
        elapsed, total, bad = self._window_delta(state, now_s, window_s)
        if objective.kind == "ratio":
            if total < objective.min_events:
                return None
            return min((bad / total) / objective.error_budget, BURN_CAP)
        # rate_min: no rate exists until the fast window has elapsed.
        if elapsed < objective.fast_window_s:
            return None
        rate = total / elapsed
        if rate <= 0:
            return BURN_CAP
        return min(objective.target / rate, BURN_CAP)

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    @staticmethod
    def _next_state(state: str, page: bool, warn: bool) -> str:
        if page:
            return "PAGE"
        if state == "PAGE":
            # Budget burn dropped below warn on both windows: the page
            # resolves, then decays to OK via one quiet evaluation.
            return "PAGE" if warn else "RESOLVED"
        if state == "RESOLVED":
            return "WARN" if warn else "OK"
        return "WARN" if warn else "OK"

    def _transition(self, state: _ObjectiveState, now_s: float, to: str,
                    fast: float, slow: float) -> None:
        src = state.state
        objective = state.objective
        self.obs.tracer.instant(
            f"slo.{objective.name}.{src}->{to}", now_s, cat="slo",
            pid=PID_SLO, tid=state.tid,
            args={
                "from": src, "to": to,
                "burn_fast": fast, "burn_slow": slow,
            },
        )
        self.obs.metrics.counter(
            "slo_transitions_total",
            help="SLO alert state-machine transitions.",
            slo=objective.name, to=to,
        ).inc()
        state.state = to
        if to == "PAGE":
            state.pages += 1
            self.obs.metrics.counter(
                "slo_pages_total",
                help="PAGE alerts fired per objective.",
                slo=objective.name,
            ).inc()
            if self.on_page is not None:
                self.on_page(objective, now_s)
        elif to == "WARN":
            state.warns += 1

    def _evaluate_at(self, t: float) -> None:
        for state in self._states:
            objective = state.objective
            total = self._read(objective.total, state, "total")
            bad = (
                self._read(objective.bad, state, "bad")
                if objective.bad is not None else 0.0
            )
            state.snap_t.append(t)
            state.snap_total.append(total)
            state.snap_bad.append(bad)
            fast = self._burn(state, t, objective.fast_window_s)
            slow = self._burn(state, t, objective.window_s)
            if fast is None or slow is None:
                continue  # not enough signal: hold state, record nothing
            page = fast >= objective.page_burn and slow >= objective.page_burn
            warn = fast >= objective.warn_burn and slow >= objective.warn_burn
            to = self._next_state(state.state, page, warn)
            if to != state.state:
                self._transition(state, t, to, fast, slow)
            metrics = self.obs.metrics
            metrics.gauge(
                "slo_burn_rate", "Error-budget burn rate per window.",
                slo=objective.name, window="fast",
            ).set(fast)
            metrics.gauge(
                "slo_burn_rate", "Error-budget burn rate per window.",
                slo=objective.name, window="slow",
            ).set(slow)
            metrics.gauge(
                "slo_state",
                "Alert state (0=OK 1=WARN 2=PAGE 3=RESOLVED).",
                slo=objective.name,
            ).set(ALERT_STATES.index(state.state))
            self.history.append({
                "t": t, "slo": objective.name,
                "burn_fast": fast, "burn_slow": slow,
                "state": state.state, "total": total, "bad": bad,
            })

    def maybe_evaluate(self, now_s: float) -> None:
        """Run every evaluation boundary at or before ``now_s``.

        Called from the event loop with the sim clock; boundaries are
        fixed multiples of ``eval_interval_s``, so the evaluation times
        — and therefore the whole alert stream — are deterministic.
        """
        while self._next_eval_s <= now_s + 1e-12:
            self._evaluate_at(self._next_eval_s)
            self._next_eval_s += self.config.eval_interval_s

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def finalize(self, end_s: float) -> "list[SloVerdict]":
        """Close evaluation and compute compliance verdicts (idempotent)."""
        if self._verdicts is not None:
            return self._verdicts
        self.maybe_evaluate(end_s)
        verdicts = []
        for state in self._states:
            objective = state.objective
            total = self._read(objective.total, state, "total")
            bad = (
                self._read(objective.bad, state, "bad")
                if objective.bad is not None else 0.0
            )
            attained: "float | None" = None
            if objective.kind == "ratio":
                if total > 0:
                    attained = 1.0 - bad / total
                ok = attained is not None and attained >= objective.target
            else:
                elapsed = max(end_s - self.start_s, 1e-12)
                attained = total / elapsed
                ok = attained >= objective.target
            metrics = self.obs.metrics
            if attained is not None:
                metrics.gauge(
                    "slo_attainment",
                    "Achieved SLI over the whole run.",
                    slo=objective.name,
                ).set(attained)
            metrics.gauge(
                "slo_ok", "1 when the objective was met over the run.",
                slo=objective.name,
            ).set(1.0 if ok else 0.0)
            verdicts.append(SloVerdict(
                name=objective.name, kind=objective.kind,
                target=objective.target, attained=attained, ok=ok,
                pages=state.pages, warns=state.warns,
                final_state=state.state,
            ))
        self._verdicts = verdicts
        return verdicts

    @property
    def verdicts(self) -> "list[SloVerdict]":
        if self._verdicts is None:
            raise RuntimeError("finalize() has not run yet")
        return self._verdicts

    def verdict_metrics(self) -> dict:
        """Flat ``slo_*`` metrics for ledgers and reports."""
        metrics: dict = {}
        failed = 0
        for verdict in self.verdicts:
            metrics[f"slo_pass_{verdict.name}"] = 1.0 if verdict.ok else 0.0
            metrics[f"slo_pages_{verdict.name}"] = float(verdict.pages)
            if not verdict.ok:
                failed += 1
        metrics["slo_failed_total"] = float(failed)
        return metrics

    def format_verdicts(self) -> str:
        """Deterministic verdict table (printed after the fleet report)."""
        rows = []
        for verdict in self.verdicts:
            attained = "-" if verdict.attained is None else f"{verdict.attained:.6g}"
            rows.append([
                verdict.name, verdict.kind, f"{verdict.target:.6g}",
                attained, verdict.pages, verdict.warns,
                verdict.final_state, "PASS" if verdict.ok else "FAIL",
            ])
        return table_to_text(
            ["slo", "kind", "target", "attained", "pages", "warns",
             "state", "verdict"],
            rows, min_width=6,
        )

    def history_jsonl(self) -> str:
        """One canonical-JSON evaluation row per line (``slo.jsonl``)."""
        from repro.recover.codec import canonical_json

        return "".join(canonical_json(row) + "\n" for row in self.history)

    def verdicts_json(self) -> str:
        from repro.recover.codec import canonical_json

        return canonical_json([
            {
                "name": v.name, "kind": v.kind, "target": v.target,
                "attained": v.attained, "ok": v.ok, "pages": v.pages,
                "warns": v.warns, "final_state": v.final_state,
            }
            for v in self.verdicts
        ]) + "\n"


# ----------------------------------------------------------------------
# Summary (offline) objectives
# ----------------------------------------------------------------------
def parse_summary_slo(block) -> "tuple[SummaryObjective, ...]":
    """Parse a campaign-style block: ``{"objectives": [...]}`` with
    summary-objective entries only."""
    if not isinstance(block, dict):
        raise SloConfigError("campaign 'slo' must be a dict")
    unknown = sorted(set(block) - {"objectives"})
    if unknown:
        raise SloConfigError(
            f"campaign slo: unknown keys {unknown} (known: ['objectives'])"
        )
    raw = block.get("objectives")
    if not isinstance(raw, list) or not raw:
        raise SloConfigError(
            "campaign slo: 'objectives' must be a non-empty list"
        )
    objectives = tuple(_parse_summary(o, i) for i, o in enumerate(raw))
    names = [o.name for o in objectives]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise SloConfigError(f"duplicate objective names: {dupes}")
    return objectives


def evaluate_summary(
    objectives: "tuple[SummaryObjective, ...]", metrics: dict
) -> "list[dict]":
    """Check each objective against a flat metrics dict.

    A missing or non-numeric metric is a failed objective (``value``
    None), never a silent pass.
    """
    rows = []
    for objective in objectives:
        value = metrics.get(objective.metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            rows.append({
                "name": objective.name, "metric": objective.metric,
                "op": objective.op, "target": objective.target,
                "value": None, "ok": False,
            })
            continue
        value = float(value)
        ok = value <= objective.target if objective.op == "<=" \
            else value >= objective.target
        rows.append({
            "name": objective.name, "metric": objective.metric,
            "op": objective.op, "target": objective.target,
            "value": value, "ok": ok,
        })
    return rows


def summary_verdict_metrics(rows: "list[dict]") -> dict:
    """Flat ``slo_*`` verdict metrics from :func:`evaluate_summary`."""
    metrics: dict = {}
    failed = 0
    for row in rows:
        metrics[f"slo_pass_{row['name']}"] = 1.0 if row["ok"] else 0.0
        if not row["ok"]:
            failed += 1
    metrics["slo_failed_total"] = float(failed)
    return metrics


def format_summary_verdicts(rows: "list[dict]") -> str:
    table = [
        [
            row["name"], row["metric"], row["op"], f"{row['target']:.6g}",
            "-" if row["value"] is None else f"{row['value']:.6g}",
            "PASS" if row["ok"] else "FAIL",
        ]
        for row in rows
    ]
    return table_to_text(
        ["slo", "metric", "op", "target", "value", "verdict"],
        table, min_width=6,
    )
