"""Explicit metric-direction registry: what counts as a regression.

``exp compare`` marks the best run per metric and ``bench gate`` fails a
PR when a metric moves the wrong way — both need to agree on which way
is "wrong".  The original substring heuristic ("anything containing
``miss`` is a loss") mis-filed composite names, so directions are now
*declared*: an exact-name table covering every metric the runners and
benchmark suites emit, plus a handful of anchored family rules for
parameterized names (``fleet64_p95_ms``, ``abft_fit800_coverage``).

Unknown names get direction 0 — no best-marking, no gating.  ``wall_s``
is deliberately unlisted: wall clock is the one sanctioned
nondeterminism and must never gate a PR.
"""

from __future__ import annotations

import re

#: Exact metric name -> direction.  +1 higher is better, -1 lower is
#: better.  Grouped by the subsystem that emits the name.
_EXACT: "dict[str, int]" = {
    # FleetReport.summary() (serve / chaos / recover runners)
    "throughput_fps": +1,
    "predict_goodput_fps": +1,
    "goodput_fps": +1,
    "sequential_goodput_fps": +1,
    "p50_ms": -1,
    "p95_ms": -1,
    "p99_ms": -1,
    "miss_rate": -1,
    "shed_rate": -1,
    "degrade_rate": -1,
    "worker_utilization": +1,
    "mean_batch": +1,
    "mean_batch_size": +1,
    # FaultReport.summary() (prefixed faults_ by the runners): harm
    # absorbed by the recovery stack — less is better.  Raw injection
    # counts (drops, corruptions, upsets) describe the environment, not
    # the system under test, and stay unlisted.
    "faults_batch_failures": -1,
    "faults_frames_requeued": -1,
    "faults_retry_exhausted": -1,
    "faults_deadline_degraded": -1,
    "faults_occlusion_degraded": -1,
    "faults_breaker_opens": -1,
    "faults_watchdog_reuse": -1,
    "faults_watchdog_full_res": -1,
    "faults_sdc_escaped": -1,
    "faults_sdc_fallback_degraded": -1,
    "faults_widened_delta_theta_deg": -1,
    "faults_sdc_detected": +1,
    # SDC campaign aggregates and per-cell names
    "cycle_overhead": -1,
    "coverage": +1,
    "coverage_min": +1,
    "escaped_sdc": -1,
    "escaped_total": -1,
    "detected": +1,
    "p95_error_deg": -1,
    "mean_error_deg": -1,
    # Sharded fleet (FleetSection.summary(), fleet runner + bench suite)
    "failover_lost_frames": -1,
    "rehome_breaker_degraded": -1,
    # Lossy transport (NetSection.summary(), prefixed net_ by the fleet
    # summary; bare spellings cover the bench suite's window metrics).
    # Protocol work (retransmits, dedupes) and failure-mode counts are
    # costs; bounced sessions mean false suspicions recovered, so more
    # bounce-back after a partition is the healthy direction.
    "retransmits_total": -1,
    "frames_deduped_total": -1,
    "failover_detect_s": -1,
    "heal_bounce_sessions": +1,
    "exhausted_degraded": -1,
    "exhausted_lost": -1,
    "false_suspects": -1,
    "late_discards": -1,
    "dead_letters": -1,
    # Net bench window metrics (part<L>ms_ family)
    "retransmit_overhead": -1,
    "frames_lost": -1,
    "deduped": -1,
    "bounced": +1,
    "heal_s": -1,
    # Recovery probe
    "replayed_events": -1,
    "skipped_checkpoints": -1,
    "verified": +1,
    # SLO verdicts (repro.obs.slo)
    "slo_failed_total": -1,
}

#: Anchored family rules for parameterized names: strip the instance
#: prefix and look the base name up again.
_FAMILIES = (
    re.compile(r"^fleet\d+_(?P<rest>.+)$"),
    re.compile(r"^(?:unprotected|abft|guard)_fit[0-9.eE+-]+_(?P<rest>.+)$"),
    re.compile(r"^(?:unprotected|abft|guard)_(?P<rest>coverage_min|escaped_total|p95_error_deg)$"),
    # NetSection.summary() keys as prefixed by fleet_summary_metrics.
    re.compile(r"^net_(?P<rest>.+)$"),
    # Net bench windows: part50ms_retransmit_overhead, ...
    re.compile(r"^part\d+ms_(?P<rest>.+)$"),
)

#: Latency percentiles in milliseconds, any percentile spelling.
_PERCENTILE_MS = re.compile(r"^p\d+(?:_\d+)?_ms$")

#: Per-objective SLO pass verdicts recorded by campaign sweeps.
_SLO_PASS = re.compile(r"^slo_pass_[a-zA-Z0-9_]+$")


def metric_direction(name: str) -> int:
    """-1 lower is better, +1 higher is better, 0 unknown (not gated)."""
    direction = _EXACT.get(name)
    if direction is not None:
        return direction
    if _PERCENTILE_MS.match(name):
        return -1
    if _SLO_PASS.match(name):
        return +1
    for family in _FAMILIES:
        match = family.match(name)
        if match:
            return metric_direction(match.group("rest"))
    return 0


def lower_is_better(name: str) -> bool:
    return metric_direction(name) < 0


def higher_is_better(name: str) -> bool:
    return metric_direction(name) > 0
