"""Span-based tracer with two clock domains and a bounded ring buffer.

Every span lives on a *track*, identified Chrome-trace-style by a
``(pid, tid)`` pair: sessions are processes (one frame track each),
the worker pool is a process with one thread per worker, and the
accelerator / TFR stage models get processes of their own (see the
``PID_*`` constants).  Two clock domains coexist:

* ``sim`` — timestamps come from a simulation's own clock (the serving
  event loop, the accelerator cycle model, the TFR latency composition).
  Sim spans are recorded retroactively via :meth:`Tracer.record_span`
  with explicit start/duration, so two same-seed runs produce identical
  span streams (the obs-smoke CI job diffs them byte-for-byte).
* ``wall`` — timestamps come from ``time.perf_counter()`` relative to
  the tracer's creation, recorded via the :meth:`Tracer.span` context
  manager around real compute (POLOViT forwards, workload mapping).

The default tracer everywhere is :data:`NULL_TRACER`, whose every method
is a no-op — instrumentation stays in the code at zero configuration and
near-zero cost until an :class:`~repro.obs.config.ObsConfig` enables the
real one.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator

#: Clock-domain names stamped on every record.
SIM_CLOCK = "sim"
WALL_CLOCK = "wall"

#: Chrome-trace process ids of the fixed tracks.  Sessions map to
#: ``PID_SESSION_BASE + session_id`` so per-session frame streams render
#: as separate processes in Perfetto.
PID_WORKERS = 1
PID_BATCHER = 2
PID_ACCEL = 3
PID_TFR = 4
PID_WALL = 5
PID_RECOVER = 6
PID_RELIABILITY = 7
PID_SLO = 8
PID_FLEET = 9
PID_NET = 10
PID_SESSION_BASE = 100

#: Shard pid namespacing: shard ``k`` owns the pid block
#: ``[(k + 1) * SHARD_PID_STRIDE, (k + 2) * SHARD_PID_STRIDE)``.  Before
#: this, N shard runtimes sharing one tracer collided on the fixed pids
#: above (every shard's workers interleaved on pid 1); with the stride,
#: each shard's spans render as its own process group in Perfetto.
SHARD_PID_STRIDE = 1_000_000


def session_pid(session_id: int) -> int:
    """Track (process) id of one client session."""
    return PID_SESSION_BASE + session_id


def shard_pid(shard_id: int, pid: int) -> int:
    """Namespace a track pid into one shard's block."""
    if shard_id < 0:
        raise ValueError(f"shard_id must be non-negative, got {shard_id}")
    if not 0 <= pid < SHARD_PID_STRIDE:
        raise ValueError(
            f"pid {pid} outside the per-shard block [0, {SHARD_PID_STRIDE})"
        )
    return (shard_id + 1) * SHARD_PID_STRIDE + pid


@dataclass(slots=True)
class SpanRecord:
    """One completed span or instant event.

    ``ph`` follows the Chrome ``trace_event`` phase vocabulary: ``"X"``
    for complete spans, ``"i"`` for instant events (``dur_s == 0``).
    """

    name: str
    cat: str
    ts_s: float
    dur_s: float
    pid: int
    tid: int
    clock: str
    ph: str = "X"
    args: "dict | None" = None

    @property
    def end_s(self) -> float:
        return self.ts_s + self.dur_s

    def contains(self, other: "SpanRecord", tol: float = 1e-12) -> bool:
        """Temporal containment on the same track (the nesting relation
        Chrome's flame view infers from ts/dur)."""
        return (
            self.pid == other.pid
            and self.tid == other.tid
            and other.ts_s >= self.ts_s - tol
            and other.end_s <= self.end_s + tol
        )


class _NullSpan:
    """Reusable no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is a no-op.

    Shares the :class:`Tracer` surface so instrumented code never
    branches on configuration beyond the cheap ``enabled`` check.
    """

    enabled = False
    dropped = 0

    def record_span(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def span(self, *args, **kwargs) -> _NullSpan:
        return _NULL_SPAN

    def declare_track(self, *args, **kwargs) -> None:
        pass

    def spans(self) -> list[SpanRecord]:
        return []

    def slowest(self, k: int = 10, clock: "str | None" = None) -> list[SpanRecord]:
        return []

    @property
    def tracks(self) -> dict:
        return {}

    def __len__(self) -> int:
        return 0


class _WallSpan:
    """Context manager measuring one wall-clock span."""

    __slots__ = ("_tracer", "_name", "_cat", "_pid", "_tid", "_args", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, pid: int, tid: int, args):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._pid = pid
        self._tid = tid
        self._args = args
        self._t0 = 0.0

    def __enter__(self) -> "_WallSpan":
        self._t0 = self._tracer._wall_now()
        return self

    def __exit__(self, *exc) -> bool:
        t1 = self._tracer._wall_now()
        self._tracer.record_span(
            self._name,
            self._t0,
            t1 - self._t0,
            cat=self._cat,
            pid=self._pid,
            tid=self._tid,
            clock=WALL_CLOCK,
            args=self._args,
        )
        return False


@dataclass
class TrackInfo:
    """Display metadata of one (pid, tid) track."""

    process_name: str
    thread_names: dict[int, str] = field(default_factory=dict)


class Tracer:
    """In-memory span recorder with a fixed-capacity ring buffer.

    When the buffer is full the *oldest* spans are dropped (``dropped``
    counts them) — tracing a long run degrades to a tail window instead
    of growing without bound.
    """

    enabled = True

    def __init__(self, capacity: int = 1 << 16):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._spans: deque[SpanRecord] = deque(maxlen=capacity)
        self._tracks: dict[int, TrackInfo] = {}
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _wall_now(self) -> float:
        return time.perf_counter() - self._epoch

    def _append(self, record: SpanRecord) -> None:
        if len(self._spans) == self.capacity:
            self.dropped += 1
        self._spans.append(record)

    def record_span(
        self,
        name: str,
        ts_s: float,
        dur_s: float,
        *,
        cat: str = "sim",
        pid: int = 0,
        tid: int = 0,
        clock: str = SIM_CLOCK,
        args: "dict | None" = None,
    ) -> None:
        """Record one completed span with explicit timestamps."""
        if dur_s < 0:
            raise ValueError(f"span {name!r} has negative duration {dur_s}")
        self._append(SpanRecord(name, cat, ts_s, dur_s, pid, tid, clock, "X", args))

    def instant(
        self,
        name: str,
        ts_s: float,
        *,
        cat: str = "sim",
        pid: int = 0,
        tid: int = 0,
        clock: str = SIM_CLOCK,
        args: "dict | None" = None,
    ) -> None:
        """Record a zero-duration instant event (e.g. a state transition)."""
        self._append(SpanRecord(name, cat, ts_s, 0.0, pid, tid, clock, "i", args))

    def span(
        self,
        name: str,
        *,
        cat: str = "wall",
        pid: int = PID_WALL,
        tid: int = 0,
        args: "dict | None" = None,
    ) -> _WallSpan:
        """Context manager measuring a wall-clock span around real compute."""
        return _WallSpan(self, name, cat, pid, tid, args)

    # ------------------------------------------------------------------
    # Track metadata
    # ------------------------------------------------------------------
    def declare_track(
        self,
        pid: int,
        process_name: str,
        tid: int = 0,
        thread_name: "str | None" = None,
    ) -> None:
        """Name a (pid, tid) track for the trace viewers."""
        info = self._tracks.setdefault(pid, TrackInfo(process_name))
        info.process_name = process_name
        if thread_name is not None:
            info.thread_names[tid] = thread_name

    @property
    def tracks(self) -> dict[int, TrackInfo]:
        return self._tracks

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def spans(self) -> list[SpanRecord]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self._spans)

    def slowest(self, k: int = 10, clock: "str | None" = None) -> list[SpanRecord]:
        """The k longest spans (ties broken by start time then name, so
        the ranking is deterministic)."""
        pool = [
            s
            for s in self._spans
            if s.ph == "X" and (clock is None or s.clock == clock)
        ]
        pool.sort(key=lambda s: (-s.dur_s, s.ts_s, s.name, s.pid, s.tid))
        return pool[:k]


class ScopedTracer:
    """Shard-scoped view of a tracer: every pid lands in the shard's
    block and every process name gains a ``shardK.`` prefix.

    Multi-runtime processes (the sharded fleet) hand each shard one of
    these over the *same* underlying tracer, so N shards' spans coexist
    in one Perfetto trace as side-by-side process groups instead of
    interleaving on shared track ids.  Only the recording surface is
    scoped — reads (``spans()``, ``tracks``) and the ring buffer stay
    the shared tracer's.
    """

    enabled = True

    def __init__(self, tracer: "Tracer", shard_id: int):
        if shard_id < 0:
            raise ValueError(f"shard_id must be non-negative, got {shard_id}")
        self.tracer = tracer
        self.shard_id = shard_id

    def _pid(self, pid: int) -> int:
        return shard_pid(self.shard_id, pid)

    def record_span(self, name, ts_s, dur_s, *, pid: int = 0, **kwargs) -> None:
        self.tracer.record_span(name, ts_s, dur_s, pid=self._pid(pid), **kwargs)

    def instant(self, name, ts_s, *, pid: int = 0, **kwargs) -> None:
        self.tracer.instant(name, ts_s, pid=self._pid(pid), **kwargs)

    def span(self, name, *, pid: int = PID_WALL, **kwargs):
        return self.tracer.span(name, pid=self._pid(pid), **kwargs)

    def declare_track(
        self,
        pid: int,
        process_name: str,
        tid: int = 0,
        thread_name: "str | None" = None,
    ) -> None:
        self.tracer.declare_track(
            self._pid(pid),
            f"shard{self.shard_id}.{process_name}",
            tid=tid,
            thread_name=thread_name,
        )

    # Reads pass through to the shared tracer.
    def spans(self) -> list[SpanRecord]:
        return self.tracer.spans()

    def slowest(self, k: int = 10, clock: "str | None" = None) -> list[SpanRecord]:
        return self.tracer.slowest(k, clock)

    @property
    def tracks(self) -> dict:
        return self.tracer.tracks

    @property
    def dropped(self) -> int:
        return self.tracer.dropped

    def __len__(self) -> int:
        return len(self.tracer)


#: Shared no-op tracer (the default everywhere).
NULL_TRACER = NullTracer()
