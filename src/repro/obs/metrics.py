"""Metrics registry: counters, gauges, and histograms with exporters.

One :class:`MetricsRegistry` per run collects everything the runtimes
publish — frame counters by path, latency/queue-wait histograms, fault
counters, end-of-run gauges — and renders it two ways:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` headers, ``name{labels} value``
  samples, cumulative ``_bucket`` series for histograms);
* :meth:`MetricsRegistry.snapshot_table` — an aligned text table reusing
  :func:`repro.system.metrics.table_to_text`, the same renderer every
  benchmark report uses.

Histograms keep **both** representations: fixed cumulative buckets for
the Prometheus export and the raw sample list for *exact* percentiles
via :func:`repro.system.metrics.percentile_summary` (linear
interpolation) — bucket-quantile estimation error never leaks into the
P50/P95/P99 numbers the reports print.
"""

from __future__ import annotations

import re
from bisect import bisect_left

from repro.system.metrics import percentile_key, percentile_summary, table_to_text

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets for latencies in seconds (sub-ms to 100 ms —
#: the range the frame deadline lives in), plus +Inf implicitly.
DEFAULT_LATENCY_BUCKETS_S = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _format_value(value: float) -> str:
    """Prometheus sample values: integers render bare, floats as repr."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_str(labels: dict[str, str], extra: "dict[str, str] | None" = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(merged.items()))
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: dict[str, str], help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {n})")
        self.value += n


class Gauge:
    """Point-in-time value (set, not accumulated)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: dict[str, str], help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram that also keeps its raw samples.

    Buckets are cumulative upper bounds (Prometheus ``le`` semantics);
    percentiles are computed exactly from the stored samples.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "help", "buckets", "bucket_counts", "_samples", "sum")

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be non-empty and sorted, got {buckets}")
        self.name = name
        self.labels = labels
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self._samples: list[float] = []
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self._samples.append(float(value))
        self.sum += value

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def percentile(self, p: float) -> float:
        """Exact percentile of the observed samples (empty -> 0.0,
        matching :meth:`summary` so pre-traffic reads never raise)."""
        if not self._samples:
            return 0.0
        return percentile_summary(self._samples, (p,))[percentile_key(p)]

    def summary(self, ps: tuple[float, ...] = (50, 95, 99)) -> dict[str, float]:
        """Mean + exact percentiles (empty histogram -> zeros)."""
        if not self._samples:
            return {"mean": 0.0, **{percentile_key(p): 0.0 for p in ps}}
        return percentile_summary(self._samples, ps)


class MetricsRegistry:
    """Get-or-create home of every instrument in one run.

    Instruments are keyed by ``(name, sorted labels)``; asking twice
    returns the same object, asking with a different kind is an error —
    the registry is the single source of truth the exporters walk.
    """

    def __init__(self):
        self._instruments: dict[tuple, object] = {}

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        _check_name(name)
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        labels = {k: str(v) for k, v in labels.items()}
        key = (name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, labels, help, **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_S,
        **labels,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def instruments(self) -> list:
        """All instruments ordered by (name, labels) — deterministic."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def get(self, name: str, **labels) -> "Counter | Gauge | Histogram | None":
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        return self._instruments.get(key)

    def __len__(self) -> int:
        return len(self._instruments)

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for instrument in self.instruments():
            name = instrument.name
            if name not in seen_headers:
                seen_headers.add(name)
                if instrument.help:
                    lines.append(f"# HELP {name} {instrument.help}")
                lines.append(f"# TYPE {name} {instrument.kind}")
            labels = instrument.labels
            if isinstance(instrument, Histogram):
                cumulative = 0
                for bound, count in zip(instrument.buckets, instrument.bucket_counts):
                    cumulative += count
                    le = _label_str(labels, {"le": f"{bound:g}"})
                    lines.append(f"{name}_bucket{le} {cumulative}")
                cumulative += instrument.bucket_counts[-1]
                le = _label_str(labels, {"le": "+Inf"})
                lines.append(f"{name}_bucket{le} {cumulative}")
                lines.append(
                    f"{name}_sum{_label_str(labels)} {_format_value(instrument.sum)}"
                )
                lines.append(f"{name}_count{_label_str(labels)} {instrument.count}")
            else:
                lines.append(
                    f"{name}{_label_str(labels)} {_format_value(instrument.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot_table(self) -> str:
        """Aligned-table snapshot (benchmark-report style)."""
        headers = ["Metric", "Type", "Value/Count", "p50", "p95", "p99"]
        rows = []
        for instrument in self.instruments():
            label = instrument.name + _label_str(instrument.labels)
            if isinstance(instrument, Histogram):
                s = instrument.summary((50, 95, 99))
                rows.append(
                    [
                        label,
                        instrument.kind,
                        instrument.count,
                        f"{s['p50']:.6g}",
                        f"{s['p95']:.6g}",
                        f"{s['p99']:.6g}",
                    ]
                )
            else:
                rows.append(
                    [label, instrument.kind, _format_value(instrument.value), "-", "-", "-"]
                )
        return table_to_text(headers, rows, min_width=4)
