"""Schema validation for obs artifacts: ``python -m repro.obs.lint``.

Validates an emitted ``trace.json`` against the Chrome ``trace_event``
schema subset we produce (M/X/i phases, microsecond ts/dur, integer
pid/tid) and lints a ``metrics.prom`` file line-by-line against the
Prometheus text exposition grammar.  The obs-smoke CI job runs this on
every push; exit status is non-zero on the first violation.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

_PROM_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_PROM_LABELS = r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
_PROM_VALUE = r"[-+]?(\d+(\.\d+)?([eE][-+]?\d+)?|Inf|NaN)"
PROM_SAMPLE_RE = re.compile(rf"^{_PROM_NAME}{_PROM_LABELS} {_PROM_VALUE}$")
PROM_HELP_RE = re.compile(rf"^# HELP {_PROM_NAME} .+$")
PROM_TYPE_RE = re.compile(rf"^# TYPE {_PROM_NAME} (counter|gauge|histogram|summary)$")


def validate_trace(path: "str | Path") -> list[str]:
    """Violations found in a Chrome trace_event JSON file (empty = ok)."""
    errors: list[str] = []
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        return [f"{path}: unreadable trace ({err})"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: traceEvents must be a list"]
    for i, event in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(event.get("name"), str) or not event["name"]:
            errors.append(f"{where}: missing name")
        if ph not in ("M", "X", "i"):
            errors.append(f"{where}: unsupported phase {ph!r}")
            continue
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            errors.append(f"{where}: pid/tid must be integers")
        if ph == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                errors.append(f"{where}: unknown metadata event {event.get('name')!r}")
            elif not isinstance(event.get("args", {}).get("name"), str):
                errors.append(f"{where}: metadata event missing args.name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: ts must be a non-negative number, got {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: dur must be a non-negative number, got {dur!r}")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant scope must be t/p/g, got {event.get('s')!r}")
    return errors


def lint_prometheus(path: "str | Path") -> list[str]:
    """Grammar violations in a Prometheus text-format file (empty = ok)."""
    errors: list[str] = []
    try:
        text = Path(path).read_text()
    except OSError as err:
        return [f"{path}: unreadable ({err})"]
    if not text.strip():
        return [f"{path}: no metrics emitted"]
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            if not (PROM_HELP_RE.match(line) or PROM_TYPE_RE.match(line)):
                errors.append(f"{path}:{lineno}: malformed comment {line!r}")
        elif not PROM_SAMPLE_RE.match(line):
            errors.append(f"{path}:{lineno}: malformed sample {line!r}")
    return errors


def lint_slo(path: "str | Path") -> list[str]:
    """SLO config violations (empty = ok): full strict parse via
    :func:`repro.obs.slo.load_slo_config` — unknown metric names,
    malformed windows, bad thresholds, duplicate objective names."""
    from repro.obs.slo import SloConfigError, load_slo_config

    try:
        load_slo_config(path)
    except SloConfigError as err:
        return [f"{path}: {err}"]
    return []


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.obs.lint "
              "TRACE.json [METRICS.prom ...] [CONF.slo.json ...]")
        return 2
    errors: list[str] = []
    for path in argv:
        if path.endswith(".slo.json"):
            errors.extend(lint_slo(path))
        elif path.endswith(".prom"):
            errors.extend(lint_prometheus(path))
        else:
            errors.extend(validate_trace(path))
    for error in errors:
        print(error)
    if not errors:
        print(f"ok: {len(argv)} file(s) validated")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
