"""``python -m repro trace`` — run a traced workload and export artifacts.

Runs a fleet-serving simulation (optionally the chaos scenario) with
observability enabled, plus one exemplar per-path accelerator stage
trace and one TFR frame layout, then writes:

* ``trace.json``  — Chrome ``trace_event`` JSON; load it in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.
* ``trace.jsonl`` — one span per line for grep/jq.
* ``metrics.prom`` — the metrics registry in Prometheus text format.

and prints the top-K slowest spans.  Every span in this run is
sim-clock (the CLI never installs the global wall tracer), so the
artifacts are byte-identical across runs of the same flags — the
obs-smoke CI job diffs two runs to prove it.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.obs.config import Obs, ObsConfig
from repro.obs.export import slowest_spans_table, write_chrome_trace, write_jsonl


def add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """``--obs`` flags shared by the serve / chaos CLIs."""
    group = parser.add_argument_group("observability")
    group.add_argument("--obs", action="store_true",
                       help="enable tracing + metrics for this run")
    group.add_argument("--obs-out", type=Path, default=None,
                       metavar="DIR",
                       help="directory for trace.json / trace.jsonl / "
                       "metrics.prom (with --obs); defaults to "
                       "obs-out/<kind>-<config-hash> so runs that differ "
                       "in any knob (seed included) never share artifacts")
    group.add_argument("--obs-top", type=int, default=10, metavar="K",
                       help="print the K slowest spans (with --obs)")


def obs_from_args(args: argparse.Namespace) -> "Obs | None":
    return Obs(ObsConfig(top_k=args.obs_top)) if args.obs else None


def add_slo_arguments(parser: argparse.ArgumentParser) -> None:
    """``--slo`` flag shared by the serve / chaos / sdc CLIs."""
    group = parser.add_argument_group("slo")
    group.add_argument("--slo", default=None, metavar="CONFIG",
                       help="evaluate SLOs for this run: 'default' for the "
                       "built-in latency objective or a *.slo.json file "
                       "(see repro.obs.slo)")


def emit_slo_artifacts(engine, out_dir: Path) -> None:
    """Write the SLO evaluation history + verdicts next to the trace."""
    out_dir.mkdir(parents=True, exist_ok=True)
    history_path = out_dir / "slo.jsonl"
    history_path.write_text(engine.history_jsonl())
    verdict_path = out_dir / "slo_verdicts.json"
    verdict_path.write_text(engine.verdicts_json())
    print(f"wrote {history_path}")
    print(f"wrote {verdict_path}")


def resolve_obs_out(out: "Path | None", kind: str, resolved_config: dict) -> Path:
    """The artifact directory for one observed run.

    An explicit ``--obs-out`` wins; otherwise the directory is
    namespaced by the run's canonical config hash, so campaign fan-outs
    (e.g. seeds 0..N of one sweep) cannot clobber each other's
    ``trace.json`` / ``metrics.prom``.
    """
    if out is not None:
        return out
    from repro.recover.codec import config_hash

    return Path("obs-out") / f"{kind}-{config_hash(resolved_config)}"


def emit_obs_artifacts(obs: Obs, out_dir: Path, top_k: int = 10) -> None:
    """Write the three artifacts and print the slowest-spans table."""
    out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = write_chrome_trace(obs.tracer, out_dir / "trace.json")
    jsonl_path = write_jsonl(obs.tracer, out_dir / "trace.jsonl")
    prom_path = out_dir / "metrics.prom"
    prom_path.write_text(obs.metrics.to_prometheus())
    n_spans = len(obs.tracer.spans())
    print(f"\n--- obs: {n_spans} spans "
          f"({obs.tracer.dropped} dropped at ring capacity) ---")
    print(f"wrote {trace_path}  (Perfetto / chrome://tracing)")
    print(f"wrote {jsonl_path}")
    print(f"wrote {prom_path}")
    print(f"\nTop {top_k} slowest spans:")
    print(slowest_spans_table(obs.tracer, k=top_k))


def _trace_accelerator_and_tfr(obs: Obs) -> None:
    """One exemplar per-path accelerator stage trace + TFR frame layout.

    Purely analytic (paper-scale workloads, no training), so the spans
    are deterministic; they showcase the accel/tfr span taxonomy on
    their own tracks alongside the serving trace.
    """
    from repro.core import GazeViTConfig, SaccadeDetector
    from repro.experiments.profiles import (
        PAPER_FRAME_SHAPE,
        PAPER_MAP_SHAPE,
        PAPER_POOL_M,
        pruned_vit_workload,
    )
    from repro.hw import PoloAcceleratorModel, polo_accelerator
    from repro.obs import PID_ACCEL, PID_TFR
    from repro.render.scene import RES_1080P, scene_by_name
    from repro.system import Schedule, TfrSystem, TrackerSystemProfile

    tracer = obs.tracer
    tracer.declare_track(PID_ACCEL, "accelerator", thread_name="stages")
    tracer.declare_track(PID_ACCEL, "accelerator", tid=1, thread_name="vit-engines")
    tracer.declare_track(PID_TFR, "tfr", thread_name="chain")
    tracer.declare_track(PID_TFR, "tfr", tid=1, thread_name="render")

    detector = SaccadeDetector(PAPER_MAP_SHAPE)
    saccade_ops = detector.workload(PAPER_MAP_SHAPE)
    vit_ops = pruned_vit_workload(GazeViTConfig.paper(), 0.2)
    model = PoloAcceleratorModel(
        polo_accelerator(), frame_shape=PAPER_FRAME_SHAPE, pool_m=PAPER_POOL_M
    )
    # Lay the three paths out back-to-back on the accelerator track.
    t = 0.0
    reports = {}
    for path in ("saccade", "reuse", "predict"):
        report = model.path_report(
            path,
            saccade_ops,
            vit_ops if path == "predict" else None,
            tracer=tracer,
            t0_s=t,
        )
        reports[path] = report
        t += report.latency_s

    profile = TrackerSystemProfile(
        name="POLO",
        td_predict_s=reports["predict"].latency_s,
        delta_theta_deg=1.15,
        td_saccade_s=reports["saccade"].latency_s,
        td_reuse_s=reports["reuse"].latency_s,
    )
    tfr = TfrSystem()
    scene = scene_by_name("D")
    t = 0.0
    for path in ("saccade", "reuse", "predict"):
        latency = tfr.frame_latency(
            profile, scene, RES_1080P, path, Schedule.PARALLEL,
            tracer=tracer, t0_s=t,
        )
        t += latency.total_s


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run a traced serving simulation and export "
        "trace.json / trace.jsonl / metrics.prom.",
    )
    parser.add_argument("--frames", type=int, default=200,
                        help="frames per session (duration = frames / fps)")
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--chaos", action="store_true",
                        help="trace the fault-injection scenario instead of "
                        "the clean serving loop")
    parser.add_argument("--out", type=Path, default=Path("obs-out"),
                        metavar="DIR")
    parser.add_argument("--top", type=int, default=10, metavar="K",
                        help="print the K slowest spans")
    parser.add_argument("--no-hw", action="store_true",
                        help="skip the exemplar accelerator/TFR stage traces")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    obs = Obs(ObsConfig(top_k=args.top))
    try:
        if args.chaos:
            from dataclasses import replace

            from repro.faults.config import default_chaos_scenario
            from repro.faults.runtime import run_chaos

            base = default_chaos_scenario(seed=args.seed)
            duration = args.frames / base.serve.fps
            chaos = replace(
                base,
                serve=replace(
                    base.serve,
                    n_sessions=args.sessions,
                    n_workers=args.workers,
                    duration_s=duration,
                ),
                fault_seed=args.seed,
            )
            report = run_chaos(chaos, obs=obs)
        else:
            from repro.serve.config import ServeConfig
            from repro.serve.runtime import serve_fleet

            defaults = ServeConfig()
            config = ServeConfig(
                n_sessions=args.sessions,
                n_workers=args.workers,
                duration_s=args.frames / defaults.fps,
                seed=args.seed,
            )
            report = serve_fleet(config, obs=obs)
        if not args.no_hw:
            _trace_accelerator_and_tfr(obs)
    except ValueError as err:
        parser.error(str(err))
    summary = report.summary()
    print(
        f"traced {args.sessions} sessions x {args.frames} frames "
        f"({'chaos' if args.chaos else 'serve'}): "
        f"goodput {summary['predict_goodput_fps']:.0f} fresh predictions/s, "
        f"p95 {summary['p95_ms']:.2f} ms"
    )
    emit_obs_artifacts(obs, args.out, top_k=args.top)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
