"""Observability: structured tracing, metrics, and per-stage profiling.

Zero-dependency subsystem threaded through the serving + accelerator
stack.  Three pieces:

* **Tracer** (:mod:`repro.obs.tracer`) — hierarchical spans (session ->
  frame -> stage) in two clock domains: deterministic sim-time spans
  from the event loops / hardware models, wall-time spans from real
  compute.  The default is a no-op tracer; :class:`ObsConfig` enables
  the real ring-buffer one.
* **Metrics** (:mod:`repro.obs.metrics`) — a counters/gauges/histograms
  registry with exact percentiles, a Prometheus text exporter, and an
  aligned-table snapshot.
* **Profiling hooks** (:mod:`repro.obs.profile`) — the ``@profiled``
  decorator and the global tracer that library hot paths record into.

``python -m repro trace`` runs a traced fleet and writes ``trace.json``
(Perfetto / chrome://tracing), ``trace.jsonl``, and ``metrics.prom``.
"""

from repro.obs.config import NULL_OBS, Obs, ObsConfig
from repro.obs.export import (
    chrome_trace,
    slowest_spans_table,
    spans_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import get_global_tracer, profiled, set_global_tracer
from repro.obs.tracer import (
    NULL_TRACER,
    PID_ACCEL,
    PID_BATCHER,
    PID_FLEET,
    PID_NET,
    PID_RECOVER,
    PID_RELIABILITY,
    PID_SESSION_BASE,
    PID_SLO,
    PID_TFR,
    PID_WALL,
    PID_WORKERS,
    SHARD_PID_STRIDE,
    SIM_CLOCK,
    WALL_CLOCK,
    NullTracer,
    ScopedTracer,
    SpanRecord,
    Tracer,
    session_pid,
    shard_pid,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_TRACER",
    "NullTracer",
    "Obs",
    "ObsConfig",
    "PID_ACCEL",
    "PID_BATCHER",
    "PID_FLEET",
    "PID_NET",
    "PID_RECOVER",
    "PID_RELIABILITY",
    "PID_SESSION_BASE",
    "PID_SLO",
    "PID_TFR",
    "PID_WALL",
    "PID_WORKERS",
    "SHARD_PID_STRIDE",
    "SIM_CLOCK",
    "ScopedTracer",
    "SpanRecord",
    "Tracer",
    "WALL_CLOCK",
    "chrome_trace",
    "get_global_tracer",
    "profiled",
    "session_pid",
    "shard_pid",
    "set_global_tracer",
    "slowest_spans_table",
    "spans_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
