"""Trace exporters: Chrome ``trace_event`` JSON, JSONL, and text tables.

The Chrome format (the JSON Array/Object format consumed by Perfetto and
``chrome://tracing``) maps our records directly: complete spans become
``"ph": "X"`` events with microsecond ``ts``/``dur``, instants become
``"ph": "i"`` with thread scope, and track names are emitted as ``"M"``
metadata events.  Sim-clock and wall-clock spans land on disjoint
``pid`` ranges so the two time bases never interleave on one track.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.tracer import NullTracer, SpanRecord, Tracer
from repro.system.metrics import table_to_text


def _event(span: SpanRecord) -> dict:
    event = {
        "name": span.name,
        "cat": f"{span.cat},{span.clock}",
        "ph": span.ph,
        "ts": span.ts_s * 1e6,  # trace_event timestamps are microseconds
        "pid": span.pid,
        "tid": span.tid,
    }
    if span.ph == "X":
        event["dur"] = span.dur_s * 1e6
    else:  # instant: thread-scoped
        event["s"] = "t"
    if span.args:
        event["args"] = dict(span.args)
    return event


def chrome_trace(tracer: "Tracer | NullTracer") -> dict:
    """The full trace as a Chrome trace_event JSON object."""
    events: list[dict] = []
    for pid, info in sorted(tracer.tracks.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": info.process_name},
            }
        )
        for tid, thread_name in sorted(info.thread_names.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread_name},
                }
            )
    events.extend(_event(span) for span in tracer.spans())
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"dropped_spans": tracer.dropped},
    }


def write_chrome_trace(tracer: "Tracer | NullTracer", path: "str | Path") -> Path:
    """Serialize the Chrome trace deterministically (sorted keys)."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer), sort_keys=True) + "\n")
    return path


def spans_jsonl(tracer: "Tracer | NullTracer") -> str:
    """One JSON object per line — the grep/jq-friendly raw export."""
    lines = []
    for span in tracer.spans():
        lines.append(
            json.dumps(
                {
                    "name": span.name,
                    "cat": span.cat,
                    "clock": span.clock,
                    "ph": span.ph,
                    "ts_s": span.ts_s,
                    "dur_s": span.dur_s,
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": span.args or {},
                },
                sort_keys=True,
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(tracer: "Tracer | NullTracer", path: "str | Path") -> Path:
    path = Path(path)
    path.write_text(spans_jsonl(tracer))
    return path


def slowest_spans_table(
    tracer: "Tracer | NullTracer", k: int = 10, clock: "str | None" = None
) -> str:
    """Top-k slowest spans as an aligned text table."""
    rows = []
    for span in tracer.slowest(k, clock=clock):
        rows.append(
            [
                span.name,
                span.cat,
                span.clock,
                f"{span.ts_s * 1e3:.3f}",
                f"{span.dur_s * 1e3:.3f}",
                f"{span.pid}/{span.tid}",
            ]
        )
    return table_to_text(
        ["Span", "Cat", "Clock", "Start(ms)", "Dur(ms)", "Track"], rows, min_width=6
    )
