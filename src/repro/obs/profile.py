"""Profiling hooks: the ``@profiled`` decorator and the global tracer.

Library hot paths (POLOViT batch inference, the workload mapper, the
POLONet per-frame pipeline) are instrumented against a *module-global*
tracer so they need no plumbing through every call signature.  The
global tracer is the no-op :data:`~repro.obs.tracer.NULL_TRACER` until
something (a CLI ``--obs`` flag, a test, an experiment harness) installs
a real one via :func:`set_global_tracer` — the decorator's fast path is
one attribute check.
"""

from __future__ import annotations

import functools

from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

_global_tracer: "Tracer | NullTracer" = NULL_TRACER


def set_global_tracer(tracer: "Tracer | NullTracer | None") -> None:
    """Install the process-wide tracer (None restores the no-op one)."""
    global _global_tracer
    _global_tracer = tracer if tracer is not None else NULL_TRACER


def get_global_tracer() -> "Tracer | NullTracer":
    return _global_tracer


def profiled(fn=None, *, name: "str | None" = None, cat: str = "wall"):
    """Record a wall-clock span around every call of ``fn``.

    Usable bare (``@profiled``) or parameterized
    (``@profiled(name="PoloViT.predict")``).  With the default no-op
    global tracer the wrapper short-circuits to the original call.
    """

    def decorate(func):
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            tracer = _global_tracer
            if not tracer.enabled:
                return func(*args, **kwargs)
            with tracer.span(span_name, cat=cat):
                return func(*args, **kwargs)

        wrapper.__profiled_name__ = span_name
        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate
