"""Checkpointed execution, warm restart, and deterministic replay.

:func:`run_with_checkpoints` drives a runtime's ``start/step/finish``
loop with durability folded in: every event is journaled *before* it is
applied (write-ahead), the full serving state is checkpointed atomically
every ``every`` events, and an optional
:class:`~repro.faults.injectors.ProcessKill` injector terminates the
process at an exact event index — the crash-recovery chaos mode.

:func:`restore_runtime` is the other half of the contract: rebuild the
runtime from the latest *valid* checkpoint (falling back past corrupt
ones), replay the journal tail by re-executing the deterministic event
loop while cross-checking every regenerated event against its journal
record, and hand back a runtime whose continuation is bit-identical to
the uninterrupted run.  :func:`resume` composes both: restore, then run
to completion with checkpointing re-armed.

Recovery telemetry flows through ``repro.obs``: checkpoint/journal/
restore counters in the metrics registry and sim-clock ``checkpoint`` /
``restore`` instants on the ``recover`` trace track.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.faults.injectors import ProcessKill, SimulatedCrash
from repro.faults.runtime import ChaosRuntime
from repro.obs import Obs, PID_RECOVER
from repro.recover.checkpoint import Checkpoint, CheckpointStore
from repro.recover.configio import (
    chaos_config_from_dict,
    chaos_config_to_dict,
    fleet_config_from_dict,
    fleet_config_to_dict,
    serve_config_from_dict,
    serve_config_to_dict,
    service_model_from_dict,
    service_model_to_dict,
)
from repro.recover.errors import RecoveryError
from repro.recover.journal import JOURNAL_NAME, JournalWriter, read_journal
from repro.serve.config import BatchServiceModel
from repro.serve.runtime import InferenceFn, ServeRuntime
from repro.serve.telemetry import FleetReport

#: Default checkpoint cadence (events between snapshots).
DEFAULT_CHECKPOINT_EVERY = 1000


@dataclass(frozen=True)
class RestoredRuntime:
    """What :func:`restore_runtime` hands back."""

    runtime: ServeRuntime
    checkpoint: Checkpoint
    replayed_events: int
    skipped_checkpoints: list[tuple[int, str]]


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class _RecoverInstruments:
    """Pre-resolved recovery counters (only built when obs is enabled)."""

    def __init__(self, obs: Obs):
        self.obs = obs
        metrics = obs.metrics
        self.checkpoints = metrics.counter(
            "recover_checkpoints_written_total", "Checkpoints persisted"
        )
        self.checkpoint_bytes = metrics.gauge(
            "recover_last_checkpoint_bytes", "Payload size of the last checkpoint"
        )
        self.journal_records = metrics.counter(
            "recover_journal_records_total", "Write-ahead journal records appended"
        )
        self.restores = metrics.counter(
            "recover_restores_total", "Warm restarts from a checkpoint"
        )
        self.replayed = metrics.counter(
            "recover_journal_replayed_total", "Journal-tail events replayed on restore"
        )
        self.skipped = metrics.counter(
            "recover_checkpoints_skipped_total",
            "Corrupt checkpoints skipped during restore",
        )
        obs.tracer.declare_track(PID_RECOVER, "recover", thread_name="durability")


def _instruments(obs: Obs) -> "_RecoverInstruments | None":
    return _RecoverInstruments(obs) if obs.enabled else None


# ----------------------------------------------------------------------
# Checkpointing run loop
# ----------------------------------------------------------------------
def _runtime_config_state(runtime: ServeRuntime) -> dict:
    from repro.serve.fleet.runtime import FleetRuntime

    if isinstance(runtime, ChaosRuntime):
        return chaos_config_to_dict(runtime.chaos)
    if isinstance(runtime, FleetRuntime):
        return fleet_config_to_dict(runtime.config)
    return serve_config_to_dict(runtime.config)


def _write_checkpoint(
    store: CheckpointStore,
    runtime: ServeRuntime,
    every: int,
    instruments: "_RecoverInstruments | None",
    now_s: float,
) -> None:
    payload_bytes = store.write(
        runtime.state_dict(),
        event_index=runtime.events_processed,
        kind=runtime.RUNTIME_KIND,
        config=_runtime_config_state(runtime),
        service=service_model_to_dict(runtime.service),
        checkpoint_every=every,
    )
    if instruments is not None:
        instruments.checkpoints.inc()
        instruments.checkpoint_bytes.set(float(payload_bytes))
        instruments.obs.tracer.instant(
            "checkpoint", now_s, cat="recover", pid=PID_RECOVER,
            args={"event_index": runtime.events_processed, "bytes": payload_bytes},
        )


def run_with_checkpoints(
    runtime: ServeRuntime,
    directory: "str | os.PathLike",
    every: int = DEFAULT_CHECKPOINT_EVERY,
    *,
    kill: "ProcessKill | None" = None,
    _resume: bool = False,
) -> FleetReport:
    """Run ``runtime`` to completion under checkpoint + journal cover.

    Durability is invisible to the simulation: snapshots and journal
    appends happen *between* events and read sim-state without touching
    it, so the report is bit-identical to a bare ``runtime.run()``.

    ``kill`` injects a process death (:class:`SimulatedCrash` escapes
    this function) after exactly ``kill.at_event`` events; the journal
    is fsynced first, mirroring a real WAL's commit barrier.
    """
    if every <= 0:
        raise ValueError(f"checkpoint cadence must be positive, got {every}")
    store = CheckpointStore(directory)
    instruments = _instruments(runtime.obs)
    runtime.start()
    if not _resume:
        # Baseline checkpoint: restore works even if the process dies
        # before the first cadence boundary.
        _write_checkpoint(store, runtime, every, instruments, now_s=0.0)
    journal = JournalWriter(Path(directory) / JOURNAL_NAME, resume=_resume)
    try:
        while True:
            head = runtime.peek_event()
            if head is None:
                break
            time_s, kind, seq = head
            journal.append(
                {"i": runtime.events_processed + 1, "t": time_s, "k": kind,
                 "seq": seq}
            )
            if instruments is not None:
                instruments.journal_records.inc()
            runtime.step()
            if kill is not None and kill.fires_at(runtime.events_processed):
                journal.sync()
                raise SimulatedCrash(
                    f"process killed at event {runtime.events_processed} "
                    f"(t={time_s:.6f}s)"
                )
            if runtime.events_processed % every == 0:
                journal.sync()
                _write_checkpoint(store, runtime, every, instruments, now_s=time_s)
    finally:
        journal.close()
    return runtime.finish()


# ----------------------------------------------------------------------
# Restore / resume
# ----------------------------------------------------------------------
def build_runtime(
    checkpoint: Checkpoint,
    service: "BatchServiceModel | None",
    inference: "InferenceFn | None",
    obs: "Obs | None",
) -> ServeRuntime:
    """Construct a fresh runtime of the checkpoint's kind and config.

    The manifest embeds the complete run configuration, so this needs
    nothing beyond the checkpoint itself; pass ``service``/``inference``
    only to override what the manifest recorded.
    """
    if service is None:
        service = service_model_from_dict(checkpoint.service)
    if checkpoint.kind == "serve":
        config = serve_config_from_dict(checkpoint.config)
        return ServeRuntime(config, service=service, inference=inference, obs=obs)
    if checkpoint.kind == "chaos":
        chaos = chaos_config_from_dict(checkpoint.config)
        return ChaosRuntime(chaos, service=service, inference=inference, obs=obs)
    if checkpoint.kind == "fleet":
        from repro.serve.fleet.runtime import FleetRuntime

        if inference is not None:
            raise RecoveryError(
                "fleet checkpoints do not support an inference hook"
            )
        config = fleet_config_from_dict(checkpoint.config)
        return FleetRuntime(config, service=service, obs=obs)
    raise RecoveryError(
        f"checkpoint {checkpoint.manifest_path} has unknown runtime kind "
        f"{checkpoint.kind!r}"
    )


def restore_runtime(
    directory: "str | os.PathLike",
    *,
    service: "BatchServiceModel | None" = None,
    inference: "InferenceFn | None" = None,
    obs: "Obs | None" = None,
) -> RestoredRuntime:
    """Warm-restart from ``directory``: latest valid checkpoint + replay.

    The journal tail (records past the checkpoint's event index) is
    replayed by re-stepping the deterministic event loop; every
    regenerated event must match its journal record exactly (index,
    time, kind, sequence) or the restore fails with
    :class:`RecoveryError` — a divergence means the snapshot and the
    journal describe different histories, and continuing would
    silently fork the run.
    """
    directory = Path(directory)
    store = CheckpointStore(directory)
    checkpoint, skipped = store.latest_valid()
    if checkpoint is None:
        detail = "; ".join(reason for _, reason in skipped) or "directory is empty"
        raise RecoveryError(f"no valid checkpoint under {directory}: {detail}")
    runtime = build_runtime(checkpoint, service, inference, obs)
    runtime.load_state(checkpoint.state)
    instruments = _instruments(runtime.obs)

    tail = read_journal(directory / JOURNAL_NAME, after_index=checkpoint.event_index)
    for record in tail:
        head = runtime.peek_event()
        if head is None:
            raise RecoveryError(
                f"journal records event {record['i']} but the restored run "
                "has no events left — snapshot and journal disagree"
            )
        time_s, kind, seq = head
        expected_index = runtime.events_processed + 1
        if (
            record["i"] != expected_index
            or record["t"] != time_s
            or record["k"] != kind
            or record["seq"] != seq
        ):
            raise RecoveryError(
                f"replay diverged at event {expected_index}: journal pinned "
                f"(i={record['i']}, t={record['t']!r}, k={record['k']}, "
                f"seq={record['seq']}), the restored loop regenerated "
                f"(i={expected_index}, t={time_s!r}, k={kind}, seq={seq})"
            )
        runtime.step()
    if instruments is not None:
        instruments.restores.inc()
        instruments.replayed.inc(len(tail))
        instruments.skipped.inc(len(skipped))
        instruments.obs.tracer.instant(
            "restore", 0.0, cat="recover", pid=PID_RECOVER,
            args={
                "checkpoint": checkpoint.event_index,
                "replayed": len(tail),
                "skipped": len(skipped),
            },
        )
    return RestoredRuntime(
        runtime=runtime,
        checkpoint=checkpoint,
        replayed_events=len(tail),
        skipped_checkpoints=skipped,
    )


def resume(
    directory: "str | os.PathLike",
    *,
    service: "BatchServiceModel | None" = None,
    inference: "InferenceFn | None" = None,
    obs: "Obs | None" = None,
    every: "int | None" = None,
) -> FleetReport:
    """Restore and run to completion with checkpointing re-armed.

    The final :class:`FleetReport` is bit-identical to the report of the
    same config run uninterrupted (the ``recover-smoke`` CI job and
    ``benchmarks/test_recover_crash.py`` byte-diff exactly that).
    """
    restored = restore_runtime(
        directory, service=service, inference=inference, obs=obs
    )
    if every is None:
        every = restored.checkpoint.checkpoint_every or DEFAULT_CHECKPOINT_EVERY
    return run_with_checkpoints(
        restored.runtime, directory, every=every, _resume=True
    )
