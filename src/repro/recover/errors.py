"""Typed failures of the durability layer.

Everything the checkpoint/journal/restore path can reject raises a
:class:`RecoveryError` subclass, so callers distinguish "this artifact
is damaged" from programming errors.  Corruption is always reported
*fast* — at artifact-validation time, before any state is mutated — and
named precisely (which file, which check failed).
"""

from __future__ import annotations


class RecoveryError(RuntimeError):
    """Base class: a checkpoint/journal/restore operation failed."""


class CheckpointError(RecoveryError):
    """A checkpoint manifest or payload failed validation (missing or
    unknown manifest keys, unsupported format version, CRC mismatch,
    unparseable JSON)."""


class JournalError(RecoveryError):
    """The write-ahead journal is damaged beyond its torn tail (an
    interior record failed its CRC or did not parse)."""
