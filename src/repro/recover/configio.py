"""Config <-> dict codecs for the checkpoint manifest.

A checkpoint must be restorable from the directory alone, so the
manifest embeds the *complete* run configuration — the serve or chaos
config and the batch service model.  These codecs are explicit (not a
generic pickle) so the on-disk format stays a documented, versioned
JSON schema: enums go by value, tuples round-trip through lists, and
reconstruction re-runs every dataclass validator.

The experiment-campaign layer (``repro.exp``) reuses these codecs as
its config canonicalizer: a run's identity is the
:func:`~repro.recover.codec.config_hash` of the *fully resolved* config
dict these functions emit, so defaults, dict ordering, and equivalent
spellings all collapse to one hash.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.faults.config import (
    ChaosConfig,
    InputFaultConfig,
    RecoveryConfig,
    SoftErrorConfig,
)
from repro.serve.config import AdmissionPolicy, BatchServiceModel, ServeConfig
from repro.serve.workers import (
    LatencySpike,
    WorkerCrash,
    WorkerFaultSchedule,
    WorkerStall,
)
from repro.system.tfr import TrackerSystemProfile
from repro.system.watchdog import WatchdogConfig


def serve_config_to_dict(config: ServeConfig) -> dict:
    state = asdict(config)
    state["admission"] = config.admission.value
    return state


def serve_config_from_dict(state: dict) -> ServeConfig:
    kwargs = dict(state)
    kwargs["admission"] = AdmissionPolicy(kwargs["admission"])
    return ServeConfig(**kwargs)


def service_model_to_dict(service: BatchServiceModel) -> dict:
    return asdict(service)


def service_model_from_dict(state: dict) -> BatchServiceModel:
    return BatchServiceModel(**state)


def chaos_config_to_dict(config: ChaosConfig) -> dict:
    faults = config.worker_faults
    return {
        "serve": serve_config_to_dict(config.serve),
        "input_faults": asdict(config.input_faults),
        "worker_faults": {
            "crashes": [asdict(c) for c in faults.crashes],
            "stalls": [asdict(s) for s in faults.stalls],
            "spikes": [asdict(s) for s in faults.spikes],
        },
        "recovery": asdict(config.recovery),
        "watchdog": asdict(config.watchdog),
        "profile": asdict(config.profile),
        "soft_errors": asdict(config.soft_errors),
        "fault_seed": config.fault_seed,
    }


def chaos_config_from_dict(state: dict) -> ChaosConfig:
    input_faults = dict(state["input_faults"])
    input_faults["occlusion_level"] = tuple(input_faults["occlusion_level"])
    faults = state["worker_faults"]
    return ChaosConfig(
        serve=serve_config_from_dict(state["serve"]),
        input_faults=InputFaultConfig(**input_faults),
        worker_faults=WorkerFaultSchedule(
            crashes=tuple(WorkerCrash(**c) for c in faults["crashes"]),
            stalls=tuple(WorkerStall(**s) for s in faults["stalls"]),
            spikes=tuple(LatencySpike(**s) for s in faults["spikes"]),
        ),
        recovery=RecoveryConfig(**state["recovery"]),
        watchdog=WatchdogConfig(**state["watchdog"]),
        profile=TrackerSystemProfile(**state["profile"]),
        # Older checkpoints predate soft errors; they ran without them.
        soft_errors=SoftErrorConfig(**state["soft_errors"])
        if "soft_errors" in state
        else SoftErrorConfig.inactive(),
        fault_seed=int(state["fault_seed"]),
    )


def net_config_to_dict(config) -> dict:
    """Serialize a :class:`~repro.serve.fleet.transport.NetConfig`."""
    return {
        "enabled": config.enabled,
        "seed": config.seed,
        "link": asdict(config.link),
        "partitions": [
            {
                "start_s": w.start_s,
                "stop_s": w.stop_s,
                "shard_ids": list(w.shard_ids),
            }
            for w in config.partitions
        ],
        "gray": [asdict(w) for w in config.gray],
        "ack_timeout_s": config.ack_timeout_s,
        "backoff_factor": config.backoff_factor,
        "max_retransmits": config.max_retransmits,
        "heartbeat_s": config.heartbeat_s,
        "detect_every_s": config.detect_every_s,
        "phi_threshold": config.phi_threshold,
        "on_exhaust": config.on_exhaust,
    }


def net_config_from_dict(state: dict):
    from repro.faults.netfaults import GraySlow, LinkProfile, PartitionWindow
    from repro.serve.fleet.transport import NetConfig

    return NetConfig(
        enabled=bool(state["enabled"]),
        seed=int(state["seed"]),
        link=LinkProfile(**state["link"]),
        partitions=tuple(
            PartitionWindow(
                start_s=float(w["start_s"]),
                stop_s=float(w["stop_s"]),
                shard_ids=tuple(int(s) for s in w["shard_ids"]),
            )
            for w in state["partitions"]
        ),
        gray=tuple(GraySlow(**w) for w in state["gray"]),
        ack_timeout_s=float(state["ack_timeout_s"]),
        backoff_factor=float(state["backoff_factor"]),
        max_retransmits=int(state["max_retransmits"]),
        heartbeat_s=float(state["heartbeat_s"]),
        detect_every_s=float(state["detect_every_s"]),
        phi_threshold=float(state["phi_threshold"]),
        on_exhaust=str(state["on_exhaust"]),
    )


def fleet_config_to_dict(config) -> dict:
    """Serialize a :class:`~repro.serve.fleet.FleetConfig`.

    The ``net`` key is present only when the transport is enabled, so
    config hashes and checkpoint manifests of pre-transport (and plain)
    fleet runs are byte-for-byte what they always were.
    """
    return {
        "serve": serve_config_to_dict(config.serve),
        "n_shards": config.n_shards,
        "vnodes": config.vnodes,
        "ring_seed": config.ring_seed,
        "kills": [asdict(k) for k in config.kills],
        "migrations": [asdict(m) for m in config.migrations],
        "migration_rate_hz": config.migration_rate_hz,
        "migration_seed": config.migration_seed,
        "failover": asdict(config.failover),
        "rebalancer": asdict(config.rebalancer),
        **(
            {"net": net_config_to_dict(config.net)}
            if config.net.enabled
            else {}
        ),
    }


def fleet_config_from_dict(state: dict):
    from repro.faults.injectors import ShardKill
    from repro.serve.fleet.config import (
        FailoverConfig,
        FleetConfig,
        RebalancerConfig,
        SessionMigration,
    )
    from repro.serve.fleet.transport import NetConfig

    return FleetConfig(
        serve=serve_config_from_dict(state["serve"]),
        n_shards=int(state["n_shards"]),
        vnodes=int(state["vnodes"]),
        ring_seed=int(state["ring_seed"]),
        kills=tuple(ShardKill(**k) for k in state["kills"]),
        migrations=tuple(SessionMigration(**m) for m in state["migrations"]),
        migration_rate_hz=float(state["migration_rate_hz"]),
        migration_seed=int(state["migration_seed"]),
        failover=FailoverConfig(**state["failover"]),
        rebalancer=RebalancerConfig(**state["rebalancer"]),
        # Pre-transport checkpoints predate the key; they ran without it.
        net=(
            net_config_from_dict(state["net"])
            if "net" in state
            else NetConfig()
        ),
    )


def sdc_campaign_to_dict(config) -> dict:
    """Serialize an :class:`~repro.reliability.campaign.SdcCampaignConfig`.

    Tuples round-trip through lists (canonical JSON has no tuples); the
    field set is exactly the dataclass's, so unknown keys in a stored
    dict fail reconstruction loudly.
    """
    state = asdict(config)
    state["fit_rates"] = list(config.fit_rates)
    state["protections"] = list(config.protections)
    return state


def sdc_campaign_from_dict(state: dict):
    from repro.reliability.campaign import SdcCampaignConfig

    kwargs = dict(state)
    kwargs["fit_rates"] = tuple(float(f) for f in kwargs["fit_rates"])
    kwargs["protections"] = tuple(str(p) for p in kwargs["protections"])
    return SdcCampaignConfig(**kwargs)
