"""Write-ahead frame journal (JSONL).

Between checkpoints the runtime logs every event *before* applying it:
one canonical-JSON line per event carrying the event index ``i``, its
sim-clock time ``t``, heap kind ``k``, insertion sequence ``seq``, and a
CRC32 of the record.  Because the event loop is deterministic, the
journal does not need to store effects — replaying from the last
checkpoint regenerates them — but it pins the exact event stream the
crashed process committed to, so restore can cross-check each replayed
event and fail loudly on any divergence instead of silently forking
history.

Crash tolerance at read time is asymmetric by design: a torn *final*
line is exactly what a kill mid-append produces, so it is discarded; a
damaged *interior* line cannot happen under append-only writes and
raises :class:`JournalError`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.recover.codec import canonical_bytes, canonical_json, crc32
from repro.recover.errors import JournalError

#: File name of the journal inside a checkpoint directory.
JOURNAL_NAME = "journal.jsonl"


class JournalWriter:
    """Append-only writer; ``resume=True`` continues an existing file."""

    def __init__(self, path: "str | os.PathLike", resume: bool = False):
        self.path = Path(path)
        self._handle = open(
            self.path, "a" if resume else "w", encoding="utf-8"
        )

    def append(self, record: dict) -> None:
        """Log one event record, sealed with its own CRC32.

        The seal is spliced into the record's canonical JSON directly
        (``"crc"`` sorts before every event field, so the sealed line is
        still canonical) — one serialization per event, not two, on the
        hottest durability path.
        """
        body = canonical_json(record)
        crc = crc32(body.encode("utf-8"))
        if body == "{}":
            line = '{"crc":%d}' % crc
        else:
            line = '{"crc":%d,%s' % (crc, body[1:])
        self._handle.write(line + "\n")

    def sync(self) -> None:
        """Flush to the OS and fsync — the group-commit barrier taken
        before every checkpoint and simulated kill."""
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


def _verify_line(line: str, path: Path, lineno: int) -> dict:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as err:
        raise JournalError(
            f"journal {path} line {lineno}: unparseable record ({err})"
        ) from err
    if not isinstance(record, dict) or "crc" not in record:
        raise JournalError(f"journal {path} line {lineno}: record has no CRC")
    sealed = dict(record)
    stored = sealed.pop("crc")
    if crc32(canonical_bytes(sealed)) != stored:
        raise JournalError(
            f"journal {path} line {lineno}: CRC mismatch (corrupt record)"
        )
    return sealed


def read_journal(
    path: "str | os.PathLike", after_index: int = 0
) -> list[dict]:
    """Read and verify the journal; return records with ``i > after_index``.

    A torn final line (the signature of a crash mid-append) is dropped;
    any other damage raises :class:`JournalError`.  Record indices must
    be strictly increasing — an out-of-order journal is corrupt.
    """
    path = Path(path)
    if not path.exists():
        return []
    lines = path.read_text(encoding="utf-8").splitlines()
    records: list[dict] = []
    last_index = None
    for lineno, line in enumerate(lines, start=1):
        try:
            record = _verify_line(line, path, lineno)
        except JournalError:
            if lineno == len(lines):
                break  # torn tail from the crash — tolerated
            raise
        index = record.get("i")
        if not isinstance(index, int):
            raise JournalError(
                f"journal {path} line {lineno}: missing event index"
            )
        if last_index is not None and index <= last_index:
            raise JournalError(
                f"journal {path} line {lineno}: event index {index} not "
                f"after {last_index}"
            )
        last_index = index
        records.append(record)
    return [record for record in records if record["i"] > after_index]
