"""``python -m repro recover`` — warm-restart a killed serving run.

Given a checkpoint directory written by ``python -m repro serve
--checkpoint-dir`` (or ``chaos --checkpoint-dir``), restores the latest
valid checkpoint, replays the write-ahead journal tail, runs the fleet
to completion, and prints the final report to stdout.  The recovery
summary (checkpoint used, events replayed, corrupt checkpoints skipped)
goes to stderr so the stdout report stays byte-comparable against an
uninterrupted run — exactly what ``--verify`` and the ``recover-smoke``
CI job do.

This module also owns the shared ``--checkpoint-dir`` /
``--checkpoint-every`` / ``--kill-at-event`` flags the serve and chaos
CLIs import, plus the :data:`EXIT_SIMULATED_CRASH` code a killed run
exits with.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass

from repro.faults.injectors import ProcessKill, SimulatedCrash
from repro.obs.cli import (
    add_obs_arguments,
    emit_obs_artifacts,
    obs_from_args,
    resolve_obs_out,
)
from repro.recover.codec import fleet_report_bytes
from repro.recover.errors import RecoveryError
from repro.recover.manager import (
    DEFAULT_CHECKPOINT_EVERY,
    build_runtime,
    restore_runtime,
    run_with_checkpoints,
)
from repro.serve.runtime import ServeRuntime
from repro.serve.telemetry import format_fleet_report

#: Exit code of a run terminated by an injected :class:`ProcessKill` —
#: distinguishable from success (0) and argparse/usage errors (2).
EXIT_SIMULATED_CRASH = 17


# ----------------------------------------------------------------------
# Campaign entry point (repro.exp)
# ----------------------------------------------------------------------
@dataclass
class RecoverProbeReport:
    """One kill-and-recover probe: the recovered run plus its verdict.

    ``verified`` is the durability acceptance criterion — the recovered
    :class:`~repro.serve.telemetry.FleetReport` byte-equals the same
    config run uninterrupted.  ``killed=False`` means the run finished
    before ``kill_at_event`` fired (nothing to recover; trivially
    verified).
    """

    report: "FleetReport"
    killed: bool
    replayed_events: int
    skipped_checkpoints: int
    verified: bool


def resolve_run_config(params: dict) -> dict:
    """Validate campaign params -> the fully resolved canonical dict.

    ``target`` picks the runtime under test (``"serve"``, ``"chaos"``,
    or ``"fleet"``); the remaining params are that runner's, plus
    ``kill_at_event`` and ``checkpoint_every``.
    """
    params = dict(params)
    target = params.pop("target", "serve")
    kill_at_event = int(params.pop("kill_at_event", 500))
    checkpoint_every = int(params.pop("checkpoint_every", 200))
    if kill_at_event < 1:
        raise ValueError(f"kill_at_event must be >= 1, got {kill_at_event}")
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if target == "serve":
        from repro.serve.cli import resolve_run_config as resolve_serve

        inner = resolve_serve(params)
    elif target == "chaos":
        from repro.faults.cli import resolve_run_config as resolve_chaos

        inner = resolve_chaos(params)
    elif target == "fleet":
        from repro.serve.fleet.cli import resolve_run_config as resolve_fleet

        inner = resolve_fleet(params)
    else:
        raise ValueError(
            f"unknown recover target {target!r} "
            "(choose 'serve', 'chaos', or 'fleet')"
        )
    return {
        "kind": "recover",
        "target": inner,
        "kill_at_event": kill_at_event,
        "checkpoint_every": checkpoint_every,
    }


def _target_runtime(target: dict) -> ServeRuntime:
    if target["kind"] == "serve":
        from repro.recover.configio import (
            serve_config_from_dict,
            service_model_from_dict,
        )

        return ServeRuntime(
            serve_config_from_dict(target["config"]),
            service=service_model_from_dict(target["service"]),
        )
    if target["kind"] == "fleet":
        from repro.recover.configio import (
            fleet_config_from_dict,
            service_model_from_dict,
        )
        from repro.serve.fleet.runtime import FleetRuntime

        return FleetRuntime(
            fleet_config_from_dict(target["config"]),
            service=service_model_from_dict(target["service"]),
        )
    from repro.faults.runtime import ChaosRuntime
    from repro.recover.configio import chaos_config_from_dict

    return ChaosRuntime(chaos_config_from_dict(target["config"]))


def run_from_config(params: dict) -> RecoverProbeReport:
    """Campaign entry point: kill a checkpointed run, recover it, and
    byte-verify the recovered report against the uninterrupted twin.

    The checkpoint directory is ephemeral — the probe's durable outputs
    are the recovered report and the verification verdict.
    """
    import tempfile

    resolved = resolve_run_config(params)
    every = resolved["checkpoint_every"]
    with tempfile.TemporaryDirectory(prefix="repro-recover-probe-") as tmp:
        runtime = _target_runtime(resolved["target"])
        kill = ProcessKill(at_event=resolved["kill_at_event"])
        try:
            report = run_with_checkpoints(runtime, tmp, every=every, kill=kill)
        except SimulatedCrash:
            pass
        else:
            # The run outlived the kill schedule — nothing to recover.
            return RecoverProbeReport(
                report=report, killed=False, replayed_events=0,
                skipped_checkpoints=0, verified=True,
            )
        restored = restore_runtime(tmp)
        report = run_with_checkpoints(
            restored.runtime, tmp, every=every, _resume=True
        )
        baseline = build_runtime(restored.checkpoint, None, None, None).run()
        return RecoverProbeReport(
            report=report,
            killed=True,
            replayed_events=restored.replayed_events,
            skipped_checkpoints=len(restored.skipped_checkpoints),
            verified=fleet_report_bytes(report) == fleet_report_bytes(baseline),
        )


# ----------------------------------------------------------------------
# Shared checkpoint flags (imported by the serve and chaos CLIs)
# ----------------------------------------------------------------------
def add_checkpoint_arguments(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("durability")
    group.add_argument("--checkpoint-dir", default=None,
                       help="directory for checkpoints + write-ahead journal "
                       "(enables durable execution)")
    group.add_argument("--checkpoint-every", type=int,
                       default=DEFAULT_CHECKPOINT_EVERY, metavar="N",
                       help="events between checkpoints "
                       f"(default {DEFAULT_CHECKPOINT_EVERY})")
    group.add_argument("--kill-at-event", type=int, default=None, metavar="N",
                       help="chaos mode: kill the process after exactly N "
                       f"events (exit code {EXIT_SIMULATED_CRASH}); requires "
                       "--checkpoint-dir")


def run_checkpointed_cli(
    runtime: ServeRuntime, args: argparse.Namespace, parser: argparse.ArgumentParser
):
    """Drive ``runtime`` under the shared checkpoint flags.

    Returns the :class:`~repro.serve.telemetry.FleetReport`, or
    ``EXIT_SIMULATED_CRASH`` when ``--kill-at-event`` fired.
    """
    kill = None
    if args.kill_at_event is not None:
        try:
            kill = ProcessKill(at_event=args.kill_at_event)
        except ValueError as err:
            parser.error(str(err))
    try:
        return run_with_checkpoints(
            runtime, args.checkpoint_dir, every=args.checkpoint_every, kill=kill
        )
    except ValueError as err:
        parser.error(str(err))
    except SimulatedCrash as err:
        print(f"simulated crash: {err}", file=sys.stderr)
        print(f"recover with: python -m repro recover --dir {args.checkpoint_dir}",
              file=sys.stderr)
        return EXIT_SIMULATED_CRASH


# ----------------------------------------------------------------------
# python -m repro recover
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro recover",
        description="Restore a killed serving run from its checkpoint "
        "directory and run it to completion.",
    )
    parser.add_argument("--dir", required=True,
                        help="checkpoint directory of the interrupted run")
    parser.add_argument("--every", type=int, default=None, metavar="N",
                        help="checkpoint cadence for the resumed leg "
                        "(default: the cadence recorded in the manifest)")
    parser.add_argument("--verify", action="store_true",
                        help="also run the same config uninterrupted from "
                        "scratch and byte-compare the two reports")
    parser.add_argument("--max-session-rows", type=int, default=8)
    add_obs_arguments(parser)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    obs = obs_from_args(args)
    try:
        restored = restore_runtime(args.dir, obs=obs)
    except RecoveryError as err:
        print(f"recovery failed: {err}", file=sys.stderr)
        return 1
    checkpoint = restored.checkpoint
    for index, reason in restored.skipped_checkpoints:
        print(f"skipped corrupt checkpoint {index}: {reason}", file=sys.stderr)
    print(
        f"restored {checkpoint.kind} run from checkpoint "
        f"{checkpoint.event_index} (+{restored.replayed_events} journal "
        "events replayed)",
        file=sys.stderr,
    )
    every = args.every
    if every is None:
        every = checkpoint.checkpoint_every or DEFAULT_CHECKPOINT_EVERY
    try:
        report = run_with_checkpoints(
            restored.runtime, args.dir, every=every, _resume=True
        )
    except (RecoveryError, ValueError) as err:
        print(f"recovery failed: {err}", file=sys.stderr)
        return 1
    print(format_fleet_report(report, max_session_rows=args.max_session_rows))
    if obs is not None:
        resolved = {
            "kind": checkpoint.kind,
            "config": checkpoint.config,
            "service": checkpoint.service,
        }
        out_dir = resolve_obs_out(
            args.obs_out, f"recover-{checkpoint.kind}", resolved
        )
        emit_obs_artifacts(obs, out_dir, top_k=args.obs_top)
    if args.verify:
        baseline = build_runtime(checkpoint, None, None, None).run()
        if fleet_report_bytes(report) == fleet_report_bytes(baseline):
            print("verify: recovered report is bit-identical to the "
                  "uninterrupted run", file=sys.stderr)
        else:
            print("verify: RECOVERED REPORT DIVERGES from the uninterrupted "
                  "run", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
