"""Atomic, checksummed checkpoints of the serving state.

One checkpoint is a *pair* of files keyed by the event index it was
taken at:

* ``ckpt-<index>.state.json`` — the runtime's full ``state_dict`` as
  canonical JSON (the payload);
* ``ckpt-<index>.manifest.json`` — a versioned manifest naming the
  payload and pinning its CRC32 and byte length, plus the complete run
  configuration (so restore needs nothing but the directory).

Both files are written temp-file-then-``os.replace`` with an fsync, and
the manifest is written *after* its payload: at every instant the
directory either contains a fully valid checkpoint or recognizably lacks
one — there is no window in which a torn write masquerades as valid.
:meth:`CheckpointStore.latest_valid` walks checkpoints newest-first and
falls back past any that fail validation, so a bit-flipped payload or a
tampered manifest costs replay distance, never correctness.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path

from repro.recover.codec import canonical_bytes, crc32
from repro.recover.errors import CheckpointError

#: Bump when the manifest/payload schema changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1

_MANIFEST_KEYS = frozenset(
    {
        "format_version",
        "event_index",
        "kind",
        "payload_file",
        "payload_crc32",
        "payload_bytes",
        "config",
        "service",
        "checkpoint_every",
    }
)

_MANIFEST_RE = re.compile(r"^ckpt-(\d{9})\.manifest\.json$")


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write-temp + fsync + rename: the file exists fully or not at all."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


@dataclass(frozen=True)
class Checkpoint:
    """One validated checkpoint, fully loaded."""

    event_index: int
    kind: str
    config: dict
    service: dict
    checkpoint_every: "int | None"
    state: dict
    manifest_path: Path


class CheckpointStore:
    """The checkpoint directory: write, enumerate, validate, load."""

    def __init__(self, directory: "str | os.PathLike"):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------
    def manifest_path(self, event_index: int) -> Path:
        return self.directory / f"ckpt-{event_index:09d}.manifest.json"

    def payload_path(self, event_index: int) -> Path:
        return self.directory / f"ckpt-{event_index:09d}.state.json"

    def indices(self) -> list[int]:
        """Event indices of every checkpoint present, ascending."""
        found = []
        for entry in self.directory.iterdir():
            match = _MANIFEST_RE.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------
    def write(
        self,
        state: dict,
        *,
        event_index: int,
        kind: str,
        config: dict,
        service: dict,
        checkpoint_every: "int | None" = None,
    ) -> int:
        """Atomically persist one checkpoint; returns the payload size."""
        payload = canonical_bytes(state)
        _atomic_write_bytes(self.payload_path(event_index), payload)
        manifest = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "event_index": event_index,
            "kind": kind,
            "payload_file": self.payload_path(event_index).name,
            "payload_crc32": crc32(payload),
            "payload_bytes": len(payload),
            "config": config,
            "service": service,
            "checkpoint_every": checkpoint_every,
        }
        _atomic_write_bytes(
            self.manifest_path(event_index), canonical_bytes(manifest)
        )
        return len(payload)

    # ------------------------------------------------------------------
    # Validate + load
    # ------------------------------------------------------------------
    def load(self, event_index: int) -> Checkpoint:
        """Load and fully validate the checkpoint at ``event_index``.

        Raises :class:`CheckpointError` naming the file and the failed
        check; never partially constructs a checkpoint.
        """
        manifest_path = self.manifest_path(event_index)
        try:
            raw = manifest_path.read_bytes()
        except FileNotFoundError:
            raise CheckpointError(f"no checkpoint manifest at {manifest_path}")
        try:
            manifest = json.loads(raw)
        except json.JSONDecodeError as err:
            raise CheckpointError(
                f"tampered or corrupt manifest {manifest_path}: {err}"
            ) from err
        if not isinstance(manifest, dict):
            raise CheckpointError(
                f"manifest {manifest_path} is not a JSON object"
            )
        missing = _MANIFEST_KEYS - manifest.keys()
        unknown = manifest.keys() - _MANIFEST_KEYS
        if missing or unknown:
            raise CheckpointError(
                f"manifest {manifest_path} schema mismatch: "
                f"missing={sorted(missing)}, unknown={sorted(unknown)}"
            )
        version = manifest["format_version"]
        if not isinstance(version, int):
            raise CheckpointError(
                f"manifest {manifest_path} format_version is not an integer"
            )
        if version > CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {manifest_path} uses format version {version}, "
                f"newer than the supported {CHECKPOINT_FORMAT_VERSION} — "
                "upgrade repro to restore it"
            )
        if version < 1:
            raise CheckpointError(
                f"manifest {manifest_path} has invalid format version {version}"
            )
        if manifest["event_index"] != event_index:
            raise CheckpointError(
                f"manifest {manifest_path} claims event index "
                f"{manifest['event_index']}, file name says {event_index}"
            )

        payload_path = self.directory / str(manifest["payload_file"])
        try:
            payload = payload_path.read_bytes()
        except FileNotFoundError:
            raise CheckpointError(
                f"checkpoint payload {payload_path} is missing"
            )
        if len(payload) != manifest["payload_bytes"]:
            raise CheckpointError(
                f"checkpoint payload {payload_path} is truncated: "
                f"{len(payload)} bytes, manifest pins {manifest['payload_bytes']}"
            )
        if crc32(payload) != manifest["payload_crc32"]:
            raise CheckpointError(
                f"checkpoint payload {payload_path} failed its CRC32 check "
                "(bit flip or partial write)"
            )
        try:
            state = json.loads(payload)
        except json.JSONDecodeError as err:  # CRC passed but JSON bad
            raise CheckpointError(
                f"checkpoint payload {payload_path} is not valid JSON: {err}"
            ) from err
        return Checkpoint(
            event_index=event_index,
            kind=str(manifest["kind"]),
            config=manifest["config"],
            service=manifest["service"],
            checkpoint_every=manifest["checkpoint_every"],
            state=state,
            manifest_path=manifest_path,
        )

    def latest_valid(
        self,
    ) -> "tuple[Checkpoint | None, list[tuple[int, str]]]":
        """Newest checkpoint that validates, plus ``(index, reason)`` for
        every newer one that was skipped as corrupt."""
        skipped: list[tuple[int, str]] = []
        for event_index in reversed(self.indices()):
            try:
                return self.load(event_index), skipped
            except CheckpointError as err:
                skipped.append((event_index, str(err)))
        return None, skipped
