"""Canonical JSON and CRC32 — the byte-level substrate of durability.

Every durable artifact (checkpoint payloads, manifests, journal records)
is canonical JSON: sorted keys, no whitespace, ``repr``-exact floats
(Python's ``json`` emits the shortest round-tripping decimal, so a float
written and re-read is the *same* binary64 — the property bit-identical
recovery rests on).  NaN/Inf are rejected outright: no serving-state
field may legally hold them, so allowing them would only mask a bug.
"""

from __future__ import annotations

import hashlib
import json
import zlib


def canonical_json(obj) -> str:
    """Deterministic minimal JSON (sorted keys, exact float round-trip)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def canonical_bytes(obj) -> bytes:
    return canonical_json(obj).encode("utf-8")


def crc32(data: bytes) -> int:
    """Unsigned CRC32 of ``data`` (the per-payload integrity check)."""
    return zlib.crc32(data) & 0xFFFFFFFF


#: Hex digits of a :func:`config_hash` — short enough to type, long
#: enough that collisions within one campaign are out of the question.
CONFIG_HASH_LEN = 12


def config_hash(obj) -> str:
    """Canonical identity of a JSON-safe config: SHA-256 over its
    canonical bytes, truncated to :data:`CONFIG_HASH_LEN` hex digits.

    Two configs hash equal iff they serialize to the same canonical
    JSON — dict ordering never matters.  This is the run identity the
    experiment ledger (``repro.exp``) and the ``--obs`` artifact
    namespacing key on.
    """
    return hashlib.sha256(canonical_bytes(obj)).hexdigest()[:CONFIG_HASH_LEN]


def fleet_report_bytes(report) -> bytes:
    """Canonical bytes of a :class:`~repro.serve.telemetry.FleetReport`.

    The bit-identity oracle: a recovered run and its uninterrupted twin
    must produce byte-equal output from this function.
    """
    from repro.serve.telemetry import fleet_report_state

    return canonical_bytes(fleet_report_state(report))
