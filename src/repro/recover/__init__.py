"""Durable checkpointing, write-ahead journaling, and crash recovery.

The serving fleet (``repro.serve`` / ``repro.faults``) is a deterministic
discrete-event simulation, which makes *bit-identical* crash recovery a
testable property rather than an aspiration: snapshot the full runtime
state atomically (:class:`CheckpointStore`), journal every event before
applying it (:class:`JournalWriter`), and after a kill rebuild from the
latest valid checkpoint and replay the journal tail
(:func:`restore_runtime`).  The recovered run's final
:class:`~repro.serve.telemetry.FleetReport` is byte-equal — via
:func:`fleet_report_bytes` — to the report of the same seed run
uninterrupted.

Entry points: :func:`run_with_checkpoints` wraps a runtime's event loop
with durability (and an optional
:class:`~repro.faults.injectors.ProcessKill`), :func:`resume` restores
and runs to completion, and ``python -m repro recover`` does the same
from the command line.
"""

from repro.recover.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    Checkpoint,
    CheckpointStore,
)
from repro.recover.codec import (
    CONFIG_HASH_LEN,
    canonical_bytes,
    canonical_json,
    config_hash,
    crc32,
    fleet_report_bytes,
)
from repro.recover.errors import CheckpointError, JournalError, RecoveryError
from repro.recover.journal import JOURNAL_NAME, JournalWriter, read_journal
from repro.recover.manager import (
    DEFAULT_CHECKPOINT_EVERY,
    RestoredRuntime,
    build_runtime,
    restore_runtime,
    resume,
    run_with_checkpoints,
)

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CONFIG_HASH_LEN",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "DEFAULT_CHECKPOINT_EVERY",
    "JOURNAL_NAME",
    "JournalError",
    "JournalWriter",
    "RecoveryError",
    "RestoredRuntime",
    "build_runtime",
    "canonical_bytes",
    "canonical_json",
    "config_hash",
    "crc32",
    "fleet_report_bytes",
    "read_journal",
    "restore_runtime",
    "resume",
    "run_with_checkpoints",
]
