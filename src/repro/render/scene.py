"""LumiBench-like scene suite (paper Fig. 1, §7).

Eight scenes labelled A-H spanning the ray-tracing complexity range the
paper measures with Vulkan-Sim (20 ms to ~700 ms depending on scene and
resolution).  Each scene's complexity is summarized as average GPU
cycles per camera ray — the single coefficient the latency model needs —
plus descriptive metadata used by the examples and the real path tracer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SceneProfile:
    """Rendering-cost profile of one benchmark scene.

    ``cycles_per_ray`` folds BVH traversal depth, shading cost, and bounce
    count into one calibrated coefficient (see ``repro.render.gpu`` for the
    calibration discussion).
    """

    name: str
    cycles_per_ray: float
    triangles: int
    bounces: int
    description: str = ""

    def __post_init__(self) -> None:
        check_positive("cycles_per_ray", self.cycles_per_ray)
        check_positive("triangles", self.triangles)


#: The eight-scene suite.  cycles_per_ray values are calibrated so the
#: Jetson-Orin-NX GPU model reproduces Fig. 1's averages (80/155/282 ms at
#: 720P/1080P/1440P) and its 20-700 ms spread.
SCENES: tuple[SceneProfile, ...] = (
    SceneProfile("A", 130.0, 48_000, 1, "small interior, mostly diffuse"),
    SceneProfile("B", 200.0, 120_000, 1, "office with glossy surfaces"),
    SceneProfile("C", 280.0, 260_000, 2, "vegetation-heavy exterior"),
    SceneProfile("D", 330.0, 410_000, 2, "vehicle showroom, reflections"),
    SceneProfile("E", 420.0, 630_000, 2, "night city block, many lights"),
    SceneProfile("F", 520.0, 890_000, 3, "cathedral interior, soft shadows"),
    SceneProfile("G", 670.0, 1_400_000, 3, "forest canopy, deep BVH"),
    SceneProfile("H", 1050.0, 2_300_000, 4, "refractive museum hall"),
)


def scene_by_name(name: str) -> SceneProfile:
    for scene in SCENES:
        if scene.name == name:
            return scene
    raise KeyError(f"unknown scene {name!r}; choose from {[s.name for s in SCENES]}")


@dataclass(frozen=True)
class Resolution:
    """Display resolution preset."""

    name: str
    width: int
    height: int

    @property
    def pixels(self) -> int:
        return self.width * self.height


RES_720P = Resolution("720P", 1280, 720)
RES_1080P = Resolution("1080P", 1920, 1080)
RES_1440P = Resolution("1440P", 2560, 1440)
RESOLUTIONS: tuple[Resolution, ...] = (RES_720P, RES_1080P, RES_1440P)


def resolution_by_name(name: str) -> Resolution:
    for res in RESOLUTIONS:
        if res.name == name:
            return res
    raise KeyError(f"unknown resolution {name!r}")
